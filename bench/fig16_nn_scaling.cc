/**
 * @file
 * Reproduces Figure 16: nearest neighbor with BlueDBM versus
 * DRAM-resident processing, across thread counts.
 *
 * Series: H-DRAM (multithreaded host over DRAM), 1 Node (BlueDBM
 * ISP, full flash speed -- flat in threads), Throttled (BlueDBM ISP
 * at 600 MB/s).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "bench/nn_common.hh"

namespace {

struct Row
{
    unsigned threads;
    double dram;
    double oneNode;
    double throttled;
};

std::vector<Row> rows;
double one_node = 0, throttled = 0;

void
runAll()
{
    one_node = bench::ispNnThroughput(1.0);
    throttled = bench::ispNnThroughput(0.25);
    for (unsigned t = 2; t <= 16; t += 2) {
        Row r;
        r.threads = t;
        r.dram = bench::dramNnThroughput(t, 0.0, 0);
        r.oneNode = one_node;
        r.throttled = throttled;
        rows.push_back(r);
    }
}

void
printTable()
{
    bench::banner("Figure 16: nearest neighbour, BlueDBM vs DRAM "
                  "(K comparisons/s)");
    std::printf("%8s %12s %12s %12s\n", "Threads", "DRAM", "1 Node",
                "Throttled");
    for (const auto &r : rows)
        std::printf("%8u %12.0f %12.0f %12.0f\n", r.threads,
                    r.dram / 1e3, r.oneNode / 1e3,
                    r.throttled / 1e3);
    std::printf("\nPaper shape: BlueDBM baseline ~320K "
                "comparisons/s; it keeps up with\nDRAM at low "
                "thread counts (host compute-bound), DRAM wins with "
                "enough\nthreads; throttling flash to 1/4 cuts ISP "
                "throughput accordingly.\n");
    std::printf("Measured: 1 Node = %.0fK, Throttled = %.0fK, "
                "DRAM crossover at ~%u threads\n",
                one_node / 1e3, throttled / 1e3,
                unsigned(one_node /
                         (rows.empty() ? 1.0
                                       : rows[0].dram /
                                             rows[0].threads)));
}

void
BM_Fig16(benchmark::State &state)
{
    for (auto _ : state) {
        rows.clear();
        runAll();
    }
    state.counters["one_node"] = one_node;
    state.counters["throttled"] = throttled;
}

BENCHMARK(BM_Fig16)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (rows.empty())
        runAll();
    printTable();
    return 0;
}
