/**
 * @file
 * Reproduces Figure 20: graph traversal performance -- dependent
 * page lookups over six access paths (paper section 7.2).
 *
 * The vertex pages live on a remote node's flash; each step's target
 * is only known after the previous page arrives, so throughput is
 * the reciprocal of access latency.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "analytics/graph.hh"
#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "isp/graph_engine.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;
using core::Cluster;
using core::ClusterParams;
using flash::PageBuffer;
using sim::Tick;

namespace {

constexpr std::uint64_t kVertices = 4096;
constexpr std::uint64_t kSteps = 1500;

struct Result
{
    std::string name;
    double stepsPerSec;
};

std::vector<Result> results;

/**
 * Build a 2-node cluster; vertex pages are synthesized on demand by
 * writing the graph's pages into node 1's card 0.
 */
struct Bench
{
    sim::Simulator sim;
    ClusterParams params;
    std::unique_ptr<Cluster> cluster;
    analytics::PageGraph graph;

    Bench()
        : graph(analytics::PageGraph::random(kVertices, 8, 23))
    {
        params.topology = net::Topology::line(2);
        cluster = std::make_unique<Cluster>(sim, params);
        // Preload vertex pages into node 1's backing store
        // (instantaneous: simulates a prior loading phase).
        const auto &geo = params.node.geometry;
        auto &store = cluster->node(1).card(0).nand().store();
        for (std::uint64_t v = 0; v < kVertices; ++v) {
            flash::Address addr =
                flash::Address::fromStriped(geo, v);
            if (store.program(addr,
                              graph.serialize(v, geo.pageSize)) !=
                flash::Status::Ok)
                sim::fatal("graph preload program failed");
        }
    }

    flash::Address
    vertexAddr(std::uint64_t v) const
    {
        return flash::Address::fromStriped(params.node.geometry, v);
    }

    double
    run(const std::string &name,
        isp::GraphTraversalEngine::Fetch fetch)
    {
        isp::GraphTraversalEngine engine(std::move(fetch), 29);
        Tick start = sim.now();
        Tick finish = 0;
        engine.walk(0, kSteps, [&](isp::TraversalResult r) {
            finish = sim.now();
            if (r.steps != kSteps)
                sim::panic("walk lost steps");
        });
        sim.run();
        double rate = double(kSteps) / sim::ticksToSec(finish - start);
        results.push_back({name, rate});
        return rate;
    }
};

void
runAll()
{
    // Each path gets a fresh bench so device state never leaks.
    {
        Bench b;
        b.run("ISP-F", [&b](std::uint64_t v, auto cb) {
            b.cluster->node(0).ispReadRemote(1, 0, b.vertexAddr(v),
                                             cb);
        });
    }
    {
        Bench b;
        b.run("H-F", [&b](std::uint64_t v, auto cb) {
            b.cluster->node(0).hostReadRemote(1, 0, b.vertexAddr(v),
                                              cb);
        });
    }
    {
        Bench b;
        b.run("H-RH-F", [&b](std::uint64_t v, auto cb) {
            b.cluster->node(0).hostReadRemoteViaHost(
                1, 0, b.vertexAddr(v), cb);
        });
    }
    // DRAM-mix paths: x% of lookups still hit remote flash via the
    // remote host; the rest are served from the remote host's DRAM.
    auto mixed = [](double flash_fraction, const std::string &name) {
        Bench b;
        auto rng = std::make_shared<sim::Rng>(31);
        b.run(name, [&b, rng, flash_fraction](std::uint64_t v,
                                              auto cb) {
            if (rng->uniform() < flash_fraction) {
                b.cluster->node(0).hostReadRemoteViaHost(
                    1, 0, b.vertexAddr(v), cb);
            } else {
                // Serve the same vertex content from remote DRAM:
                // model the timing with a DRAM-service request, and
                // deliver real page bytes for the walk to parse.
                auto page = b.graph.serialize(
                    v, b.params.node.geometry.pageSize);
                b.cluster->node(0).hostReadRemoteDram(
                    1, b.params.node.geometry.pageSize,
                    [cb, page = std::move(page)](PageBuffer) {
                    cb(page);
                });
            }
        });
    };
    mixed(0.5, "50%F");
    mixed(0.3, "30%F");
    {
        Bench b;
        b.run("H-DRAM", [&b](std::uint64_t v, auto cb) {
            auto page = b.graph.serialize(
                v, b.params.node.geometry.pageSize);
            b.cluster->node(0).hostReadRemoteDram(
                1, b.params.node.geometry.pageSize,
                [cb, page = std::move(page)](PageBuffer) {
                cb(page);
            });
        });
    }
}

void
printTable()
{
    bench::banner("Figure 20: graph traversal throughput "
                  "(dependent lookups/s)");
    std::printf("%-10s %16s\n", "Access", "Lookups/s");
    for (const auto &r : results)
        std::printf("%-10s %16.0f\n", r.name.c_str(),
                    r.stepsPerSec);
    double ispf = results[0].stepsPerSec;
    double hrhf = results[2].stepsPerSec;
    std::printf("\nPaper: ISP + integrated network give ~3x over "
                "the generic distributed\nSSD path (H-RH-F); even "
                "with 50%% DRAM hits the conventional path stays\n"
                "well below BlueDBM.\nMeasured ISP-F / H-RH-F = "
                "%.1fx; ISP-F vs 50%%F = %.1fx.\n",
                ispf / hrhf, ispf / results[3].stepsPerSec);
}

void
BM_Fig20(benchmark::State &state)
{
    for (auto _ : state) {
        results.clear();
        runAll();
    }
    for (const auto &r : results)
        state.counters[r.name] = r.stepsPerSec;
}

BENCHMARK(BM_Fig20)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (results.empty())
        runAll();
    printTable();
    return 0;
}
