/**
 * @file
 * Reproduces Figure 13: storage access bandwidth under four
 * configurations (paper section 6.5):
 *
 *   Host-Local  host reads local flash, data over PCIe  (~1.6 GB/s)
 *   ISP-Local   ISP consumes local flash                (~2.4 GB/s)
 *   ISP-2Nodes  50% remote over ONE serial link         (~3.4 GB/s)
 *   ISP-3Nodes  33% to each of two remotes, two links   (~6.5 GB/s)
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using core::Cluster;
using core::ClusterParams;
using flash::PageBuffer;
using sim::Tick;

namespace {

struct Result
{
    std::string name;
    double gbps = 0;
};

std::vector<Result> results;

constexpr std::uint64_t kRequests = 20000;
constexpr unsigned kWindowPerCard = 256;

ClusterParams
topoFor(unsigned remotes, unsigned links_per_remote)
{
    ClusterParams p;
    if (remotes == 0 || links_per_remote == 0) {
        // Local-only run; a minimal wired pair keeps the network
        // valid but unused.
        p.topology = net::Topology::line(2);
        return p;
    }
    net::Topology t;
    t.nodes = 1 + remotes;
    for (unsigned r = 0; r < remotes; ++r) {
        for (unsigned l = 0; l < links_per_remote; ++l) {
            net::LinkSpec spec;
            spec.nodeA = 0;
            spec.portA = std::uint8_t(r * links_per_remote + l);
            spec.nodeB = net::NodeId(1 + r);
            spec.portB = std::uint8_t(l);
            t.links.push_back(spec);
        }
    }
    p.topology = t;
    return p;
}

/**
 * Random reads; fraction_remote of them spread over remote nodes.
 * Each target gets its own request stream and window so a slower
 * remote pipe never head-of-line-blocks the local one (the hardware
 * pipelines them independently too).
 */
double
runIsp(unsigned remotes, unsigned links_per_remote,
       double fraction_remote)
{
    sim::Simulator sim;
    Cluster cluster(sim, topoFor(remotes, links_per_remote));
    sim::Rng rng(7);
    const auto &geo = cluster.params().node.geometry;

    // The paper reports the aggregate bandwidth with every pipe
    // saturated, so we measure each stream's steady rate and sum.
    struct Stream
    {
        Tick last = 0;
        std::uint64_t pages = 0;
    };
    std::vector<std::unique_ptr<Stream>> streams;

    auto stream = [&](net::NodeId target, std::uint64_t requests) {
        streams.emplace_back(std::make_unique<Stream>());
        Stream *st = streams.back().get();
        st->pages = requests;
        bench::Window::run(
            requests, kWindowPerCard * 2,
            [&cluster, &rng, &geo, st, &sim, target](
                std::uint64_t i, std::function<void()> done) {
                flash::Address addr = flash::Address::fromLinear(
                    geo, rng.below(geo.pages()));
                cluster.node(0).ispReadRemote(
                    target, unsigned(i & 1), addr,
                    [st, &sim, done](PageBuffer) {
                    st->last = sim.now();
                    done();
                });
            });
    };

    auto remote_requests = std::uint64_t(
        double(kRequests) * fraction_remote);
    stream(0, kRequests - remote_requests);
    for (unsigned r = 0; r < remotes; ++r)
        stream(net::NodeId(1 + r), remote_requests / remotes);
    sim.run();
    double total = 0;
    for (const auto &st : streams)
        total += sim::bytesPerSec(st->pages * geo.pageSize,
                                  st->last);
    return total / 1e9;
}

double
runHostLocal()
{
    sim::Simulator sim;
    Cluster cluster(sim, topoFor(1, 1));
    sim::Rng rng(9);
    const auto &geo = cluster.params().node.geometry;
    Tick last = 0;

    bench::Window::run(
        kRequests, 128, // the 128 read page buffers
        [&](std::uint64_t i, std::function<void()> done) {
            flash::Address addr = flash::Address::fromLinear(
                geo, rng.below(geo.pages()));
            cluster.node(0).hostReadLocal(
                unsigned(i & 1), addr, [&, done](PageBuffer) {
                last = sim.now();
                done();
            });
        });
    sim.run();
    return sim::bytesPerSec(kRequests * geo.pageSize, last) / 1e9;
}

void
runAll()
{
    results.push_back({"Host-Local", runHostLocal()});
    results.push_back({"ISP-Local", runIsp(0, 0, 0.0)});
    results.push_back({"ISP-2Nodes", runIsp(1, 1, 0.5)});
    results.push_back({"ISP-3Nodes", runIsp(2, 2, 2.0 / 3.0)});
}

void
printTable()
{
    bench::banner("Figure 13: bandwidth of data access in BlueDBM "
                  "(random 8 KB reads)");
    std::printf("%-12s %18s %18s\n", "Access Type",
                "Measured (GB/s)", "Paper (GB/s)");
    const double paper[] = {1.6, 2.4, 3.4, 6.5};
    for (std::size_t i = 0; i < results.size(); ++i)
        std::printf("%-12s %18.2f %18.1f\n",
                    results[i].name.c_str(), results[i].gbps,
                    paper[i]);
    std::printf("\nShape checks: Host-Local is PCIe-capped; "
                "ISP-Local reaches both\ncards' full 2.4 GB/s; "
                "ISP-2Nodes is capped by the single 8.2 Gb/s\nlink "
                "(local 2.4 + remote ~1.0); ISP-3Nodes adds two "
                "2-link remotes\n(local 2.4 + 4 x ~1.0).\n");

    bench::JsonCounters counters;
    for (const auto &r : results)
        counters.emplace_back(r.name + "_gbps", r.gbps);
    bench::writeJson("BENCH_fig13.json", counters);
}

void
BM_Fig13Bandwidth(benchmark::State &state)
{
    for (auto _ : state) {
        results.clear();
        runAll();
    }
    for (const auto &r : results)
        state.counters[r.name] = r.gbps;
}

BENCHMARK(BM_Fig13Bandwidth)->Iterations(1)
    ->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (results.empty())
        runAll();
    printTable();
    return 0;
}
