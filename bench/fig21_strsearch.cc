/**
 * @file
 * Reproduces Figure 21: string search bandwidth and host CPU
 * utilization (paper section 7.3).
 *
 *   Flash/ISP      in-store Morris-Pratt engines at flash bandwidth,
 *                  nearly zero host CPU
 *   Flash/SW grep  software grep on an SSD: storage-bound, high CPU
 *   HDD/SW grep    software grep on disk: disk-bound, modest CPU
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/text.hh"
#include "baseline/hdd.hh"
#include "baseline/ssd.hh"
#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "host/host_cpu.hh"
#include "isp/string_search.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;
using sim::Tick;

namespace {

struct Result
{
    std::string name;
    double mbps;
    double cpuPercent;
};

std::vector<Result> results;

constexpr std::uint64_t kHaystackPages = 8192; // 64 MB at 8 KB pages

/** ISP search over one full-speed flash card. */
Result
runIspSearch()
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::line(2);
    core::Cluster cluster(sim, params);
    auto &node = cluster.node(0);
    const auto &geo = params.node.geometry;

    // Build the haystack file: pages preloaded into the store (a
    // prior load phase), published to the flash server's ATU.
    auto corpus = analytics::makeCorpus(
        std::uint64_t(kHaystackPages) * geo.pageSize / 64,
        "N33dle?", 64, 41);
    // Replicate the corpus chunk across the full haystack so the
    // dataset is large without O(file) setup cost dominating.
    std::vector<flash::Address> addrs;
    auto &store = node.card(0).nand().store();
    std::uint64_t chunk_pages = corpus.text.size() / geo.pageSize;
    for (std::uint64_t p = 0; p < kHaystackPages; ++p) {
        flash::Address a = flash::Address::fromStriped(geo, p);
        addrs.push_back(a);
        if (p < chunk_pages) {
            flash::PageBuffer page(
                corpus.text.begin() +
                    long(p * geo.pageSize),
                corpus.text.begin() +
                    long((p + 1) * geo.pageSize));
            if (store.program(a, std::move(page)) !=
                flash::Status::Ok)
                sim::fatal("corpus preload program failed");
        }
    }
    node.ispServer(0).defineHandle(5, addrs);

    isp::StringSearchEngine engine(sim, node.ispServer(0));
    node.cpu().resetAccounting();
    // Host involvement: one setup (needle + MP constants over DMA).
    node.cpu().execute(node.software().requestSetup, [] {});

    Tick finish = 0;
    std::uint64_t bytes = std::uint64_t(kHaystackPages) *
        geo.pageSize;
    engine.search(5, bytes, geo.pageSize, "N33dle?",
                  [&](isp::SearchResult r) {
        finish = sim.now();
        benchmark::DoNotOptimize(r.positions.size());
    });
    sim.run();

    Result res;
    res.name = "Flash/ISP";
    res.mbps = sim::bytesPerSec(bytes, finish) / 1e6;
    // CPU reported per core (top-style), as in the paper's figure.
    res.cpuPercent = 100.0 * node.cpu().utilization() *
        node.cpu().cores();
    return res;
}

/** Software grep streaming from a device model. */
template <typename Device>
Result
runSwGrep(const std::string &name, Device &dev,
          sim::Simulator &sim, host::HostCpu &cpu,
          const host::SoftwareParams &sw)
{
    const std::uint32_t page = 8192;
    const std::uint64_t pages = 2048;
    Tick finish = 0;
    auto remaining = std::make_shared<std::uint64_t>(pages);

    // grep pipelines reads ahead (kernel readahead) while the CPU
    // chews the previous chunk; model 4 outstanding reads.
    bench::Window::run(
        pages, 4,
        [&](std::uint64_t i, std::function<void()> done) {
            dev.read(i, page, [&, done]() {
                cpu.execute(sw.grepComputePerPage, [&, done]() {
                    if (--*remaining == 0)
                        finish = sim.now();
                    done();
                });
            });
        });
    sim.run();

    Result res;
    res.name = name;
    res.mbps = sim::bytesPerSec(pages * page, finish) / 1e6;
    // CPU reported per core (top-style), as in the paper's figure.
    res.cpuPercent = 100.0 * cpu.utilization() * cpu.cores();
    return res;
}

void
runAll()
{
    results.push_back(runIspSearch());
    {
        sim::Simulator sim;
        host::HostCpu cpu(sim, 24);
        baseline::OffTheShelfSsd ssd(sim, baseline::SsdParams{});
        results.push_back(runSwGrep("Flash/SW Grep", ssd, sim, cpu,
                                    host::SoftwareParams{}));
    }
    {
        sim::Simulator sim;
        host::HostCpu cpu(sim, 24);
        baseline::HardDisk hdd(sim, baseline::HddParams{});
        results.push_back(runSwGrep("HDD/SW Grep", hdd, sim, cpu,
                                    host::SoftwareParams{}));
    }
}

void
printTable()
{
    bench::banner("Figure 21: string search bandwidth and CPU "
                  "utilization");
    std::printf("%-14s %18s %12s\n", "Search Method",
                "Bandwidth (MB/s)", "Host CPU %");
    for (const auto &r : results)
        std::printf("%-14s %18.0f %12.1f\n", r.name.c_str(), r.mbps,
                    r.cpuPercent);
    std::printf("\nPaper: ISP searches at 1.1 GB/s (92%% of one "
                "card's sequential\nbandwidth) with almost no host "
                "CPU; SSD grep is storage-bound at 65%%\nCPU; HDD "
                "grep is 7.5x slower than the ISP at 13%% CPU.\n");
    std::printf("Measured: ISP/HDD = %.1fx; only match locations "
                "(0.01%% of the file)\nreturn to the server.\n",
                results[0].mbps / results[2].mbps);
}

void
BM_Fig21(benchmark::State &state)
{
    for (auto _ : state) {
        results.clear();
        runAll();
    }
    for (const auto &r : results)
        state.counters[r.name + "_MBps"] = r.mbps;
}

BENCHMARK(BM_Fig21)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (results.empty())
        runAll();
    printTable();
    return 0;
}
