/**
 * @file
 * Ablation: in-flight command depth (paper section 3.1.1: "to
 * saturate the bandwidth of the flash device, multiple commands must
 * be in-flight at the same time, since flash operations can have
 * latencies of 50 us or more").
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using sim::Tick;

namespace {

struct Point
{
    unsigned window;
    double gbps;
};

std::vector<Point> points;

double
measure(unsigned window)
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::line(2);
    core::Cluster cluster(sim, params);
    const auto &geo = params.node.geometry;
    sim::Rng rng(3);
    const std::uint64_t reads = 8000;
    Tick last = 0;

    bench::Window::run(
        reads, window,
        [&](std::uint64_t i, std::function<void()> done) {
            flash::Address addr = flash::Address::fromLinear(
                geo, rng.below(geo.pages()));
            cluster.node(0).ispReadLocal(
                unsigned(i & 1), addr,
                [&, done](flash::PageBuffer) {
                last = sim.now();
                done();
            });
        });
    sim.run();
    return sim::bytesPerSec(reads * geo.pageSize, last) / 1e9;
}

void
runAll()
{
    for (unsigned w : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u})
        points.push_back({w, measure(w)});
}

void
printTable()
{
    bench::banner("Ablation: in-flight commands vs. card "
                  "bandwidth (random 8 KB reads, both cards)");
    std::printf("%12s %14s %14s\n", "In-flight", "GB/s",
                "%% of 2.4 GB/s");
    for (const auto &p : points)
        std::printf("%12u %14.2f %13.0f%%\n", p.window, p.gbps,
                    100.0 * p.gbps / 2.4);
    std::printf("\nOne outstanding read leaves the card ~99%% idle "
                "(50 us sense + bus\ntransfer per page); saturating "
                "2 cards x 8 buses needs dozens of\ntags -- exactly "
                "why the controller exposes a deeply tagged "
                "interface.\n");
}

void
BM_AblationTags(benchmark::State &state)
{
    auto window = unsigned(state.range(0));
    double gbps = 0;
    for (auto _ : state)
        gbps = measure(window);
    state.counters["gbps"] = gbps;
}

BENCHMARK(BM_AblationTags)->Arg(1)->Arg(8)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    runAll();
    printTable();
    return 0;
}
