/**
 * @file
 * Shared machinery for the nearest-neighbor benches (Figures 16-19):
 * the same LSH-style workload measured on the BlueDBM ISP (full and
 * throttled), on host software over DRAM/SSD/disk, and on host
 * software driving a throttled BlueDBM.
 *
 * Throughput unit everywhere: 8 KB hamming comparisons per second
 * (the paper's "Throughput" axis; its baseline is 320K/s at the full
 * 2.4 GB/s of one node's flash).
 */

#ifndef BLUEDBM_BENCH_NN_COMMON_HH
#define BLUEDBM_BENCH_NN_COMMON_HH

#include <functional>
#include <memory>

#include "baseline/ram_cloud.hh"
#include "baseline/ssd.hh"
#include "core/cluster.hh"
#include "isp/nearest_neighbor.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace bench {

using namespace bluedbm;

/** Comparisons per ISP measurement run. */
constexpr std::uint64_t kIspComparisons = 20000;
/** Items per host-side measurement run. */
constexpr std::uint64_t kHostItems = 4000;

/**
 * In-store NN throughput on one node whose flash is scaled by
 * @p throttle (1.0 = full 2.4 GB/s, 0.25 = the paper's 600 MB/s
 * throttled configuration).
 */
inline double
ispNnThroughput(double throttle)
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::line(2);
    params.node.timing.busBytesPerSec *= throttle;
    core::Cluster cluster(sim, params);
    const auto &geo = params.node.geometry;

    sim::Rng rng(11);
    std::vector<core::GlobalAddress> candidates;
    candidates.reserve(kIspComparisons);
    for (std::uint64_t i = 0; i < kIspComparisons; ++i) {
        core::GlobalAddress ga;
        ga.node = 0;
        ga.card = std::uint8_t(i & 1);
        ga.addr = flash::Address::fromLinear(geo,
                                             rng.below(geo.pages()));
        candidates.push_back(ga);
    }

    isp::NearestNeighborEngine engine(cluster.node(0), 256);
    sim::Tick finish = 0;
    engine.query(flash::PageBuffer(geo.pageSize, 0x55),
                 std::move(candidates), [&](isp::NnResult r) {
        finish = sim.now();
        if (r.comparisons != kIspComparisons)
            sim::panic("lost comparisons");
    });
    sim.run();
    return double(kIspComparisons) / sim::ticksToSec(finish);
}

/**
 * Host software NN over (mostly) DRAM with optional paging misses
 * (the ram-cloud configurations of figures 16 and 17).
 */
inline double
dramNnThroughput(unsigned threads, double miss_fraction,
                 sim::Tick miss_penalty)
{
    sim::Simulator sim;
    host::HostCpu cpu(sim, 24);
    baseline::RamCloudParams p;
    p.missFraction = miss_fraction;
    p.missPenalty = miss_penalty;
    baseline::RamCloudWorkload work(sim, cpu, p, 13);
    sim::Tick finish = 0;
    work.run(threads, kHostItems, [&] { finish = sim.now(); });
    sim.run();
    return double(kHostItems) / sim::ticksToSec(finish);
}

/**
 * Host software NN reading candidates from the off-the-shelf SSD
 * (H-RFlash), optionally with accesses artificially arranged to be
 * sequential (H-SFlash) -- figure 18.
 */
inline double
ssdNnThroughput(unsigned threads, bool sequential)
{
    sim::Simulator sim;
    host::HostCpu cpu(sim, 24);
    baseline::OffTheShelfSsd ssd(sim, baseline::SsdParams{});
    host::SoftwareParams sw;
    sim::Rng rng(17);

    sim::Tick finish = 0;
    std::uint64_t seq_lba = 0;
    std::uint64_t remaining_start = kHostItems;
    auto remaining_finish =
        std::make_shared<std::uint64_t>(kHostItems);

    std::function<void()> worker = [&, remaining_finish]() mutable {
        if (remaining_start == 0)
            return;
        --remaining_start;
        // Kernel block layer, then the device, then the compare.
        cpu.execute(sw.kernelBlockIo, [&, remaining_finish]() {
            std::uint64_t lba = sequential
                ? seq_lba++
                : rng.below(1ull << 24) * 2;
            ssd.read(lba, 8192, [&, remaining_finish]() {
                cpu.execute(sw.hammingComputePerPage,
                            [&, remaining_finish]() {
                    if (--*remaining_finish == 0) {
                        finish = sim.now();
                        return;
                    }
                    worker();
                });
            });
        });
    };
    for (unsigned t = 0; t < threads; ++t)
        worker();
    sim.run();
    return double(kHostItems) / sim::ticksToSec(finish);
}

/**
 * Host software NN over the (throttled) BlueDBM device itself
 * (BlueDBM+SW in figure 19): every candidate crosses PCIe and the
 * software stack before the host compares it.
 */
inline double
hostSwNnThroughput(unsigned threads, double throttle)
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::line(2);
    params.node.timing.busBytesPerSec *= throttle;
    core::Cluster cluster(sim, params);
    const auto &geo = params.node.geometry;
    auto &node = cluster.node(0);
    sim::Rng rng(19);

    sim::Tick finish = 0;
    std::uint64_t remaining_start = kHostItems;
    auto remaining_finish =
        std::make_shared<std::uint64_t>(kHostItems);

    std::function<void()> worker = [&, remaining_finish]() mutable {
        if (remaining_start == 0)
            return;
        --remaining_start;
        flash::Address addr = flash::Address::fromLinear(
            geo, rng.below(geo.pages()));
        node.hostReadLocal(
            unsigned(remaining_start & 1), addr,
            [&, remaining_finish](flash::PageBuffer) {
            node.cpu().execute(
                node.software().hammingComputePerPage,
                [&, remaining_finish]() {
                if (--*remaining_finish == 0) {
                    finish = sim.now();
                    return;
                }
                worker();
            });
        });
    };
    // Each thread overlaps one read with the previous compare
    // (readahead), i.e. two request chains per thread.
    for (unsigned t = 0; t < threads * 2; ++t)
        worker();
    sim.run();
    return double(kHostItems) / sim::ticksToSec(finish);
}

} // namespace bench

#endif // BLUEDBM_BENCH_NN_COMMON_HH
