/**
 * @file
 * Reproduces Figure 11: integrated network bandwidth and latency
 * versus hop count, plus the section-6.3 ring arithmetic (20-node
 * ring: ~5 hops / 2.5 us average, 32.8 Gb/s ring throughput).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "net/network.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using net::Message;
using net::StorageNetwork;
using net::Topology;
using sim::Tick;

namespace {

struct Point
{
    unsigned hops;
    double gbps;
    double latencyUs;
};

/** Stream messages across @p hops hops; measure bw and latency. */
Point
measure(unsigned hops)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::line(hops + 1),
                       StorageNetwork::Params{});

    // Latency: one 16-byte packet (a 128-bit flit) on an idle net.
    Tick lat = 0;
    net.endpoint(net::NodeId(hops), 1)
        .setReceiveHandler([&](Message) { lat = sim.now(); });
    net.endpoint(0, 1).send(net::NodeId(hops), 16, {});
    sim.run();
    Tick single_latency = lat;

    // Bandwidth: a single stream of 2 KB messages.
    const int messages = 5000;
    const std::uint32_t bytes = 2048;
    int got = 0;
    Tick last = 0;
    net.endpoint(net::NodeId(hops), 2)
        .setReceiveHandler([&](Message) {
        ++got;
        last = sim.now();
    });
    Tick start = sim.now();
    for (int i = 0; i < messages; ++i)
        net.endpoint(0, 2).send(net::NodeId(hops), bytes, {});
    sim.run();

    Point p;
    p.hops = hops;
    p.gbps = sim::bytesPerSec(std::uint64_t(messages) * bytes,
                              last - start) * 8 / 1e9;
    p.latencyUs = sim::ticksToUs(single_latency) / hops;
    (void)got;
    return p;
}

std::vector<Point> results;

void
printTable()
{
    bench::banner("Figure 11: integrated network performance");
    std::printf("%6s %18s %18s\n", "Hops", "Bandwidth (Gb/s)",
                "Latency (us/hop)");
    for (const auto &p : results)
        std::printf("%6u %18.2f %18.3f\n", p.hops, p.gbps,
                    p.latencyUs);
    std::printf("\nPaper: ~8.2 Gb/s per stream across 1-5 hops, "
                "0.48 us per hop,\nprotocol overhead under 18%% of "
                "the 10 Gb/s physical rate.\n");

    // Section 6.3 secondary claims.
    sim::Simulator sim;
    StorageNetwork ring(sim, Topology::ring(20, 4),
                        StorageNetwork::Params{});
    double total_hops = 0;
    for (net::NodeId dst = 1; dst < 20; ++dst)
        total_hops += ring.routeHops(1, 0, dst);
    double avg_hops = total_hops / 19.0;
    double per_hop_us = results.empty() ? 0.48
                                        : results.front().latencyUs;
    double lane_gbps = results.empty() ? 8.2 : results.front().gbps;
    std::printf("\n20-node ring, 4 lanes each way (section 6.3):\n");
    std::printf("  average distance: %.1f hops -> %.2f us "
                "(paper: 5 hops, 2.5 us)\n",
                avg_hops, avg_hops * per_hop_us);
    std::printf("  ring throughput: 4 lanes x %.1f Gb/s = %.1f Gb/s "
                "(paper: 32.8 Gb/s)\n",
                lane_gbps, 4 * lane_gbps);
    std::printf("  network adds %.0f%% to a 50 us flash access at "
                "4 hops (paper: <= 5%%)\n",
                100.0 * (4 * per_hop_us) / 50.0);
}

void
BM_Fig11Network(benchmark::State &state)
{
    auto hops = unsigned(state.range(0));
    Point p{};
    for (auto _ : state)
        p = measure(hops);
    state.counters["gbps"] = p.gbps;
    state.counters["us_per_hop"] = p.latencyUs;
    results.push_back(p);
}

BENCHMARK(BM_Fig11Network)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
