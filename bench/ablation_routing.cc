/**
 * @file
 * Ablation: per-endpoint deterministic routing (paper section
 * 3.2.3). Spreading endpoints across the four parallel ring lanes is
 * what lets the ring sustain 4x the single-lane throughput; pinning
 * all traffic to one endpoint (= one path) forfeits it.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "net/network.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using net::Message;
using net::StorageNetwork;
using net::Topology;
using sim::Tick;

namespace {

/** Aggregate throughput node0 -> node1 using @p endpoints streams. */
double
measure(unsigned endpoints)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::ring(4, 4),
                       StorageNetwork::Params{});
    const int per_stream = 2000;
    const std::uint32_t bytes = 2048;
    Tick last = 0;
    int got = 0;
    for (unsigned e = 1; e <= endpoints; ++e) {
        net.endpoint(1, net::EndpointId(e))
            .setReceiveHandler([&](Message) {
            ++got;
            last = sim.now();
        });
    }
    for (int i = 0; i < per_stream; ++i) {
        for (unsigned e = 1; e <= endpoints; ++e)
            net.endpoint(0, net::EndpointId(e)).send(1, bytes, {});
    }
    sim.run();
    return sim::bytesPerSec(
        std::uint64_t(got) * bytes, last) * 8 / 1e9;
}

double one_ep = 0, four_ep = 0;

void
runAll()
{
    one_ep = measure(1);
    four_ep = measure(4);
}

void
printTable()
{
    bench::banner("Ablation: endpoint spreading across parallel "
                  "lanes (ring, 4 lanes)");
    std::printf("%-28s %14s\n", "Configuration", "Gb/s");
    std::printf("%-28s %14.1f\n", "1 endpoint (1 path)", one_ep);
    std::printf("%-28s %14.1f\n", "4 endpoints (spread)", four_ep);
    std::printf("\nSpreading gain: %.1fx (expected ~4x: each "
                "endpoint's deterministic\nroute pins it to one "
                "lane, different endpoints take different "
                "lanes).\nPer-endpoint ordering is preserved either "
                "way -- this is how BlueDBM\ngets multipath "
                "bandwidth without completion buffers.\n",
                four_ep / one_ep);
}

void
BM_AblationRouting(benchmark::State &state)
{
    for (auto _ : state)
        runAll();
    state.counters["one_endpoint_gbps"] = one_ep;
    state.counters["four_endpoints_gbps"] = four_ep;
}

BENCHMARK(BM_AblationRouting)->Iterations(1)
    ->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (one_ep == 0)
        runAll();
    printTable();
    return 0;
}
