/**
 * @file
 * Ablation: the simulation kernel's hot path.
 *
 * Compares the pooled event queue (slab slots + ladder queue +
 * generation handles + InlineFunction callbacks) against the legacy
 * implementation it replaced -- `std::function` entries in a
 * `std::priority_queue` with two `unordered_set`s for pending /
 * cancelled bookkeeping -- which is reproduced below verbatim as the
 * checked-in baseline. Also measures the message path end to end
 * (pooled PayloadRef payloads over the storage network).
 *
 * Workloads:
 *  - throughput: a window of self-rescheduling events (the shape of
 *    flash timings, flit hops and credit returns), captures of
 *    this-pointer + two integers;
 *  - cancel: schedule/cancel churn (the shape of timeout guards);
 *  - messages: endpoint-to-endpoint sends across one serial lane;
 *  - cluster: 4..100-node rings streaming antipodal traffic, the
 *    scale point the ladder queue and next-hop routing exist for.
 *
 * Emits BENCH_kernel.json so the perf trajectory is tracked from
 * this PR onward. The pooled queue must hold >= 3x legacy events/sec.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "sim/event_queue.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"

using namespace bluedbm;
using sim::Tick;

namespace {

// ---------------------------------------------------------------- //
// Checked-in baseline: the event queue this PR replaced.
// ---------------------------------------------------------------- //

/**
 * The pre-refactor EventQueue, kept as the ablation baseline:
 * type-erased `std::function` callbacks (heap-allocated beyond 16
 * bytes of capture), a binary `priority_queue` of fat entries, hash
 * sets for pending/cancelled ids, and a full Entry *copy* per pop.
 */
class LegacyEventQueue
{
  public:
    using EventId = std::uint64_t;

    EventId
    schedule(Tick when, std::function<void()> fn)
    {
        EventId id = nextId_++;
        heap_.push(Entry{when, id, std::move(fn)});
        pending_.insert(id);
        ++liveEvents_;
        return id;
    }

    bool
    cancel(EventId id)
    {
        if (pending_.erase(id) == 0)
            return false;
        cancelled_.insert(id);
        --liveEvents_;
        return true;
    }

    Tick now() const { return curTick_; }
    bool empty() const { return liveEvents_ == 0; }
    std::uint64_t executed() const { return executed_; }

    bool
    step()
    {
        skipCancelled();
        if (heap_.empty())
            return false;
        Entry e = heap_.top(); // the copy the refactor removed
        heap_.pop();
        pending_.erase(e.id);
        curTick_ = e.when;
        --liveEvents_;
        ++executed_;
        e.fn();
        return true;
    }

    void
    run()
    {
        while (step()) {
        }
    }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    void
    skipCancelled()
    {
        while (!heap_.empty()) {
            auto it = cancelled_.find(heap_.top().id);
            if (it == cancelled_.end())
                return;
            cancelled_.erase(it);
            heap_.pop();
        }
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;
    std::unordered_set<EventId> cancelled_;
    Tick curTick_ = 0;
    EventId nextId_ = 1;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
};

// ---------------------------------------------------------------- //
// Workloads (templated over the queue under test)
// ---------------------------------------------------------------- //

/** Steady-state pending events: the shape of a 20+ node cluster where
 * every node keeps thousands of flash, flit and credit timers in
 * flight (the ROADMAP's target scale). */
constexpr std::uint64_t kWindow = 262144;
constexpr std::uint64_t kEvents = 4000000; //!< fired per run

/** Cheap deterministic tick spread (flash reads vs flit hops span
 * two orders of magnitude, so heap inserts land everywhere). */
constexpr std::uint64_t
spreadTicks(std::uint64_t x)
{
    return 1 + (x * 2654435761u) % 8192;
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Self-rescheduling event window: kWindow events in flight, each
 * callback reschedules itself at now + a wide spread until kEvents
 * total have fired. Each event carries a completion *continuation*
 * (a std::function moved from hop to hop), exactly like the done
 * callbacks every flash/network path in this codebase threads through
 * its timing events. The legacy queue deep-copies that continuation
 * on every Entry copy in step() -- one extra allocation per event on
 * top of the schedule-time one -- while the pooled queue only ever
 * moves it inside the event slot.
 */
template <typename Queue>
double
runThroughput()
{
    struct Ctx
    {
        Queue q;
        std::uint64_t fired = 0;
    } ctx;

    struct Chain
    {
        Ctx *ctx;
        std::function<void()> done;
        std::uint64_t lane;

        void
        operator()()
        {
            Ctx *c = ctx;
            if (++c->fired + kWindow > kEvents) {
                if (done)
                    done();
                return;
            }
            c->q.schedule(c->q.now() + spreadTicks(lane + c->fired),
                          Chain{c, std::move(done), lane});
        }
    };

    std::uint64_t completed = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kWindow; ++i) {
        std::uint64_t cookie[3] = {i, i ^ 0x9e3779b9u, i + 17};
        ctx.q.schedule(spreadTicks(i),
                       Chain{&ctx,
                             [&completed, cookie]() {
                                 completed += cookie[0] & 1;
                             },
                             i});
    }
    ctx.q.run();
    double sec = secondsSince(t0);
    benchmark::DoNotOptimize(completed);
    return double(ctx.q.executed()) / sec;
}

/**
 * The pooled queue again, but every event also performs the tracer
 * touches an instrumented hop makes when tracing is off: a
 * beginTrace that early-outs on the disabled check plus
 * beginSpan/mark/endSpan on the untraced (0) handle it returned --
 * exactly the per-hop cost the kv/flash request paths now pay for
 * the unsampled majority of operations. ci.sh gates the slowdown
 * versus events_per_sec_pooled at < 2%.
 */
double
runThroughputTracedOff()
{
    struct Ctx
    {
        sim::EventQueue q;
        sim::Tracer tracer; // default Params: disabled
        std::uint64_t fired = 0;
    } ctx;

    struct Chain
    {
        Ctx *ctx;
        std::function<void()> done;
        std::uint64_t lane;

        void
        operator()()
        {
            Ctx *c = ctx;
            Tick now = c->q.now();
            std::uint64_t h =
                c->tracer.beginTrace("ev", now, lane);
            std::uint64_t s = c->tracer.beginSpan(h, "hop", now);
            c->tracer.mark(s, "fire", now);
            c->tracer.endSpan(s, now);
            c->tracer.endTrace(h, now);
            if (++c->fired + kWindow > kEvents) {
                if (done)
                    done();
                return;
            }
            c->q.schedule(now + spreadTicks(lane + c->fired),
                          Chain{c, std::move(done), lane});
        }
    };

    std::uint64_t completed = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kWindow; ++i) {
        std::uint64_t cookie[3] = {i, i ^ 0x9e3779b9u, i + 17};
        ctx.q.schedule(spreadTicks(i),
                       Chain{&ctx,
                             [&completed, cookie]() {
                                 completed += cookie[0] & 1;
                             },
                             i});
    }
    ctx.q.run();
    double sec = secondsSince(t0);
    benchmark::DoNotOptimize(completed);
    return double(ctx.q.executed()) / sec;
}

/**
 * Cancellation churn: for every fired event, one extra event is
 * scheduled and cancelled (the timeout-guard pattern). Exercises the
 * hash sets of the legacy queue vs the generation bump of the pooled
 * one.
 */
template <typename Queue>
double
runCancelChurn()
{
    struct Ctx
    {
        Queue q;
        std::uint64_t fired = 0;
    } ctx;

    struct Chain
    {
        Ctx *ctx;
        std::uint64_t lane;

        void
        operator()() const
        {
            Ctx *c = ctx;
            if (++c->fired + kWindow > kEvents / 2)
                return;
            auto guard =
                c->q.schedule(c->q.now() + 1000, Chain{c, lane});
            c->q.schedule(c->q.now() + 1 + lane % 7, *this);
            c->q.cancel(guard);
        }
    };

    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kWindow; ++i)
        ctx.q.schedule(1 + i % 7, Chain{&ctx, i});
    ctx.q.run();
    double sec = secondsSince(t0);
    return double(ctx.q.executed()) / sec;
}

/** The shape of a real protocol header: too big for PayloadRef's
 * 16-byte inline buffer, so every send rides a recycled slab slot of
 * the payload pool (like the kv/flash request structs do). */
struct BenchRequest
{
    std::uint64_t seq;
    std::uint64_t key;
    std::uint64_t cookie;
};

/**
 * Message path: two nodes, one cable; kMessages small requests pumped
 * through an endpoint pair with the receiver draining at line rate.
 * Counts sends per wall-clock second across the whole stack (payload
 * boxing, lane credits, cut-through wire model, delivery). Payloads
 * are 24-byte protocol structs, so the run also reports the payload
 * pool's slab high-water mark (slots only ever grow to the maximum
 * simultaneously-in-flight count).
 */
double
runMessages(bench::JsonCounters &out)
{
    constexpr std::uint64_t kMessages = 300000;
    sim::Simulator sim;
    net::StorageNetwork net(sim, net::Topology::line(2));
    std::uint64_t received = 0;
    net.endpoint(1, 2).setReceiveHandler([&](net::Message msg) {
        benchmark::DoNotOptimize(msg.payload.take<BenchRequest>().seq);
        ++received;
    });

    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t sent = 0;
    std::function<void()> pump = [&]() {
        // Keep a batch in flight; reschedule while traffic remains.
        for (unsigned b = 0; b < 64 && sent < kMessages; ++b, ++sent)
            net.endpoint(0, 2).send(
                1, 256,
                BenchRequest{sent, sent * 2654435761u, ~sent});
        if (sent < kMessages)
            sim.scheduleAfter(sim::nsToTicks(300), pump);
    };
    pump();
    sim.run();
    double sec = secondsSince(t0);

    if (received != kMessages)
        sim::panic("message bench lost traffic: %llu of %llu",
                   static_cast<unsigned long long>(received),
                   static_cast<unsigned long long>(kMessages));
    if (net.payloadPool().slotCount() == 0)
        sim::panic("payload pool never engaged: the bench payload "
                   "must exceed the inline buffer");
    out.emplace_back("message_payload_pool_slots",
                     double(net.payloadPool().slotCount()));
    return double(kMessages) / sec;
}

/**
 * Cluster-scale kernel sweep: ring clusters (the paper's 4-lane ring
 * at 20+ nodes) where every node streams antipodal traffic -- the
 * worst-case hop count -- through the full network stack. Reports,
 * per scale point, aggregate wall-clock event throughput, event
 * density per simulated second, and the resident routing-table
 * footprint. The 100-node point is the scale target the ladder event
 * queue and the next-hop routing tables exist for; ci.sh gates the
 * density trajectory monotone in cluster size and the 100-node
 * routing footprint compressed.
 */
void
runClusterSweep(bench::JsonCounters &out)
{
    constexpr std::uint64_t kPerNode = 1000;
    for (unsigned nodes : {4u, 8u, 20u, 100u}) {
        sim::Simulator sim;
        net::StorageNetwork net(
            sim, net::Topology::ring(nodes, nodes >= 20 ? 4 : 2));
        std::uint64_t received = 0;
        for (unsigned nd = 0; nd < nodes; ++nd) {
            // End-to-end credits bound in-flight bytes well below the
            // lane buffers: everyone streaming at once must not wedge
            // the ring's credit chain into a circular wait.
            net.endpoint(nd, 2).enableEndToEnd(8);
            net.endpoint(nd, 2).setReceiveHandler(
                [&received](net::Message msg) {
                    benchmark::DoNotOptimize(msg.bytes);
                    ++received;
                });
        }

        auto t0 = std::chrono::steady_clock::now();
        std::vector<std::uint64_t> sentPer(nodes, 0);
        std::vector<std::function<void()>> pumps(nodes);
        for (unsigned nd = 0; nd < nodes; ++nd) {
            pumps[nd] = [&, nd]() {
                std::uint64_t &s = sentPer[nd];
                for (unsigned b = 0; b < 16 && s < kPerNode; ++b, ++s)
                    net.endpoint(nd, 2).send(
                        (nd + nodes / 2) % nodes, 256,
                        BenchRequest{s, nd, s ^ nd});
                if (s < kPerNode)
                    sim.scheduleAfter(sim::nsToTicks(300),
                                      [&, nd]() { pumps[nd](); });
            };
        }
        for (unsigned nd = 0; nd < nodes; ++nd)
            pumps[nd]();
        sim.run();
        double wall = secondsSince(t0);

        if (received != nodes * kPerNode)
            sim::panic("cluster sweep lost traffic at %u nodes", nodes);
        double sim_sec = double(sim.now()) * 1e-12; // ticks are ps
        char name[64];
        std::snprintf(name, sizeof(name), "cluster_n%u_events_per_sec",
                      nodes);
        out.emplace_back(name,
                         double(sim.eventsExecuted()) / wall);
        std::snprintf(name, sizeof(name),
                      "cluster_n%u_sim_events_per_sec", nodes);
        out.emplace_back(name,
                         double(sim.eventsExecuted()) / sim_sec);
        std::snprintf(name, sizeof(name), "routing_table_bytes_n%u",
                      nodes);
        out.emplace_back(name, double(net.routingTableBytes()));
    }
}

bench::JsonCounters gCounters;

void
runAll()
{
    gCounters.clear();

    // Best-of-3, interleaved: the tracing-overhead ratio gates at
    // 2%, far below run-to-run interference on a shared machine.
    // Interference only ever slows a run down, so the max over
    // interleaved repetitions compares the variants' clean speeds.
    double legacy_tp = 0.0, pooled_tp = 0.0, traced_off_tp = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
        if (rep < 3)
            legacy_tp = std::max(legacy_tp,
                                 runThroughput<LegacyEventQueue>());
        pooled_tp =
            std::max(pooled_tp, runThroughput<sim::EventQueue>());
        traced_off_tp =
            std::max(traced_off_tp, runThroughputTracedOff());
    }
    double legacy_cc = runCancelChurn<LegacyEventQueue>();
    double pooled_cc = runCancelChurn<sim::EventQueue>();

    gCounters.emplace_back("events_per_sec_legacy", legacy_tp);
    gCounters.emplace_back("events_per_sec_pooled", pooled_tp);
    gCounters.emplace_back("events_speedup", pooled_tp / legacy_tp);
    gCounters.emplace_back("events_per_sec_traced_off",
                           traced_off_tp);
    gCounters.emplace_back("tracing_off_ratio",
                           pooled_tp > 0 ? traced_off_tp / pooled_tp
                                         : 0.0);
    gCounters.emplace_back("cancel_events_per_sec_legacy", legacy_cc);
    gCounters.emplace_back("cancel_events_per_sec_pooled", pooled_cc);
    gCounters.emplace_back("cancel_speedup", legacy_cc > 0
                               ? pooled_cc / legacy_cc
                               : 0.0);

    double msgs = runMessages(gCounters);
    gCounters.emplace_back("messages_per_sec", msgs);

    runClusterSweep(gCounters);
}

void
printTable()
{
    bench::banner("Kernel ablation: pooled event queue vs legacy "
                  "std::function queue");
    std::printf("%-32s %14s\n", "Counter", "Value");
    for (const auto &[name, value] : gCounters)
        std::printf("%-32s %14.3g\n", name.c_str(), value);
    std::printf("\nTarget: events_speedup >= 3.0 (zero allocations "
                "per event in steady\nstate; see "
                "src/sim/event_queue.hh for the design).\n");
    bench::writeJson("BENCH_kernel.json", gCounters);
}

void
BM_KernelAblation(benchmark::State &state)
{
    for (auto _ : state)
        runAll();
    for (const auto &[name, value] : gCounters)
        state.counters[name] = value;
}

BENCHMARK(BM_KernelAblation)->Iterations(1)
    ->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (gCounters.empty())
        runAll();
    printTable();
    return 0;
}
