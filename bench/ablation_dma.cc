/**
 * @file
 * Ablation: per-buffer DMA burst FIFOs (paper section 3.3, figure
 * 7). Reads from multiple flash buses arrive interleaved at the DMA
 * engine; without the per-request FIFO vector, the engine
 * head-of-line blocks on whichever buffer's data is late and the
 * PCIe pipe drains.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "host/page_buffers.hh"
#include "host/pcie.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using host::BurstDma;
using host::PcieLink;
using host::PcieParams;
using sim::Tick;

namespace {

/**
 * Emulate 8 flash buses delivering 8 KB pages in 1 KB bursts with
 * jittered inter-burst gaps, fanned across 16 outstanding read
 * buffers, and measure the PCIe-side completion rate.
 */
double
measure(bool per_buffer_fifos)
{
    sim::Simulator sim;
    PcieLink pcie(sim, PcieParams{});
    const std::uint32_t page = 8192, burst = 1024;
    BurstDma dma(sim, pcie, page, burst, per_buffer_fifos);
    sim::Rng rng(5);

    const unsigned buffers = 16;
    const std::uint64_t pages = 2000;
    Tick last = 0;

    bench::Window::run(
        pages, buffers,
        [&](std::uint64_t i, std::function<void()> done) {
            unsigned buffer = unsigned(i % buffers);
            dma.beginRead(buffer, [&, done]() {
                last = sim.now();
                done();
            });
            // The flash side: the page's NAND sense finishes after a
            // random 0-100 us (different chips, different queueing),
            // then its 8 bursts pace in at the bus transfer rate.
            Tick t = sim.now() +
                sim::Tick(rng.below(sim::usToTicks(100)));
            for (unsigned b = 0; b < page / burst; ++b) {
                t += sim::usToTicks(6.8);
                sim.scheduleAt(t, [&dma, buffer, burst]() {
                    dma.addData(buffer, burst);
                });
            }
        });
    sim.run();
    return sim::bytesPerSec(pages * page, last) / 1e9;
}

double with_fifos = 0, without_fifos = 0;

void
runAll()
{
    with_fifos = measure(true);
    without_fifos = measure(false);
}

void
printTable()
{
    bench::banner("Ablation: per-buffer DMA burst FIFOs (figure 7)");
    std::printf("%-34s %10s\n", "Configuration", "GB/s");
    std::printf("%-34s %10.2f\n", "per-buffer FIFOs (BlueDBM)",
                with_fifos);
    std::printf("%-34s %10.2f\n", "single FIFO (head-of-line)",
                without_fifos);
    std::printf("\nGain: %.1fx. Interleaved arrivals from parallel "
                "buses stall a single\nFIFO engine; the vector-of-"
                "FIFOs keeps every buffer's bursts eligible\nand "
                "the PCIe link busy.\n",
                with_fifos / without_fifos);
}

void
BM_AblationDma(benchmark::State &state)
{
    for (auto _ : state)
        runAll();
    state.counters["with_fifos_gbps"] = with_fifos;
    state.counters["without_fifos_gbps"] = without_fifos;
}

BENCHMARK(BM_AblationDma)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (with_fifos == 0)
        runAll();
    printTable();
    return 0;
}
