/**
 * @file
 * KV service bench: throughput vs tail latency over the global
 * flash address space (the serving scenario behind figure 17's
 * RAMCloud comparison, with the ROADMAP's 20-node ring as the
 * headline configuration).
 *
 * Three experiments, all YCSB-style 95/5 read/write over 8 KB
 * flash pages with 256-byte values, replication R=2 (write-all /
 * read-one):
 *  - scaling: closed-loop throughput and p50/p99/p99.9 at 4, 8 and
 *    20 nodes (clients scale with nodes; throughput must scale
 *    monotonically);
 *  - skew: Zipfian theta sweep plus uniform at 8 nodes, run both
 *    with and without the hot-key read cache (hot keys concentrate
 *    on few shards; validated cache hits + read coalescing + read
 *    spreading are what keep p99 flat);
 *  - open loop: Poisson arrivals below saturation at 8 nodes,
 *    where queueing delay becomes visible in the tail.
 *
 * Emits BENCH_kv.json. Acceptance: the 20-node run sustains
 * >= 100k ops/s, scaling is monotone 4 -> 8 -> 20, and the cached
 * hot-shard p99 stays several-fold under the uncached one.
 *
 * `--smoke` runs one tiny hot-key config end to end (no JSON): the
 * sanitizer-preset CI gate.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace bluedbm;

namespace {

/** Mid-size card: 1 GB (8 buses x 2 chips x 128 blocks x 64 pages
 * of 8 KB) -- big enough that the cleaner stays idle, small enough
 * to build twenty nodes of it per config. */
flash::Geometry
kvGeometry()
{
    flash::Geometry g;
    g.buses = 8;
    g.chipsPerBus = 2;
    g.blocksPerChip = 128;
    g.pagesPerBlock = 64;
    g.pageSize = 8192;
    return g;
}

struct RunResult
{
    unsigned nodes = 0;
    double theta = 0.0; //!< 0 = uniform
    bool openLoop = false;
    bool cached = true;
    double tput = 0.0;  //!< accepted ops per simulated second
    double p50us = 0.0, p99us = 0.0, p999us = 0.0;
    double readP99us = 0.0, writeP99us = 0.0; //!< tail attribution
    double meanUs = 0.0;
    std::uint64_t rejected = 0;
    std::uint64_t remoteOps = 0, localOps = 0;
    std::uint64_t cacheServed = 0, cacheStale = 0;
    std::uint64_t coalesced = 0, validated = 0;
};

RunResult
runConfig(unsigned nodes, bool zipfian, double theta, bool open_loop,
          double arrivals_per_sec, std::uint64_t total_ops,
          bool cached = true)
{
    sim::Simulator sim;
    core::ClusterParams cp;
    cp.topology = net::Topology::ring(nodes, nodes >= 20 ? 4 : 2);
    cp.node.geometry = kvGeometry();
    cp.node.timing = flash::Timing{}; // paper NAND timing
    cp.node.cards = 2;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.cacheSlots = cached ? 256 : 0;
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);

    workload::WorkloadParams wp;
    wp.keys = 10000;
    wp.valueBytes = 256;
    wp.mix.readFrac = 0.95;
    wp.zipfian = zipfian;
    wp.theta = theta;
    wp.clientsPerNode = 8;
    wp.pipeline = 4;
    wp.client.window = 8;
    wp.client.queueCap = 1024;
    wp.openLoop = open_loop;
    wp.arrivalsPerSec = arrivals_per_sec;
    wp.totalOps = total_ops;
    wp.seed = 99;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    if (!loaded)
        sim::fatal("kv bench preload did not finish");
    bool finished = false;
    engine.run([&]() { finished = true; });
    sim.run();
    if (!finished)
        sim::fatal("kv bench run did not finish");

    RunResult r;
    r.nodes = nodes;
    r.theta = zipfian ? theta : 0.0;
    r.openLoop = open_loop;
    r.cached = cached;
    r.tput = engine.throughputOpsPerSec();
    const auto &lat = engine.allLatency();
    r.p50us = sim::ticksToUs(lat.p50());
    r.p99us = sim::ticksToUs(lat.p99());
    r.p999us = sim::ticksToUs(lat.p999());
    r.readP99us = sim::ticksToUs(engine.readLatency().p99());
    r.writeP99us = sim::ticksToUs(engine.writeLatency().p99());
    r.meanUs = lat.mean() / double(sim::oneUs);
    r.rejected = engine.rejectedOps();
    r.remoteOps = router.remoteOps();
    r.localOps = router.localOps();
    r.cacheServed = router.cacheServedGets();
    r.cacheStale = router.cacheStaleGets();
    for (unsigned n = 0; n < nodes; ++n) {
        r.coalesced += router.shard(net::NodeId(n)).coalescedGets();
        r.validated += router.shard(net::NodeId(n)).validatedGets();
    }
    return r;
}

std::vector<RunResult> scaling;
std::vector<RunResult> skew;
std::vector<RunResult> skewNoCache;
RunResult open_loop_run;

void
runAll()
{
    // Scaling: the headline. 95/5, Zipfian 0.99, closed loop.
    for (unsigned nodes : {4u, 8u, 20u})
        scaling.push_back(runConfig(nodes, true, 0.99, false, 0.0,
                                    3000ull * nodes));

    // Skew sweep at 8 nodes: uniform, then rising Zipfian theta,
    // with the hot-key cache on (default) and off (ablation).
    skew.push_back(runConfig(8, false, 0.0, false, 0.0, 24000));
    for (double theta : {0.5, 0.8, 0.9, 0.99})
        skew.push_back(
            runConfig(8, true, theta, false, 0.0, 24000));
    skewNoCache.push_back(
        runConfig(8, false, 0.0, false, 0.0, 24000, false));
    for (double theta : {0.5, 0.8, 0.9, 0.99})
        skewNoCache.push_back(
            runConfig(8, true, theta, false, 0.0, 24000, false));

    // Open loop at 8 nodes: Poisson arrivals, 64 clients x 2000/s
    // = 128k ops/s offered, well under the closed-loop ceiling.
    open_loop_run = runConfig(8, true, 0.99, true, 2000.0, 24000);
}

void
printTable()
{
    bench::banner("KV service: throughput vs tail latency "
                  "(R=2, 95/5, 256 B values)");
    std::printf("%22s %12s %9s %9s %9s %10s\n", "config",
                "ops/s", "p50(us)", "p99(us)", "p99.9(us)",
                "remote%");
    auto row = [](const std::string &name, const RunResult &r) {
        double remote_frac = 100.0 * double(r.remoteOps) /
            double(r.remoteOps + r.localOps);
        std::printf("%22s %12.0f %9.1f %9.1f %9.1f %9.1f%%\n",
                    name.c_str(), r.tput, r.p50us, r.p99us,
                    r.p999us, remote_frac);
    };
    for (const auto &r : scaling)
        row(std::to_string(r.nodes) + " nodes zipf0.99", r);
    auto skew_label = [](const RunResult &r) {
        return r.theta == 0.0
            ? std::string("uniform")
            : "zipf" + std::to_string(r.theta).substr(0, 4);
    };
    for (const auto &r : skew)
        row("8 nodes " + skew_label(r), r);
    for (const auto &r : skewNoCache)
        row("8n nocache " + skew_label(r), r);
    row("8 nodes open-loop", open_loop_run);
    const auto &head = scaling.back();
    std::printf("\nClosed-loop scaling must be monotone: %.0f -> "
                "%.0f -> %.0f ops/s (target >= 100k at 20 "
                "nodes).\nOpen loop: %llu rejected at admission "
                "of %u offered.\n",
                scaling[0].tput, scaling[1].tput, scaling[2].tput,
                (unsigned long long)open_loop_run.rejected, 24000u);
    std::printf("Hot-key path at 20 nodes: %llu cache-served, "
                "%llu stale-detected, %llu coalesced, %llu "
                "validated at the shards.\n",
                (unsigned long long)head.cacheServed,
                (unsigned long long)head.cacheStale,
                (unsigned long long)head.coalesced,
                (unsigned long long)head.validated);
}

void
BM_KvService(benchmark::State &state)
{
    for (auto _ : state) {
        scaling.clear();
        skew.clear();
        runAll();
    }
    state.counters["tput_20n"] = scaling.back().tput;
    state.counters["p99us_20n"] = scaling.back().p99us;
}

BENCHMARK(BM_KvService)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    // Smoke mode (CI, sanitizer preset): one tiny hot-key config
    // end to end -- preload, skewed traffic, cache + coalescing +
    // spreading exercised -- with no JSON side effects.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            RunResult r = runConfig(4, true, 0.99, false, 0.0, 4000);
            std::printf("smoke: %.0f ops/s, p99 %.1f us "
                        "(read %.1f / write %.1f), "
                        "%llu cache-served, %llu coalesced\n",
                        r.tput, r.p99us, r.readP99us, r.writeP99us,
                        (unsigned long long)r.cacheServed,
                        (unsigned long long)r.coalesced);
            if (r.tput <= 0.0) {
                std::fprintf(stderr, "smoke run made no progress\n");
                return 1;
            }
            return 0;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (scaling.empty())
        runAll();
    printTable();

    bench::JsonCounters counters;
    for (const auto &r : scaling) {
        std::string p = "nodes" + std::to_string(r.nodes) + "_";
        counters.emplace_back(p + "tput_ops", r.tput);
        counters.emplace_back(p + "p50_us", r.p50us);
        counters.emplace_back(p + "p99_us", r.p99us);
        counters.emplace_back(p + "p999_us", r.p999us);
        counters.emplace_back(p + "read_p99_us", r.readP99us);
        counters.emplace_back(p + "write_p99_us", r.writeP99us);
        counters.emplace_back(p + "mean_us", r.meanUs);
    }
    const auto &head = scaling.back();
    counters.emplace_back("nodes20_cache_served",
                          double(head.cacheServed));
    counters.emplace_back("nodes20_cache_stale",
                          double(head.cacheStale));
    counters.emplace_back("nodes20_coalesced_gets",
                          double(head.coalesced));
    auto theta_label = [](const RunResult &r) {
        return r.theta == 0.0
            ? std::string("uniform")
            : "theta" + std::to_string(int(r.theta * 100));
    };
    for (const auto &r : skew) {
        counters.emplace_back("skew_" + theta_label(r) +
                                  "_tput_ops", r.tput);
        counters.emplace_back("skew_" + theta_label(r) + "_p99_us",
                              r.p99us);
    }
    for (const auto &r : skewNoCache) {
        counters.emplace_back("skew_nocache_" + theta_label(r) +
                                  "_tput_ops", r.tput);
        counters.emplace_back("skew_nocache_" + theta_label(r) +
                                  "_p99_us", r.p99us);
    }
    counters.emplace_back("open_tput_ops", open_loop_run.tput);
    counters.emplace_back("open_p50_us", open_loop_run.p50us);
    counters.emplace_back("open_p99_us", open_loop_run.p99us);
    counters.emplace_back("open_p999_us", open_loop_run.p999us);
    counters.emplace_back("open_rejected",
                          double(open_loop_run.rejected));
    bench::writeJson("BENCH_kv.json", counters);
    return 0;
}
