/**
 * @file
 * KV service bench: throughput vs tail latency over the global
 * flash address space (the serving scenario behind figure 17's
 * RAMCloud comparison, with the ROADMAP's 20-node ring as the
 * headline configuration).
 *
 * Four experiments, all YCSB-style 95/5 read/write over 8 KB
 * flash pages with 256-byte values, replication R=2 (quorum-acked
 * writes, W=1 by default / read-one):
 *  - scaling: closed-loop throughput and p50/p99/p99.9 at 4, 8 and
 *    20 nodes (clients scale with nodes; throughput must scale
 *    monotonically);
 *  - skew: Zipfian theta sweep plus uniform at 8 nodes, run both
 *    with and without the hot-key read cache (hot keys concentrate
 *    on few shards; validated cache hits + read coalescing + read
 *    spreading are what keep p99 flat);
 *  - open loop: Poisson arrivals below saturation at 8 nodes,
 *    where queueing delay becomes visible in the tail;
 *  - write quorum: W=1 vs W=2 at 20 nodes with read/write p99
 *    attribution, the repair-lag high-water (max client-acked puts
 *    simultaneously outstanding on straggler replicas), and a
 *    post-run anti-entropy sweep confirming zero divergence.
 *
 * Emits BENCH_kv.json. Acceptance: the 20-node run sustains
 * >= 100k ops/s, scaling is monotone 4 -> 8 -> 20, the cached
 * hot-shard p99 stays several-fold under the uncached one, and
 * W=1 write p99 sits well under the W=2 write-all tail.
 *
 * `--write-quorum W` overrides the default W=1 for the scaling /
 * skew / open-loop sections (the W sweep always runs both).
 *
 * `--smoke` runs one tiny hot-key config end to end (no JSON);
 * `--smoke-quorum` runs the quorum fault-injection scenario (W=1
 * straggler failure healed by a repair sweep). Both are the
 * sanitizer-preset CI gates.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "sim/simulator.hh"
#include "workload/workload.hh"

using namespace bluedbm;

namespace {

/** Mid-size card: 1 GB (8 buses x 2 chips x 128 blocks x 64 pages
 * of 8 KB) -- big enough that the cleaner stays idle, small enough
 * to build twenty nodes of it per config. */
flash::Geometry
kvGeometry()
{
    flash::Geometry g;
    g.buses = 8;
    g.chipsPerBus = 2;
    g.blocksPerChip = 128;
    g.pagesPerBlock = 64;
    g.pageSize = 8192;
    return g;
}

struct RunResult
{
    unsigned nodes = 0;
    double theta = 0.0; //!< 0 = uniform
    bool openLoop = false;
    bool cached = true;
    unsigned quorum = 1; //!< write quorum W
    double tput = 0.0;  //!< accepted ops per simulated second
    double p50us = 0.0, p99us = 0.0, p999us = 0.0;
    double readP99us = 0.0, writeP99us = 0.0; //!< tail attribution
    double meanUs = 0.0;
    std::uint64_t rejected = 0;
    std::uint64_t remoteOps = 0, localOps = 0;
    std::uint64_t cacheServed = 0, cacheStale = 0;
    std::uint64_t coalesced = 0, validated = 0;
    /** Repair lag: max client-acked puts simultaneously
     * outstanding on straggler replicas. */
    unsigned repairLag = 0;
    std::uint64_t divergent = 0;      //!< after the run
    std::uint64_t divergentSwept = 0; //!< after one repair sweep
    /** Read-priority suspension engagement across all NAND arrays:
     * reads that jumped an in-flight program, and program windows
     * parked + resumed. */
    std::uint64_t suspendedPrograms = 0, resumedPrograms = 0;
};

/** Default write quorum for the non-sweep sections
 * (--write-quorum). */
unsigned globalQuorum = 1;

RunResult
runConfig(unsigned nodes, bool zipfian, double theta, bool open_loop,
          double arrivals_per_sec, std::uint64_t total_ops,
          bool cached = true, unsigned write_quorum = 0)
{
    if (write_quorum == 0)
        write_quorum = globalQuorum;
    sim::Simulator sim;
    core::ClusterParams cp;
    cp.topology = net::Topology::ring(nodes, nodes >= 20 ? 4 : 2);
    cp.node.geometry = kvGeometry();
    cp.node.timing = flash::Timing{}; // paper NAND timing
    cp.node.cards = 2;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.writeQuorum = write_quorum;
    kp.cacheSlots = cached ? 256 : 0;
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);

    workload::WorkloadParams wp;
    wp.keys = 10000;
    wp.valueBytes = 256;
    wp.mix.readFrac = 0.95;
    wp.zipfian = zipfian;
    wp.theta = theta;
    wp.clientsPerNode = 8;
    wp.pipeline = 4;
    wp.client.window = 8;
    wp.client.queueCap = 1024;
    wp.openLoop = open_loop;
    wp.arrivalsPerSec = arrivals_per_sec;
    wp.totalOps = total_ops;
    wp.seed = 99;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    if (!loaded)
        sim::fatal("kv bench preload did not finish");
    bool finished = false;
    engine.run([&]() { finished = true; });
    sim.run();
    if (!finished)
        sim::fatal("kv bench run did not finish");

    // Post-run anti-entropy sweep: fault-free traffic must leave
    // zero divergence, and the sweep itself must find nothing --
    // a cheap end-to-end digest-consistency check at scale.
    std::uint64_t divergent_before = router.divergentWrites();
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    if (!swept)
        sim::fatal("kv bench repair sweep did not finish");

    RunResult r;
    r.nodes = nodes;
    r.theta = zipfian ? theta : 0.0;
    r.openLoop = open_loop;
    r.cached = cached;
    r.quorum = write_quorum;
    r.repairLag = router.maxBackgroundWrites();
    r.divergent = divergent_before;
    r.divergentSwept = router.divergentWrites();
    r.tput = engine.throughputOpsPerSec();
    const auto &lat = engine.allLatency();
    r.p50us = sim::ticksToUs(lat.p50());
    r.p99us = sim::ticksToUs(lat.p99());
    r.p999us = sim::ticksToUs(lat.p999());
    r.readP99us = sim::ticksToUs(engine.readLatency().p99());
    r.writeP99us = sim::ticksToUs(engine.writeLatency().p99());
    r.meanUs = lat.mean() / double(sim::oneUs);
    r.rejected = engine.rejectedOps();
    r.remoteOps = router.remoteOps();
    r.localOps = router.localOps();
    r.cacheServed = router.cacheServedGets();
    r.cacheStale = router.cacheStaleGets();
    for (unsigned n = 0; n < nodes; ++n) {
        r.coalesced += router.shard(net::NodeId(n)).coalescedGets();
        r.validated += router.shard(net::NodeId(n)).validatedGets();
        for (unsigned c = 0; c < cluster.node(n).cardCount(); ++c) {
            const auto &nand = cluster.node(n).card(c).nand();
            r.suspendedPrograms += nand.suspendedPrograms();
            r.resumedPrograms += nand.resumedPrograms();
        }
    }
    return r;
}

std::vector<RunResult> scaling;
std::vector<RunResult> skew;
std::vector<RunResult> skewNoCache;
std::vector<RunResult> quorumSweep;
RunResult open_loop_run;

void
runAll()
{
    // Scaling: the headline. 95/5, Zipfian 0.99, closed loop.
    for (unsigned nodes : {4u, 8u, 20u})
        scaling.push_back(runConfig(nodes, true, 0.99, false, 0.0,
                                    3000ull * nodes));

    // Write-quorum sweep at 20 nodes: W=1 (quorum ack, stragglers
    // in the background) vs W=2 (strict write-all). The write p99
    // gap is the cost of waiting for the slowest replica.
    for (unsigned w : {1u, 2u})
        quorumSweep.push_back(runConfig(20, true, 0.99, false, 0.0,
                                        60000, true, w));

    // Skew sweep at 8 nodes: uniform, then rising Zipfian theta,
    // with the hot-key cache on (default) and off (ablation).
    skew.push_back(runConfig(8, false, 0.0, false, 0.0, 24000));
    for (double theta : {0.5, 0.8, 0.9, 0.99})
        skew.push_back(
            runConfig(8, true, theta, false, 0.0, 24000));
    skewNoCache.push_back(
        runConfig(8, false, 0.0, false, 0.0, 24000, false));
    for (double theta : {0.5, 0.8, 0.9, 0.99})
        skewNoCache.push_back(
            runConfig(8, true, theta, false, 0.0, 24000, false));

    // Open loop at 8 nodes: Poisson arrivals, 64 clients x 2000/s
    // = 128k ops/s offered, well under the closed-loop ceiling.
    open_loop_run = runConfig(8, true, 0.99, true, 2000.0, 24000);
}

void
printTable()
{
    bench::banner("KV service: throughput vs tail latency "
                  "(R=2, 95/5, 256 B values)");
    std::printf("%22s %12s %9s %9s %9s %10s\n", "config",
                "ops/s", "p50(us)", "p99(us)", "p99.9(us)",
                "remote%");
    auto row = [](const std::string &name, const RunResult &r) {
        double remote_frac = 100.0 * double(r.remoteOps) /
            double(r.remoteOps + r.localOps);
        std::printf("%22s %12.0f %9.1f %9.1f %9.1f %9.1f%%\n",
                    name.c_str(), r.tput, r.p50us, r.p99us,
                    r.p999us, remote_frac);
    };
    for (const auto &r : scaling)
        row(std::to_string(r.nodes) + " nodes zipf0.99", r);
    auto skew_label = [](const RunResult &r) {
        return r.theta == 0.0
            ? std::string("uniform")
            : "zipf" + std::to_string(r.theta).substr(0, 4);
    };
    for (const auto &r : skew)
        row("8 nodes " + skew_label(r), r);
    for (const auto &r : skewNoCache)
        row("8n nocache " + skew_label(r), r);
    for (const auto &r : quorumSweep)
        row("20 nodes W=" + std::to_string(r.quorum), r);
    row("8 nodes open-loop", open_loop_run);
    for (const auto &r : quorumSweep) {
        std::printf("W=%u: read p99 %.1fus, write p99 %.1fus, "
                    "repair lag %u, divergent %llu -> %llu after "
                    "sweep, %llu suspended / %llu resumed "
                    "programs\n",
                    r.quorum, r.readP99us, r.writeP99us,
                    r.repairLag,
                    (unsigned long long)r.divergent,
                    (unsigned long long)r.divergentSwept,
                    (unsigned long long)r.suspendedPrograms,
                    (unsigned long long)r.resumedPrograms);
    }
    const auto &head = scaling.back();
    std::printf("\nClosed-loop scaling must be monotone: %.0f -> "
                "%.0f -> %.0f ops/s (target >= 100k at 20 "
                "nodes).\nOpen loop: %llu rejected at admission "
                "of %u offered.\n",
                scaling[0].tput, scaling[1].tput, scaling[2].tput,
                (unsigned long long)open_loop_run.rejected, 24000u);
    std::printf("Hot-key path at 20 nodes: %llu cache-served, "
                "%llu stale-detected, %llu coalesced, %llu "
                "validated at the shards.\n",
                (unsigned long long)head.cacheServed,
                (unsigned long long)head.cacheStale,
                (unsigned long long)head.coalesced,
                (unsigned long long)head.validated);
}

void
BM_KvService(benchmark::State &state)
{
    for (auto _ : state) {
        scaling.clear();
        skew.clear();
        skewNoCache.clear();
        quorumSweep.clear();
        runAll();
    }
    state.counters["tput_20n"] = scaling.back().tput;
    state.counters["p99us_20n"] = scaling.back().p99us;
}

BENCHMARK(BM_KvService)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

namespace {

/**
 * Quorum fault-injection smoke (CI, sanitizer preset): W=1 puts
 * against a cluster where one node fails every NAND program, so
 * every put with that node as a straggler acks Ok and leaves a
 * divergence -- which one anti-entropy sweep must drain to zero.
 * Returns 0 on success, 1 on any contract violation. No JSON.
 */
int
smokeQuorum()
{
    sim::Simulator sim;
    core::ClusterParams cp;
    cp.topology = net::Topology::ring(4, 2);
    cp.node.geometry = kvGeometry();
    cp.node.timing = flash::Timing{};
    cp.node.cards = 2;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.writeQuorum = 1;
    kp.cacheSlots = 0;
    kv::KvRouter router(sim, cluster, kp);

    const unsigned faulty = 3;
    const kv::Key keys = 200;
    unsigned ok = 0;
    for (kv::Key k = 0; k < keys; ++k) {
        router.put(net::NodeId(k % 4), k,
                   workload::WorkloadEngine::makeValue(k, 128),
                   [&](kv::KvStatus st) {
            if (st == kv::KvStatus::Ok)
                ++ok;
        });
    }
    sim.run();

    // Overwrite everything with node `faulty` failing programs.
    cluster.node(faulty).hostServer(0).setWriteFault(
        [](const flash::Address &) { return true; });
    unsigned ok2 = 0;
    for (kv::Key k = 0; k < keys; ++k) {
        router.put(net::NodeId(k % 4), k,
                   workload::WorkloadEngine::makeValue(k ^ 0xff,
                                                       128),
                   [&](kv::KvStatus st) {
            if (st == kv::KvStatus::Ok)
                ++ok2;
        });
    }
    sim.run();
    cluster.node(faulty).hostServer(0).setWriteFault(nullptr);

    std::uint64_t divergent = router.divergentWrites();
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();

    std::printf("quorum smoke: %u/%u first puts ok, %u second, "
                "%llu divergent -> %llu after sweep, %llu repairs "
                "applied on node %u\n",
                ok, unsigned(keys), ok2,
                (unsigned long long)divergent,
                (unsigned long long)router.divergentWrites(),
                (unsigned long long)
                    router.shard(net::NodeId(faulty))
                        .repairsApplied(),
                faulty);
    if (ok != keys) {
        std::fprintf(stderr, "fault-free puts failed\n");
        return 1;
    }
    if (divergent == 0) {
        std::fprintf(stderr,
                     "fault injection produced no divergence\n");
        return 1;
    }
    if (!swept || router.divergentWrites() != 0) {
        std::fprintf(stderr,
                     "anti-entropy did not drain divergence\n");
        return 1;
    }
    // Every key must now read the overwrite value from every node.
    unsigned bad = 0, reads = 0;
    for (kv::Key k = 0; k < keys; ++k) {
        for (unsigned origin = 0; origin < 4; ++origin) {
            router.get(net::NodeId(origin), k,
                       [&, k](flash::PageBuffer v,
                              kv::KvStatus st) {
                ++reads;
                if (st != kv::KvStatus::Ok ||
                    v != workload::WorkloadEngine::makeValue(
                             k ^ 0xff, 128))
                    ++bad;
            });
        }
    }
    sim.run();
    if (reads != keys * 4 || bad != 0) {
        std::fprintf(stderr,
                     "%u/%u post-repair reads wrong\n", bad, reads);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--write-quorum") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--write-quorum needs a value\n");
                return 1;
            }
            globalQuorum = unsigned(std::atoi(argv[++i]));
            if (globalQuorum < 1 || globalQuorum > 2) {
                std::fprintf(stderr,
                             "--write-quorum must be 1 or 2\n");
                return 1;
            }
            continue;
        }
        if (std::string(argv[i]) == "--smoke-quorum")
            return smokeQuorum();
    }
    // Smoke mode (CI, sanitizer preset): one tiny hot-key config
    // end to end -- preload, skewed traffic, cache + coalescing +
    // spreading exercised -- with no JSON side effects.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            RunResult r = runConfig(4, true, 0.99, false, 0.0, 4000);
            std::printf("smoke: %.0f ops/s, p99 %.1f us "
                        "(read %.1f / write %.1f), "
                        "%llu cache-served, %llu coalesced\n",
                        r.tput, r.p99us, r.readP99us, r.writeP99us,
                        (unsigned long long)r.cacheServed,
                        (unsigned long long)r.coalesced);
            if (r.tput <= 0.0) {
                std::fprintf(stderr, "smoke run made no progress\n");
                return 1;
            }
            return 0;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (scaling.empty())
        runAll();
    printTable();

    bench::JsonCounters counters;
    for (const auto &r : scaling) {
        std::string p = "nodes" + std::to_string(r.nodes) + "_";
        counters.emplace_back(p + "tput_ops", r.tput);
        counters.emplace_back(p + "p50_us", r.p50us);
        counters.emplace_back(p + "p99_us", r.p99us);
        counters.emplace_back(p + "p999_us", r.p999us);
        counters.emplace_back(p + "read_p99_us", r.readP99us);
        counters.emplace_back(p + "write_p99_us", r.writeP99us);
        counters.emplace_back(p + "mean_us", r.meanUs);
        counters.emplace_back(p + "suspended_programs",
                              double(r.suspendedPrograms));
        counters.emplace_back(p + "resumed_programs",
                              double(r.resumedPrograms));
    }
    const auto &head = scaling.back();
    counters.emplace_back("nodes20_cache_served",
                          double(head.cacheServed));
    counters.emplace_back("nodes20_cache_stale",
                          double(head.cacheStale));
    counters.emplace_back("nodes20_coalesced_gets",
                          double(head.coalesced));
    auto theta_label = [](const RunResult &r) {
        return r.theta == 0.0
            ? std::string("uniform")
            : "theta" + std::to_string(int(r.theta * 100));
    };
    for (const auto &r : skew) {
        counters.emplace_back("skew_" + theta_label(r) +
                                  "_tput_ops", r.tput);
        counters.emplace_back("skew_" + theta_label(r) + "_p99_us",
                              r.p99us);
    }
    for (const auto &r : skewNoCache) {
        counters.emplace_back("skew_nocache_" + theta_label(r) +
                                  "_tput_ops", r.tput);
        counters.emplace_back("skew_nocache_" + theta_label(r) +
                                  "_p99_us", r.p99us);
    }
    for (const auto &r : quorumSweep) {
        std::string p = "quorum_w" + std::to_string(r.quorum) + "_";
        counters.emplace_back(p + "tput_ops", r.tput);
        counters.emplace_back(p + "p99_us", r.p99us);
        counters.emplace_back(p + "read_p99_us", r.readP99us);
        counters.emplace_back(p + "write_p99_us", r.writeP99us);
        counters.emplace_back(p + "repair_lag",
                              double(r.repairLag));
        counters.emplace_back(p + "divergent_after_sweep",
                              double(r.divergentSwept));
    }
    counters.emplace_back("open_tput_ops", open_loop_run.tput);
    counters.emplace_back("open_p50_us", open_loop_run.p50us);
    counters.emplace_back("open_p99_us", open_loop_run.p99us);
    counters.emplace_back("open_p999_us", open_loop_run.p999us);
    counters.emplace_back("open_rejected",
                          double(open_loop_run.rejected));
    bench::writeJson("BENCH_kv.json", counters);
    return 0;
}
