/**
 * @file
 * KV service bench: throughput vs tail latency over the global
 * flash address space (the serving scenario behind figure 17's
 * RAMCloud comparison, with the ROADMAP's 20-node ring as the
 * headline configuration).
 *
 * Four experiments, all YCSB-style 95/5 read/write over 8 KB
 * flash pages with 256-byte values, replication R=2 (quorum-acked
 * writes, W=1 by default / read-one):
 *  - scaling: closed-loop throughput and p50/p99/p99.9 at 4, 8 and
 *    20 nodes (clients scale with nodes; throughput must scale
 *    monotonically);
 *  - skew: Zipfian theta sweep plus uniform at 8 nodes, run both
 *    with and without the hot-key read cache (hot keys concentrate
 *    on few shards; validated cache hits + read coalescing + read
 *    spreading are what keep p99 flat);
 *  - open loop: Poisson arrivals below saturation at 8 nodes,
 *    where queueing delay becomes visible in the tail;
 *  - write quorum: W=1 vs W=2 at 20 nodes with read/write p99
 *    attribution, the repair-lag high-water (max client-acked puts
 *    simultaneously outstanding on straggler replicas), and a
 *    post-run anti-entropy sweep confirming zero divergence.
 *
 * Emits BENCH_kv.json. Acceptance: the 20-node run sustains
 * >= 100k ops/s, scaling is monotone 4 -> 8 -> 20, the cached
 * hot-shard p99 stays several-fold under the uncached one, and
 * W=1 write p99 sits well under the W=2 write-all tail.
 *
 * `--write-quorum W` overrides the default W=1 for the scaling /
 * skew / open-loop sections (the W sweep always runs both).
 *
 * `--smoke` runs one tiny hot-key config end to end (no JSON);
 * `--smoke-quorum` runs the quorum fault-injection scenario (W=1
 * straggler failure healed by a repair sweep). Both are the
 * sanitizer-preset CI gates.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "kv/kv_router.hh"
#include "kv/kv_service.hh"
#include "sim/metrics.hh"
#include "sim/simulator.hh"
#include "sim/trace.hh"
#include "workload/workload.hh"

using namespace bluedbm;

namespace {

/** Mid-size card: 1 GB (8 buses x 2 chips x 128 blocks x 64 pages
 * of 8 KB) -- big enough that the cleaner stays idle, small enough
 * to build twenty nodes of it per config. */
flash::Geometry
kvGeometry()
{
    flash::Geometry g;
    g.buses = 8;
    g.chipsPerBus = 2;
    g.blocksPerChip = 128;
    g.pagesPerBlock = 64;
    g.pageSize = 8192;
    return g;
}

/** Per-stage p99 attribution cut from the always-on kv.stage.*
 * histograms: where a measured phase's tail latency was spent. */
struct StageTails
{
    double admissionP99us = 0.0; //!< window-slot wait at the service
    double netP99us = 0.0;       //!< network round trip minus service
    double shardP99us = 0.0;     //!< shard service (fs + memtable)
    double flashQueueP99us = 0.0; //!< read-class flash queueing
    double nandP99us = 0.0;       //!< read-class NAND service
};

/**
 * Phase cutter over the always-on stage histograms: copy at phase
 * start, subtract at phase end (LatencyHistogram::subtract), so the
 * same five histograms yield steady / crash-window / handoff tails
 * without per-phase plumbing in the serving path.
 */
class StageProbe
{
  public:
    explicit StageProbe(sim::Simulator &sim)
        : adm_(&sim.metrics().histogram("kv.stage.admission")),
          net_(&sim.metrics().histogram("kv.stage.net")),
          shard_(&sim.metrics().histogram("kv.stage.shard")),
          flashQ_(&sim.metrics().histogram("kv.stage.flash_queue",
                                           {{"class", "read"}})),
          nand_(&sim.metrics().histogram("kv.stage.nand",
                                         {{"class", "read"}}))
    {
        rebase();
    }

    /** Start a fresh phase window (e.g. after preload). */
    void
    rebase()
    {
        baseAdm_ = *adm_;
        baseNet_ = *net_;
        baseShard_ = *shard_;
        baseFlashQ_ = *flashQ_;
        baseNand_ = *nand_;
    }

    /** Tails recorded since the last rebase(); rebases after. */
    StageTails
    cut()
    {
        StageTails t;
        t.admissionP99us = phaseP99(*adm_, baseAdm_);
        t.netP99us = phaseP99(*net_, baseNet_);
        t.shardP99us = phaseP99(*shard_, baseShard_);
        t.flashQueueP99us = phaseP99(*flashQ_, baseFlashQ_);
        t.nandP99us = phaseP99(*nand_, baseNand_);
        rebase();
        return t;
    }

  private:
    static double
    phaseP99(sim::LatencyHistogram cur,
             const sim::LatencyHistogram &base)
    {
        cur.subtract(base);
        return cur.count() ? sim::ticksToUs(cur.p99()) : 0.0;
    }

    sim::LatencyHistogram *adm_, *net_, *shard_, *flashQ_, *nand_;
    sim::LatencyHistogram baseAdm_, baseNet_, baseShard_,
        baseFlashQ_, baseNand_;
};

struct RunResult
{
    unsigned nodes = 0;
    double theta = 0.0; //!< 0 = uniform
    bool openLoop = false;
    bool cached = true;
    unsigned quorum = 1; //!< write quorum W
    double tput = 0.0;  //!< accepted ops per simulated second
    double p50us = 0.0, p99us = 0.0, p999us = 0.0;
    double readP99us = 0.0, writeP99us = 0.0; //!< tail attribution
    double meanUs = 0.0;
    std::uint64_t rejected = 0;
    std::uint64_t remoteOps = 0, localOps = 0;
    std::uint64_t cacheServed = 0, cacheStale = 0;
    std::uint64_t coalesced = 0, validated = 0;
    /** Repair lag: max client-acked puts simultaneously
     * outstanding on straggler replicas. */
    unsigned repairLag = 0;
    std::uint64_t divergent = 0;      //!< after the run
    std::uint64_t divergentSwept = 0; //!< after one repair sweep
    /** Read-priority suspension engagement across all NAND arrays:
     * reads that jumped an in-flight program, and program windows
     * parked + resumed. */
    std::uint64_t suspendedPrograms = 0, resumedPrograms = 0;
    /** Where the measured phase's p99 was spent. */
    StageTails stages;
    /** Tracing (traced runs only). */
    std::uint64_t tracesStarted = 0, tracesRetained = 0;
    std::uint64_t tracesSlow = 0;
    /** Sampled get traces with a NAND leaf whose top-level span
     * durations were checked against the root duration. */
    std::uint64_t tracedChecked = 0;
    /** Max |sum(top-level spans) - end-to-end| over the checked
     * traces, in microseconds (one simulated clock: must be 0). */
    double tracedSpanSumErrUs = 0.0;
};

/** Default write quorum for the non-sweep sections
 * (--write-quorum). */
unsigned globalQuorum = 1;

/** --trace-out: Chrome trace-event JSON path (traced runs). */
std::string gTraceOut;
/** --slow-trace-us: always-retain threshold for the slow-request
 * log of traced runs (0 = sampling only). */
std::uint64_t gSlowTraceUs = 0;

/**
 * Span-tree self-check over the retained traces: for every sampled
 * kv.get that reached NAND (the paper's uncached data path), the
 * durations of the root's direct children -- svc.queue then route,
 * which themselves telescope over net.req / shard.get / net.resp --
 * must sum exactly to the root's duration, because every span is
 * clocked by the one simulated clock. Traces that hit a timeout
 * retry (rpc.timeout mark) legitimately hold a straggler span that
 * overlaps the retry and are skipped.
 */
void
checkSpanSums(const sim::Tracer &tracer, RunResult &r)
{
    for (const auto &t : tracer.retained()) {
        if (t.spans.empty() ||
            std::string_view(t.spans[0].name) != "kv.get")
            continue;
        bool has_nand = false, timed_out = false;
        for (const auto &s : t.spans) {
            if (std::string_view(s.name).substr(0, 5) == "nand.")
                has_nand = true;
        }
        for (const auto &m : t.marks) {
            if (std::string_view(m.name) == "rpc.timeout")
                timed_out = true;
        }
        if (!has_nand || timed_out)
            continue;
        sim::Tick sum = 0;
        bool open = false;
        for (std::size_t i = 1; i < t.spans.size(); ++i) {
            const auto &s = t.spans[i];
            if (s.parent != 0)
                continue; // not a direct child of the root
            if (s.end == 0)
                open = true;
            else
                sum += s.end - s.begin;
        }
        if (open)
            continue;
        sim::Tick e2e = t.spans[0].end - t.spans[0].begin;
        sim::Tick err = sum > e2e ? sum - e2e : e2e - sum;
        r.tracedSpanSumErrUs = std::max(r.tracedSpanSumErrUs,
                                        sim::ticksToUs(err));
        ++r.tracedChecked;
    }
}

RunResult
runConfig(unsigned nodes, bool zipfian, double theta, bool open_loop,
          double arrivals_per_sec, std::uint64_t total_ops,
          bool cached = true, unsigned write_quorum = 0,
          bool traced = false)
{
    if (write_quorum == 0)
        write_quorum = globalQuorum;
    sim::Simulator sim;
    if (traced) {
        sim::Tracer::Params tp;
        tp.enabled = true;
        tp.sampleEvery = 16;
        tp.slowThresholdTicks = gSlowTraceUs
            ? sim::usToTicks(double(gSlowTraceUs))
            : sim::Tick(0);
        tp.maxRetained = 4096;
        sim.tracer().configure(tp);
    }
    core::ClusterParams cp;
    cp.topology = net::Topology::ring(nodes, nodes >= 20 ? 4 : 2);
    cp.node.geometry = kvGeometry();
    cp.node.timing = flash::Timing{}; // paper NAND timing
    cp.node.cards = 2;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.writeQuorum = write_quorum;
    kp.cacheSlots = cached ? 256 : 0;
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);

    workload::WorkloadParams wp;
    wp.keys = 10000;
    wp.valueBytes = 256;
    wp.mix.readFrac = 0.95;
    wp.zipfian = zipfian;
    wp.theta = theta;
    wp.clientsPerNode = 8;
    wp.pipeline = 4;
    wp.client.window = 8;
    wp.client.queueCap = 1024;
    wp.openLoop = open_loop;
    wp.arrivalsPerSec = arrivals_per_sec;
    wp.totalOps = total_ops;
    wp.seed = 99;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);
    StageProbe probe(sim);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    if (!loaded)
        sim::fatal("kv bench preload did not finish");
    probe.rebase(); // preload ops are not part of the phase
    bool finished = false;
    engine.run([&]() { finished = true; });
    sim.run();
    if (!finished)
        sim::fatal("kv bench run did not finish");
    StageTails stages = probe.cut();

    // Post-run anti-entropy sweep: fault-free traffic must leave
    // zero divergence, and the sweep itself must find nothing --
    // a cheap end-to-end digest-consistency check at scale.
    std::uint64_t divergent_before = router.divergentWrites();
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    if (!swept)
        sim::fatal("kv bench repair sweep did not finish");

    RunResult r;
    r.nodes = nodes;
    r.theta = zipfian ? theta : 0.0;
    r.openLoop = open_loop;
    r.cached = cached;
    r.quorum = write_quorum;
    r.stages = stages;
    if (traced) {
        r.tracesStarted = sim.tracer().started();
        r.tracesRetained = sim.tracer().retained().size();
        r.tracesSlow = sim.tracer().retainedSlow();
        checkSpanSums(sim.tracer(), r);
        if (!gTraceOut.empty() &&
            !sim.tracer().writeChromeJson(gTraceOut))
            sim::fatal("could not write trace JSON to %s",
                       gTraceOut.c_str());
    }
    r.repairLag = router.maxBackgroundWrites();
    r.divergent = divergent_before;
    r.divergentSwept = router.divergentWrites();
    r.tput = engine.throughputOpsPerSec();
    const auto &lat = engine.allLatency();
    r.p50us = sim::ticksToUs(lat.p50());
    r.p99us = sim::ticksToUs(lat.p99());
    r.p999us = sim::ticksToUs(lat.p999());
    r.readP99us = sim::ticksToUs(engine.readLatency().p99());
    r.writeP99us = sim::ticksToUs(engine.writeLatency().p99());
    r.meanUs = lat.mean() / double(sim::oneUs);
    r.rejected = engine.rejectedOps();
    r.remoteOps = router.remoteOps();
    r.localOps = router.localOps();
    r.cacheServed = router.cacheServedGets();
    r.cacheStale = router.cacheStaleGets();
    for (unsigned n = 0; n < nodes; ++n) {
        r.coalesced += router.shard(net::NodeId(n)).coalescedGets();
        r.validated += router.shard(net::NodeId(n)).validatedGets();
        for (unsigned c = 0; c < cluster.node(n).cardCount(); ++c) {
            const auto &nand = cluster.node(n).card(c).nand();
            r.suspendedPrograms += nand.suspendedPrograms();
            r.resumedPrograms += nand.resumedPrograms();
        }
    }
    return r;
}

// ---------------------------------------------------------------- //
// Elastic membership scenarios: node kill + throttled rebuild, and
// ring expansion -- both under live closed-loop serving load.
// ---------------------------------------------------------------- //

/** One measured phase of a membership scenario. */
struct MemberPhase
{
    double tput = 0.0;
    double p50us = 0.0, p99us = 0.0;
    std::uint64_t rejected = 0;
    /** Where this phase's p99 was spent. */
    StageTails stages;
    /** Registry-counter activity inside this phase alone
     * (Snapshot::deltaSince across the phase boundary): detection
     * timeouts and membership transitions must land in the phase
     * that caused them, not leak into steady state. */
    std::uint64_t readTimeouts = 0;
    std::uint64_t degradedWrites = 0;
    std::uint64_t suspectTransitions = 0;
    std::uint64_t deadTransitions = 0;
};

struct MemberResult
{
    MemberPhase steady;  //!< everyone healthy
    MemberPhase window;  //!< crash detection / join handoff window
    MemberPhase rebuild; //!< serving while the rebuild streams
    MemberPhase post;    //!< recovered, everyone back
    std::uint64_t readTimeouts = 0, retriedReads = 0;
    std::uint64_t deadTransitions = 0, degradedWrites = 0;
    std::uint64_t backoffs = 0;
    std::uint64_t rebuildRepairs = 0; //!< repairs applied on victim
    /** NAND background-class traffic over the rebuild window: the
     * recovery stream is accounted as maintenance, not serving. */
    std::uint64_t bgReads = 0, bgWrites = 0;
    std::uint64_t movedKeys = 0;  //!< join/leave catch-up pushes
    std::uint64_t ringEpoch = 0;
    std::uint64_t divergentFinal = 0; //!< after the final sweep
};

/** Sum of background-class NAND ops across the cluster. */
void
sumBackground(core::Cluster &cluster, unsigned nodes,
              std::uint64_t &reads, std::uint64_t &writes)
{
    reads = writes = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        for (unsigned c = 0; c < cluster.node(n).cardCount(); ++c) {
            const auto &nand = cluster.node(n).card(c).nand();
            reads += nand.backgroundReads();
            writes += nand.backgroundWrites();
        }
    }
}

/**
 * Fail-stop crash of one node under 20-node-class Zipfian serving
 * load, then a Background-priority rebuild, across four measured
 * phases: steady, kill window (the crash lands mid-phase, so
 * detection timeouts and failover retries are inside the
 * measurement), rebuild window (the anti-entropy stream runs under
 * live load from the surviving clients), and recovered. A final
 * quiesced sweep must report zero divergence.
 *
 * @p tight uses sanitizer-friendly detection knobs so the smoke
 * variant spends milliseconds, not simulated seconds.
 */
MemberResult
runKillRebuild(unsigned nodes, std::uint64_t phase_ops, bool tight)
{
    sim::Simulator sim;
    core::ClusterParams cp;
    cp.topology = net::Topology::ring(nodes, nodes >= 20 ? 4 : 2);
    cp.node.geometry = kvGeometry();
    cp.node.timing = flash::Timing{};
    cp.node.cards = 2;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.writeQuorum = 1;
    kp.cacheSlots = 256;
    if (tight) {
        kp.readTimeoutUs = 1000;
        kp.writeTimeoutUs = 4000;
        kp.suspectAfter = 2;
        kp.deadGraceUs = 2000;
    }
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);

    workload::WorkloadParams wp;
    wp.keys = 10000;
    wp.valueBytes = 256;
    wp.mix.readFrac = 0.95;
    wp.zipfian = true;
    wp.theta = 0.99;
    wp.clientsPerNode = 8;
    wp.pipeline = 4;
    wp.client.window = 8;
    wp.client.queueCap = 1024;
    wp.honorRetryAfter = true;
    wp.totalOps = phase_ops;
    wp.seed = 99;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);

    StageProbe probe(sim);
    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    if (!loaded)
        sim::fatal("kill bench preload did not finish");
    probe.rebase();
    auto base = sim.metrics().snapshot();

    auto snap = [&]() {
        MemberPhase p;
        p.tput = engine.throughputOpsPerSec();
        p.p50us = sim::ticksToUs(engine.allLatency().p50());
        p.p99us = sim::ticksToUs(engine.allLatency().p99());
        p.rejected = engine.rejectedOps();
        p.stages = probe.cut();
        // Phase-scoped counter deltas: the membership counters are
        // cumulative, so each phase owns exactly the activity
        // between two snapshots.
        auto delta = sim.metrics().snapshot().deltaSince(base);
        p.readTimeouts = delta.total("kv.router.read_timeouts");
        p.degradedWrites = delta.total("kv.router.degraded_writes");
        p.suspectTransitions =
            delta.total("kv.router.suspect_transitions");
        p.deadTransitions =
            delta.total("kv.router.dead_transitions");
        base = sim.metrics().snapshot();
        return p;
    };
    auto phase = [&](const char *name) {
        bool done = false;
        engine.runPhase(phase_ops, [&]() { done = true; });
        sim.run();
        if (!done)
            sim::fatal("kill bench %s phase did not finish", name);
        return snap();
    };

    MemberResult r;
    r.steady = phase("steady");

    // The crash lands mid-phase: the window measurement contains
    // the victim's dying in-flight ops, the detection timeouts,
    // the failover retries and the degraded-quorum writes.
    const net::NodeId victim(nodes - 1);
    bool window_done = false;
    engine.runPhase(phase_ops, [&]() { window_done = true; });
    engine.pauseNode(victim);
    router.killNode(victim);
    sim.run();
    if (!window_done)
        sim::fatal("kill bench window phase did not finish");
    r.window = snap();
    r.readTimeouts = router.readTimeouts();
    r.retriedReads = router.retriedReads();
    r.deadTransitions = router.deadTransitions();
    r.degradedWrites = router.degradedWrites();
    if (router.member(victim) != kv::MemberState::Dead)
        sim::fatal("victim not detected dead by end of window");

    // Restart + rebuild under live load: the recovery stream rides
    // flash Priority::Background while the surviving clients keep
    // serving; the victim's own clients return when it does.
    std::uint64_t bg_reads0 = 0, bg_writes0 = 0;
    sumBackground(cluster, nodes, bg_reads0, bg_writes0);
    router.reviveNode(victim);
    bool rebuilt = false;
    router.rebuildNode(victim, [&]() {
        rebuilt = true;
        engine.resumeNode(victim);
    });
    bool rebuild_done = false;
    engine.runPhase(phase_ops, [&]() { rebuild_done = true; });
    sim.run();
    if (!rebuilt || !rebuild_done)
        sim::fatal("kill bench rebuild phase did not finish");
    r.rebuild = snap();
    r.rebuildRepairs =
        router.shard(victim).repairsApplied();
    std::uint64_t bg_reads1 = 0, bg_writes1 = 0;
    sumBackground(cluster, nodes, bg_reads1, bg_writes1);
    r.bgReads = bg_reads1 - bg_reads0;
    r.bgWrites = bg_writes1 - bg_writes0;
    if (router.member(victim) != kv::MemberState::Live)
        sim::fatal("victim not live after rebuild");

    // Recovered: the full client population serves again.
    r.post = phase("post");
    r.backoffs = engine.backoffs();

    // Quiesced final sweep: the crash window's divergence must be
    // fully healed.
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    if (!swept)
        sim::fatal("kill bench final sweep did not finish");
    r.divergentFinal = router.divergentWrites();
    return r;
}

/**
 * Ring expansion under live load: @p nodes serving (cluster built
 * with one extra Standby node and KvParams::activeNodes), the join
 * issued mid-phase so the dual-write handoff, Background catch-up
 * sweep and atomic flip all land inside the window measurement.
 */
MemberResult
runExpand(unsigned nodes, std::uint64_t phase_ops, bool tight)
{
    sim::Simulator sim;
    core::ClusterParams cp;
    cp.topology =
        net::Topology::ring(nodes + 1, nodes + 1 >= 20 ? 4 : 2);
    cp.node.geometry = kvGeometry();
    cp.node.timing = flash::Timing{};
    cp.node.cards = 2;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.writeQuorum = 1;
    kp.cacheSlots = 256;
    kp.activeNodes = nodes; // the last node starts Standby
    // Throttle the catch-up stream harder than the anti-entropy
    // default: the handoff moves a large slice of the key space
    // while every node keeps serving, and a wide-open chunk eats
    // the controller tags foreground reads need.
    kp.repairChunk = 16;
    if (tight) {
        kp.readTimeoutUs = 1000;
        kp.writeTimeoutUs = 4000;
        kp.suspectAfter = 2;
        kp.deadGraceUs = 2000;
    }
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);

    workload::WorkloadParams wp;
    wp.keys = 10000;
    wp.valueBytes = 256;
    wp.mix.readFrac = 0.95;
    wp.zipfian = true;
    wp.theta = 0.99;
    wp.clientsPerNode = 8;
    wp.clientNodes = nodes; // no sessions on the standby node
    wp.pipeline = 4;
    wp.client.window = 8;
    wp.client.queueCap = 1024;
    wp.honorRetryAfter = true;
    wp.totalOps = phase_ops;
    wp.seed = 99;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);

    StageProbe probe(sim);
    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    if (!loaded)
        sim::fatal("expand bench preload did not finish");
    probe.rebase();
    auto base = sim.metrics().snapshot();

    auto snap = [&]() {
        MemberPhase p;
        p.tput = engine.throughputOpsPerSec();
        p.p50us = sim::ticksToUs(engine.allLatency().p50());
        p.p99us = sim::ticksToUs(engine.allLatency().p99());
        p.rejected = engine.rejectedOps();
        p.stages = probe.cut();
        auto delta = sim.metrics().snapshot().deltaSince(base);
        p.readTimeouts = delta.total("kv.router.read_timeouts");
        p.degradedWrites = delta.total("kv.router.degraded_writes");
        p.suspectTransitions =
            delta.total("kv.router.suspect_transitions");
        p.deadTransitions =
            delta.total("kv.router.dead_transitions");
        base = sim.metrics().snapshot();
        return p;
    };
    auto phase = [&](const char *name) {
        bool done = false;
        engine.runPhase(phase_ops, [&]() { done = true; });
        sim.run();
        if (!done)
            sim::fatal("expand bench %s phase did not finish",
                       name);
        return snap();
    };

    MemberResult r;
    r.steady = phase("steady");

    // The join lands mid-phase; sim.run() drains both the phase
    // and the handoff, whichever finishes first.
    const net::NodeId joiner(nodes);
    bool joined = false;
    bool window_done = false;
    engine.runPhase(phase_ops, [&]() { window_done = true; });
    router.joinNode(joiner, [&]() { joined = true; });
    sim.run();
    if (!window_done || !joined)
        sim::fatal("expand bench join window did not finish");
    r.window = snap();
    if (router.member(joiner) != kv::MemberState::Live)
        sim::fatal("joiner not live after handoff");
    r.readTimeouts = router.readTimeouts();
    r.retriedReads = router.retriedReads();
    r.degradedWrites = router.degradedWrites();
    r.movedKeys = router.movedKeys();
    r.ringEpoch = router.ringEpoch();
    if (router.shard(joiner).keyCount() == 0)
        sim::fatal("joiner holds no keys after handoff");

    // Expanded: the new node is a full read/write replica.
    r.post = phase("post");
    r.backoffs = engine.backoffs();

    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();
    if (!swept)
        sim::fatal("expand bench final sweep did not finish");
    r.divergentFinal = router.divergentWrites();
    return r;
}

// ---------------------------------------------------------------- //
// Aged-flash scenario: wear-driven bit errors, the read-retry +
// poison + replica-heal ladder, endurance-driven block retirement
// and capacity pressure -- all under live serving load.
// ---------------------------------------------------------------- //

/** Tiny card for the aging runs: 8 MB (2 buses x 1 chip x 32
 * blocks of 16 x 8 KB pages), so a few thousand puts reach 80%
 * utilization and the cleaner runs hot instead of staying idle. */
flash::Geometry
agedGeometry()
{
    flash::Geometry g;
    g.buses = 2;
    g.chipsPerBus = 1;
    g.blocksPerChip = 32;
    g.pagesPerBlock = 16;
    g.pageSize = 8192;
    return g;
}

/** Wear curve for the aged phase (NandArray::setWearModel): with
 * the pre-age below, the effective BER lands near 2.6e-4 -- about
 * 19 expected raw flips per 8 KB page, enough that SECDED fails a
 * noticeable fraction of senses and the retry ladder + poison +
 * replica-heal machinery all engage within a short phase. */
constexpr double agedBer0 = 2e-5;
constexpr std::uint32_t agedKnee = 1000;
constexpr double agedAlpha = 2.5;
/** Endurance limit; pre-age sits close under it. */
constexpr std::uint32_t agedEraseLimit = 3000;
/** Pre-age cycles for the bulk of the blocks: ~600 erases of
 * headroom, far more than the serving phase plus the anti-entropy
 * rounds perform, so only the marked blocks ever retire and
 * capacity loss stays bounded -- letting ordinary cleaning march
 * the bulk into the limit would shrink the card until the fullest
 * node pins at the cleaner's reserve and repair can never
 * converge. */
constexpr std::uint32_t agedBulkWear = agedEraseLimit - 600;
/** The first this-many blocks of each bus are pre-aged to one
 * cycle under the limit: their next erase retires them. The
 * cleaner breaks victim ties toward low block indices, so these
 * are also the likeliest early victims. Few enough that pages
 * poisoned at their (worst-case) error rate stay a sparse set --
 * losing BOTH replicas of a key is what the scenario must not
 * manufacture. */
constexpr std::uint32_t agedMarkedPerBus = 2;

/** One measured serving phase of the aging scenario. */
struct AgePhase
{
    double tput = 0.0;
    double p50us = 0.0, p99us = 0.0;
    std::uint64_t rejected = 0;
};

struct AgeResult
{
    AgePhase fresh; //!< wear model off, GC already active
    AgePhase aged;  //!< same load over the pre-aged array
    std::uint64_t keys = 0;
    double utilization = 0.0; //!< measured occupied/usable pages
    /** NAND-level error-model activity (aged phase onward). */
    std::uint64_t bitsCorrected = 0, uncorrectablePages = 0;
    /** FlashServer read-retry ladder. */
    std::uint64_t retriedReads = 0, retrySuccesses = 0,
        retryFailures = 0;
    /** LogFs wear management. */
    std::uint64_t retiredBlocks = 0, poisonedPages = 0;
    std::uint64_t reserveAlarms = 0, cleanParks = 0;
    std::uint64_t foregroundAssists = 0, trimmedPages = 0;
    /** Pages the cleaner moved during the aged phase. */
    std::uint64_t relocatedPages = 0;
    /** Aged-phase write amplification: (user page writes + cleaner
     * page moves) / user page writes. */
    double writeAmp = 0.0;
    /** Erase-count distribution across every block of the cluster
     * after the run (min of per-card mins, mean of p50s, max of
     * maxes). */
    std::uint32_t eraseMin = 0, eraseP50 = 0, eraseMax = 0;
    /** Corruption healing: local uncorrectable gets failed over to
     * the replica, and the copy pushed back. */
    std::uint64_t localCorruptions = 0, repairedKeys = 0;
    std::uint64_t corruptFinal = 0; //!< corrupt keys after sweep
    std::uint64_t divergent = 0;    //!< before the final sweep
    std::uint64_t divergentFinal = 0;
    /** Capacity pressure: puts shed at the red line, and client
     * backoffs honoring the retry-after hint. */
    std::uint64_t pressured = 0, backoffs = 0;
    /** Post-sweep full read-back: every key, one origin each. */
    std::uint64_t readBack = 0, readBackBad = 0;
};

/**
 * Serve a skewed 50/50 mix at 80-90% occupied capacity, then age
 * the array in place (wear curve on, blocks pre-aged near the
 * endurance limit) and serve the same load again. The aged phase
 * must keep its tail within 3x of fresh while the full ladder runs
 * underneath: raw bit errors rise with block erase counts, SECDED
 * failures climb the FlashServer retry ladder, persistent losses
 * poison pages and fail over to the replica (healed back by
 * repairPut), endurance-tripped blocks retire behind the cleaner,
 * and the capacity red line sheds puts with a retry-after hint.
 */
AgeResult
runAging(unsigned nodes, std::uint64_t phase_ops)
{
    sim::Simulator sim;
    core::ClusterParams cp;
    cp.topology = net::Topology::ring(nodes, 2);
    flash::Geometry geo = agedGeometry();
    cp.node.geometry = geo;
    cp.node.timing = flash::Timing{};
    cp.node.cards = 1;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.writeQuorum = 1;
    // No hot-key cache: the subject is the flash read path, and a
    // cache hit would mask the very corruption events under test.
    kp.cacheSlots = 0;
    kv::KvRouter router(sim, cluster, kp);
    kv::KvService service(sim, router);

    // Arm the read-retry ladder up front; it is inert while the
    // error model is off, so the fresh phase is unaffected.
    for (unsigned n = 0; n < nodes; ++n)
        cluster.node(n).hostServer(0).setReadRetries(2);

    const std::uint64_t cap = std::uint64_t(geo.buses) *
        geo.chipsPerBus * geo.blocksPerChip * geo.pagesPerBlock *
        geo.pageSize;
    const std::uint32_t value_bytes = 2048;
    // KvShard record framing: 12 bytes of header per value.
    const std::uint64_t record_bytes = value_bytes + 12;
    // Live-bytes target. Occupied capacity runs well above it: a
    // log page holds ~4 records from adjacent keys and stays live
    // until every one of them is overwritten (dead-byte trim), so
    // the page-granular cleaner cannot compact sub-page garbage
    // and the fragmented footprint settles in the 80-90% band the
    // scenario targets. (Measured occupancy is reported, and
    // gated, as the run's utilization.)
    const double liveFrac = 0.62;
    const std::uint64_t keys =
        std::uint64_t(double(nodes) * double(cap) * liveFrac) /
        (kp.replication * record_bytes);

    workload::WorkloadParams wp;
    wp.keys = keys;
    wp.valueBytes = value_bytes;
    wp.mix.readFrac = 0.5; // write-heavy: churn feeds the cleaner
    wp.zipfian = true;
    wp.theta = 0.99;
    wp.clientsPerNode = 4;
    wp.pipeline = 2;
    wp.client.window = 8;
    wp.client.queueCap = 1024;
    wp.honorRetryAfter = true; // pressure sheds must back off
    wp.totalOps = phase_ops;
    wp.seed = 99;
    workload::WorkloadEngine engine(sim, cluster, router, service,
                                    wp);

    bool loaded = false;
    engine.preload([&]() { loaded = true; });
    sim.run();
    if (!loaded)
        sim::fatal("aging bench preload did not finish");

    auto phase = [&](const char *name) {
        bool done = false;
        engine.runPhase(phase_ops, [&]() { done = true; });
        sim.run();
        if (!done)
            sim::fatal("aging bench %s phase did not finish", name);
        AgePhase p;
        p.tput = engine.throughputOpsPerSec();
        p.p50us = sim::ticksToUs(engine.allLatency().p50());
        p.p99us = sim::ticksToUs(engine.allLatency().p99());
        p.rejected = engine.rejectedOps();
        return p;
    };

    AgeResult r;
    r.keys = keys;
    r.fresh = phase("fresh");

    // Age the array in place: wear curve on, every block pre-aged
    // near the endurance limit, the marked few one erase under it.
    std::uint64_t written0 = 0, cleaned0 = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        auto &nand = cluster.node(n).card(0).nand();
        nand.setWearModel(agedBer0, agedKnee, agedAlpha);
        auto &store = nand.store();
        flash::Address a;
        for (a.bus = 0; a.bus < geo.buses; ++a.bus) {
            for (a.chip = 0; a.chip < geo.chipsPerBus; ++a.chip) {
                // The heavily-marked blocks sit at different
                // physical positions on each node. Replicated
                // preload lays data out near-identically across
                // nodes, so marking the SAME indices everywhere
                // would poison both replicas of the same keys --
                // manufactured double-fault data loss, not the
                // single-card wear this scenario models.
                for (std::uint32_t b = 0; b < geo.blocksPerChip;
                     ++b) {
                    std::uint32_t slot =
                        (b + geo.blocksPerChip -
                         (n * geo.blocksPerChip / nodes) %
                             geo.blocksPerChip) %
                        geo.blocksPerChip;
                    a.block = b;
                    a.page = 0;
                    store.addWear(a, slot < agedMarkedPerBus
                                         ? agedEraseLimit - 1
                                         : agedBulkWear);
                }
            }
        }
        store.setEraseLimit(agedEraseLimit);
        written0 += cluster.node(n).fs().pagesWritten();
        cleaned0 += cluster.node(n).fs().pagesCleaned();
    }

    r.aged = phase("aged");

    std::uint64_t written1 = 0, cleaned1 = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        written1 += cluster.node(n).fs().pagesWritten();
        cleaned1 += cluster.node(n).fs().pagesCleaned();
    }
    r.relocatedPages = cleaned1 - cleaned0;
    if (written1 > written0)
        r.writeAmp = double((written1 - written0) +
                            (cleaned1 - cleaned0)) /
            double(written1 - written0);

    // Quiesced anti-entropy, run to convergence: every page the
    // wear model destroyed must heal from its replica -- divergence
    // and corrupt keys drain to zero or data was lost. One round is
    // not enough at the red line: repair pushes are themselves
    // appends, so a round's later repairs can shed while the
    // cleaner digests the churn of its earlier ones; each sweep's
    // quiesce window lets reclamation catch up before the next.
    r.divergent = router.divergentWrites();
    for (unsigned round = 0;
         round < 16 && router.divergentWrites() > 0; ++round) {
        bool swept = false;
        router.repairSweep([&]() { swept = true; });
        sim.run();
        if (!swept)
            sim::fatal("aging bench final sweep did not finish");
    }
    r.divergentFinal = router.divergentWrites();

    // Measured capacity utilization: occupied usable pages over
    // usable pages (retired blocks excluded from both sides),
    // averaged across nodes -- the fragmented footprint the
    // cleaner actually contends with, not the a-priori live-bytes
    // fraction.
    {
        const double total = double(geo.buses) * geo.chipsPerBus *
            geo.blocksPerChip;
        double occ = 0.0;
        for (unsigned n = 0; n < nodes; ++n) {
            const auto &fs = cluster.node(n).fs();
            double usable = total - double(fs.retiredBlocks());
            occ += (usable - double(fs.freeBlocks())) / usable;
        }
        r.utilization = occ / nodes;
    }

    std::uint64_t p50sum = 0;
    for (unsigned n = 0; n < nodes; ++n) {
        const auto &node = cluster.node(n);
        auto &nand = cluster.node(n).card(0).nand();
        r.bitsCorrected += nand.bitsCorrected();
        r.uncorrectablePages += nand.uncorrectablePages();
        const auto &hs = cluster.node(n).hostServer(0);
        r.retriedReads += hs.retriedReads();
        r.retrySuccesses += hs.retrySuccesses();
        r.retryFailures += hs.retryFailures();
        const auto &fs = cluster.node(n).fs();
        r.retiredBlocks += fs.retiredBlocks();
        r.poisonedPages += fs.poisonedPages();
        r.reserveAlarms += fs.reserveAlarms();
        r.cleanParks += fs.cleanParks();
        r.foregroundAssists += fs.foregroundAssists();
        r.trimmedPages += fs.trimmedPages();
        auto es = nand.store().eraseStats();
        r.eraseMin = n == 0 ? es.min : std::min(r.eraseMin, es.min);
        r.eraseMax = std::max(r.eraseMax, es.max);
        p50sum += es.p50;
        r.corruptFinal += router.shard(net::NodeId(n))
                              .corruptKeyCount();
        (void)node;
    }
    r.eraseP50 = std::uint32_t(p50sum / nodes);
    r.localCorruptions = router.localCorruptions();
    r.repairedKeys = router.repairedKeys();
    r.pressured = service.pressureRejects();
    r.backoffs = engine.backoffs();

    // Full read-back, one origin per key: a key unreadable here --
    // after retries, failover and the sweep -- was truly lost.
    // Bounded in flight: an unthrottled burst of 6k+ gets would
    // saturate the controllers and trip the 2 ms read timeout on
    // queueing delay alone, reporting healthy keys as failed.
    {
        constexpr unsigned window = 64;
        std::uint64_t bad = 0, reads = 0, next = 0;
        std::function<void()> issue = [&]() {
            if (next >= keys)
                return;
            kv::Key k = next++;
            router.get(net::NodeId(k % nodes), k,
                       [&](flash::PageBuffer, kv::KvStatus st) {
                ++reads;
                if (st != kv::KvStatus::Ok)
                    ++bad;
                issue();
            });
        };
        for (unsigned i = 0; i < window && i < keys; ++i)
            issue();
        sim.run();
        r.readBack = reads;
        r.readBackBad = bad;
    }
    return r;
}

std::vector<RunResult> scaling;

/** Scaling entry for @p nodes (fatal if the sweep lacks it). */
const RunResult &
scalingAt(unsigned nodes)
{
    for (const auto &r : scaling) {
        if (r.nodes == nodes)
            return r;
    }
    sim::fatal("no %u-node entry in the scaling sweep", nodes);
}

std::vector<RunResult> skew;
std::vector<RunResult> skewNoCache;
std::vector<RunResult> quorumSweep;
RunResult open_loop_run;
RunResult traced_run;
MemberResult killRun;
MemberResult expandRun;
AgeResult ageRun;

void
runAll()
{
    // Scaling: the headline. 95/5, Zipfian 0.99, closed loop. The
    // 100-node point is the cluster-scale target the ladder event
    // queue and next-hop routing exist for (>= 10M aggregate ops/s).
    for (unsigned nodes : {4u, 8u, 20u, 100u})
        scaling.push_back(runConfig(nodes, true, 0.99, false, 0.0,
                                    3000ull * nodes));

    // Write-quorum sweep at 20 nodes: W=1 (quorum ack, stragglers
    // in the background) vs W=2 (strict write-all). The write p99
    // gap is the cost of waiting for the slowest replica.
    for (unsigned w : {1u, 2u})
        quorumSweep.push_back(runConfig(20, true, 0.99, false, 0.0,
                                        60000, true, w));

    // Skew sweep at 8 nodes: uniform, then rising Zipfian theta,
    // with the hot-key cache on (default) and off (ablation).
    skew.push_back(runConfig(8, false, 0.0, false, 0.0, 24000));
    for (double theta : {0.5, 0.8, 0.9, 0.99})
        skew.push_back(
            runConfig(8, true, theta, false, 0.0, 24000));
    skewNoCache.push_back(
        runConfig(8, false, 0.0, false, 0.0, 24000, false));
    for (double theta : {0.5, 0.8, 0.9, 0.99})
        skewNoCache.push_back(
            runConfig(8, true, theta, false, 0.0, 24000, false));

    // Open loop at 8 nodes: Poisson arrivals, 64 clients x 2000/s
    // = 128k ops/s offered, well under the closed-loop ceiling.
    open_loop_run = runConfig(8, true, 0.99, true, 2000.0, 24000);

    // Traced run: the headline config again, smaller, with the
    // tracer sampling 1-in-16 ops. Every sampled get that reached
    // NAND must telescope (span sums == e2e); --trace-out exports
    // the span trees as Chrome trace-event JSON for Perfetto.
    traced_run = runConfig(20, true, 0.99, false, 0.0, 12000, true,
                           0, true);

    // Elastic membership at rack scale: one node crashes and is
    // rebuilt under load; a 21st node joins a 20-node serving ring.
    killRun = runKillRebuild(20, 30000, false);
    expandRun = runExpand(20, 30000, false);

    // Aged flash under live load: 4 nodes at 80-90% occupancy, the
    // wear model switched on mid-run. Small on purpose -- aging is
    // a per-card phenomenon, not a scale-out one.
    ageRun = runAging(4, 8000);
}

void
printTable()
{
    bench::banner("KV service: throughput vs tail latency "
                  "(R=2, 95/5, 256 B values)");
    std::printf("%22s %12s %9s %9s %9s %10s\n", "config",
                "ops/s", "p50(us)", "p99(us)", "p99.9(us)",
                "remote%");
    auto row = [](const std::string &name, const RunResult &r) {
        double remote_frac = 100.0 * double(r.remoteOps) /
            double(r.remoteOps + r.localOps);
        std::printf("%22s %12.0f %9.1f %9.1f %9.1f %9.1f%%\n",
                    name.c_str(), r.tput, r.p50us, r.p99us,
                    r.p999us, remote_frac);
    };
    for (const auto &r : scaling)
        row(std::to_string(r.nodes) + " nodes zipf0.99", r);
    auto skew_label = [](const RunResult &r) {
        return r.theta == 0.0
            ? std::string("uniform")
            : "zipf" + std::to_string(r.theta).substr(0, 4);
    };
    for (const auto &r : skew)
        row("8 nodes " + skew_label(r), r);
    for (const auto &r : skewNoCache)
        row("8n nocache " + skew_label(r), r);
    for (const auto &r : quorumSweep)
        row("20 nodes W=" + std::to_string(r.quorum), r);
    row("8 nodes open-loop", open_loop_run);
    for (const auto &r : quorumSweep) {
        std::printf("W=%u: read p99 %.1fus, write p99 %.1fus, "
                    "repair lag %u, divergent %llu -> %llu after "
                    "sweep, %llu suspended / %llu resumed "
                    "programs\n",
                    r.quorum, r.readP99us, r.writeP99us,
                    r.repairLag,
                    (unsigned long long)r.divergent,
                    (unsigned long long)r.divergentSwept,
                    (unsigned long long)r.suspendedPrograms,
                    (unsigned long long)r.resumedPrograms);
    }
    const auto &head = scalingAt(20);
    std::printf("\nClosed-loop scaling must be monotone: %.0f -> "
                "%.0f -> %.0f -> %.0f ops/s (targets >= 100k at 20 "
                "nodes, >= 10M at 100).\nOpen loop: %llu rejected "
                "at admission of %u offered.\n",
                scaling[0].tput, scaling[1].tput, scaling[2].tput,
                scaling[3].tput,
                (unsigned long long)open_loop_run.rejected, 24000u);
    std::printf("Hot-key path at 20 nodes: %llu cache-served, "
                "%llu stale-detected, %llu coalesced, %llu "
                "validated at the shards.\n",
                (unsigned long long)head.cacheServed,
                (unsigned long long)head.cacheStale,
                (unsigned long long)head.coalesced,
                (unsigned long long)head.validated);

    bench::banner("Per-stage p99 attribution (us): why the tail "
                  "moved");
    std::printf("%22s %10s %8s %8s %8s %8s\n", "config",
                "admission", "net", "shard", "flashq", "nand");
    auto srow = [](const std::string &name, const StageTails &s) {
        std::printf("%22s %10.1f %8.1f %8.1f %8.1f %8.1f\n",
                    name.c_str(), s.admissionP99us, s.netP99us,
                    s.shardP99us, s.flashQueueP99us, s.nandP99us);
    };
    for (const auto &r : scaling)
        srow(std::to_string(r.nodes) + " nodes zipf0.99",
             r.stages);
    srow("kill: steady", killRun.steady.stages);
    srow("kill: crash window", killRun.window.stages);
    srow("join: handoff window", expandRun.window.stages);
    std::printf("\nTraced run (20 nodes, 1-in-16 sampling): %llu "
                "ops traced, %llu retained (%llu slow); %llu "
                "NAND-reaching gets span-sum-checked, max error "
                "%.3f us (one clock: must be 0).\n",
                (unsigned long long)traced_run.tracesStarted,
                (unsigned long long)traced_run.tracesRetained,
                (unsigned long long)traced_run.tracesSlow,
                (unsigned long long)traced_run.tracedChecked,
                traced_run.tracedSpanSumErrUs);

    bench::banner("Elastic membership under live load (20 nodes)");
    std::printf("%22s %12s %9s %9s %10s\n", "phase", "ops/s",
                "p50(us)", "p99(us)", "rejected");
    auto mrow = [](const char *name, const MemberPhase &p) {
        std::printf("%22s %12.0f %9.1f %9.1f %10llu\n", name,
                    p.tput, p.p50us, p.p99us,
                    (unsigned long long)p.rejected);
    };
    mrow("kill: steady", killRun.steady);
    mrow("kill: crash window", killRun.window);
    mrow("kill: rebuild window", killRun.rebuild);
    mrow("kill: recovered", killRun.post);
    mrow("join: steady", expandRun.steady);
    mrow("join: handoff window", expandRun.window);
    mrow("join: expanded", expandRun.post);
    std::printf("crash: %llu timeouts, %llu retried reads, %llu "
                "dead transitions, %llu degraded writes; rebuild "
                "applied %llu repairs riding %llu background reads "
                "/ %llu background writes; divergence after final "
                "sweep %llu.\n",
                (unsigned long long)killRun.readTimeouts,
                (unsigned long long)killRun.retriedReads,
                (unsigned long long)killRun.deadTransitions,
                (unsigned long long)killRun.degradedWrites,
                (unsigned long long)killRun.rebuildRepairs,
                (unsigned long long)killRun.bgReads,
                (unsigned long long)killRun.bgWrites,
                (unsigned long long)killRun.divergentFinal);
    std::printf("join: %llu keys moved, ring epoch %llu, "
                "divergence after final sweep %llu.\n",
                (unsigned long long)expandRun.movedKeys,
                (unsigned long long)expandRun.ringEpoch,
                (unsigned long long)expandRun.divergentFinal);

    bench::banner("Aged flash under live load (4 nodes, 80-90% "
                  "occupied, 50/50 mix)");
    std::printf("%22s %12s %9s %9s %10s\n", "phase", "ops/s",
                "p50(us)", "p99(us)", "rejected");
    auto arow = [](const char *name, const AgePhase &p) {
        std::printf("%22s %12.0f %9.1f %9.1f %10llu\n", name,
                    p.tput, p.p50us, p.p99us,
                    (unsigned long long)p.rejected);
    };
    arow("fresh", ageRun.fresh);
    arow("aged", ageRun.aged);
    std::printf("wear: %llu bits corrected, %llu uncorrectable "
                "senses; ladder %llu retries (%llu rescued / %llu "
                "exhausted); %llu pages poisoned, %llu blocks "
                "retired, erase counts %u/%u/%u (min/p50/max).\n",
                (unsigned long long)ageRun.bitsCorrected,
                (unsigned long long)ageRun.uncorrectablePages,
                (unsigned long long)ageRun.retriedReads,
                (unsigned long long)ageRun.retrySuccesses,
                (unsigned long long)ageRun.retryFailures,
                (unsigned long long)ageRun.poisonedPages,
                (unsigned long long)ageRun.retiredBlocks,
                ageRun.eraseMin, ageRun.eraseP50, ageRun.eraseMax);
    std::printf("heal: %llu local corruptions failed over, %llu "
                "keys repaired, divergence %llu -> %llu after the "
                "sweep (%llu corrupt keys left), read-back %llu/"
                "%llu bad.\n",
                (unsigned long long)ageRun.localCorruptions,
                (unsigned long long)ageRun.repairedKeys,
                (unsigned long long)ageRun.divergent,
                (unsigned long long)ageRun.divergentFinal,
                (unsigned long long)ageRun.corruptFinal,
                (unsigned long long)ageRun.readBackBad,
                (unsigned long long)ageRun.readBack);
    std::printf("capacity: write amplification %.2f (%llu pages "
                "relocated), %llu trimmed, %llu puts shed at the "
                "red line (%llu backoffs), %llu foreground "
                "assists, %llu reserve alarms.\n",
                ageRun.writeAmp,
                (unsigned long long)ageRun.relocatedPages,
                (unsigned long long)ageRun.trimmedPages,
                (unsigned long long)ageRun.pressured,
                (unsigned long long)ageRun.backoffs,
                (unsigned long long)ageRun.foregroundAssists,
                (unsigned long long)ageRun.reserveAlarms);
}

void
BM_KvService(benchmark::State &state)
{
    for (auto _ : state) {
        scaling.clear();
        skew.clear();
        skewNoCache.clear();
        quorumSweep.clear();
        runAll();
    }
    state.counters["tput_20n"] = scalingAt(20).tput;
    state.counters["p99us_20n"] = scalingAt(20).p99us;
    state.counters["tput_100n"] = scalingAt(100).tput;
}

BENCHMARK(BM_KvService)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

namespace {

/**
 * Quorum fault-injection smoke (CI, sanitizer preset): W=1 puts
 * against a cluster where one node fails every NAND program, so
 * every put with that node as a straggler acks Ok and leaves a
 * divergence -- which one anti-entropy sweep must drain to zero.
 * Returns 0 on success, 1 on any contract violation. No JSON.
 */
int
smokeQuorum()
{
    sim::Simulator sim;
    core::ClusterParams cp;
    cp.topology = net::Topology::ring(4, 2);
    cp.node.geometry = kvGeometry();
    cp.node.timing = flash::Timing{};
    cp.node.cards = 2;
    cp.node.controllerTags = 128;
    cp.network.endpoints = kv::kvRequiredEndpoints;
    core::Cluster cluster(sim, cp);

    kv::KvParams kp;
    kp.replication = 2;
    kp.writeQuorum = 1;
    kp.cacheSlots = 0;
    kv::KvRouter router(sim, cluster, kp);

    const unsigned faulty = 3;
    const kv::Key keys = 200;
    unsigned ok = 0;
    for (kv::Key k = 0; k < keys; ++k) {
        router.put(net::NodeId(k % 4), k,
                   workload::WorkloadEngine::makeValue(k, 128),
                   [&](kv::KvStatus st) {
            if (st == kv::KvStatus::Ok)
                ++ok;
        });
    }
    sim.run();

    // Overwrite everything with node `faulty` failing programs.
    cluster.node(faulty).hostServer(0).setWriteFault(
        [](const flash::Address &) { return true; });
    unsigned ok2 = 0;
    for (kv::Key k = 0; k < keys; ++k) {
        router.put(net::NodeId(k % 4), k,
                   workload::WorkloadEngine::makeValue(k ^ 0xff,
                                                       128),
                   [&](kv::KvStatus st) {
            if (st == kv::KvStatus::Ok)
                ++ok2;
        });
    }
    sim.run();
    cluster.node(faulty).hostServer(0).setWriteFault(nullptr);

    std::uint64_t divergent = router.divergentWrites();
    bool swept = false;
    router.repairSweep([&]() { swept = true; });
    sim.run();

    std::printf("quorum smoke: %u/%u first puts ok, %u second, "
                "%llu divergent -> %llu after sweep, %llu repairs "
                "applied on node %u\n",
                ok, unsigned(keys), ok2,
                (unsigned long long)divergent,
                (unsigned long long)router.divergentWrites(),
                (unsigned long long)
                    router.shard(net::NodeId(faulty))
                        .repairsApplied(),
                faulty);
    if (ok != keys) {
        std::fprintf(stderr, "fault-free puts failed\n");
        return 1;
    }
    if (divergent == 0) {
        std::fprintf(stderr,
                     "fault injection produced no divergence\n");
        return 1;
    }
    if (!swept || router.divergentWrites() != 0) {
        std::fprintf(stderr,
                     "anti-entropy did not drain divergence\n");
        return 1;
    }
    // Every key must now read the overwrite value from every node.
    unsigned bad = 0, reads = 0;
    for (kv::Key k = 0; k < keys; ++k) {
        for (unsigned origin = 0; origin < 4; ++origin) {
            router.get(net::NodeId(origin), k,
                       [&, k](flash::PageBuffer v,
                              kv::KvStatus st) {
                ++reads;
                if (st != kv::KvStatus::Ok ||
                    v != workload::WorkloadEngine::makeValue(
                             k ^ 0xff, 128))
                    ++bad;
            });
        }
    }
    sim.run();
    if (reads != keys * 4 || bad != 0) {
        std::fprintf(stderr,
                     "%u/%u post-repair reads wrong\n", bad, reads);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Tracing flags first (and stripped from argv: the benchmark
    // library rejects flags it does not know): --trace-out enables
    // the tracer on the traced run / smoke and exports the retained
    // span trees as Chrome trace-event JSON; --slow-trace-us arms
    // the always-on slow-request log at that threshold.
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        std::string a(argv[i]);
        if (a == "--trace-out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--trace-out needs a path\n");
                return 1;
            }
            gTraceOut = argv[++i];
            continue;
        }
        if (a == "--slow-trace-us") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--slow-trace-us needs a value\n");
                return 1;
            }
            gSlowTraceUs = std::strtoull(argv[++i], nullptr, 10);
            continue;
        }
        argv[kept++] = argv[i];
    }
    argc = kept;
    argv[argc] = nullptr;

    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--write-quorum") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--write-quorum needs a value\n");
                return 1;
            }
            globalQuorum = unsigned(std::atoi(argv[++i]));
            if (globalQuorum < 1 || globalQuorum > 2) {
                std::fprintf(stderr,
                             "--write-quorum must be 1 or 2\n");
                return 1;
            }
            continue;
        }
        if (std::string(argv[i]) == "--smoke-quorum")
            return smokeQuorum();
        // Membership smokes (CI, sanitizer preset): the full
        // crash-rebuild / join scenarios at 4 serving nodes with
        // tight detection knobs, gated on the robustness contract:
        // zero divergence after recovery and a transition p99
        // within 3x of steady state. No JSON side effects.
        if (std::string(argv[i]) == "--kill-node") {
            MemberResult r = runKillRebuild(4, 3000, true);
            std::printf("kill smoke: steady p99 %.1fus, window "
                        "p99 %.1fus, rebuild p99 %.1fus, %llu "
                        "repairs, %llu bg writes, divergent "
                        "%llu; timeouts by phase steady/window "
                        "%llu/%llu\n",
                        r.steady.p99us, r.window.p99us,
                        r.rebuild.p99us,
                        (unsigned long long)r.rebuildRepairs,
                        (unsigned long long)r.bgWrites,
                        (unsigned long long)r.divergentFinal,
                        (unsigned long long)r.steady.readTimeouts,
                        (unsigned long long)r.window.readTimeouts);
            if (r.divergentFinal != 0) {
                std::fprintf(stderr, "divergence survived the "
                                     "rebuild + final sweep\n");
                return 1;
            }
            if (r.deadTransitions == 0) {
                std::fprintf(stderr,
                             "crash was never detected\n");
                return 1;
            }
            // Phase attribution of the membership counters: the
            // crash window -- not steady state -- must account for
            // the timeout surge and every dead transition. (The
            // tight knobs sit below the 4-node steady tail, so a
            // few spurious steady timeouts are expected; the crash
            // must still dominate.) The two phase deltas must also
            // sum back to the cumulative counter, or the snapshot
            // machinery is dropping activity.
            if (r.steady.deadTransitions != 0 ||
                r.window.deadTransitions == 0) {
                std::fprintf(stderr,
                             "dead transitions misattributed: "
                             "steady %llu, window %llu\n",
                             (unsigned long long)
                                 r.steady.deadTransitions,
                             (unsigned long long)
                                 r.window.deadTransitions);
                return 1;
            }
            if (r.window.readTimeouts <= r.steady.readTimeouts) {
                std::fprintf(stderr,
                             "crash window does not own the "
                             "timeout surge: steady %llu, window "
                             "%llu\n",
                             (unsigned long long)
                                 r.steady.readTimeouts,
                             (unsigned long long)
                                 r.window.readTimeouts);
                return 1;
            }
            if (r.steady.readTimeouts + r.window.readTimeouts !=
                r.readTimeouts) {
                std::fprintf(stderr,
                             "phase deltas do not sum to the "
                             "cumulative counter: %llu + %llu != "
                             "%llu\n",
                             (unsigned long long)
                                 r.steady.readTimeouts,
                             (unsigned long long)
                                 r.window.readTimeouts,
                             (unsigned long long)r.readTimeouts);
                return 1;
            }
            if (r.window.p99us > 3.0 * r.steady.p99us) {
                std::fprintf(stderr,
                             "kill-window p99 %.1fus exceeds 3x "
                             "steady %.1fus\n",
                             r.window.p99us, r.steady.p99us);
                return 1;
            }
            return 0;
        }
        // Aged-flash smoke (CI, sanitizer preset): the full wear
        // ladder -- elevated BER, read retries, poisoned pages,
        // replica heal, block retirement, capacity pressure --
        // under live load, self-gated on the robustness contract:
        // the machinery must actually engage, every wear-destroyed
        // page must heal from its replica, nothing may be lost,
        // and the aged tail must hold within 3x of fresh. No JSON.
        if (std::string(argv[i]) == "--age") {
            AgeResult r = runAging(4, 6000);
            std::printf("age smoke: %llu keys at %.0f%% "
                        "utilization; fresh p99 %.1fus -> aged "
                        "p99 %.1fus; %llu uncorrectable senses, "
                        "%llu retries (%llu rescued), %llu pages "
                        "poisoned, %llu blocks retired, %llu "
                        "relocated pages, WA %.2f, erase "
                        "%u/%u/%u\n",
                        (unsigned long long)r.keys,
                        100.0 * r.utilization, r.fresh.p99us,
                        r.aged.p99us,
                        (unsigned long long)r.uncorrectablePages,
                        (unsigned long long)r.retriedReads,
                        (unsigned long long)r.retrySuccesses,
                        (unsigned long long)r.poisonedPages,
                        (unsigned long long)r.retiredBlocks,
                        (unsigned long long)r.relocatedPages,
                        r.writeAmp, r.eraseMin, r.eraseP50,
                        r.eraseMax);
            std::printf("age smoke: %llu local corruptions, %llu "
                        "repaired keys, divergence %llu -> %llu "
                        "(%llu corrupt left), %llu pressured "
                        "(%llu backoffs), read-back %llu/%llu "
                        "bad\n",
                        (unsigned long long)r.localCorruptions,
                        (unsigned long long)r.repairedKeys,
                        (unsigned long long)r.divergent,
                        (unsigned long long)r.divergentFinal,
                        (unsigned long long)r.corruptFinal,
                        (unsigned long long)r.pressured,
                        (unsigned long long)r.backoffs,
                        (unsigned long long)r.readBackBad,
                        (unsigned long long)r.readBack);
            if (r.uncorrectablePages == 0 ||
                r.retrySuccesses == 0) {
                std::fprintf(stderr,
                             "wear model never bit: %llu "
                             "uncorrectable, %llu rescued\n",
                             (unsigned long long)
                                 r.uncorrectablePages,
                             (unsigned long long)
                                 r.retrySuccesses);
                return 1;
            }
            if (r.retiredBlocks == 0 || r.relocatedPages == 0) {
                std::fprintf(stderr,
                             "no block retired behind the "
                             "cleaner (%llu retired, %llu "
                             "relocated)\n",
                             (unsigned long long)r.retiredBlocks,
                             (unsigned long long)
                                 r.relocatedPages);
                return 1;
            }
            if (r.divergentFinal != 0 || r.corruptFinal != 0) {
                std::fprintf(stderr,
                             "corruption survived the sweep "
                             "(%llu divergent, %llu corrupt)\n",
                             (unsigned long long)r.divergentFinal,
                             (unsigned long long)r.corruptFinal);
                return 1;
            }
            if (r.readBackBad != 0) {
                std::fprintf(stderr,
                             "%llu/%llu keys lost after heal\n",
                             (unsigned long long)r.readBackBad,
                             (unsigned long long)r.readBack);
                return 1;
            }
            if (r.writeAmp < 1.0) {
                std::fprintf(stderr,
                             "write amplification %.2f < 1\n",
                             r.writeAmp);
                return 1;
            }
            if (r.utilization < 0.78 || r.utilization > 0.93) {
                std::fprintf(stderr,
                             "occupancy %.0f%% outside the "
                             "80-90%% aged-flash band\n",
                             100.0 * r.utilization);
                return 1;
            }
            if (r.aged.p99us > 3.0 * r.fresh.p99us) {
                std::fprintf(stderr,
                             "aged p99 %.1fus exceeds 3x fresh "
                             "%.1fus\n",
                             r.aged.p99us, r.fresh.p99us);
                return 1;
            }
            return 0;
        }
        if (std::string(argv[i]) == "--expand") {
            // Default detection knobs: a join involves no failure
            // detection, and the tight timeouts sit below the
            // 4-node steady tail, manufacturing spurious retries.
            MemberResult r = runExpand(4, 3000, false);
            std::printf("expand smoke: steady p99 %.1fus, handoff "
                        "p99 %.1fus, %llu keys moved, epoch %llu, "
                        "divergent %llu, %llu read timeouts, %llu "
                        "retried reads, %llu degraded writes\n",
                        r.steady.p99us, r.window.p99us,
                        (unsigned long long)r.movedKeys,
                        (unsigned long long)r.ringEpoch,
                        (unsigned long long)r.divergentFinal,
                        (unsigned long long)r.readTimeouts,
                        (unsigned long long)r.retriedReads,
                        (unsigned long long)r.degradedWrites);
            if (r.divergentFinal != 0) {
                std::fprintf(stderr, "divergence survived the "
                                     "handoff + final sweep\n");
                return 1;
            }
            if (r.movedKeys == 0 || r.ringEpoch != 1) {
                std::fprintf(stderr, "join moved no keys\n");
                return 1;
            }
            if (r.window.p99us > 3.0 * r.steady.p99us) {
                std::fprintf(stderr,
                             "handoff-window p99 %.1fus exceeds "
                             "3x steady %.1fus\n",
                             r.window.p99us, r.steady.p99us);
                return 1;
            }
            return 0;
        }
    }
    // Cluster-scale smoke (CI, sanitizer preset): the 100-node ring
    // end to end with a reduced op budget, so the ladder queue and
    // next-hop routing run at full fan-out under ASan/UBSan. No JSON.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke-100") {
            RunResult r = runConfig(100, true, 0.99, false, 0.0,
                                    20000);
            std::printf("smoke-100: %.0f ops/s, p50 %.1f us, "
                        "p99 %.1f us, remote %llu / local %llu\n",
                        r.tput, r.p50us, r.p99us,
                        (unsigned long long)r.remoteOps,
                        (unsigned long long)r.localOps);
            if (r.tput <= 0.0) {
                std::fprintf(stderr,
                             "smoke-100 run made no progress\n");
                return 1;
            }
            if (r.divergentSwept != 0) {
                std::fprintf(stderr,
                             "smoke-100 left %llu divergent "
                             "writes after the sweep\n",
                             (unsigned long long)r.divergentSwept);
                return 1;
            }
            return 0;
        }
    }
    // Smoke mode (CI, sanitizer preset): one tiny hot-key config
    // end to end -- preload, skewed traffic, cache + coalescing +
    // spreading exercised -- with no JSON side effects.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") {
            bool traced = !gTraceOut.empty() || gSlowTraceUs != 0;
            RunResult r = runConfig(4, true, 0.99, false, 0.0,
                                    4000, true, 0, traced);
            std::printf("smoke: %.0f ops/s, p99 %.1f us "
                        "(read %.1f / write %.1f), "
                        "%llu cache-served, %llu coalesced\n",
                        r.tput, r.p99us, r.readP99us, r.writeP99us,
                        (unsigned long long)r.cacheServed,
                        (unsigned long long)r.coalesced);
            std::printf("smoke stages p99 (us): admission %.1f, "
                        "net %.1f, shard %.1f, flashq %.1f, "
                        "nand %.1f\n",
                        r.stages.admissionP99us, r.stages.netP99us,
                        r.stages.shardP99us,
                        r.stages.flashQueueP99us,
                        r.stages.nandP99us);
            if (r.tput <= 0.0) {
                std::fprintf(stderr, "smoke run made no progress\n");
                return 1;
            }
            if (traced) {
                std::printf("smoke traces: %llu started, %llu "
                            "retained (%llu slow), %llu "
                            "span-sum-checked, max err %.3f us\n",
                            (unsigned long long)r.tracesStarted,
                            (unsigned long long)r.tracesRetained,
                            (unsigned long long)r.tracesSlow,
                            (unsigned long long)r.tracedChecked,
                            r.tracedSpanSumErrUs);
                if (r.tracesStarted == 0 ||
                    r.tracesRetained == 0) {
                    std::fprintf(stderr,
                                 "tracing retained nothing\n");
                    return 1;
                }
                if (r.tracedChecked == 0 ||
                    r.tracedSpanSumErrUs != 0.0) {
                    std::fprintf(stderr,
                                 "span-sum check failed: %llu "
                                 "checked, max err %.3f us\n",
                                 (unsigned long long)
                                     r.tracedChecked,
                                 r.tracedSpanSumErrUs);
                    return 1;
                }
            }
            return 0;
        }
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (scaling.empty())
        runAll();
    printTable();

    bench::JsonCounters counters;
    auto stageFields = [&](const std::string &p,
                           const StageTails &s) {
        counters.emplace_back(p + "stage_admission_p99_us",
                              s.admissionP99us);
        counters.emplace_back(p + "stage_net_p99_us", s.netP99us);
        counters.emplace_back(p + "stage_shard_p99_us",
                              s.shardP99us);
        counters.emplace_back(p + "stage_flash_queue_p99_us",
                              s.flashQueueP99us);
        counters.emplace_back(p + "stage_nand_p99_us", s.nandP99us);
    };
    for (const auto &r : scaling) {
        std::string p = "nodes" + std::to_string(r.nodes) + "_";
        counters.emplace_back(p + "tput_ops", r.tput);
        counters.emplace_back(p + "p50_us", r.p50us);
        counters.emplace_back(p + "p99_us", r.p99us);
        counters.emplace_back(p + "p999_us", r.p999us);
        counters.emplace_back(p + "read_p99_us", r.readP99us);
        counters.emplace_back(p + "write_p99_us", r.writeP99us);
        counters.emplace_back(p + "mean_us", r.meanUs);
        counters.emplace_back(p + "suspended_programs",
                              double(r.suspendedPrograms));
        counters.emplace_back(p + "resumed_programs",
                              double(r.resumedPrograms));
        stageFields(p, r.stages);
    }
    const auto &head = scalingAt(20);
    counters.emplace_back("nodes20_cache_served",
                          double(head.cacheServed));
    counters.emplace_back("nodes20_cache_stale",
                          double(head.cacheStale));
    counters.emplace_back("nodes20_coalesced_gets",
                          double(head.coalesced));
    auto theta_label = [](const RunResult &r) {
        return r.theta == 0.0
            ? std::string("uniform")
            : "theta" + std::to_string(int(r.theta * 100));
    };
    for (const auto &r : skew) {
        counters.emplace_back("skew_" + theta_label(r) +
                                  "_tput_ops", r.tput);
        counters.emplace_back("skew_" + theta_label(r) + "_p99_us",
                              r.p99us);
    }
    for (const auto &r : skewNoCache) {
        counters.emplace_back("skew_nocache_" + theta_label(r) +
                                  "_tput_ops", r.tput);
        counters.emplace_back("skew_nocache_" + theta_label(r) +
                                  "_p99_us", r.p99us);
    }
    for (const auto &r : quorumSweep) {
        std::string p = "quorum_w" + std::to_string(r.quorum) + "_";
        counters.emplace_back(p + "tput_ops", r.tput);
        counters.emplace_back(p + "p99_us", r.p99us);
        counters.emplace_back(p + "read_p99_us", r.readP99us);
        counters.emplace_back(p + "write_p99_us", r.writeP99us);
        counters.emplace_back(p + "repair_lag",
                              double(r.repairLag));
        counters.emplace_back(p + "divergent_after_sweep",
                              double(r.divergentSwept));
    }
    counters.emplace_back("open_tput_ops", open_loop_run.tput);
    counters.emplace_back("open_p50_us", open_loop_run.p50us);
    counters.emplace_back("open_p99_us", open_loop_run.p99us);
    counters.emplace_back("open_p999_us", open_loop_run.p999us);
    counters.emplace_back("open_rejected",
                          double(open_loop_run.rejected));
    counters.emplace_back("traced_tput_ops", traced_run.tput);
    counters.emplace_back("traced_p99_us", traced_run.p99us);
    counters.emplace_back("traced_started",
                          double(traced_run.tracesStarted));
    counters.emplace_back("traced_retained",
                          double(traced_run.tracesRetained));
    counters.emplace_back("traced_slow",
                          double(traced_run.tracesSlow));
    counters.emplace_back("traced_span_checked",
                          double(traced_run.tracedChecked));
    counters.emplace_back("traced_span_sum_err_us",
                          traced_run.tracedSpanSumErrUs);
    auto mphase = [&](const std::string &p, const MemberPhase &m) {
        counters.emplace_back(p + "tput_ops", m.tput);
        counters.emplace_back(p + "p50_us", m.p50us);
        counters.emplace_back(p + "p99_us", m.p99us);
        counters.emplace_back(p + "read_timeouts",
                              double(m.readTimeouts));
        counters.emplace_back(p + "degraded_writes",
                              double(m.degradedWrites));
        counters.emplace_back(p + "dead_transitions",
                              double(m.deadTransitions));
        stageFields(p, m.stages);
    };
    mphase("member_kill_steady_", killRun.steady);
    mphase("member_kill_window_", killRun.window);
    mphase("member_kill_rebuild_", killRun.rebuild);
    mphase("member_kill_post_", killRun.post);
    counters.emplace_back("member_kill_read_timeouts",
                          double(killRun.readTimeouts));
    counters.emplace_back("member_kill_dead_transitions",
                          double(killRun.deadTransitions));
    counters.emplace_back("member_kill_degraded_writes",
                          double(killRun.degradedWrites));
    counters.emplace_back("member_kill_rebuild_repairs",
                          double(killRun.rebuildRepairs));
    counters.emplace_back("member_kill_bg_reads",
                          double(killRun.bgReads));
    counters.emplace_back("member_kill_bg_writes",
                          double(killRun.bgWrites));
    counters.emplace_back("member_kill_backoffs",
                          double(killRun.backoffs));
    counters.emplace_back("member_kill_divergent_final",
                          double(killRun.divergentFinal));
    mphase("member_expand_steady_", expandRun.steady);
    mphase("member_expand_window_", expandRun.window);
    mphase("member_expand_post_", expandRun.post);
    counters.emplace_back("member_expand_moved_keys",
                          double(expandRun.movedKeys));
    counters.emplace_back("member_expand_ring_epoch",
                          double(expandRun.ringEpoch));
    counters.emplace_back("member_expand_divergent_final",
                          double(expandRun.divergentFinal));
    counters.emplace_back("age_keys", double(ageRun.keys));
    counters.emplace_back("age_utilization", ageRun.utilization);
    counters.emplace_back("age_fresh_tput_ops", ageRun.fresh.tput);
    counters.emplace_back("age_fresh_p99_us", ageRun.fresh.p99us);
    counters.emplace_back("age_aged_tput_ops", ageRun.aged.tput);
    counters.emplace_back("age_aged_p99_us", ageRun.aged.p99us);
    counters.emplace_back("age_write_amp", ageRun.writeAmp);
    counters.emplace_back("age_erase_min", double(ageRun.eraseMin));
    counters.emplace_back("age_erase_p50", double(ageRun.eraseP50));
    counters.emplace_back("age_erase_max", double(ageRun.eraseMax));
    counters.emplace_back("age_retired_blocks",
                          double(ageRun.retiredBlocks));
    counters.emplace_back("age_bits_corrected",
                          double(ageRun.bitsCorrected));
    counters.emplace_back("age_uncorrectable_pages",
                          double(ageRun.uncorrectablePages));
    counters.emplace_back("age_retried_reads",
                          double(ageRun.retriedReads));
    counters.emplace_back("age_retry_successes",
                          double(ageRun.retrySuccesses));
    counters.emplace_back("age_retry_failures",
                          double(ageRun.retryFailures));
    counters.emplace_back("age_poisoned_pages",
                          double(ageRun.poisonedPages));
    counters.emplace_back("age_relocated_pages",
                          double(ageRun.relocatedPages));
    counters.emplace_back("age_local_corruptions",
                          double(ageRun.localCorruptions));
    counters.emplace_back("age_repaired_keys",
                          double(ageRun.repairedKeys));
    counters.emplace_back("age_corrupt_final",
                          double(ageRun.corruptFinal));
    counters.emplace_back("age_divergent_final",
                          double(ageRun.divergentFinal));
    counters.emplace_back("age_pressured",
                          double(ageRun.pressured));
    counters.emplace_back("age_backoffs",
                          double(ageRun.backoffs));
    counters.emplace_back("age_foreground_assists",
                          double(ageRun.foregroundAssists));
    counters.emplace_back("age_reserve_alarms",
                          double(ageRun.reserveAlarms));
    counters.emplace_back("age_clean_parks",
                          double(ageRun.cleanParks));
    counters.emplace_back("age_trimmed_pages",
                          double(ageRun.trimmedPages));
    counters.emplace_back("age_read_back_bad",
                          double(ageRun.readBackBad));
    bench::writeJson("BENCH_kv.json", counters);
    return 0;
}
