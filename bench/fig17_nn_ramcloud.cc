/**
 * @file
 * Reproduces Figure 17: nearest neighbor with mostly-DRAM data --
 * the ram-cloud cliff. Series: DRAM, ISP (throttled BlueDBM,
 * thread-independent), DRAM + 10% flash misses, DRAM + 5% disk
 * misses.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "bench/nn_common.hh"

namespace {

using bluedbm::sim::msToTicks;
using bluedbm::sim::usToTicks;

struct Row
{
    unsigned threads;
    double dram, isp, flash10, disk5;
};

std::vector<Row> rows;
double isp = 0;

void
runAll()
{
    isp = bench::ispNnThroughput(0.25);
    for (unsigned t = 1; t <= 8; ++t) {
        Row r;
        r.threads = t;
        r.dram = bench::dramNnThroughput(t, 0.0, 0);
        r.isp = isp;
        r.flash10 = bench::dramNnThroughput(t, 0.10, usToTicks(750));
        r.disk5 = bench::dramNnThroughput(t, 0.05, msToTicks(12));
        rows.push_back(r);
    }
}

void
printTable()
{
    bench::banner("Figure 17: nearest neighbour with mostly DRAM "
                  "(K comparisons/s)");
    std::printf("%8s %10s %10s %12s %12s\n", "Threads", "DRAM",
                "ISP", "10%Flash", "5%Disk");
    for (const auto &r : rows)
        std::printf("%8u %10.0f %10.0f %12.0f %12.0f\n", r.threads,
                    r.dram / 1e3, r.isp / 1e3, r.flash10 / 1e3,
                    r.disk5 / 1e3);
    const Row &last = rows.back();
    std::printf("\nPaper (at 8 threads): DRAM ~350K, DRAM+10%% "
                "flash < 80K, DRAM+5%% disk < 10K.\n");
    std::printf("Measured (at 8 threads): DRAM %.0fK, +10%% flash "
                "%.0fK (%.1fx drop), +5%% disk %.0fK (%.1fx "
                "drop).\n",
                last.dram / 1e3, last.flash10 / 1e3,
                last.dram / last.flash10, last.disk5 / 1e3,
                last.dram / last.disk5);
    std::printf("The ISP line is flat: BlueDBM does not depend on "
                "host threads, and\nnever suffers the cliff because "
                "ALL its data lives in flash.\n");
}

void
BM_Fig17(benchmark::State &state)
{
    for (auto _ : state) {
        rows.clear();
        runAll();
    }
    state.counters["isp"] = isp;
    state.counters["dram_8t"] = rows.back().dram;
    state.counters["flash10_8t"] = rows.back().flash10;
    state.counters["disk5_8t"] = rows.back().disk5;
}

BENCHMARK(BM_Fig17)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (rows.empty())
        runAll();
    printTable();
    return 0;
}
