/**
 * @file
 * Reproduces Figure 18: nearest neighbor on an off-the-shelf SSD.
 * Series: ISP (throttled BlueDBM), Seq Flash (accesses artificially
 * sequential, H-SFlash), Full Flash (random accesses, H-RFlash).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "bench/nn_common.hh"

namespace {

struct Row
{
    unsigned threads;
    double isp, seq, random;
};

std::vector<Row> rows;
double isp = 0;

void
runAll()
{
    isp = bench::ispNnThroughput(0.25);
    for (unsigned t = 1; t <= 8; ++t) {
        Row r;
        r.threads = t;
        r.isp = isp;
        r.seq = bench::ssdNnThroughput(t, true);
        r.random = bench::ssdNnThroughput(t, false);
        rows.push_back(r);
    }
}

void
printTable()
{
    bench::banner("Figure 18: nearest neighbour on an off-the-shelf "
                  "SSD (K comparisons/s)");
    std::printf("%8s %10s %12s %12s\n", "Threads", "ISP",
                "Seq Flash", "Full Flash");
    for (const auto &r : rows)
        std::printf("%8u %10.0f %12.0f %12.0f\n", r.threads,
                    r.isp / 1e3, r.seq / 1e3, r.random / 1e3);
    const Row &last = rows.back();
    std::printf("\nPaper shape: random access on the retail SSD is "
                "poor compared to even\nthrottled BlueDBM; "
                "artificially sequential accesses improve "
                "dramatically,\nsometimes matching throttled "
                "BlueDBM (the drive is readahead-optimized).\n");
    std::printf("Measured at 8 threads: ISP %.0fK, sequential "
                "%.0fK (%.0f%% of ISP), random %.0fK (%.0f%% of "
                "ISP).\n",
                last.isp / 1e3, last.seq / 1e3,
                100 * last.seq / last.isp, last.random / 1e3,
                100 * last.random / last.isp);
}

void
BM_Fig18(benchmark::State &state)
{
    for (auto _ : state) {
        rows.clear();
        runAll();
    }
    state.counters["isp"] = isp;
    state.counters["seq_8t"] = rows.back().seq;
    state.counters["random_8t"] = rows.back().random;
}

BENCHMARK(BM_Fig18)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (rows.empty())
        runAll();
    printTable();
    return 0;
}
