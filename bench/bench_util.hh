/**
 * @file
 * Shared helpers for the paper-reproduction benches: paper-style
 * table printing and windowed request issuing.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * It runs its simulation(s), registers the headline metrics as
 * google-benchmark counters, and prints the rows/series the paper
 * reports in plain text so outputs can be compared side by side.
 */

#ifndef BLUEDBM_BENCH_BENCH_UTIL_HH
#define BLUEDBM_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bench {

/** Ordered (name, value) counters destined for a JSON report. */
using JsonCounters = std::vector<std::pair<std::string, double>>;

/**
 * Write @p counters as a flat JSON object to @p path, so the perf
 * trajectory of every bench is machine-readable across PRs (the
 * BENCH_*.json files at the repo root).
 *
 * Non-finite values are emitted as null. Returns false (with a
 * warning on stderr) when the file cannot be written.
 */
inline bool
writeJson(const std::string &path, const JsonCounters &counters)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < counters.size(); ++i) {
        const auto &[name, value] = counters[i];
        std::fprintf(f, "  \"%s\": ", name.c_str());
        if (std::isfinite(value))
            std::fprintf(f, "%.6g", value);
        else
            std::fprintf(f, "null");
        std::fprintf(f, "%s\n", i + 1 < counters.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    bool ok = std::ferror(f) == 0;
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        std::fprintf(stderr, "bench: short write to %s\n",
                     path.c_str());
    return ok;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==============================================="
                "===============\n  %s\n"
                "================================================"
                "==============\n",
                title.c_str());
}

/**
 * Issue @p total asynchronous requests keeping at most @p depth
 * outstanding (models the bounded page buffers / request queues real
 * software uses). @p issue receives the request index and a
 * completion callback it must eventually invoke; @p all_done fires
 * after the last completion.
 */
class Window
{
  public:
    using Issue =
        std::function<void(std::uint64_t, std::function<void()>)>;

    static void
    run(std::uint64_t total, unsigned depth, Issue issue,
        std::function<void()> all_done = {})
    {
        auto st = std::make_shared<State>();
        st->total = total;
        st->issue = std::move(issue);
        st->allDone = std::move(all_done);
        pump(st, depth);
    }

  private:
    struct State
    {
        std::uint64_t total = 0;
        std::uint64_t issued = 0;
        std::uint64_t completed = 0;
        Issue issue;
        std::function<void()> allDone;
    };

    static void
    pump(std::shared_ptr<State> st, unsigned depth)
    {
        while (st->issued < st->total &&
               st->issued - st->completed < depth) {
            std::uint64_t idx = st->issued++;
            st->issue(idx, [st, depth]() {
                ++st->completed;
                if (st->completed == st->total) {
                    if (st->allDone)
                        st->allDone();
                    return;
                }
                pump(st, depth);
            });
        }
    }
};

} // namespace bench

#endif // BLUEDBM_BENCH_BENCH_UTIL_HH
