/**
 * @file
 * Reproduces Table 2: host Virtex-7 resource usage.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "resource/fpga_model.hh"

using namespace bluedbm;

namespace {

void
printTable()
{
    bench::banner("Table 2: Host Virtex 7 resource usage");
    auto cfg = resource::HostFpgaConfig{};
    auto rows = resource::hostFpgaUsage(cfg);
    auto total = resource::totalUsage(rows, "Virtex-7 Total");
    auto device = resource::virtex7();

    std::printf("%-20s %4s %8s %10s %8s %8s\n", "Module Name", "#",
                "LUTs", "Registers", "RAMB36", "RAMB18");
    for (const auto &r : rows) {
        if (r.name == "Platform glue")
            continue;
        std::printf("%-20s %4u %8u %10u %8u %8u\n", r.name.c_str(),
                    r.instances, r.luts, r.registers, r.bram36,
                    r.bram18);
    }
    std::printf("%-20s %4s %7u(%2.0f%%) %8u(%2.0f%%) %5u(%2.0f%%) "
                "%5u(%1.0f%%)\n",
                total.name.c_str(), "", total.luts,
                resource::percent(total.luts, device.luts),
                total.registers,
                resource::percent(total.registers, device.registers),
                total.bram36,
                resource::percent(total.bram36, device.bram36),
                total.bram18,
                resource::percent(total.bram18, device.bram18));
    std::printf("\nPaper: total 135271 (45%%) LUTs, 135897 (22%%) "
                "registers, 224 (22%%) RAMB36, 18 (1%%) RAMB18\n");
    std::printf("Enough space remains for accelerator development "
                "(%2.0f%% LUTs free).\n",
                100.0 - resource::percent(total.luts, device.luts));
}

void
BM_Table2HostResources(benchmark::State &state)
{
    resource::Usage total;
    for (auto _ : state) {
        auto rows =
            resource::hostFpgaUsage(resource::HostFpgaConfig{});
        total = resource::totalUsage(rows, "total");
        benchmark::DoNotOptimize(total);
    }
    state.counters["luts"] = double(total.luts);
    state.counters["registers"] = double(total.registers);
}

BENCHMARK(BM_Table2HostResources)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
