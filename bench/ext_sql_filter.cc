/**
 * @file
 * Extension experiment (paper section 8 planned work): SQL filter
 * offload. A selection query scans a table; the in-store engine
 * returns only matching records, while the conventional path ships
 * every page over PCIe for the host to filter.
 *
 * Sweeps selectivity to show where offload wins and why: the
 * in-store scan runs at card bandwidth (2.4 GB/s here) and its PCIe
 * traffic scales with selectivity, while the host scan is pinned at
 * the 1.6 GB/s host link regardless of the query.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "isp/table_scan.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/logging.hh"

using namespace bluedbm;
using sim::Tick;

namespace {

struct Row
{
    double selectivity;
    double ispGbps;    //!< table scan rate, in store
    double hostGbps;   //!< table scan rate, host filtering
    double pcieBytesPct; //!< ISP PCIe traffic as % of table size
};

std::vector<Row> rows;

constexpr std::uint64_t kTablePages = 4096; // 32 MB of records

Row
measure(double selectivity)
{
    sim::Simulator sim;
    core::ClusterParams params;
    params.topology = net::Topology::line(2);
    core::Cluster cluster(sim, params);
    auto &node = cluster.node(0);
    const auto &geo = params.node.geometry;

    // Table: key u64 | payload u64 x 7 (64-byte records).
    isp::RecordSchema schema({8, 8, 8, 8, 8, 8, 8, 8});
    std::uint32_t per_page = schema.recordsPerPage(geo.pageSize);

    // Store pages directly (a prior load phase); keys uniform in
    // [0, 1e6), predicate keeps key < selectivity * 1e6. The table
    // stripes across BOTH cards so the scan runs at 2.4 GB/s.
    sim::Rng rng(5);
    std::vector<flash::Address> addrs[2];
    for (std::uint64_t p = 0; p < kTablePages; ++p) {
        unsigned c = unsigned(p & 1);
        flash::Address a = flash::Address::fromStriped(geo, p / 2);
        addrs[c].push_back(a);
        flash::PageBuffer page(geo.pageSize, 0);
        for (std::uint32_t r = 0; r < per_page; ++r) {
            schema.store(page.data() + r * schema.recordBytes(),
                         0, rng.below(1000000));
        }
        if (node.card(c).nand().store().program(
                a, std::move(page)) != flash::Status::Ok)
            sim::fatal("table preload program failed");
    }
    node.ispServer(0).defineHandle(11, addrs[0]);
    node.ispServer(1).defineHandle(11, addrs[1]);

    // --- In-store scan: one engine per card, concurrent.
    isp::TableScanEngine engine0(sim, node.ispServer(0));
    isp::TableScanEngine engine1(sim, node.ispServer(1));
    auto threshold = std::uint64_t(selectivity * 1e6);
    Tick start = sim.now();
    std::uint64_t out_bytes = 0;
    int done = 0;
    auto collect = [&](isp::ScanResult r) {
        out_bytes += r.records.size();
        ++done;
    };
    std::vector<isp::Predicate> preds{
        {0, isp::CmpOp::Lt, threshold}};
    engine0.scan(11, schema,
                 addrs[0].size() * per_page, geo.pageSize, preds,
                 collect);
    engine1.scan(11, schema,
                 addrs[1].size() * per_page, geo.pageSize, preds,
                 collect);
    sim.run();
    Tick isp_elapsed = sim.now() - start;
    // Matching records stream over PCIe *while* the scan runs (the
    // engine emits them as it goes); the elapsed time is whichever
    // pipe drains last.
    Tick out_xfer = sim::transferTicks(
        out_bytes, node.params().pcie.devToHostBytesPerSec);
    if (out_xfer > isp_elapsed)
        isp_elapsed = out_xfer;

    // --- Host scan: every page crosses PCIe, host CPU filters.
    Tick host_start = sim.now();
    Tick host_last = 0;
    const auto &sw = node.software();
    bench::Window::run(
        kTablePages, 128,
        [&](std::uint64_t i, std::function<void()> done_cb) {
            flash::Address a = addrs[i & 1][i / 2];
            node.hostReadLocal(unsigned(i & 1), a,
                               [&, done_cb](flash::PageBuffer) {
                node.cpu().execute(sw.grepComputePerPage,
                                   [&, done_cb]() {
                    host_last = sim.now();
                    done_cb();
                });
            });
        });
    sim.run();

    std::uint64_t table_bytes = kTablePages * geo.pageSize;
    Row row;
    row.selectivity = selectivity;
    row.ispGbps = sim::bytesPerSec(table_bytes, isp_elapsed) / 1e9;
    row.hostGbps =
        sim::bytesPerSec(table_bytes, host_last - host_start) / 1e9;
    row.pcieBytesPct =
        100.0 * double(out_bytes) / double(table_bytes);
    (void)done;
    return row;
}

void
runAll()
{
    for (double s : {0.0001, 0.001, 0.01, 0.1, 0.5, 1.0})
        rows.push_back(measure(s));
}

void
printTable()
{
    bench::banner("Extension: SQL selection offload (section 8 "
                  "planned work; cf. Ibex)");
    std::printf("%12s %14s %14s %16s\n", "Selectivity",
                "ISP (GB/s)", "Host (GB/s)", "ISP PCIe traffic");
    for (const auto &r : rows)
        std::printf("%11.2f%% %14.2f %14.2f %15.2f%%\n",
                    r.selectivity * 100, r.ispGbps, r.hostGbps,
                    r.pcieBytesPct);
    std::printf("\nIn-store filtering scans at card bandwidth and "
                "ships only matches;\nthe host path is capped by "
                "PCIe (1.6 GB/s) and burns CPU on every\nrecord. "
                "At full selectivity the two converge -- offload "
                "pays off\nexactly when queries are selective, the "
                "common analytics case.\n");
}

void
BM_ExtSqlFilter(benchmark::State &state)
{
    for (auto _ : state) {
        rows.clear();
        runAll();
    }
    for (const auto &r : rows)
        state.counters[std::to_string(r.selectivity)] = r.ispGbps;
}

BENCHMARK(BM_ExtSqlFilter)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (rows.empty())
        runAll();
    printTable();
    return 0;
}
