/**
 * @file
 * Ablation: end-to-end flow control (paper section 3.2.3). With it
 * off, latency is lower but a stalled receiver backpressures links
 * that unrelated traffic needs; with it on, the stall is contained
 * at the sender at the cost of credit round trips.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "net/network.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using net::Endpoint;
using net::Message;
using net::StorageNetwork;
using net::Topology;
using sim::Tick;

namespace {

/**
 * A stalled receiver on endpoint 2 shares the 0->1->2 line with a
 * healthy stream on endpoint 3 from node 0 to node 1. Without e2e
 * flow control the stalled stream's messages pile up in link buffers
 * and slow the bystander; with it, the sender self-limits.
 */
double
bystanderGbps(bool e2e)
{
    sim::Simulator sim;
    StorageNetwork::Params p;
    p.lane.bufferBytes = 32 * 1024; // small buffers show the effect
    p.recvCapacity = 4;
    StorageNetwork net(sim, Topology::line(3), p);

    Endpoint &stalled_tx = net.endpoint(0, 2);
    if (e2e)
        stalled_tx.enableEndToEnd(4);
    // Victim stream: node 0 -> node 1 (shares the first link).
    int got = 0;
    Tick last = 0;
    net.endpoint(1, 3).setReceiveHandler([&](Message) {
        ++got;
        last = sim.now();
    });

    const int msgs = 1500;
    for (int i = 0; i < msgs; ++i) {
        stalled_tx.send(2, 4096, {}); // receiver never drains
        net.endpoint(0, 3).send(1, 4096, {});
    }
    sim.run();
    return sim::bytesPerSec(std::uint64_t(got) * 4096, last) * 8 /
        1e9;
}

/** Latency cost of e2e on a long path with a small credit window. */
double
streamLatencyUs(bool e2e)
{
    sim::Simulator sim;
    StorageNetwork net(sim, Topology::line(6),
                       StorageNetwork::Params{});
    Endpoint &tx = net.endpoint(0, 1);
    if (e2e)
        tx.enableEndToEnd(2);
    Tick lastv = 0;
    net.endpoint(5, 1).setReceiveHandler(
        [&](Message) { lastv = sim.now(); });
    for (int i = 0; i < 200; ++i)
        tx.send(5, 512, {});
    sim.run();
    return sim::ticksToUs(lastv) / 200.0;
}

double victim_off = 0, victim_on = 0, lat_off = 0, lat_on = 0;

void
runAll()
{
    victim_off = bystanderGbps(false);
    victim_on = bystanderGbps(true);
    lat_off = streamLatencyUs(false);
    lat_on = streamLatencyUs(true);
}

void
printTable()
{
    bench::banner("Ablation: end-to-end flow control");
    std::printf("Bystander throughput next to a stalled receiver:\n");
    std::printf("  %-24s %8.2f Gb/s\n", "e2e off (link blocking)",
                victim_off);
    std::printf("  %-24s %8.2f Gb/s (%.1fx better)\n",
                "e2e on (self-limiting)", victim_on,
                victim_on / victim_off);
    std::printf("\nPer-message cost of a tight credit window over "
                "5 hops:\n");
    std::printf("  %-24s %8.2f us/msg\n", "e2e off", lat_off);
    std::printf("  %-24s %8.2f us/msg (%.1fx slower)\n", "e2e on",
                lat_on, lat_on / lat_off);
    std::printf("\nThis is the paper's stated trade-off: omit "
                "end-to-end flow control\nonly when the receiver is "
                "guaranteed to drain.\n");
}

void
BM_AblationFlowControl(benchmark::State &state)
{
    for (auto _ : state)
        runAll();
    state.counters["victim_gbps_e2e_off"] = victim_off;
    state.counters["victim_gbps_e2e_on"] = victim_on;
}

BENCHMARK(BM_AblationFlowControl)->Iterations(1)
    ->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (victim_off == 0)
        runAll();
    printTable();
    return 0;
}
