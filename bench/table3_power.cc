/**
 * @file
 * Reproduces Table 3: estimated node power, plus the rack-level
 * power comparison against a ram cloud sized for the same dataset
 * (paper sections 6.2 and 8).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "resource/power_model.hh"

using namespace bluedbm;

namespace {

void
printTable()
{
    bench::banner("Table 3: BlueDBM estimated power consumption");
    resource::NodePower p;
    std::printf("%-18s %10s\n", "Component", "Power (W)");
    std::printf("%-18s %10.0f\n", "VC707", p.vc707Watts);
    std::printf("%-18s %10.0f\n", "Flash Board x2",
                p.flashBoardWatts * p.flashBoards);
    std::printf("%-18s %10.0f\n", "Xeon Server", p.xeonServerWatts);
    std::printf("%-18s %10.0f\n", "Node Total", p.totalWatts());
    std::printf("\nBlueDBM adds %.0f%% to node power (paper: "
                "\"less than 20%%\").\n",
                100.0 * p.deviceFraction());

    bench::banner("Rack vs. ram cloud for a 20 TB dataset "
                  "(sections 1, 8)");
    resource::ClusterComparison cmp;
    std::printf("BlueDBM:  %3u nodes x %3.0f W = %7.0f W\n",
                cmp.bluedbmNodes, cmp.nodePower.totalWatts(),
                cmp.bluedbmWatts());
    std::printf("RamCloud: %3u servers (%u GB DRAM each) x %3.0f W "
                "= %7.0f W\n",
                cmp.ramcloudServers(), cmp.ramcloudServerGB,
                cmp.ramcloudServerWatts, cmp.ramcloudWatts());
    std::printf("Power advantage: %.1fx (paper claims an order of "
                "magnitude including cost)\n",
                cmp.powerAdvantage());
}

void
BM_Table3Power(benchmark::State &state)
{
    resource::NodePower p;
    for (auto _ : state)
        benchmark::DoNotOptimize(p.totalWatts());
    state.counters["node_watts"] = p.totalWatts();
    state.counters["device_fraction"] = p.deviceFraction();
}

BENCHMARK(BM_Table3Power)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
