/**
 * @file
 * Reproduces Table 1: flash controller resource usage on the
 * Artix-7 of one custom flash card.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "resource/fpga_model.hh"

using namespace bluedbm;

namespace {

void
printTable()
{
    bench::banner("Table 1: Flash controller on Artix 7 resource "
                  "usage");
    auto cfg = resource::FlashControllerConfig{};
    auto rows = resource::flashControllerUsage(cfg);
    auto total = resource::totalUsage(rows, "Artix-7 Total");
    auto device = resource::artix7();

    std::printf("%-22s %4s %8s %10s %6s\n", "Module Name", "#",
                "LUTs", "Registers", "BRAM");
    for (const auto &r : rows) {
        if (r.name == "Controller glue")
            continue; // implicit in the paper's table as well
        std::printf("%-22s %4u %8u %10u %6u\n", r.name.c_str(),
                    r.instances, r.luts, r.registers, r.bram36);
    }
    std::printf("%-22s %4s %7u(%2.0f%%) %8u(%2.0f%%) %4u(%2.0f%%)\n",
                total.name.c_str(), "",
                total.luts,
                resource::percent(total.luts, device.luts),
                total.registers,
                resource::percent(total.registers, device.registers),
                total.bram36,
                resource::percent(total.bram36, device.bram36));
    std::printf("\nPaper: total 75225 (56%%) LUTs, 62801 (23%%) "
                "registers, 181 (50%%) BRAM\n");
}

void
BM_Table1FlashResources(benchmark::State &state)
{
    resource::Usage total;
    for (auto _ : state) {
        auto rows = resource::flashControllerUsage(
            resource::FlashControllerConfig{});
        total = resource::totalUsage(rows, "total");
        benchmark::DoNotOptimize(total);
    }
    state.counters["luts"] = double(total.luts);
    state.counters["registers"] = double(total.registers);
    state.counters["bram"] = double(total.bram36);
}

BENCHMARK(BM_Table1FlashResources)->Iterations(1);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
