/**
 * @file
 * Reproduces Figure 19: nearest neighbor with in-store processing
 * versus host software on the same (throttled) BlueDBM device.
 * The ISP processes at device bandwidth with no host involvement;
 * the software path pays PCIe, interrupts and per-item CPU.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.hh"
#include "bench/nn_common.hh"

namespace {

struct Row
{
    unsigned threads;
    double isp, sw;
};

std::vector<Row> rows;
double isp = 0, full_isp = 0, full_sw_cap = 0;

void
runAll()
{
    isp = bench::ispNnThroughput(0.25);
    full_isp = bench::ispNnThroughput(1.0);
    for (unsigned t = 1; t <= 8; ++t) {
        Row r;
        r.threads = t;
        r.isp = isp;
        r.sw = bench::hostSwNnThroughput(t, 0.25);
        rows.push_back(r);
    }
    // Unthrottled software ceiling: PCIe at 1.6 GB/s.
    full_sw_cap = 1.6e9 / 8192.0;
}

void
printTable()
{
    bench::banner("Figure 19: nearest neighbour with in-store "
                  "processing (K comparisons/s)");
    std::printf("%8s %10s %14s\n", "Threads", "ISP", "BlueDBM+SW");
    for (const auto &r : rows)
        std::printf("%8u %10.0f %14.0f\n", r.threads, r.isp / 1e3,
                    r.sw / 1e3);
    const Row &last = rows.back();
    std::printf("\nPaper: accelerator advantage at least 20%% "
                "throttled; 30%%+ unthrottled\n(software capped by "
                "PCIe at 1.6 GB/s while the ISP runs at "
                "2.4 GB/s).\n");
    std::printf("Measured throttled advantage at 8 threads: "
                "%.0f%%.\n",
                100.0 * (last.isp - last.sw) / last.sw);
    std::printf("Unthrottled: ISP %.0fK vs software PCIe ceiling "
                "%.0fK -> %.0f%% advantage.\n",
                full_isp / 1e3, full_sw_cap / 1e3,
                100.0 * (full_isp - full_sw_cap) / full_sw_cap);
}

void
BM_Fig19(benchmark::State &state)
{
    for (auto _ : state) {
        rows.clear();
        runAll();
    }
    state.counters["isp"] = isp;
    state.counters["sw_8t"] = rows.back().sw;
}

BENCHMARK(BM_Fig19)->Iterations(1)->Unit(benchmark::kSecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (rows.empty())
        runAll();
    printTable();
    return 0;
}
