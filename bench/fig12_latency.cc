/**
 * @file
 * Reproduces Figure 12: latency of remote data access, broken into
 * software / storage / data transfer / network components (see also
 * figure 14 for the decomposition).
 *
 * Access types:
 *   ISP-F   in-store processor -> remote flash
 *   H-F     host software -> remote flash (integrated network)
 *   H-RH-F  host software -> remote host software -> its flash
 *   H-D     host software -> remote host software -> its DRAM
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "sim/simulator.hh"

using namespace bluedbm;
using core::Cluster;
using core::ClusterParams;
using flash::PageBuffer;
using sim::Tick;

namespace {

struct Breakdown
{
    std::string name;
    double softwareUs = 0;
    double storageUs = 0;
    double transferUs = 0;
    double networkUs = 0;

    double
    total() const
    {
        return softwareUs + storageUs + transferUs + networkUs;
    }
};

ClusterParams
twoNodes()
{
    ClusterParams p;
    p.topology = net::Topology::line(2);
    return p;
}

std::vector<Breakdown> results;

/** Measure one access path end to end and decompose it. */
template <typename Issue>
Breakdown
measure(const std::string &name, bool local_sw, bool remote_sw,
        bool storage, Issue issue)
{
    sim::Simulator sim;
    Cluster cluster(sim, twoNodes());
    flash::Address addr{0, 0, 0, 0};

    Tick done_at = 0;
    issue(cluster, addr, [&](PageBuffer) { done_at = sim.now(); });
    sim.run();

    const auto &node = cluster.params().node;
    const auto &sw = node.software;
    const auto &pcie = node.pcie;
    const auto &lane = cluster.network().laneParams();

    Breakdown b;
    b.name = name;
    if (local_sw)
        b.softwareUs += sim::ticksToUs(
            sw.requestSetup + pcie.rpcLatency + pcie.interruptLatency);
    if (remote_sw)
        b.softwareUs += sim::ticksToUs(
            sw.remoteService + pcie.interruptLatency +
            pcie.rpcLatency);
    if (storage)
        b.storageUs = sim::ticksToUs(node.timing.readUs);
    // Request + response each cross one hop.
    b.networkUs = sim::ticksToUs(2 * lane.hopLatency);
    double total = sim::ticksToUs(done_at);
    b.transferUs = total - b.softwareUs - b.storageUs - b.networkUs;
    return b;
}

void
runAll()
{
    results.push_back(measure(
        "ISP-F", false, false, true,
        [](Cluster &c, const flash::Address &a, auto cb) {
            c.node(0).ispReadRemote(1, 0, a, cb);
        }));
    results.push_back(measure(
        "H-F", true, false, true,
        [](Cluster &c, const flash::Address &a, auto cb) {
            c.node(0).hostReadRemote(1, 0, a, cb);
        }));
    results.push_back(measure(
        "H-RH-F", true, true, true,
        [](Cluster &c, const flash::Address &a, auto cb) {
            c.node(0).hostReadRemoteViaHost(1, 0, a, cb);
        }));
    results.push_back(measure(
        "H-D", true, true, false,
        [](Cluster &c, const flash::Address &, auto cb) {
            c.node(0).hostReadRemoteDram(1, 8192, cb);
        }));
}

void
printTable()
{
    bench::banner("Figure 12: latency of remote data access (8 KB)");
    std::printf("%-8s %10s %10s %12s %10s %10s\n", "Access",
                "Software", "Storage", "DataXfer", "Network",
                "Total");
    for (const auto &b : results) {
        std::printf("%-8s %9.1fus %9.1fus %11.1fus %9.2fus "
                    "%9.1fus\n",
                    b.name.c_str(), b.softwareUs, b.storageUs,
                    b.transferUs, b.networkUs, b.total());
    }
    std::printf("\nPaper's qualitative shape: network latency is "
                "insignificant in all\ncases; data transfer is "
                "similar except H-D (slightly lower); ISP-F\navoids "
                "all software latency; H-RH-F pays both hosts' "
                "software and\nsits ~3x above ISP-F; ISP-F overlaps "
                "storage and network access.\n");

    bench::JsonCounters counters;
    for (const auto &b : results) {
        counters.emplace_back(b.name + "_total_us", b.total());
        counters.emplace_back(b.name + "_software_us", b.softwareUs);
        counters.emplace_back(b.name + "_transfer_us", b.transferUs);
    }
    bench::writeJson("BENCH_fig12.json", counters);
}

void
BM_Fig12Latency(benchmark::State &state)
{
    for (auto _ : state) {
        results.clear();
        runAll();
    }
    for (const auto &b : results)
        state.counters[b.name + "_us"] = b.total();
}

BENCHMARK(BM_Fig12Latency)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    if (results.empty())
        runAll();
    printTable();
    return 0;
}
