/**
 * @file
 * Log-structured flash file system in the style of RFS (paper
 * section 4).
 *
 * Instead of hiding flash behind an FTL, the file system itself
 * performs logical-to-physical mapping and garbage collection, and --
 * crucially for BlueDBM -- can hand applications the *physical
 * locations* of a file's pages (figure 8 step 1), which user code
 * streams to in-store processors so the hardware can read flash
 * directly (steps 2-3).
 *
 * Data is written out-of-place at a log frontier striped across
 * buses; a segment cleaner relocates live pages from mostly-dead
 * blocks. Metadata (directory, inodes) lives in host memory; metadata
 * persistence is out of scope for the simulation (the paper's
 * evaluation does not exercise it either).
 *
 * Small appends group-commit: every page has at most one program
 * in flight, and rewrites of a page that arrive while one is in
 * flight (the tail page of a hot log under back-to-back appends)
 * accumulate and are absorbed by a single follow-up program -- the
 * staged content of a page always supersedes earlier stagings, so
 * the newest rewrite carries every waiter's bytes. This turns K
 * queued tail rewrites into ~2 programs per NAND program window
 * without giving up bus parallelism across distinct pages.
 *
 * Append-failure semantics (see append()): an append reserves its
 * byte range in the file immediately -- size() grows before
 * durability and never rolls back, so concurrent appends compute
 * stable offsets. done(false) is the durability-failure signal; the
 * affected range reads as each page's previous contents (zeroes for
 * fresh pages, which additionally report ok=false) until a later
 * append rewrites the shared tail page from the in-memory tail,
 * which heals it. Callers that index into the log (kv::KvShard)
 * own rolling back their pointers into a failed range.
 */

#ifndef BLUEDBM_FS_LOG_FS_HH
#define BLUEDBM_FS_LOG_FS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flash/flash_server.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace fs {

/**
 * File-system tuning knobs.
 */
struct FsParams
{
    /** Blocks kept in reserve for the cleaner. */
    unsigned cleanLowWater = 4;
    /** Cleaner frees blocks until this many are free. */
    unsigned cleanHighWater = 8;
    /**
     * Optional second FlashServer interface reserved for reads:
     * when the primary interface's queue (pending + in flight)
     * reaches readSpreadDepth, page reads stripe onto this one so a
     * read-hot file is not serialized behind one command queue.
     * Writes and erases stay on the primary interface, whose
     * in-order completion the tail-rewrite protocol depends on.
     * -1 disables spreading.
     */
    int spillInterface = -1;
    /** Primary-interface queue depth that triggers read spreading. */
    unsigned readSpreadDepth = 8;
    /**
     * Program coalescing on the primary interface: page writes from
     * different files (or different pages of one file) headed for
     * the same bus that arrive within writeBatchWindow of each other
     * flush as one command group and share a NAND program window per
     * chip (FlashServer::enableWriteBatching). 0 disables the stage.
     * The stage is contention-gated: a write only ever stages while
     * another write to the same bus is ahead of it, so an
     * uncontended writer (a lone log's tail chain) is never slowed.
     */
    unsigned writeBatchMax = 4;
    /** Ticks a staged page write may wait while the queue is busy
     * (a small fraction of tPROG: enough to gather a concurrent
     * burst, cheap against the program it may share). */
    sim::Tick writeBatchWindow = sim::usToTicks(8);
    /**
     * Capacity red-line: at or below this many free blocks the FS
     * reports pressure (underPressure(); kv::KvShard sheds puts
     * with a retryable status) and the cleaner's page moves
     * escalate from Background pacing to foreground
     * (flash::Priority::Read) assists until the line is recrossed.
     * Must sit below cleanLowWater so ordinary cleaning engages
     * first.
     */
    unsigned pressureLowWater = 2;
};

/**
 * Log-structured file system over one flash card.
 */
class LogFs
{
  public:
    using Done = std::function<void(bool ok)>;
    using ReadDone = std::function<void(std::vector<std::uint8_t>,
                                        bool ok)>;

    /**
     * @param sim    simulation kernel
     * @param server in-order flash interface
     * @param ifc    FlashServer interface reserved for FS traffic
     * @param geo    geometry of the card behind @p server
     * @param params tuning knobs
     */
    LogFs(sim::Simulator &sim, flash::FlashServer &server,
          unsigned ifc, const flash::Geometry &geo,
          const FsParams &params = FsParams{});

    /** Page size in bytes. */
    std::uint32_t pageSize() const { return geo_.pageSize; }

    /** Create an empty file. False if it already exists. */
    [[nodiscard]] bool create(const std::string &name);

    /** Whether @p name exists. */
    [[nodiscard]] bool exists(const std::string &name) const;

    /** Size of @p name in bytes; 0 if missing. */
    std::uint64_t size(const std::string &name) const;

    /** Delete @p name, invalidating its pages. */
    [[nodiscard]] bool remove(const std::string &name);

    /**
     * Drop the physical backing of file page @p fpage of @p name:
     * the page's bytes read as zeroes (ok = true) from now on and
     * the physical page stops counting as live, so the cleaner can
     * reclaim its block without moving it. The log's byte range is
     * untouched -- offsets of later records stay valid. This is how
     * an index that knows a record is dead (kv::KvShard after every
     * record of a page is superseded) turns logical garbage into
     * reclaimable flash space. False if the file is missing or the
     * page has no backing to drop.
     */
    [[nodiscard]] bool trim(const std::string &name,
                            std::uint64_t fpage);

    /** Names of all files. */
    std::vector<std::string> list() const;

    /**
     * Append @p data to @p name. Data is buffered into page-sized
     * log writes; @p done fires when everything is on flash.
     *
     * Failure semantics: the byte range is reserved immediately
     * (size() includes it whether or not the programs succeed, so
     * offsets handed to concurrent appends stay stable). If any
     * page program fails, @p done fires with false; a page that had
     * earlier contents keeps them (the aborted program touched
     * nothing), a fresh page becomes a poisoned hole that reads as
     * zeroes with ok=false. The failed bytes stay staged in the
     * in-memory tail when they fall in the tail page, so the next
     * successful append rewrites -- and heals -- that page.
     *
     * @p pri is the flash traffic class of the page programs:
     * serving appends default to flash::Priority::Read (a client
     * ack is waiting on them); maintenance appends -- anti-entropy
     * repair pushes -- pass flash::Priority::Background so the NAND
     * statistics attribute them to maintenance. When rewrites of
     * one tail page batch, a single serving-class waiter escalates
     * the whole follow-up program to the serving class.
     */
    void append(const std::string &name,
                std::vector<std::uint8_t> data, Done done,
                flash::Priority pri = flash::Priority::Read,
                std::uint64_t trace = 0);

    /**
     * Read @p len bytes at @p offset of @p name. ok is false when
     * the range covers an uncorrectable page or a poisoned hole
     * left by a failed append.
     *
     * @p pri is the flash traffic class of the page reads: serving
     * gets ride Priority::Read (may suspend programs, drain through
     * the serving delivery stream); maintenance readers -- replica
     * rebuild streaming a crashed node back to currency -- pass
     * Background so recovery I/O never suspends serving programs
     * and is attributed to the maintenance counters at the NAND.
     * Background reads also skip read spreading: the spill
     * interface is reserved headroom for serving tails.
     *
     * @p trace (here and on append(); sim::Tracer handle, 0 =
     * untraced) parents an `fs.read` / `fs.append` span covering
     * the call to its completion, with the flash server's queue and
     * op spans nested inside.
     */
    void read(const std::string &name, std::uint64_t offset,
              std::uint64_t len, ReadDone done,
              flash::Priority pri = flash::Priority::Read,
              std::uint64_t trace = 0);

    /**
     * Physical locations of the file's pages, in file order: the
     * query user applications issue before streaming addresses to an
     * in-store processor (figure 8 step 1).
     */
    std::vector<flash::Address>
    physicalAddresses(const std::string &name) const;

    /**
     * Publish @p name's physical locations to the flash server's
     * address translation unit under @p handle, so in-store
     * processors can reference the file by handle.
     */
    void publishHandle(const std::string &name, std::uint32_t handle);

    /** @name Statistics
     *
     * Registry-backed (`fs.*`, labeled by instance); the accessors
     * are thin reads kept for existing callers.
     */
    ///@{
    std::uint64_t pagesWritten() const { return pagesWritten_.value(); }
    std::uint64_t pagesCleaned() const { return pagesCleaned_.value(); }
    std::uint64_t blocksErased() const { return blocksErased_.value(); }
    unsigned freeBlocks() const { return unsigned(freeBlocks_.size()); }
    /** Blocks the card holds (any state). */
    unsigned totalBlocks() const { return unsigned(blocks_.size()); }
    /** Page programs that completed with a failure status. */
    std::uint64_t pageWriteFailures() const { return writeFailures_.value(); }
    /** Page reads diverted to the spill interface. */
    std::uint64_t spreadReads() const { return spreadReads_.value(); }
    /** Page rewrites absorbed by an already-pending program
     * (group commit of back-to-back tail appends). */
    std::uint64_t batchedPageWrites() const { return batchedWrites_.value(); }
    /** Blocks permanently pulled from service (wear-out / bad). */
    std::uint64_t retiredBlocks() const { return retiredBlocks_.value(); }
    /** Pages whose flash copy stayed uncorrectable and was
     * unmapped; the range reads as zeroes with ok = false. */
    std::uint64_t poisonedPages() const { return poisonedPages_.value(); }
    /** Retirements that left the free reserve under cleanLowWater. */
    std::uint64_t reserveAlarms() const { return reserveAlarms_.value(); }
    /** Cleaner page moves escalated to the serving class under
     * capacity pressure. */
    std::uint64_t foregroundAssists() const { return foregroundAssists_.value(); }
    /** Clean passes that parked a victim still holding live pages
     * (relocation failures mid-clean) instead of erasing it. */
    std::uint64_t cleanParks() const { return cleanParks_.value(); }
    /** File pages trimmed by the index layer. */
    std::uint64_t trimmedPages() const { return trimmedPages_.value(); }
    ///@}

    /** Whether free blocks are at or below the capacity red-line
     * (FsParams::pressureLowWater). */
    [[nodiscard]] bool
    underPressure() const
    {
        return freeBlocks_.size() <= params_.pressureLowWater;
    }

    /** Whether free blocks are down to the cleaner's relocation
     * reserve: even maintenance-class appends (replica repair),
     * which bypass the ordinary red-line, must shed here -- the
     * last block is what lets the cleaner keep making forward
     * progress at all. */
    [[nodiscard]] bool
    exhausted() const
    {
        return freeBlocks_.size() <= cleanReserve;
    }

  private:
    /** Free blocks the allocator holds back for cleaner relocation:
     * an ordinary append may never open the last free block, or a
     * burst of admitted appends could strand the cleaner with no
     * destination and deadlock reclamation. */
    static constexpr std::size_t cleanReserve = 1;
    static constexpr std::uint64_t invalidPage = ~std::uint64_t(0);
    /** A fresh page whose program failed: a poisoned hole. */
    static constexpr std::uint64_t failedPage = ~std::uint64_t(0) - 1;
    /** A page trimmed by the index layer: reads as zeroes, ok. */
    static constexpr std::uint64_t trimmedPage = ~std::uint64_t(0) - 2;

    /** Retired: permanently out of service (endurance tripped or a
     * program hit a bad block); never refreed, never a clean
     * victim. */
    enum class BlockState : std::uint8_t { Free, Active, Closed,
                                           Retired };

    struct Inode
    {
        std::uint64_t bytes = 0;
        //! physical linear page per file page (in file order)
        std::vector<std::uint64_t> pages;
        //! bytes buffered but not yet flushed into the last page
        std::vector<std::uint8_t> tail;
    };

    struct BlockInfo
    {
        std::uint32_t livePages = 0;
        /** Programs issued but not yet completed; the cleaner must
         * not erase a block whose pages are still being written. */
        std::uint32_t pendingWrites = 0;
        BlockState state = BlockState::Free;
    };

    struct RevEntry
    {
        std::uint32_t fileId = 0;
        std::uint64_t filePage = 0;
    };

    /**
     * Single-writer slot of one (file, page): at most one program
     * in flight; rewrites arriving meanwhile batch into pending and
     * are issued as one follow-up program. Lives outside the inode
     * so completions survive a concurrent remove().
     */
    struct WriteSlot
    {
        std::vector<Done> flightWaiters; //!< served by the program in flight
        bool hasPending = false;
        flash::PageBuffer pendingData;   //!< latest staging supersedes
        std::vector<Done> pendingWaiters;
        /** Class of the pending follow-up program: Read as soon as
         * any batched waiter is serving-class. */
        flash::Priority pendingPri = flash::Priority::Background;
        /** Tracing span of the follow-up program: the first traced
         * contributor of the batch carries it. */
        std::uint64_t pendingTrace = 0;
    };

    std::uint64_t blockIndex(const flash::Address &a) const;
    flash::Address blockAddress(std::uint64_t bidx) const;

    /** Hand out the next log page. @p clean marks a cleaner
     * relocation: it alone may dip into the reserve (see
     * cleanReserve) and may overtake ordinary waiters parked on
     * it. */
    void allocatePage(std::function<void(flash::Address)> got,
                      bool clean = false);
    void pumpAlloc();
    /** Try to grant one page under @p clean's reserve rules. */
    [[nodiscard]] bool tryGrant(bool clean, flash::Address *out);
    void maybeClean();
    void cleanStep();
    void relocate(std::vector<std::uint64_t> pages, std::size_t next,
                  std::function<void()> then);

    /**
     * Pull block @p bidx out of service permanently: drop it from
     * the free list / its bus frontier, and kick off a Background
     * relocation of any pages still live in it. Idempotent.
     */
    void retireBlock(std::uint64_t bidx);

    /**
     * The flash copy of (file, page) at linear @p phys stayed
     * uncorrectable: unmap it (livePages drops, the cleaner can
     * reclaim the block) and mark the file page as a poisoned hole
     * so reads report failure until a rewrite -- or a replica
     * repair one level up -- heals it. No-op if the mapping moved.
     */
    void poisonPage(std::uint32_t file_id, std::uint64_t fpage,
                    std::uint64_t phys);

    /** Traffic class for cleaner page moves: Background normally,
     * the serving class when free blocks are under the red-line
     * (bounded foreground assist). */
    flash::Priority cleanPriority();

    /** Queue one page program through the page's write slot
     * (batches rewrites while a program is in flight). */
    void queuePageWrite(std::uint32_t file_id, std::uint64_t fpage,
                        flash::PageBuffer data, Done done,
                        flash::Priority pri, std::uint64_t trace);
    /** Issue the slot's program for (file, page). */
    void issueSlot(std::uint32_t file_id, std::uint64_t fpage,
                   flash::PageBuffer data, flash::Priority pri,
                   std::uint64_t trace);
    static std::uint64_t
    slotKey(std::uint32_t file_id, std::uint64_t fpage)
    {
        return (std::uint64_t(file_id) << 32) | fpage;
    }

    /** Write one full page of @p inode at file page @p fpage. */
    void writeFilePage(std::uint32_t file_id, std::uint64_t fpage,
                       flash::PageBuffer data, Done done,
                       flash::Priority pri, std::uint64_t trace);

    sim::Simulator &sim_;
    flash::FlashServer &server_;
    unsigned ifc_;
    FsParams params_;
    flash::Geometry geo_;

    std::unordered_map<std::string, std::uint32_t> names_;
    std::unordered_map<std::uint32_t, Inode> inodes_;
    std::uint32_t nextFileId_ = 1;

    std::unordered_map<std::uint64_t, RevEntry> reverse_;
    /** Active write slots, keyed by slotKey(file, page). */
    std::unordered_map<std::uint64_t, WriteSlot> writeSlots_;
    std::vector<BlockInfo> blocks_;
    std::deque<std::uint64_t> freeBlocks_;
    struct AllocWaiter
    {
        std::function<void(flash::Address)> got;
        bool clean = false; //!< cleaner relocation: reserve-eligible
    };
    std::deque<AllocWaiter> allocWaiters_;

    /** One log frontier per bus: file data stripes across channels
     * so in-store processors can stream at full card bandwidth. */
    struct ActiveBlock
    {
        bool open = false;
        std::uint64_t block = 0;
        std::uint32_t nextPage = 0;
    };
    std::vector<ActiveBlock> active_;
    std::uint32_t nextBus_ = 0;
    bool cleaning_ = false;

    /** Construction serial among file systems; the "inst" label of
     * the fs.* metrics below. */
    unsigned inst_;
    // Registry-backed statistics (accessors above are thin reads).
    sim::Counter &pagesWritten_;
    sim::Counter &pagesCleaned_;
    sim::Counter &blocksErased_;
    sim::Counter &writeFailures_;
    sim::Counter &spreadReads_;
    sim::Counter &batchedWrites_;
    sim::Counter &retiredBlocks_;
    sim::Counter &poisonedPages_;
    sim::Counter &reserveAlarms_;
    sim::Counter &foregroundAssists_;
    sim::Counter &cleanParks_;
    sim::Counter &trimmedPages_;
};

} // namespace fs
} // namespace bluedbm

#endif // BLUEDBM_FS_LOG_FS_HH
