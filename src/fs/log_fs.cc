#include "fs/log_fs.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace fs {

using flash::Address;
using flash::PageBuffer;
using flash::Status;

namespace {

sim::Counter &
cell(sim::Simulator &sim, unsigned inst, const char *name)
{
    return sim.metrics().counter(name,
                                 {{"inst", std::to_string(inst)}});
}

} // namespace

LogFs::LogFs(sim::Simulator &sim, flash::FlashServer &server,
             unsigned ifc, const flash::Geometry &geo,
             const FsParams &params)
    : sim_(sim), server_(server), ifc_(ifc), params_(params), geo_(geo),
      inst_(sim.metrics().nextInstance("fs")),
      pagesWritten_(cell(sim, inst_, "fs.pages_written")),
      pagesCleaned_(cell(sim, inst_, "fs.pages_cleaned")),
      blocksErased_(cell(sim, inst_, "fs.blocks_erased")),
      writeFailures_(cell(sim, inst_, "fs.write_failures")),
      spreadReads_(cell(sim, inst_, "fs.spread_reads")),
      batchedWrites_(cell(sim, inst_, "fs.batched_page_writes")),
      retiredBlocks_(cell(sim, inst_, "fs.retired_blocks")),
      poisonedPages_(cell(sim, inst_, "fs.poisoned_pages")),
      reserveAlarms_(cell(sim, inst_, "fs.reserve_alarms")),
      foregroundAssists_(cell(sim, inst_, "fs.foreground_assists")),
      cleanParks_(cell(sim, inst_, "fs.clean_parks")),
      trimmedPages_(cell(sim, inst_, "fs.trimmed_pages"))
{
    // The red-line must sit below the cleaning trigger so ordinary
    // cleaning engages before pressure shedding; clamp rather than
    // reject so callers that only tightened cleanLowWater keep
    // working.
    if (params_.cleanLowWater > 0 &&
        params_.pressureLowWater >= params_.cleanLowWater)
        params_.pressureLowWater = params_.cleanLowWater - 1;
    sim.metrics().registerGauge(
        "fs.free_blocks", {{"inst", std::to_string(inst_)}},
        [this]() { return double(freeBlocks_.size()); });
    if (params_.spillInterface >= 0 &&
        (unsigned(params_.spillInterface) >= server_.interfaces() ||
         unsigned(params_.spillInterface) == ifc_))
        sim::fatal("spill interface %d invalid (primary %u of %u)",
                   params_.spillInterface, ifc_,
                   server_.interfaces());
    if (params_.writeBatchMax >= 2)
        server_.enableWriteBatching(ifc_, params_.writeBatchMax,
                                    params_.writeBatchWindow);
    std::uint64_t total_blocks =
        std::uint64_t(geo_.buses) * geo_.chipsPerBus *
        geo_.blocksPerChip;
    blocks_.assign(total_blocks, BlockInfo{});
    for (std::uint32_t blk = 0; blk < geo_.blocksPerChip; ++blk) {
        for (std::uint32_t chip = 0; chip < geo_.chipsPerBus; ++chip) {
            for (std::uint32_t bus = 0; bus < geo_.buses; ++bus) {
                Address a{bus, chip, blk, 0};
                freeBlocks_.push_back(blockIndex(a));
            }
        }
    }
    active_.assign(geo_.buses, ActiveBlock{});
}

std::uint64_t
LogFs::blockIndex(const Address &a) const
{
    return (std::uint64_t(a.bus) * geo_.chipsPerBus + a.chip) *
        geo_.blocksPerChip + a.block;
}

Address
LogFs::blockAddress(std::uint64_t bidx) const
{
    Address a;
    a.block = static_cast<std::uint32_t>(bidx % geo_.blocksPerChip);
    bidx /= geo_.blocksPerChip;
    a.chip = static_cast<std::uint32_t>(bidx % geo_.chipsPerBus);
    bidx /= geo_.chipsPerBus;
    a.bus = static_cast<std::uint32_t>(bidx);
    a.page = 0;
    return a;
}

bool
LogFs::create(const std::string &name)
{
    if (names_.count(name))
        return false;
    std::uint32_t id = nextFileId_++;
    names_[name] = id;
    inodes_[id] = Inode{};
    return true;
}

bool
LogFs::exists(const std::string &name) const
{
    return names_.count(name) != 0;
}

std::uint64_t
LogFs::size(const std::string &name) const
{
    auto it = names_.find(name);
    if (it == names_.end())
        return 0;
    return inodes_.at(it->second).bytes;
}

std::vector<std::string>
LogFs::list() const
{
    std::vector<std::string> out;
    out.reserve(names_.size());
    for (const auto &[name, id] : names_)
        out.push_back(name);
    std::sort(out.begin(), out.end());
    return out;
}

bool
LogFs::remove(const std::string &name)
{
    auto it = names_.find(name);
    if (it == names_.end())
        return false;
    Inode &ino = inodes_.at(it->second);
    for (std::uint64_t phys : ino.pages) {
        if (phys == invalidPage || phys == failedPage ||
            phys == trimmedPage)
            continue;
        auto rit = reverse_.find(phys);
        if (rit != reverse_.end()) {
            reverse_.erase(rit);
            --blocks_[phys / geo_.pagesPerBlock].livePages;
        }
    }
    inodes_.erase(it->second);
    names_.erase(it);
    return true;
}

bool
LogFs::trim(const std::string &name, std::uint64_t fpage)
{
    auto it = names_.find(name);
    if (it == names_.end())
        return false;
    Inode &ino = inodes_.at(it->second);
    if (fpage >= ino.pages.size())
        return false;
    std::uint64_t phys = ino.pages[fpage];
    if (phys == invalidPage || phys == failedPage ||
        phys == trimmedPage)
        return false;
    auto rit = reverse_.find(phys);
    if (rit != reverse_.end()) {
        reverse_.erase(rit);
        --blocks_[phys / geo_.pagesPerBlock].livePages;
    }
    ino.pages[fpage] = trimmedPage;
    trimmedPages_.inc();
    return true;
}

void
LogFs::retireBlock(std::uint64_t bidx)
{
    BlockInfo &blk = blocks_[bidx];
    if (blk.state == BlockState::Retired)
        return;
    // Pull the block from wherever the allocator could still hand
    // it out: the free list, or an open bus frontier.
    auto fit =
        std::find(freeBlocks_.begin(), freeBlocks_.end(), bidx);
    if (fit != freeBlocks_.end())
        freeBlocks_.erase(fit);
    for (ActiveBlock &frontier : active_) {
        if (frontier.open && frontier.block == bidx)
            frontier.open = false;
    }
    blk.state = BlockState::Retired;
    retiredBlocks_.inc();
    if (freeBlocks_.size() < params_.cleanLowWater)
        reserveAlarms_.inc();
    // Surviving live pages drain out at maintenance priority; the
    // block is never erased or reused, offsets of the moved pages
    // stay valid through the same remapping the cleaner uses.
    std::vector<std::uint64_t> live;
    std::uint64_t base = bidx * geo_.pagesPerBlock;
    for (std::uint32_t p = 0; p < geo_.pagesPerBlock; ++p) {
        if (reverse_.count(base + p))
            live.push_back(base + p);
    }
    if (!live.empty())
        relocate(std::move(live), 0, [this]() { pumpAlloc(); });
    maybeClean();
}

void
LogFs::poisonPage(std::uint32_t file_id, std::uint64_t fpage,
                  std::uint64_t phys)
{
    auto iit = inodes_.find(file_id);
    if (iit == inodes_.end() || fpage >= iit->second.pages.size() ||
        iit->second.pages[fpage] != phys)
        return; // remapped or removed since the verdict
    auto rit = reverse_.find(phys);
    if (rit != reverse_.end()) {
        reverse_.erase(rit);
        --blocks_[phys / geo_.pagesPerBlock].livePages;
    }
    iit->second.pages[fpage] = failedPage;
    poisonedPages_.inc();
}

flash::Priority
LogFs::cleanPriority()
{
    if (underPressure()) {
        foregroundAssists_.inc();
        return flash::Priority::Read;
    }
    return flash::Priority::Background;
}

std::vector<Address>
LogFs::physicalAddresses(const std::string &name) const
{
    auto it = names_.find(name);
    if (it == names_.end())
        sim::fatal("physicalAddresses of missing file '%s'",
                   name.c_str());
    const Inode &ino = inodes_.at(it->second);
    std::vector<Address> out;
    out.reserve(ino.pages.size());
    for (std::uint64_t phys : ino.pages) {
        if (phys == invalidPage || phys == failedPage ||
            phys == trimmedPage)
            sim::panic("file '%s' has a hole", name.c_str());
        out.push_back(Address::fromLinear(geo_, phys));
    }
    return out;
}

void
LogFs::publishHandle(const std::string &name, std::uint32_t handle)
{
    server_.defineHandle(handle, physicalAddresses(name));
}

void
LogFs::append(const std::string &name, std::vector<std::uint8_t> data,
              Done done, flash::Priority pri, std::uint64_t trace)
{
    auto it = names_.find(name);
    if (it == names_.end())
        sim::fatal("append to missing file '%s'", name.c_str());
    std::uint32_t file_id = it->second;
    Inode &ino = inodes_.at(file_id);

    std::uint64_t span =
        sim_.tracer().beginSpan(trace, "fs.append", sim_.now());

    // Stage the new bytes after any partial tail already on flash.
    std::vector<std::uint8_t> staged = std::move(ino.tail);
    ino.tail.clear();
    staged.insert(staged.end(), data.begin(), data.end());
    std::uint64_t first_page = ino.bytes / geo_.pageSize;
    ino.bytes += data.size();

    // Cut into page-sized writes; the final partial page is padded
    // with zeroes on flash and mirrored in the in-memory tail.
    struct Ctx
    {
        unsigned outstanding = 0;
        bool issued_all = false;
        bool ok = true;
        Done done;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->done = std::move(done);
    auto finish_one = [this, ctx, span](bool ok) {
        ctx->ok = ctx->ok && ok;
        if (--ctx->outstanding == 0 && ctx->issued_all) {
            sim_.tracer().endSpan(span, sim_.now());
            sim_.scheduleAfter(0, [ctx]() { ctx->done(ctx->ok); });
        }
    };

    std::uint64_t fpage = first_page;
    std::size_t off = 0;
    while (off < staged.size()) {
        std::size_t take =
            std::min<std::size_t>(geo_.pageSize, staged.size() - off);
        PageBuffer page(geo_.pageSize, 0);
        std::memcpy(page.data(), staged.data() + off, take);
        if (take < geo_.pageSize) {
            ino.tail.assign(staged.begin() +
                                std::vector<std::uint8_t>::
                                    difference_type(off),
                            staged.end());
        }
        ++ctx->outstanding;
        queuePageWrite(file_id, fpage, std::move(page), finish_one,
                       pri, span);
        off += take;
        ++fpage;
    }
    ctx->issued_all = true;
    if (ctx->outstanding == 0) {
        // Zero-length append.
        sim_.tracer().endSpan(span, sim_.now());
        sim_.scheduleAfter(0, [ctx]() { ctx->done(true); });
    }
}

void
LogFs::queuePageWrite(std::uint32_t file_id, std::uint64_t fpage,
                      PageBuffer data, Done done,
                      flash::Priority pri, std::uint64_t trace)
{
    WriteSlot &slot = writeSlots_[slotKey(file_id, fpage)];
    if (!slot.flightWaiters.empty()) {
        // A program for this page is already in flight: batch. The
        // new staging contains every byte of the earlier pending
        // one (tail stagings grow monotonically from the page
        // boundary), so the latest content serves all waiters.
        batchedWrites_.inc();
        slot.hasPending = true;
        slot.pendingData = std::move(data);
        slot.pendingWaiters.push_back(std::move(done));
        // One serving-class waiter escalates the whole follow-up
        // (pendingPri re-arms to Background with each flight).
        if (pri == flash::Priority::Read)
            slot.pendingPri = pri;
        if (slot.pendingTrace == 0)
            slot.pendingTrace = trace;
        return;
    }
    slot.flightWaiters.push_back(std::move(done));
    issueSlot(file_id, fpage, std::move(data), pri, trace);
}

void
LogFs::issueSlot(std::uint32_t file_id, std::uint64_t fpage,
                 PageBuffer data, flash::Priority pri,
                 std::uint64_t trace)
{
    writeFilePage(file_id, fpage, std::move(data),
                  [this, file_id, fpage](bool ok) {
        auto it = writeSlots_.find(slotKey(file_id, fpage));
        std::vector<Done> waiters =
            std::move(it->second.flightWaiters);
        if (it->second.hasPending) {
            // Rewrites accumulated during the program: one
            // follow-up program absorbs them all. Re-arm before
            // firing callbacks, which may queue further rewrites.
            PageBuffer next = std::move(it->second.pendingData);
            flash::Priority next_pri = it->second.pendingPri;
            std::uint64_t next_trace = it->second.pendingTrace;
            it->second.flightWaiters =
                std::move(it->second.pendingWaiters);
            it->second.pendingWaiters.clear();
            it->second.hasPending = false;
            it->second.pendingData.clear();
            it->second.pendingPri = flash::Priority::Background;
            it->second.pendingTrace = 0;
            issueSlot(file_id, fpage, std::move(next), next_pri,
                      next_trace);
        } else {
            writeSlots_.erase(it);
        }
        for (auto &w : waiters)
            w(ok);
    },
                  pri, trace);
}

void
LogFs::writeFilePage(std::uint32_t file_id, std::uint64_t fpage,
                     PageBuffer data, Done done, flash::Priority pri,
                     std::uint64_t trace)
{
    allocatePage([this, file_id, fpage, pri, trace,
                  data = std::move(data),
                  done = std::move(done)](Address addr) mutable {
        std::uint64_t linear = addr.linearize(geo_);
        ++blocks_[linear / geo_.pagesPerBlock].pendingWrites;
        server_.writePage(ifc_, addr, std::move(data),
                          [this, file_id, fpage, linear,
                           done = std::move(done)](Status st) {
            --blocks_[linear / geo_.pagesPerBlock].pendingWrites;
            if (st != Status::Ok) {
                // Failed program: the page keeps whatever it held.
                // A previously-written page stays mapped (its old
                // contents are intact and still serve the bytes
                // before this append); a fresh page becomes a
                // poisoned hole so reads of the range report
                // failure instead of silently returning zeroes.
                writeFailures_.inc();
                if (st == Status::BadBlock) {
                    // The hardware's verdict, not a semantic
                    // violation: remap the block out of service so
                    // the frontier stops landing programs on it and
                    // its surviving live pages move out.
                    retireBlock(linear / geo_.pagesPerBlock);
                }
                auto iit = inodes_.find(file_id);
                if (iit != inodes_.end()) {
                    Inode &ino = iit->second;
                    if (ino.pages.size() <= fpage)
                        ino.pages.resize(fpage + 1, invalidPage);
                    if (ino.pages[fpage] == invalidPage)
                        ino.pages[fpage] = failedPage;
                }
                done(false);
                return;
            }
            auto iit = inodes_.find(file_id);
            if (iit == inodes_.end()) {
                // File deleted while the write was in flight; the
                // page is dead on arrival.
                done(true);
                return;
            }
            Inode &ino = iit->second;
            if (ino.pages.size() <= fpage)
                ino.pages.resize(fpage + 1, invalidPage);
            // Overlapping appends rewrite the same tail file page;
            // installing unconditionally is safe only because all
            // FS writes ride one in-order FlashServer interface, so
            // completions arrive in issue order and the newest
            // rewrite always installs last. A successful rewrite
            // also heals a poisoned hole left by a failed one.
            if (ino.pages[fpage] != invalidPage &&
                ino.pages[fpage] != failedPage &&
                ino.pages[fpage] != trimmedPage) {
                std::uint64_t old = ino.pages[fpage];
                auto rit = reverse_.find(old);
                if (rit != reverse_.end()) {
                    reverse_.erase(rit);
                    --blocks_[old / geo_.pagesPerBlock].livePages;
                }
            }
            ino.pages[fpage] = linear;
            reverse_[linear] = RevEntry{file_id, fpage};
            ++blocks_[linear / geo_.pagesPerBlock].livePages;
            pagesWritten_.inc();
            done(true);
        },
                          pri, trace);
    });
}

void
LogFs::read(const std::string &name, std::uint64_t offset,
            std::uint64_t len, ReadDone done, flash::Priority pri,
            std::uint64_t trace)
{
    auto it = names_.find(name);
    if (it == names_.end())
        sim::fatal("read of missing file '%s'", name.c_str());
    const Inode &ino = inodes_.at(it->second);
    if (offset > ino.bytes)
        offset = ino.bytes;
    if (offset + len > ino.bytes)
        len = ino.bytes - offset;

    std::uint64_t span =
        sim_.tracer().beginSpan(trace, "fs.read", sim_.now());

    struct Ctx
    {
        std::vector<std::uint8_t> out;
        unsigned outstanding = 0;
        bool issued_all = false;
        bool ok = true;
        ReadDone done;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->out.assign(len, 0);
    ctx->done = std::move(done);
    auto maybe_finish = [this, ctx, span]() {
        if (ctx->outstanding == 0 && ctx->issued_all) {
            sim_.tracer().endSpan(span, sim_.now());
            sim_.scheduleAfter(0, [ctx]() {
                ctx->done(std::move(ctx->out), ctx->ok);
            });
        }
    };

    std::uint64_t pos = offset;
    while (pos < offset + len) {
        std::uint64_t fpage = pos / geo_.pageSize;
        std::uint32_t in_page =
            static_cast<std::uint32_t>(pos % geo_.pageSize);
        std::uint32_t take = std::min<std::uint32_t>(
            geo_.pageSize - in_page,
            static_cast<std::uint32_t>(offset + len - pos));
        std::uint64_t out_off = pos - offset;
        if (fpage >= ino.pages.size() ||
            ino.pages[fpage] == invalidPage) {
            // An append to this range is still in flight; the bytes
            // are not durable yet and read as zeroes.
            pos += take;
            continue;
        }
        if (ino.pages[fpage] == failedPage) {
            // Poisoned hole: a failed append's fresh page, or a
            // page whose flash copy stayed uncorrectable. Zeroes,
            // and the read as a whole reports failure.
            ctx->ok = false;
            pos += take;
            continue;
        }
        if (ino.pages[fpage] == trimmedPage) {
            // Trimmed by the index layer: logically dead bytes.
            pos += take;
            continue;
        }
        std::uint64_t phys = ino.pages[fpage];
        // Read spreading: a deep primary queue diverts page reads
        // to the reserved spill interface so a read-hot file is not
        // serialized behind the write path's command queue.
        unsigned read_ifc = ifc_;
        if (pri == flash::Priority::Read &&
            params_.spillInterface >= 0 &&
            server_.queueLength(ifc_) >= params_.readSpreadDepth) {
            read_ifc = unsigned(params_.spillInterface);
            spreadReads_.inc();
        }
        ++ctx->outstanding;
        // Partial page read-out: only the requested range's ECC
        // words cross the flash bus -- a small-record read does not
        // pay a full page transfer.
        std::uint32_t file_id = it->second;
        server_.readPage(
            read_ifc, Address::fromLinear(geo_, phys),
            [this, ctx, take, out_off, file_id, fpage, phys,
             maybe_finish](PageBuffer range, Status st) {
            if (st == Status::Uncorrectable) {
                // The flash server's retry ladder already re-sensed
                // and gave up: this copy is gone. Unmap it so the
                // block stays cleanable and later reads fail fast;
                // healing comes from a rewrite or a replica.
                ctx->ok = false;
                poisonPage(file_id, fpage, phys);
            }
            std::memcpy(ctx->out.data() + out_off, range.data(),
                        take);
            --ctx->outstanding;
            maybe_finish();
        },
            pri, in_page, take, span);
        pos += take;
    }
    ctx->issued_all = true;
    maybe_finish();
}

void
LogFs::allocatePage(std::function<void(Address)> got, bool clean)
{
    allocWaiters_.push_back(AllocWaiter{std::move(got), clean});
    pumpAlloc();
}

bool
LogFs::tryGrant(bool clean, Address *out)
{
    const std::uint64_t blocks_per_bus =
        std::uint64_t(geo_.chipsPerBus) * geo_.blocksPerChip;
    for (std::uint32_t attempt = 0; attempt < geo_.buses;
         ++attempt) {
        std::uint32_t bus = nextBus_;
        nextBus_ = (nextBus_ + 1) % geo_.buses;
        ActiveBlock &frontier = active_[bus];
        if (!frontier.open) {
            // Opening a fresh frontier consumes a free block; only
            // the cleaner may take the last cleanReserve blocks (an
            // open frontier's remaining pages are fair game for
            // anyone -- they are already paid for).
            if (!clean && freeBlocks_.size() <= cleanReserve)
                continue;
            auto it = freeBlocks_.begin();
            for (; it != freeBlocks_.end(); ++it) {
                if (*it / blocks_per_bus == bus)
                    break;
            }
            if (it == freeBlocks_.end())
                continue; // this bus is out of free blocks
            frontier.block = *it;
            freeBlocks_.erase(it);
            blocks_[frontier.block].state = BlockState::Active;
            frontier.nextPage = 0;
            frontier.open = true;
            maybeClean();
        }
        Address addr = blockAddress(frontier.block);
        addr.page = frontier.nextPage++;
        if (frontier.nextPage == geo_.pagesPerBlock) {
            blocks_[frontier.block].state = BlockState::Closed;
            frontier.open = false;
        }
        *out = addr;
        return true;
    }
    return false;
}

void
LogFs::pumpAlloc()
{
    while (!allocWaiters_.empty()) {
        // FIFO, except that a cleaner relocation may overtake an
        // ordinary waiter parked on the reserve: the cleaner is the
        // only producer of free blocks, so holding it behind the
        // very append it must unblock would deadlock reclamation.
        std::size_t idx = allocWaiters_.size();
        Address addr;
        if (tryGrant(allocWaiters_.front().clean, &addr)) {
            idx = 0;
        } else {
            for (std::size_t i = 1; i < allocWaiters_.size(); ++i) {
                if (allocWaiters_[i].clean &&
                    tryGrant(true, &addr)) {
                    idx = i;
                    break;
                }
            }
        }
        if (idx == allocWaiters_.size()) {
            maybeClean();
            return;
        }
        auto got = std::move(allocWaiters_[idx].got);
        allocWaiters_.erase(allocWaiters_.begin() +
                            std::ptrdiff_t(idx));
        got(addr);
    }
}

void
LogFs::maybeClean()
{
    if (cleaning_ || freeBlocks_.size() >= params_.cleanLowWater)
        return;
    cleaning_ = true;
    cleanStep();
}

void
LogFs::cleanStep()
{
    if (freeBlocks_.size() >= params_.cleanHighWater) {
        cleaning_ = false;
        return;
    }
    std::uint64_t victim = invalidPage;
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        if (blocks_[b].state != BlockState::Closed)
            continue;
        if (blocks_[b].pendingWrites > 0)
            continue; // pages still being programmed
        if (blocks_[b].livePages < best) {
            best = blocks_[b].livePages;
            victim = b;
        }
    }
    if (victim == invalidPage || best >= geo_.pagesPerBlock) {
        // No victim, or the best one is fully live: a clean pass
        // would burn a program per page and free nothing. At high
        // utilization the reclaimable garbage can run out below the
        // high water; stop instead of relocating live data forever.
        // The next garbage-making append re-arms the cleaner.
        cleaning_ = false;
        return;
    }
    std::vector<std::uint64_t> live;
    std::uint64_t base = victim * geo_.pagesPerBlock;
    for (std::uint32_t p = 0; p < geo_.pagesPerBlock; ++p) {
        if (reverse_.count(base + p))
            live.push_back(base + p);
    }
    relocate(std::move(live), 0, [this, victim]() {
        if (blocks_[victim].livePages != 0) {
            // Relocation failures (program faults, destination
            // blocks going bad mid-clean) left live pages behind:
            // park the victim Closed instead of erasing data that
            // never moved. A later pass re-picks it and retries;
            // every relocation attempt costs flash time, so the
            // retry is naturally paced.
            cleanParks_.inc();
            cleanStep();
            return;
        }
        server_.eraseBlock(ifc_, blockAddress(victim),
                           [this, victim](Status st) {
            if (st == Status::Ok) {
                blocksErased_.inc();
                blocks_[victim].state = BlockState::Free;
                freeBlocks_.push_back(victim);
            } else {
                // Endurance tripped (the PageStore keeps the data,
                // but every live page already moved out): the block
                // leaves service for good.
                retireBlock(victim);
            }
            pumpAlloc();
            cleanStep();
        });
    });
}

void
LogFs::relocate(std::vector<std::uint64_t> pages, std::size_t next,
                std::function<void()> then)
{
    while (next < pages.size() && !reverse_.count(pages[next]))
        ++next;
    if (next >= pages.size()) {
        then();
        return;
    }
    std::uint64_t phys = pages[next];
    // Cleaner traffic is maintenance: its reads must never suspend
    // a serving program, and its programs and erases count as
    // background load at the array -- except under capacity
    // pressure, where the moves escalate to the serving class
    // (bounded foreground assist) so the reserve recovers before
    // the allocator stalls.
    flash::Priority pri = cleanPriority();
    server_.readPage(
        ifc_, Address::fromLinear(geo_, phys),
        [this, pages = std::move(pages), next, phys, pri,
         then = std::move(then)](PageBuffer data,
                                 Status rst) mutable {
        if (rst == Status::Uncorrectable) {
            // The source copy is gone (retry ladder exhausted):
            // relocating garbage would silently corrupt the file.
            // Poison the page -- the block stays cleanable and the
            // loss surfaces to readers, who heal from a replica.
            auto rit = reverse_.find(phys);
            if (rit != reverse_.end())
                poisonPage(rit->second.fileId,
                           rit->second.filePage, phys);
            relocate(std::move(pages), next + 1, std::move(then));
            return;
        }
        allocatePage([this, pages = std::move(pages), next, phys,
                      pri, data = std::move(data),
                      then = std::move(then)](Address dst) mutable {
            std::uint64_t new_linear = dst.linearize(geo_);
            ++blocks_[new_linear / geo_.pagesPerBlock].pendingWrites;
            server_.writePage(
                ifc_, dst, std::move(data),
                [this, pages = std::move(pages), next, phys,
                 new_linear, then = std::move(then)](Status st)
                    mutable {
                --blocks_[new_linear / geo_.pagesPerBlock]
                      .pendingWrites;
                if (st == Status::BadBlock) {
                    // The destination went bad under us: remap it
                    // out of service; this source page stays live
                    // in the victim and a later pass retries.
                    retireBlock(new_linear / geo_.pagesPerBlock);
                }
                if (st == Status::Ok) {
                    auto rit = reverse_.find(phys);
                    if (rit != reverse_.end()) {
                        RevEntry entry = rit->second;
                        auto iit = inodes_.find(entry.fileId);
                        if (iit != inodes_.end() &&
                            entry.filePage <
                                iit->second.pages.size() &&
                            iit->second.pages[entry.filePage] ==
                                phys) {
                            reverse_.erase(rit);
                            --blocks_[phys / geo_.pagesPerBlock]
                                  .livePages;
                            iit->second.pages[entry.filePage] =
                                new_linear;
                            reverse_[new_linear] = entry;
                            ++blocks_[new_linear /
                                      geo_.pagesPerBlock].livePages;
                            pagesCleaned_.inc();
                        }
                    }
                }
                relocate(std::move(pages), next + 1,
                         std::move(then));
            },
                pri);
        },
                     /*clean=*/true);
    },
        pri);
}

} // namespace fs
} // namespace bluedbm
