/**
 * @file
 * Page-mapping Flash Translation Layer (paper section 4).
 *
 * For compatibility with existing software, BlueDBM offers a
 * full-fledged FTL implemented in the device driver (like Fusion-IO),
 * so ordinary file systems and databases can sit on a block device.
 * This FTL performs logical-to-physical page mapping, greedy garbage
 * collection with over-provisioning, wear-aware free-block selection
 * and bad-block management, all over the raw in-order flash interface
 * of one card.
 */

#ifndef BLUEDBM_FTL_FTL_HH
#define BLUEDBM_FTL_FTL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "flash/flash_server.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace ftl {

/**
 * FTL configuration.
 */
struct FtlParams
{
    /**
     * Fraction of physical blocks reserved as over-provisioning;
     * the logical capacity is (1 - op) of the physical one.
     */
    double overProvision = 0.125;
    /** Start GC when free blocks drop below this count. */
    unsigned gcLowWater = 4;
    /** GC frees blocks until this many are free. */
    unsigned gcHighWater = 8;
};

/**
 * Block-device-style page FTL over one flash card.
 *
 * All operations are asynchronous: completion callbacks run when the
 * flash operations (including any garbage collection the op had to
 * wait behind) finish.
 */
class Ftl
{
  public:
    /** Completion callback for writes/trims. */
    using Done = std::function<void(bool ok)>;
    /** Completion callback for reads. */
    using ReadDone = std::function<void(flash::PageBuffer, bool ok)>;

    /**
     * @param sim    simulation kernel
     * @param server in-order flash interface of the card
     * @param ifc    FlashServer interface index reserved for the FTL
     * @param geo    geometry of the card behind @p server
     * @param params tuning knobs
     */
    Ftl(sim::Simulator &sim, flash::FlashServer &server, unsigned ifc,
        const flash::Geometry &geo,
        const FtlParams &params = FtlParams{});

    /** Logical capacity in pages. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /** Page size in bytes. */
    std::uint32_t pageSize() const { return geo_.pageSize; }

    /**
     * Read logical page @p lpn. Unwritten pages return zeroes.
     */
    void read(std::uint64_t lpn, ReadDone done);

    /**
     * Write logical page @p lpn (out-of-place; the old version is
     * invalidated).
     */
    void write(std::uint64_t lpn, flash::PageBuffer data, Done done);

    /** Discard logical page @p lpn. */
    void trim(std::uint64_t lpn, Done done);

    /** Whether @p lpn currently maps to flash. */
    bool isMapped(std::uint64_t lpn) const;

    /** @name Statistics */
    ///@{
    std::uint64_t hostWrites() const { return hostWrites_; }
    std::uint64_t flashWrites() const { return flashWrites_; }
    std::uint64_t gcRuns() const { return gcRuns_; }
    std::uint64_t relocatedPages() const { return relocated_; }
    std::uint64_t erasedBlocks() const { return erased_; }
    unsigned freeBlocks() const { return unsigned(freeBlocks_.size()); }

    /** Write amplification factor so far. */
    double
    writeAmplification() const
    {
        return hostWrites_ == 0
            ? 1.0
            : static_cast<double>(flashWrites_) /
                static_cast<double>(hostWrites_);
    }
    ///@}

  private:
    static constexpr std::uint64_t unmapped = ~std::uint64_t(0);

    enum class BlockState : std::uint8_t { Free, Active, Closed, Bad };

    struct BlockInfo
    {
        std::uint32_t validPages = 0;
        std::uint32_t eraseCount = 0;
        /** Programs issued but not yet completed; GC must not erase
         * a block whose pages are still being written. */
        std::uint32_t pendingWrites = 0;
        BlockState state = BlockState::Free;
    };

    /** Dense block index across the card. */
    std::uint64_t blockIndex(const flash::Address &a) const;
    flash::Address blockAddress(std::uint64_t bidx) const;

    /**
     * Allocate the next physical page at the write frontier; the
     * callback may be deferred while garbage collection frees space.
     */
    void allocatePage(std::function<void(flash::Address)> got);

    /** Serve queued allocations while the frontier has room. */
    void pumpAlloc();

    /** Kick background GC if free space is low. */
    void maybeStartGc();

    /** One GC round: pick a victim, relocate, erase, repeat. */
    void gcStep();

    /** Relocate valid pages of @p victim one by one, then @p then. */
    void relocate(std::uint64_t victim,
                  std::vector<std::uint64_t> pages, std::size_t next,
                  std::function<void()> then);

    void invalidate(std::uint64_t phys_linear);

    sim::Simulator &sim_;
    flash::FlashServer &server_;
    unsigned ifc_;
    FtlParams params_;
    flash::Geometry geo_;

    std::uint64_t logicalPages_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> map_;
    std::unordered_map<std::uint64_t, std::uint64_t> reverse_;
    std::vector<BlockInfo> blocks_;
    std::deque<std::uint64_t> freeBlocks_;
    std::deque<std::function<void(flash::Address)>> allocWaiters_;

    /** One write frontier per bus so streams stripe across channels
     * (the parallelism the raw interface exposes, section 3.1.1). */
    struct ActiveBlock
    {
        bool open = false;
        std::uint64_t block = 0;
        std::uint32_t nextPage = 0;
    };
    std::vector<ActiveBlock> active_;
    std::uint32_t nextBus_ = 0;
    bool gcInProgress_ = false;

    std::uint64_t hostWrites_ = 0;
    std::uint64_t flashWrites_ = 0;
    std::uint64_t gcRuns_ = 0;
    std::uint64_t relocated_ = 0;
    std::uint64_t erased_ = 0;
};

} // namespace ftl
} // namespace bluedbm

#endif // BLUEDBM_FTL_FTL_HH
