#include "ftl/ftl.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace ftl {

using flash::Address;
using flash::PageBuffer;
using flash::Status;

Ftl::Ftl(sim::Simulator &sim, flash::FlashServer &server, unsigned ifc,
         const flash::Geometry &geo, const FtlParams &params)
    : sim_(sim), server_(server), ifc_(ifc), params_(params), geo_(geo)
{
    std::uint64_t total_blocks =
        std::uint64_t(geo_.buses) * geo_.chipsPerBus *
        geo_.blocksPerChip;
    blocks_.assign(total_blocks, BlockInfo{});

    // Free blocks striped bus-first so consecutive active blocks land
    // on different buses and writes parallelize.
    for (std::uint32_t blk = 0; blk < geo_.blocksPerChip; ++blk) {
        for (std::uint32_t chip = 0; chip < geo_.chipsPerBus; ++chip) {
            for (std::uint32_t bus = 0; bus < geo_.buses; ++bus) {
                Address a{bus, chip, blk, 0};
                freeBlocks_.push_back(blockIndex(a));
            }
        }
    }

    auto reserve = static_cast<std::uint64_t>(
        static_cast<double>(total_blocks) * params_.overProvision);
    if (reserve < params_.gcHighWater)
        reserve = params_.gcHighWater;
    if (reserve >= total_blocks)
        sim::fatal("over-provisioning leaves no logical capacity");
    logicalPages_ = (total_blocks - reserve) * geo_.pagesPerBlock;
    active_.assign(geo_.buses, ActiveBlock{});
}

std::uint64_t
Ftl::blockIndex(const Address &a) const
{
    return (std::uint64_t(a.bus) * geo_.chipsPerBus + a.chip) *
        geo_.blocksPerChip + a.block;
}

Address
Ftl::blockAddress(std::uint64_t bidx) const
{
    Address a;
    a.block = static_cast<std::uint32_t>(bidx % geo_.blocksPerChip);
    bidx /= geo_.blocksPerChip;
    a.chip = static_cast<std::uint32_t>(bidx % geo_.chipsPerBus);
    bidx /= geo_.chipsPerBus;
    a.bus = static_cast<std::uint32_t>(bidx);
    a.page = 0;
    return a;
}

bool
Ftl::isMapped(std::uint64_t lpn) const
{
    return map_.count(lpn) != 0;
}

void
Ftl::read(std::uint64_t lpn, ReadDone done)
{
    if (lpn >= logicalPages_)
        sim::fatal("read past logical capacity (lpn %llu)",
                   static_cast<unsigned long long>(lpn));
    auto it = map_.find(lpn);
    if (it == map_.end()) {
        // Unwritten logical page: zeroes, immediately.
        sim_.scheduleAfter(0, [this, done = std::move(done)]() {
            done(PageBuffer(geo_.pageSize, 0), true);
        });
        return;
    }
    Address addr = Address::fromLinear(geo_, it->second);
    server_.readPage(ifc_, addr,
                     [done = std::move(done)](PageBuffer data,
                                              Status st) {
        done(std::move(data), st != Status::Uncorrectable);
    });
}

void
Ftl::write(std::uint64_t lpn, PageBuffer data, Done done)
{
    if (lpn >= logicalPages_)
        sim::fatal("write past logical capacity (lpn %llu)",
                   static_cast<unsigned long long>(lpn));
    if (data.size() != geo_.pageSize)
        sim::fatal("write of %zu bytes, page size is %u", data.size(),
                   geo_.pageSize);
    ++hostWrites_;
    allocatePage([this, lpn, data = std::move(data),
                  done = std::move(done)](Address addr) mutable {
        std::uint64_t linear = addr.linearize(geo_);
        ++blocks_[linear / geo_.pagesPerBlock].pendingWrites;
        server_.writePage(ifc_, addr, std::move(data),
                          [this, lpn, linear,
                           done = std::move(done)](Status st) {
            --blocks_[linear / geo_.pagesPerBlock].pendingWrites;
            if (st != Status::Ok) {
                // Program failure: retire the block. The page was
                // already consumed from the frontier; report failure
                // (a production FTL would retry on a fresh block).
                std::uint64_t bidx = linear / geo_.pagesPerBlock;
                blocks_[bidx].state = BlockState::Bad;
                done(false);
                return;
            }
            ++flashWrites_;
            auto old = map_.find(lpn);
            if (old != map_.end())
                invalidate(old->second);
            map_[lpn] = linear;
            reverse_[linear] = lpn;
            ++blocks_[linear / geo_.pagesPerBlock].validPages;
            done(true);
        });
    });
}

void
Ftl::trim(std::uint64_t lpn, Done done)
{
    auto it = map_.find(lpn);
    if (it != map_.end()) {
        invalidate(it->second);
        map_.erase(it);
    }
    sim_.scheduleAfter(0, [done = std::move(done)]() { done(true); });
}

void
Ftl::invalidate(std::uint64_t phys_linear)
{
    reverse_.erase(phys_linear);
    BlockInfo &blk = blocks_[phys_linear / geo_.pagesPerBlock];
    if (blk.validPages == 0)
        sim::panic("invalidate underflow");
    --blk.validPages;
}

void
Ftl::allocatePage(std::function<void(Address)> got)
{
    allocWaiters_.push_back(std::move(got));
    pumpAlloc();
}

void
Ftl::pumpAlloc()
{
    const std::uint64_t blocks_per_bus =
        std::uint64_t(geo_.chipsPerBus) * geo_.blocksPerChip;
    while (!allocWaiters_.empty()) {
        // Round-robin across buses; open a frontier on a bus that
        // has free blocks (wear-aware pick within the bus).
        bool granted = false;
        for (std::uint32_t attempt = 0; attempt < geo_.buses;
             ++attempt) {
            std::uint32_t bus = nextBus_;
            nextBus_ = (nextBus_ + 1) % geo_.buses;
            ActiveBlock &frontier = active_[bus];
            if (!frontier.open) {
                auto best = freeBlocks_.end();
                for (auto it = freeBlocks_.begin();
                     it != freeBlocks_.end(); ++it) {
                    if (*it / blocks_per_bus != bus)
                        continue;
                    if (best == freeBlocks_.end() ||
                        blocks_[*it].eraseCount <
                            blocks_[*best].eraseCount)
                        best = it;
                }
                if (best == freeBlocks_.end())
                    continue; // this bus is out of free blocks
                frontier.block = *best;
                freeBlocks_.erase(best);
                blocks_[frontier.block].state = BlockState::Active;
                frontier.nextPage = 0;
                frontier.open = true;
                maybeStartGc();
            }
            Address addr = blockAddress(frontier.block);
            addr.page = frontier.nextPage++;
            if (frontier.nextPage == geo_.pagesPerBlock) {
                blocks_[frontier.block].state = BlockState::Closed;
                frontier.open = false;
            }
            auto got = std::move(allocWaiters_.front());
            allocWaiters_.pop_front();
            got(addr);
            granted = true;
            break;
        }
        if (!granted) {
            maybeStartGc();
            return; // GC's erases will pump again
        }
    }
}

void
Ftl::maybeStartGc()
{
    if (gcInProgress_ || freeBlocks_.size() >= params_.gcLowWater)
        return;
    gcInProgress_ = true;
    ++gcRuns_;
    gcStep();
}

void
Ftl::gcStep()
{
    if (freeBlocks_.size() >= params_.gcHighWater) {
        gcInProgress_ = false;
        return;
    }
    // Greedy victim: fewest valid pages among closed blocks.
    std::uint64_t victim = unmapped;
    std::uint32_t best_valid =
        std::numeric_limits<std::uint32_t>::max();
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        if (blocks_[b].state != BlockState::Closed)
            continue;
        if (blocks_[b].pendingWrites > 0)
            continue; // pages still being programmed
        if (blocks_[b].validPages < best_valid) {
            best_valid = blocks_[b].validPages;
            victim = b;
        }
    }
    if (victim == unmapped) {
        // Nothing to collect (all space genuinely live).
        gcInProgress_ = false;
        return;
    }

    // Gather the victim's currently valid physical pages.
    std::vector<std::uint64_t> live;
    std::uint64_t base = victim * geo_.pagesPerBlock;
    for (std::uint32_t p = 0; p < geo_.pagesPerBlock; ++p) {
        if (reverse_.count(base + p))
            live.push_back(base + p);
    }
    relocate(victim, std::move(live), 0, [this, victim]() {
        Address addr = blockAddress(victim);
        server_.eraseBlock(ifc_, addr, [this, victim](Status st) {
            if (st == Status::Ok) {
                if (blocks_[victim].validPages != 0)
                    sim::panic("erased block with %u live pages",
                               blocks_[victim].validPages);
                ++erased_;
                ++blocks_[victim].eraseCount;
                blocks_[victim].state = BlockState::Free;
                freeBlocks_.push_back(victim);
            } else {
                blocks_[victim].state = BlockState::Bad;
            }
            pumpAlloc();
            gcStep();
        });
    });
}

void
Ftl::relocate(std::uint64_t victim, std::vector<std::uint64_t> pages,
              std::size_t next, std::function<void()> then)
{
    // Skip pages that were invalidated while GC was running.
    while (next < pages.size() && !reverse_.count(pages[next]))
        ++next;
    if (next >= pages.size()) {
        then();
        return;
    }
    std::uint64_t phys = pages[next];
    Address src = Address::fromLinear(geo_, phys);
    // GC traffic is maintenance: Background reads never suspend a
    // host program, and GC programs count as background load.
    server_.readPage(ifc_, src,
                     [this, victim, pages = std::move(pages), next,
                      phys, then = std::move(then)](
                         PageBuffer data, Status) mutable {
        allocatePage([this, victim, pages = std::move(pages), next,
                      phys, data = std::move(data),
                      then = std::move(then)](Address dst) mutable {
            std::uint64_t new_linear = dst.linearize(geo_);
            ++blocks_[new_linear / geo_.pagesPerBlock].pendingWrites;
            server_.writePage(
                ifc_, dst, std::move(data),
                [this, victim, pages = std::move(pages), next, phys,
                 new_linear, then = std::move(then)](Status st)
                    mutable {
                --blocks_[new_linear / geo_.pagesPerBlock]
                      .pendingWrites;
                if (st == Status::Ok) {
                    auto rit = reverse_.find(phys);
                    if (rit != reverse_.end()) {
                        std::uint64_t lpn = rit->second;
                        invalidate(phys);
                        map_[lpn] = new_linear;
                        reverse_[new_linear] = lpn;
                        ++blocks_[new_linear / geo_.pagesPerBlock]
                              .validPages;
                        ++relocated_;
                        ++flashWrites_;
                    }
                }
                relocate(victim, std::move(pages), next + 1,
                         std::move(then));
            },
                flash::Priority::Background);
        });
    },
                     flash::Priority::Background);
}

} // namespace ftl
} // namespace bluedbm
