/**
 * @file
 * Shared types of the sharded key-value service.
 *
 * The KV layer is the serving scenario of the paper's figure 17: a
 * RAMCloud-style low-latency store whose working set does NOT fit in
 * DRAM. Instead of a DRAM cluster that falls off a cliff when even
 * 5-10% of accesses miss to storage, BlueDBM keeps *all* values in
 * the cluster-wide flash address space and serves them at
 * near-uniform latency over the integrated storage network. These
 * types define the wire protocol that rides net::Message payloads
 * between the requesting node and the owning shards.
 */

#ifndef BLUEDBM_KV_KV_TYPES_HH
#define BLUEDBM_KV_KV_TYPES_HH

#include <cstdint>

#include "flash/types.hh"
#include "net/message.hh"
#include "net/payload.hh"

namespace bluedbm {
namespace kv {

/** Application key: a 64-bit identifier (hashes spread it anyway). */
using Key = std::uint64_t;

/**
 * Endpoint assignment of the KV service. Endpoints 1..7 belong to
 * the core remote-read protocol (core/messages.hh); the KV service
 * claims two more, so clusters hosting it must be built with
 * network endpoints >= kvRequiredEndpoints.
 */
enum : net::EndpointId
{
    epKvService = 8, //!< shard requests (get/put/delete)
    epKvData = 9,    //!< responses back to the requesting node
};

/** Network endpoints a KV-serving cluster needs. */
constexpr unsigned kvRequiredEndpoints = 10;

/**
 * Completion status of a KV operation.
 *
 * Replication / failure contract (write-all, read-one):
 *  - A put or delete acks Ok only when EVERY replica applied it.
 *  - A put that fails on some replica acks Error, and the replicas
 *    are left divergent: the failed replica rolls its index back to
 *    its last durable version (or absence), the others keep the new
 *    value. Until the client retries, read-one may return either
 *    the new or the previous value depending on which replica the
 *    (deterministic, origin-keyed) read routing picks. The router
 *    counts these outcomes (KvRouter::divergentWrites()); an
 *    anti-entropy repair pass is future work.
 *  - A failed append is never served as Ok with bytes that did not
 *    reach flash: the shard's index only ever points at durable log
 *    records (in-flight values are served from the memtable, which
 *    the failure path discards).
 */
enum class KvStatus : std::uint8_t
{
    Ok,         //!< success; value (if any) is valid
    NotFound,   //!< no live version of the key
    Overloaded, //!< rejected at admission (client queue full)
    Error,      //!< storage error underneath
};

/** Operations of the shard protocol. */
enum class KvOp : std::uint8_t { Get, Put, Delete };

/** On-wire size of the fixed request/response header (command, key,
 * request id, routing fields). Value bytes ride on top. */
constexpr std::uint32_t kvHeaderBytes = 32;

/**
 * Ask a shard to perform one operation. Travels origin -> owner on
 * epKvService; `value` carries put data (untimed -- the timed size
 * is Message::bytes, header plus value length).
 */
struct KvRequest
{
    std::uint64_t reqId = 0;
    Key key = 0;
    /**
     * Conditional get: the shard-global version of the requester's
     * cached copy (0 = none). When the owner's live version still
     * matches, it replies with an empty, header-only response
     * instead of reading flash and shipping the value -- the cache
     * invalidation ride-along that keeps hot-key caching coherent
     * (a stale cached version simply fails the comparison and the
     * fresh value comes back).
     */
    std::uint64_t cachedVersion = 0;
    KvOp op = KvOp::Get;
    net::EndpointId replyEndpoint = epKvData;
    flash::PageBuffer value; //!< put payload; empty otherwise
};

/**
 * One operation's result, owner -> origin on epKvData.
 */
struct KvResponse
{
    std::uint64_t reqId = 0;
    /**
     * Shard-global version of the key's live entry at the serving
     * shard (0 for misses). A get result equal to the request's
     * cachedVersion means "not modified": the value is empty and
     * the requester serves its cached copy.
     */
    std::uint64_t version = 0;
    KvStatus status = KvStatus::Ok;
    flash::PageBuffer value; //!< get result; empty otherwise
};

static_assert(sizeof(KvRequest) <= net::PayloadPool::slotBytes &&
                  sizeof(KvResponse) <= net::PayloadPool::slotBytes,
              "KV protocol structs must recycle through the payload "
              "pool, not the heap");

/**
 * splitmix64 finalizer: the KV layer's hash for keys and ring
 * points. Deterministic across platforms (unlike std::hash).
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_TYPES_HH
