/**
 * @file
 * Shared types of the sharded key-value service.
 *
 * The KV layer is the serving scenario of the paper's figure 17: a
 * RAMCloud-style low-latency store whose working set does NOT fit in
 * DRAM. Instead of a DRAM cluster that falls off a cliff when even
 * 5-10% of accesses miss to storage, BlueDBM keeps *all* values in
 * the cluster-wide flash address space and serves them at
 * near-uniform latency over the integrated storage network. These
 * types define the wire protocol that rides net::Message payloads
 * between the requesting node and the owning shards.
 */

#ifndef BLUEDBM_KV_KV_TYPES_HH
#define BLUEDBM_KV_KV_TYPES_HH

#include <cstdint>

#include "flash/types.hh"
#include "net/message.hh"
#include "net/payload.hh"

namespace bluedbm {
namespace kv {

/** Application key: a 64-bit identifier (hashes spread it anyway). */
using Key = std::uint64_t;

/**
 * Endpoint assignment of the KV service. Endpoints 1..7 belong to
 * the core remote-read protocol (core/messages.hh); the KV service
 * claims two more, so clusters hosting it must be built with
 * network endpoints >= kvRequiredEndpoints.
 */
enum : net::EndpointId
{
    epKvService = 8, //!< shard requests (get/put/delete)
    epKvData = 9,    //!< responses back to the requesting node
};

/** Network endpoints a KV-serving cluster needs. */
constexpr unsigned kvRequiredEndpoints = 10;

/**
 * Completion status of a KV operation.
 *
 * Replication / failure contract (quorum write, read-one):
 *  - A put or delete acks Ok to the client once W of its R replicas
 *    report the operation durable (W = KvParams::writeQuorum,
 *    default 1 -- the first replica to program its NAND completes
 *    the client). The remaining replica writes finish in the
 *    background. W = R restores the old write-all behavior: Ok
 *    means every copy landed.
 *  - What W < R guarantees: the acked value is durable on at least
 *    W replicas, and read-your-writes holds throughout. While any
 *    replica write is still outstanding, the router's per-key
 *    in-flight ledger steers read-one to a replica known to have
 *    applied the write (an acked replica, or the origin's own
 *    shard, whose memtable applied it synchronously) -- a reader
 *    can never observe the pre-write value after the client's ack,
 *    even though a straggler replica still holds it.
 *  - What W < R opens, and repair closes: a straggler program that
 *    FAILS after the client was acked leaves the replicas
 *    divergent -- the failed replica rolled back to its last
 *    durable version, the acked ones hold the new value. The
 *    router records the key (KvRouter::divergentWrites() counts
 *    keys currently divergent) and the anti-entropy sweep
 *    (KvRouter::repairSweep()) closes the window: shards expose
 *    cheap per-key-range stamp digests, the sweep compares them
 *    between replicas of each ring segment and re-pushes the
 *    newer-stamped version, after which divergentWrites() drains
 *    to zero. The same machinery heals a quorum-failed write-all
 *    (W = R with a partial failure, acked Error).
 *  - What a reader may observe mid-repair: for a key inside the
 *    divergence window, read-one returns the new value from an
 *    acked replica or the rolled-back value from the failed one,
 *    depending on which replica the (deterministic, origin-keyed)
 *    routing picks once the in-flight ledger entry retired -- but
 *    never garbage, and never a mix. After the sweep visits the
 *    key's range, every replica serves the newer version.
 *  - A failed append is never served as Ok with bytes that did not
 *    reach flash: the shard's index only ever points at durable log
 *    records (in-flight values are served from the memtable, which
 *    the failure path discards).
 *
 * Flash traffic classes (see flash::Priority and flash::Timing's
 * suspend-resume contract): every KV operation maps onto one of
 * two NAND priority classes. Serving traffic -- client gets and
 * the log appends behind client puts -- rides Priority::Read, so a
 * get's page read may SUSPEND an in-flight NAND program or erase
 * (bounded by Timing::maxSuspendsPerOp) instead of waiting the
 * full array time behind it; this is what decouples the read tail
 * from write load. Maintenance traffic -- anti-entropy repair
 * pushes (KvRouter::repairSweep, manual or periodic via
 * KvParams::repairIntervalUs) and the file system's segment
 * cleaning underneath -- rides Priority::Background: it never
 * suspends anything and is accounted separately at the array, so
 * repair can run during serving without stealing read latency or
 * blurring the load attribution.
 */
enum class KvStatus : std::uint8_t
{
    Ok,         //!< success; value (if any) is valid
    NotFound,   //!< no live version of the key
    Overloaded, //!< rejected at admission (client queue full)
    Error,      //!< storage error underneath
};

/** Operations of the shard protocol. */
enum class KvOp : std::uint8_t { Get, Put, Delete };

/** On-wire size of the fixed request/response header (command, key,
 * request id, routing fields). Value bytes ride on top. */
constexpr std::uint32_t kvHeaderBytes = 32;

/**
 * Ask a shard to perform one operation. Travels origin -> owner on
 * epKvService; `value` carries put data (untimed -- the timed size
 * is Message::bytes, header plus value length).
 */
struct KvRequest
{
    std::uint64_t reqId = 0;
    Key key = 0;
    /**
     * Conditional get: the shard-global version of the requester's
     * cached copy (0 = none). When the owner's live version still
     * matches, it replies with an empty, header-only response
     * instead of reading flash and shipping the value -- the cache
     * invalidation ride-along that keeps hot-key caching coherent
     * (a stale cached version simply fails the comparison and the
     * fresh value comes back).
     */
    std::uint64_t cachedVersion = 0;
    /**
     * Router-issued write stamp (puts/deletes): one cluster-wide
     * monotonic counter orders all writes of a key, so replicas --
     * whose internal shard versions are not comparable -- can agree
     * which side of a divergence is newer during anti-entropy
     * repair. 0 on gets.
     */
    std::uint64_t stamp = 0;
    KvOp op = KvOp::Get;
    net::EndpointId replyEndpoint = epKvData;
    flash::PageBuffer value; //!< put payload; empty otherwise
};

/**
 * One operation's result, owner -> origin on epKvData.
 */
struct KvResponse
{
    std::uint64_t reqId = 0;
    /**
     * Shard-global version of the key's live entry at the serving
     * shard (0 for misses). A get result equal to the request's
     * cachedVersion means "not modified": the value is empty and
     * the requester serves its cached copy.
     */
    std::uint64_t version = 0;
    KvStatus status = KvStatus::Ok;
    flash::PageBuffer value; //!< get result; empty otherwise
};

static_assert(sizeof(KvRequest) <= net::PayloadPool::slotBytes &&
                  sizeof(KvResponse) <= net::PayloadPool::slotBytes,
              "KV protocol structs must recycle through the payload "
              "pool, not the heap");

/**
 * splitmix64 finalizer: the KV layer's hash for keys and ring
 * points. Deterministic across platforms (unlike std::hash).
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_TYPES_HH
