/**
 * @file
 * Shared types of the sharded key-value service.
 *
 * The KV layer is the serving scenario of the paper's figure 17: a
 * RAMCloud-style low-latency store whose working set does NOT fit in
 * DRAM. Instead of a DRAM cluster that falls off a cliff when even
 * 5-10% of accesses miss to storage, BlueDBM keeps *all* values in
 * the cluster-wide flash address space and serves them at
 * near-uniform latency over the integrated storage network. These
 * types define the wire protocol that rides net::Message payloads
 * between the requesting node and the owning shards.
 */

#ifndef BLUEDBM_KV_KV_TYPES_HH
#define BLUEDBM_KV_KV_TYPES_HH

#include <cstdint>

#include "flash/types.hh"
#include "net/message.hh"
#include "net/payload.hh"

namespace bluedbm {
namespace kv {

/** Application key: a 64-bit identifier (hashes spread it anyway). */
using Key = std::uint64_t;

/**
 * Endpoint assignment of the KV service. Endpoints 1..7 belong to
 * the core remote-read protocol (core/messages.hh); the KV service
 * claims two more, so clusters hosting it must be built with
 * network endpoints >= kvRequiredEndpoints.
 */
enum : net::EndpointId
{
    epKvService = 8, //!< shard requests (get/put/delete)
    epKvData = 9,    //!< responses back to the requesting node
};

/** Network endpoints a KV-serving cluster needs. */
constexpr unsigned kvRequiredEndpoints = 10;

/**
 * Completion status of a KV operation.
 *
 * Replication / failure contract (quorum write, read-one):
 *  - A put or delete acks Ok to the client once W of its R replicas
 *    report the operation durable (W = KvParams::writeQuorum,
 *    default 1 -- the first replica to program its NAND completes
 *    the client). The remaining replica writes finish in the
 *    background. W = R restores the old write-all behavior: Ok
 *    means every copy landed.
 *  - What W < R guarantees: the acked value is durable on at least
 *    W replicas, and read-your-writes holds throughout. While any
 *    replica write is still outstanding, the router's per-key
 *    in-flight ledger steers read-one to a replica known to have
 *    applied the write (an acked replica, or the origin's own
 *    shard, whose memtable applied it synchronously) -- a reader
 *    can never observe the pre-write value after the client's ack,
 *    even though a straggler replica still holds it.
 *  - What W < R opens, and repair closes: a straggler program that
 *    FAILS after the client was acked leaves the replicas
 *    divergent -- the failed replica rolled back to its last
 *    durable version, the acked ones hold the new value. The
 *    router records the key (KvRouter::divergentWrites() counts
 *    keys currently divergent) and the anti-entropy sweep
 *    (KvRouter::repairSweep()) closes the window: shards expose
 *    cheap per-key-range stamp digests, the sweep compares them
 *    between replicas of each ring segment and re-pushes the
 *    newer-stamped version, after which divergentWrites() drains
 *    to zero. The same machinery heals a quorum-failed write-all
 *    (W = R with a partial failure, acked Error).
 *  - What a reader may observe mid-repair: for a key inside the
 *    divergence window, read-one returns the new value from an
 *    acked replica or the rolled-back value from the failed one,
 *    depending on which replica the (deterministic, origin-keyed)
 *    routing picks once the in-flight ledger entry retired -- but
 *    never garbage, and never a mix. After the sweep visits the
 *    key's range, every replica serves the newer version.
 *  - A failed append is never served as Ok with bytes that did not
 *    reach flash: the shard's index only ever points at durable log
 *    records (in-flight values are served from the memtable, which
 *    the failure path discards).
 *
 * Membership / elasticity contract (see MemberState and the
 * KvRouter membership API):
 *  - Every ring member is Live, Suspect, Dead or Joining; nodes
 *    outside the ring (pre-join, post-leave) are Standby. Failure
 *    detection is timeout-driven: remote requests carry per-request
 *    timers (KvParams::readTimeoutUs / writeTimeoutUs); a node that
 *    times out KvParams::suspectAfter consecutive times becomes
 *    Suspect, and a Suspect node that produces no response for
 *    KvParams::deadGraceUs becomes Dead. Any response -- even a
 *    late one for an already-retired request -- is proof of life
 *    and returns a Suspect node to Live. A Dead node never returns
 *    on its own: it missed writes while it was skipped, so only an
 *    explicit rebuild (reviveNode + rebuildNode, or the kill path's
 *    equivalent) may readmit it, Joining until caught up.
 *  - What clients observe per state. Reads never target Suspect,
 *    Dead or Joining replicas while a Live one exists (Suspect is
 *    the last resort before failing); a read that times out retries
 *    another readable replica (bounded by KvParams::readRetries),
 *    so a single crash costs affected reads one timeout + one
 *    retry, not an error. Writes still address Suspect replicas
 *    (they may merely be slow) but skip Dead ones entirely: the
 *    write quorum W clamps to the live+suspect+joining owner count,
 *    the skipped replica's key is marked divergent immediately, and
 *    the degradedWrites counter records the exposure (an Ok under
 *    clamp means durable on fewer than W configured replicas). A
 *    write with NO addressable owner fails with Error. A write that
 *    times out on a straggler completes as if that replica failed
 *    (divergence recorded, repair owns it); the straggler's late
 *    ack is dropped.
 *  - Crash + rebuild: killNode() models a fail-stop crash (the node
 *    drops all requests and responses; in-flight operations
 *    ORIGINATED there complete with Error -- their clients died
 *    with the node). Detection then runs the ordinary timeout
 *    path. reviveNode() readmits the node as Joining -- written
 *    again, not yet read -- and rebuildNode() streams it back to
 *    currency with the anti-entropy machinery (stamp digests,
 *    newest-stamp-wins pushes) at flash Priority::Background, so
 *    serving reads never queue behind recovery I/O. When the sweep
 *    completes the node returns to Live and divergentWrites()
 *    drains to zero.
 *  - Join / leave (two-phase handoff): joinNode()/leaveNode()
 *    compute the next ring, then (phase 1) dual-write -- every
 *    write addresses the union of current and next owners, with
 *    next-only owners excluded from the quorum -- while a
 *    Background catch-up sweep walks the union ring's segments and
 *    pushes each key's newest-stamped state to its next owners.
 *    Phase 2 flips the ring atomically (ring epoch bumps), drops
 *    every cached entry whose owner set changed (a version from the
 *    old owner's counter space must not validate against the new
 *    owner), and the node becomes Live (join) or Standby (leave).
 *    In-flight operations drain against the owner set they were
 *    issued with; reads keep hitting the old owners -- who keep
 *    their data -- until the flip, so serving continues throughout.
 *    What a non-writing client may transiently observe right after
 *    the flip is the same class of window W < R already opens (a
 *    new owner an in-flight dual-write has not reached yet);
 *    writing clients stay read-your-writes via the in-flight
 *    ledger, which outlives the flip for ops opened before it.
 *  - Overload under membership churn: Overloaded rejections carry a
 *    retry-after hint (KvService::retryAfterUs) sized to the
 *    client's queue backlog; well-behaved closed-loop clients back
 *    off (jittered) instead of hammering a service that is
 *    absorbing failover or rebalance load.
 *
 * Aged-flash contract (wear, corruption, capacity -- docs/aging.md
 * spells out the full ladder):
 *  - Bit errors climb with block wear. A page read whose SECDED
 *    decode fails is re-sensed by the flash server (bounded
 *    readRetries); a read that stays uncorrectable poisons the
 *    page in the file system and surfaces to the shard as a
 *    storage Error. The shard marks the key's index entry corrupt,
 *    and the router heals it from the other replica: on the read
 *    path (a fresh copy is fetched and re-put through the
 *    stamp-guarded repair path, then served) and in the
 *    anti-entropy sweep (corrupt entries are folded into the range
 *    digests, so divergence drains to zero even when both sides
 *    hold the same stamp). Clients observe at most one slow read
 *    (heal-then-retry), never garbage bytes served as Ok.
 *  - Pressure is a first-class status: when a shard's log device
 *    falls at or below its free-block red-line
 *    (fs::FsParams::pressureLowWater), puts and deletes return
 *    Pressure instead of consuming the last reserve blocks the
 *    cleaner needs. KvService maps Pressure to an Overloaded
 *    rejection with the same retry-after hint as admission
 *    overload, so closed-loop clients back off (jittered) while
 *    the cleaner -- escalated to bounded foreground assists --
 *    recovers the reserve. Reads are never shed for capacity:
 *    serving gets proceed normally under pressure.
 *
 * Flash traffic classes (see flash::Priority and flash::Timing's
 * suspend-resume contract): every KV operation maps onto one of
 * two NAND priority classes. Serving traffic -- client gets and
 * the log appends behind client puts -- rides Priority::Read, so a
 * get's page read may SUSPEND an in-flight NAND program or erase
 * (bounded by Timing::maxSuspendsPerOp) instead of waiting the
 * full array time behind it; this is what decouples the read tail
 * from write load. Maintenance traffic -- anti-entropy repair
 * pushes (KvRouter::repairSweep, manual or periodic via
 * KvParams::repairIntervalUs) and the file system's segment
 * cleaning underneath -- rides Priority::Background: it never
 * suspends anything and is accounted separately at the array, so
 * repair can run during serving without stealing read latency or
 * blurring the load attribution.
 */
enum class KvStatus : std::uint8_t
{
    Ok,         //!< success; value (if any) is valid
    NotFound,   //!< no live version of the key
    Overloaded, //!< rejected at admission (client queue full)
    Error,      //!< storage error underneath
    /** Write shed at the shard: the log device is at its capacity
     * red-line and the write would consume reserve blocks the
     * cleaner needs. Retryable -- KvService maps it to an
     * Overloaded rejection with a retry-after hint. */
    Pressure,
};

/** Operations of the shard protocol. */
enum class KvOp : std::uint8_t { Get, Put, Delete };

/**
 * Membership state of one node, as the router sees it (the file
 * comment's membership contract spells out the transitions and what
 * clients observe in each state).
 */
enum class MemberState : std::uint8_t
{
    Live,    //!< in the ring, serving reads and writes
    Suspect, //!< consecutive timeouts; written, read only as last resort
    Dead,    //!< grace expired (or killed): skipped entirely
    Joining, //!< in the ring for writes, catching up; never read
    Standby, //!< not in the ring (pre-join / post-leave)
};

/** On-wire size of the fixed request/response header (command, key,
 * request id, routing fields). Value bytes ride on top. */
constexpr std::uint32_t kvHeaderBytes = 32;

/**
 * Ask a shard to perform one operation. Travels origin -> owner on
 * epKvService; `value` carries put data (untimed -- the timed size
 * is Message::bytes, header plus value length).
 */
struct KvRequest
{
    std::uint64_t reqId = 0;
    Key key = 0;
    /**
     * Conditional get: the shard-global version of the requester's
     * cached copy (0 = none). When the owner's live version still
     * matches, it replies with an empty, header-only response
     * instead of reading flash and shipping the value -- the cache
     * invalidation ride-along that keeps hot-key caching coherent
     * (a stale cached version simply fails the comparison and the
     * fresh value comes back).
     */
    std::uint64_t cachedVersion = 0;
    /**
     * Router-issued write stamp (puts/deletes): one cluster-wide
     * monotonic counter orders all writes of a key, so replicas --
     * whose internal shard versions are not comparable -- can agree
     * which side of a divergence is newer during anti-entropy
     * repair. 0 on gets.
     */
    std::uint64_t stamp = 0;
    KvOp op = KvOp::Get;
    net::EndpointId replyEndpoint = epKvData;
    /**
     * Tracing continuation (sim::Tracer::Handle of the request's
     * network-hop span; 0 = untraced). Simulation metadata, not
     * protocol state: it is NOT part of kvHeaderBytes -- a real
     * deployment would pack a trace id into spare header bits. The
     * receiving shard hangs its service span off this handle, which
     * is how one span tree follows the op across nodes (the single
     * simulated clock makes the remote timestamps exact). See
     * docs/observability.md for the span taxonomy.
     */
    std::uint64_t trace = 0;
    flash::PageBuffer value; //!< put payload; empty otherwise
};

/**
 * One operation's result, owner -> origin on epKvData.
 */
struct KvResponse
{
    std::uint64_t reqId = 0;
    /**
     * Shard-global version of the key's live entry at the serving
     * shard (0 for misses). A get result equal to the request's
     * cachedVersion means "not modified": the value is empty and
     * the requester serves its cached copy.
     */
    std::uint64_t version = 0;
    /**
     * Ticks the serving node spent on this op (receipt of the
     * request to the response send). The origin subtracts this from
     * the measured round trip to attribute the remainder to the
     * network stage (kv.stage.net) without any tracing enabled --
     * the always-on per-stage breakdown BENCH_kv reports. Untimed
     * metadata, like KvRequest::trace.
     */
    std::uint64_t serviceTicks = 0;
    /** Tracing continuation for the response's network hop
     * (sim::Tracer::Handle; 0 = untraced). See KvRequest::trace. */
    std::uint64_t trace = 0;
    KvStatus status = KvStatus::Ok;
    flash::PageBuffer value; //!< get result; empty otherwise
};

static_assert(sizeof(KvRequest) <= net::PayloadPool::slotBytes &&
                  sizeof(KvResponse) <= net::PayloadPool::slotBytes,
              "KV protocol structs must recycle through the payload "
              "pool, not the heap");

/**
 * splitmix64 finalizer: the KV layer's hash for keys and ring
 * points. Deterministic across platforms (unlike std::hash).
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_TYPES_HH
