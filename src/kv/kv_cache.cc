#include "kv/kv_cache.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

FreqSketch::FreqSketch(unsigned width)
{
    unsigned w = 16;
    while (w < width)
        w <<= 1;
    counters_.assign(std::size_t(rows) * w, 0);
    mask_ = w - 1;
    sampleLimit_ = 8 * w;
}

std::uint32_t
FreqSketch::slot(unsigned row, Key key) const
{
    // One mix per row: independent-enough hashes from splitmix64
    // with per-row salts.
    std::uint64_t h = mix64(key ^ (0x9e3779b97f4a7c15ull * (row + 1)));
    return (std::uint32_t(h) & mask_) + row * (mask_ + 1);
}

void
FreqSketch::touch(Key key)
{
    for (unsigned r = 0; r < rows; ++r) {
        std::uint8_t &c = counters_[slot(r, key)];
        if (c < 0xff)
            ++c;
    }
    if (++touches_ >= sampleLimit_) {
        // Age: halve everything so the sketch tracks the recent
        // past; a key hot an hour ago must not stay admitted.
        touches_ = 0;
        for (std::uint8_t &c : counters_)
            c = std::uint8_t(c >> 1);
    }
}

unsigned
FreqSketch::estimate(Key key) const
{
    unsigned est = 0xff;
    for (unsigned r = 0; r < rows; ++r)
        est = std::min<unsigned>(est, counters_[slot(r, key)]);
    return est;
}

KvCache::KvCache(const Params &params)
    : params_(params), sketch_(params.slots * 4)
{
    if (params_.slots == 0)
        sim::fatal("KvCache built with zero slots (gate on "
                   "cacheSlots before constructing)");
    map_.reserve(params_.slots * 2);
}

void
KvCache::touch(Key key)
{
    sketch_.touch(key);
}

const KvCache::Entry *
KvCache::lookup(Key key)
{
    ++lookups_;
    auto it = map_.find(key);
    if (it == map_.end())
        return nullptr;
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
    return &it->second->second;
}

void
KvCache::fill(Key key, std::uint64_t version,
              const flash::PageBuffer &value)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        // Resident: refresh in place, no admission gate.
        it->second->second.version = version;
        it->second->second.value = value;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (sketch_.estimate(key) < params_.admitHits) {
        ++rejectedFills_;
        return; // not hot enough to displace the resident set
    }
    if (map_.size() >= params_.slots) {
        ++evictions_;
        map_.erase(lru_.back().first);
        lru_.pop_back();
    }
    ++admitted_;
    lru_.emplace_front(key, Entry{version, value});
    map_[key] = lru_.begin();
}

void
KvCache::invalidate(Key key)
{
    auto it = map_.find(key);
    if (it == map_.end())
        return;
    ++invalidations_;
    lru_.erase(it->second);
    map_.erase(it);
}

std::size_t
KvCache::invalidateIf(const std::function<bool(Key)> &pred)
{
    std::size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
        if (pred(it->first)) {
            ++invalidations_;
            ++dropped;
            map_.erase(it->first);
            it = lru_.erase(it);
        } else {
            ++it;
        }
    }
    return dropped;
}

} // namespace kv
} // namespace bluedbm
