#include "kv/kv_router.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;
using net::NodeId;

KvRouter::KvRouter(sim::Simulator &sim, core::Cluster &cluster,
                   const KvParams &params)
    : sim_(sim), cluster_(cluster), params_(params),
      localOps_(sim.metrics().counter("kv.router.local_ops")),
      remoteOps_(sim.metrics().counter("kv.router.remote_ops")),
      cacheServed_(sim.metrics().counter("kv.router.cache_served")),
      cacheStale_(sim.metrics().counter("kv.router.cache_stale")),
      repairedKeys_(sim.metrics().counter("kv.router.repaired_keys")),
      repairSweeps_(sim.metrics().counter("kv.router.repair_sweeps")),
      readTimeouts_(sim.metrics().counter("kv.router.read_timeouts")),
      writeTimeouts_(
          sim.metrics().counter("kv.router.write_timeouts")),
      retriedReads_(sim.metrics().counter("kv.router.retried_reads")),
      failedReads_(sim.metrics().counter("kv.router.failed_reads")),
      degradedWrites_(
          sim.metrics().counter("kv.router.degraded_writes")),
      lateResponses_(
          sim.metrics().counter("kv.router.late_responses")),
      suspectTransitions_(
          sim.metrics().counter("kv.router.suspect_transitions")),
      deadTransitions_(
          sim.metrics().counter("kv.router.dead_transitions")),
      movedKeys_(sim.metrics().counter("kv.router.moved_keys")),
      localCorruption_(
          sim.metrics().counter("kv.router.local_corruption")),
      stageNet_(sim.metrics().histogram("kv.stage.net")),
      stageShard_(sim.metrics().histogram("kv.stage.shard"))
{
    if (cluster_.network().endpointCount() < kvRequiredEndpoints)
        sim::fatal("KV service needs >= %u network endpoints, "
                   "cluster has %u",
                   kvRequiredEndpoints,
                   cluster_.network().endpointCount());
    unsigned active = params_.activeNodes == 0 ? cluster_.size()
                                               : params_.activeNodes;
    if (active > cluster_.size())
        sim::fatal("activeNodes %u exceeds cluster size %u", active,
                   cluster_.size());
    if (params_.replication == 0 || params_.replication > active ||
        params_.replication > maxReplication)
        sim::fatal("replication factor %u invalid for %u active "
                   "nodes", params_.replication, active);
    if (params_.writeQuorum == 0 ||
        params_.writeQuorum > params_.replication)
        sim::fatal("write quorum %u invalid for replication %u",
                   params_.writeQuorum, params_.replication);
    if (params_.repairChunk == 0)
        sim::fatal("repair chunk must be >= 1");
    if (params_.vnodes == 0)
        sim::fatal("consistent hashing needs >= 1 vnode");
    if (params_.readRetries >= 2 * maxReplication)
        sim::fatal("readRetries %u exceeds the per-op target "
                   "budget", params_.readRetries);

    // Hash ring: vnodes points per active node, sorted once. Every
    // node derives identical owners with no directory service.
    // Nodes beyond activeNodes start Standby: provisioned but
    // owning no keys, joinable later.
    ring_.reserve(std::size_t(active) * params_.vnodes);
    for (unsigned n = 0; n < active; ++n) {
        for (unsigned v = 0; v < params_.vnodes; ++v)
            ring_.emplace_back(
                mix64((std::uint64_t(n) << 32) | v), NodeId(n));
    }
    std::sort(ring_.begin(), ring_.end());

    members_.resize(cluster_.size());
    for (unsigned n = active; n < cluster_.size(); ++n)
        members_[n].state = MemberState::Standby;

    if (params_.logStripes == 0)
        sim::fatal("shard log needs >= 1 stripe");
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        shards_.emplace_back(std::make_unique<KvShard>(
            sim_, cluster_.node(n).fs(), params_.shardLog,
            params_.logStripes));
        if (params_.cacheSlots > 0) {
            KvCache::Params cp;
            cp.slots = params_.cacheSlots;
            cp.admitHits = params_.cacheAdmitHits;
            caches_.emplace_back(std::make_unique<KvCache>(cp));
        } else {
            caches_.emplace_back(nullptr);
        }
    }

    // Quantities that move both ways (or are maxima) stay plain
    // members, published as gauges. The router may die before the
    // Simulator in tests, so every gauge checks the liveness flag.
    auto alive = alive_;
    sim.metrics().registerGauge(
        "kv.router.background_writes", {}, [this, alive]() {
        return *alive ? double(backgroundWrites_) : 0.0;
    });
    sim.metrics().registerGauge(
        "kv.router.max_background_writes", {}, [this, alive]() {
        return *alive ? double(maxBackgroundWrites_) : 0.0;
    });
    sim.metrics().registerGauge(
        "kv.router.divergent_keys", {}, [this, alive]() {
        return *alive ? double(divergent_.size()) : 0.0;
    });
    // KvCache is a passive structure with no Simulator of its own;
    // the router publishes each node's cache stats on its behalf.
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        if (!caches_[n])
            continue;
        const KvCache *c = caches_[n].get();
        sim::MetricLabels labels{{"inst", std::to_string(n)}};
        struct CacheStat
        {
            const char *name;
            std::uint64_t (KvCache::*read)() const;
        };
        static constexpr CacheStat stats[] = {
            {"kv.cache.lookups", &KvCache::lookups},
            {"kv.cache.hits", &KvCache::hits},
            {"kv.cache.admitted", &KvCache::admitted},
            {"kv.cache.rejected_fills", &KvCache::rejectedFills},
            {"kv.cache.evictions", &KvCache::evictions},
            {"kv.cache.invalidations", &KvCache::invalidations},
        };
        for (const CacheStat &s : stats) {
            sim.metrics().registerGauge(
                s.name, labels, [c, alive, read = s.read]() {
                return *alive ? double((c->*read)()) : 0.0;
            });
        }
        sim.metrics().registerGauge(
            "kv.cache.size", labels, [c, alive]() {
            return *alive ? double(c->size()) : 0.0;
        });
    }

    installAgents();
    if (params_.repairIntervalUs > 0)
        armRepairTimer();
}

KvRouter::~KvRouter()
{
    *alive_ = false;
    if (repairTimer_ != sim::invalidEventId)
        sim_.cancel(repairTimer_);
    for (Member &m : members_) {
        if (m.graceTimer != sim::invalidEventId)
            sim_.cancel(m.graceTimer);
    }
    // In-flight operations die with the router: their timers (and
    // grace timers above) capture `this` raw, so every armed event
    // must be cancelled before the memory goes away. The pending
    // callbacks are simply dropped -- nobody is left to hear them.
    for (auto &[id, op] : pending_) {
        (void)id;
        if (op.timer != sim::invalidEventId)
            sim_.cancel(op.timer);
    }
}

void
KvRouter::armRepairTimer()
{
    repairTimer_ = sim_.scheduleAfter(
        sim::usToTicks(double(params_.repairIntervalUs)), [this]() {
        repairTimer_ = sim::invalidEventId;
        if (sweepRunning_) {
            // A manual sweep (or a membership handoff) is
            // mid-flight: let it finish and try again next
            // interval (sweeps never overlap).
            armRepairTimer();
            return;
        }
        repairSweep([this]() { armRepairTimer(); });
    });
}

// ---------------------------------------------------------------- //
// Ring geometry
// ---------------------------------------------------------------- //

unsigned
KvRouter::ownersFromRing(const Ring &ring, std::size_t ring_index,
                         NodeId *out, unsigned max)
{
    unsigned count = 0;
    for (std::size_t step = 0;
         step < ring.size() && count < max; ++step) {
        if (ring_index == ring.size())
            ring_index = 0;
        NodeId n = ring[ring_index].second;
        if (std::find(out, out + count, n) == out + count)
            out[count++] = n;
        ++ring_index;
    }
    return count;
}

unsigned
KvRouter::ownersForHash(const Ring &ring, std::uint64_t h,
                        NodeId *out, unsigned max)
{
    auto it = std::lower_bound(ring.begin(), ring.end(),
                               std::make_pair(h, NodeId(0)));
    return ownersFromRing(ring, std::size_t(it - ring.begin()), out,
                          max);
}

unsigned
KvRouter::segmentRanges(const Ring &ring, std::size_t seg,
                        std::uint64_t ranges[2][2])
{
    // The arc ending at point seg; segment 0 additionally owns the
    // wrap-around arc past the last point.
    unsigned nranges = 0;
    constexpr std::uint64_t maxHash = ~std::uint64_t(0);
    if (seg == 0) {
        ranges[nranges][0] = 0;
        ranges[nranges][1] = ring.front().first;
        ++nranges;
        if (ring.back().first != maxHash) {
            ranges[nranges][0] = ring.back().first + 1;
            ranges[nranges][1] = maxHash;
            ++nranges;
        }
    } else {
        ranges[nranges][0] = ring[seg - 1].first + 1;
        ranges[nranges][1] = ring[seg].first;
        ++nranges;
    }
    return nranges;
}

unsigned
KvRouter::ownersInto(Key key, NodeId *out, unsigned max) const
{
    return ownersForHash(ring_, mix64(key), out, max);
}

std::vector<NodeId>
KvRouter::owners(Key key) const
{
    std::vector<NodeId> out(params_.replication);
    out.resize(ownersInto(key, out.data(), params_.replication));
    return out;
}

// ---------------------------------------------------------------- //
// Membership
// ---------------------------------------------------------------- //

MemberState
KvRouter::member(NodeId n) const
{
    return members_.at(n).state;
}

unsigned
KvRouter::liveNodes() const
{
    unsigned live = 0;
    for (const Member &m : members_)
        live += m.state == MemberState::Live ? 1 : 0;
    return live;
}

void
KvRouter::noteTimeout(NodeId n)
{
    Member &m = members_[n];
    ++m.consecTimeouts;
    if (m.state == MemberState::Live && params_.suspectAfter > 0 &&
        m.consecTimeouts >= params_.suspectAfter) {
        m.state = MemberState::Suspect;
        suspectTransitions_.inc();
        if (params_.deadGraceUs > 0) {
            // Grace period: a suspect that shows no life before
            // this fires is declared Dead (writes then skip it and
            // clamp their quorum -- see issueWrite).
            m.graceTimer = sim_.scheduleAfter(
                sim::usToTicks(double(params_.deadGraceUs)),
                [this, n]() {
                Member &mm = members_[n];
                mm.graceTimer = sim::invalidEventId;
                if (mm.state == MemberState::Suspect) {
                    mm.state = MemberState::Dead;
                    deadTransitions_.inc();
                }
            });
        }
    }
}

void
KvRouter::noteAlive(NodeId n)
{
    Member &m = members_[n];
    // A crashed node's own local shard completions still route
    // through completeOne; they are not network proof of life.
    if (m.crashed)
        return;
    m.consecTimeouts = 0;
    if (m.state == MemberState::Suspect) {
        // Any response -- even one for a request that already
        // timed out -- recovers a suspect. Dead stays Dead: it
        // missed writes while skipped, only a rebuild readmits it.
        m.state = MemberState::Live;
        if (m.graceTimer != sim::invalidEventId) {
            sim_.cancel(m.graceTimer);
            m.graceTimer = sim::invalidEventId;
        }
    }
}

void
KvRouter::killNode(NodeId n)
{
    Member &m = members_.at(n);
    if (m.crashed)
        return;
    m.crashed = true;
    // Fail-stop: the node's network agents drop everything from
    // now (installAgents checks the flag). Detection is NOT
    // short-circuited -- peers must discover the silence through
    // the ordinary timeout path, exactly as with a real crash.
    //
    // Operations ORIGINATED at the dead node complete with Error:
    // their clients died with it. Collect ids first -- completions
    // re-enter the router and mutate pending_.
    std::vector<std::uint64_t> doomed;
    for (const auto &[id, op] : pending_) {
        if (op.origin == n)
            doomed.push_back(id);
    }
    for (std::uint64_t id : doomed) {
        auto it = pending_.find(id);
        if (it == pending_.end())
            continue;
        PendingOp op = std::move(it->second);
        pending_.erase(it);
        if (op.timer != sim::invalidEventId)
            sim_.cancel(op.timer);
        sim_.tracer().endSpan(op.routeSpan, sim_.now());
        if (op.write) {
            if (op.clientAcked)
                --backgroundWrites_;
            // The write may have reached some replicas before the
            // crash killed its bookkeeping: repair owns the rest.
            divergent_.insert(op.key);
            ledgerOpDone(op.key, op.origin, id);
            if (!op.clientAcked && op.ackDone)
                op.ackDone(KvStatus::Error);
            if (op.settled)
                op.settled();
        } else if (op.getDone) {
            op.getDone(PageBuffer{}, KvStatus::Error);
        }
    }
}

void
KvRouter::reviveNode(NodeId n)
{
    Member &m = members_.at(n);
    if (!m.crashed)
        sim::fatal("reviveNode(%u): node was not killed", n);
    m.crashed = false;
    m.consecTimeouts = 0;
    if (m.graceTimer != sim::invalidEventId) {
        sim_.cancel(m.graceTimer);
        m.graceTimer = sim::invalidEventId;
    }
    // Joining, not Live: it receives writes again (so it stops
    // falling further behind) but serves no reads until
    // rebuildNode() streamed back what it missed.
    m.state = MemberState::Joining;
}

void
KvRouter::rebuildNode(NodeId n, std::function<void()> done)
{
    if (members_.at(n).state != MemberState::Joining)
        sim::fatal("rebuildNode(%u): node is not Joining", n);
    // The rebuild IS an anti-entropy sweep: with the node Joining
    // (reconcilable again), every segment it owns compares unequal
    // and the sweep pushes the missed history across, reading
    // sources and appending at Priority::Background so serving
    // reads never queue behind recovery I/O.
    repairSweep([this, n, done = std::move(done)]() {
        Member &m = members_[n];
        if (m.state == MemberState::Joining) {
            m.state = MemberState::Live;
            m.consecTimeouts = 0;
        }
        if (done)
            done();
    });
}

void
KvRouter::startExclusive(std::function<void()> fn)
{
    if (sweepRunning_) {
        pendingExclusive_.push_back(std::move(fn));
        return;
    }
    fn();
}

void
KvRouter::releaseExclusive()
{
    // Ring changes first (they queued behind a sweep and block
    // further sweeps while they run), then the queued sweeps.
    if (!sweepRunning_ && !pendingExclusive_.empty()) {
        auto fn = std::move(pendingExclusive_.front());
        pendingExclusive_.erase(pendingExclusive_.begin());
        fn();
    }
    if (!sweepRunning_ && !queuedSweeps_.empty()) {
        auto waiters = std::make_shared<
            std::vector<std::function<void()>>>(
            std::move(queuedSweeps_));
        queuedSweeps_.clear();
        repairSweep([waiters]() {
            for (auto &w : *waiters) {
                if (w)
                    w();
            }
        });
    }
}

void
KvRouter::joinNode(NodeId n, std::function<void()> done)
{
    if (n >= cluster_.size())
        sim::fatal("joinNode(%u): no such node", n);
    startExclusive([this, n, done = std::move(done)]() mutable {
        beginRebalance(n, true, std::move(done));
    });
}

void
KvRouter::leaveNode(NodeId n, std::function<void()> done)
{
    if (n >= cluster_.size())
        sim::fatal("leaveNode(%u): no such node", n);
    startExclusive([this, n, done = std::move(done)]() mutable {
        beginRebalance(n, false, std::move(done));
    });
}

struct KvRouter::SweepState
{
    std::function<void()> done;
    std::size_t nextSeg = 0;
    unsigned outstanding = 0; //!< async repairs in flight
    /** Traversal parked on the in-flight cap (repairChunk): the
     * next repair completion below the cap restarts it. Without
     * this, a rebalance catch-up issues every push in one tick and
     * floods the controller tags foreground reads need. */
    bool stalled = false;
    bool traversalDone = false;
    /** Join/leave catch-up: traverse the finer ring, reconcile
     * old-union-new owner sets, count movedKeys, never prune. */
    bool rebalance = false;
    /** Tombstones below this stamp may prune on consistent ranges:
     * older than every write in flight when the sweep started. */
    std::uint64_t pruneBelow = 0;
};

void
KvRouter::beginRebalance(NodeId n, bool joining,
                         std::function<void()> done)
{
    // Re-validate here: the request may have queued behind a sweep
    // and the world may have moved underneath it.
    Member &m = members_[n];
    if (joining) {
        if (m.state != MemberState::Standby || m.crashed)
            sim::fatal("joinNode(%u): node is not Standby", n);
    } else {
        if (m.state != MemberState::Live)
            sim::fatal("leaveNode(%u): node is not Live", n);
    }

    auto rb = std::make_unique<Rebalance>();
    rb->oldRing = ring_;
    rb->newRing = ring_;
    if (joining) {
        rb->newRing.reserve(ring_.size() + params_.vnodes);
        for (unsigned v = 0; v < params_.vnodes; ++v)
            rb->newRing.emplace_back(
                mix64((std::uint64_t(n) << 32) | v), n);
        std::sort(rb->newRing.begin(), rb->newRing.end());
    } else {
        rb->newRing.erase(
            std::remove_if(rb->newRing.begin(), rb->newRing.end(),
                           [n](const std::pair<std::uint64_t,
                                               NodeId> &p) {
                return p.second == n;
            }),
            rb->newRing.end());
        std::vector<bool> seen(cluster_.size(), false);
        unsigned distinct = 0;
        for (const auto &p : rb->newRing) {
            if (!seen[p.second]) {
                seen[p.second] = true;
                ++distinct;
            }
        }
        if (distinct < params_.replication)
            sim::fatal("leaveNode(%u): %u nodes left cannot hold "
                       "%u replicas", n, distinct,
                       params_.replication);
    }
    // The finer ring (superset of points: new for a join, old for
    // a leave) is the granularity whose segments have constant
    // owner sets under BOTH rings -- what the catch-up walks.
    rb->finer = joining ? &rb->newRing : &rb->oldRing;
    rb->node = n;
    rb->joining = joining;
    rb->done = std::move(done);
    if (joining)
        m.state = MemberState::Joining;

    // Phase 1 from here: issueWrite sees rebalance_ and dual-writes
    // to the union owner set; the traversal below copies history.
    // sweepRunning_ doubles as the exclusive lock -- no ordinary
    // sweep (whose segment geometry assumes a stable ring) and no
    // second membership change can start mid-handoff.
    rebalance_ = std::move(rb);
    sweepRunning_ = true;
    auto state = std::make_shared<SweepState>();
    state->rebalance = true;
    sweepChunk(state);
}

void
KvRouter::rebalanceSegment(std::shared_ptr<SweepState> state,
                           std::size_t seg)
{
    const Rebalance &rb = *rebalance_;
    std::uint64_t ranges[2][2];
    unsigned nranges = segmentRanges(*rb.finer, seg, ranges);
    for (unsigned r = 0; r < nranges; ++r) {
        std::uint64_t lo = ranges[r][0], hi = ranges[r][1];
        // Replica set of this arc: the union of its owners under
        // the old and the new ring (constant across the arc, by
        // choice of the finer ring). The newest-stamped state of
        // every key in the arc ends up on every union member --
        // in particular on the next owners that lack it.
        NodeId uni[maxReplication];
        unsigned nuni =
            ownersForHash(rb.oldRing, lo, uni, params_.replication);
        NodeId nown[maxReplication];
        unsigned nnew =
            ownersForHash(rb.newRing, lo, nown, params_.replication);
        for (unsigned i = 0; i < nnew; ++i) {
            if (std::find(uni, uni + nuni, nown[i]) != uni + nuni)
                continue;
            if (nuni >= maxReplication)
                sim::fatal("owner union exceeds maxReplication");
            uni[nuni++] = nown[i];
        }
        // Only reconcilable members participate; a Dead or crashed
        // replica keeps its divergence marks for a later sweep.
        NodeId rec[maxReplication];
        unsigned nrec = 0;
        for (unsigned i = 0; i < nuni; ++i) {
            MemberState ms = members_[uni[i]].state;
            if (!members_[uni[i]].crashed &&
                (ms == MemberState::Live ||
                 ms == MemberState::Suspect ||
                 ms == MemberState::Joining))
                rec[nrec++] = uni[i];
        }
        if (nrec >= 2)
            sweepRange(state, rec, nrec, lo, hi, false);
    }
}

void
KvRouter::finishRebalance(const std::shared_ptr<SweepState> &state)
{
    (void)state;
    // Phase 2, the flip: atomic within the event -- every operation
    // issued after this line routes on the new ring.
    std::unique_ptr<Rebalance> rb = std::move(rebalance_);
    Ring old_ring = std::move(rb->oldRing);
    ring_ = std::move(rb->newRing);
    ++ringEpoch_;
    Member &m = members_[rb->node];
    if (rb->joining) {
        m.state = MemberState::Live;
        m.consecTimeouts = 0;
    } else {
        m.state = MemberState::Standby;
    }
    // Purge every cached key whose owner set changed: a cached
    // version lives in ONE shard's counter space, and the arc that
    // moved now validates against a different shard. In-flight
    // conditional gets from before the flip are handled by the
    // epoch gate in finishGet.
    for (auto &c : caches_) {
        if (!c)
            continue;
        c->invalidateIf([this, &old_ring](Key k) {
            NodeId a[maxReplication], b[maxReplication];
            std::uint64_t h = mix64(k);
            unsigned na = ownersForHash(old_ring, h, a,
                                        params_.replication);
            unsigned nb =
                ownersForHash(ring_, h, b, params_.replication);
            if (na != nb)
                return true;
            for (unsigned i = 0; i < na; ++i) {
                if (a[i] != b[i])
                    return true;
            }
            return false;
        });
    }
    sweepRunning_ = false;
    if (rb->done)
        rb->done();
    releaseExclusive();
}

// ---------------------------------------------------------------- //
// Read routing
// ---------------------------------------------------------------- //

NodeId
KvRouter::readReplica(NodeId origin, Key key) const
{
    NodeId target;
    if (steerTarget(origin, key, &target) &&
        members_[target].state != MemberState::Dead)
        return target;
    bool diverted = false;
    if (pickReadTarget(origin, key, &target, &diverted))
        return target;
    return defaultReadReplica(origin, key);
}

bool
KvRouter::steerTarget(NodeId origin, Key key, NodeId *out) const
{
    // In-flight ledger: a quorum-acked write from THIS origin still
    // draining to stragglers steers this origin's reads to a
    // replica that acked it, or the writing client could read its
    // own write's predecessor off a straggler. Reads from other
    // origins keep the plain spread (see InflightWrite for why the
    // narrow scope matters). Uses the entry's owner list, so the
    // common unconstrained read never pays a second ring walk.
    auto lit = inflightWrites_.find(key);
    if (lit == inflightWrites_.end())
        return false;
    const InflightWrite &w = lit->second;
    std::uint8_t mask = 0;
    bool wrote = false;
    for (const auto &wr : w.writers) {
        if (wr.origin == origin && wr.ops > 0) {
            wrote = true;
            if (wr.ackedOp != 0)
                mask = wr.ackedMask;
            break;
        }
    }
    if (!wrote)
        return false;
    // The origin's own shard applied its writes synchronously:
    // local stays both correct and free.
    for (unsigned i = 0; i < w.ownerCount; ++i) {
        if (w.owners[i] == origin) {
            *out = origin;
            return true;
        }
    }
    if (mask != 0) {
        NodeId safe[maxReplication];
        unsigned nsafe = 0;
        for (unsigned i = 0; i < w.ownerCount; ++i) {
            if (mask & (std::uint8_t(1) << i))
                safe[nsafe++] = w.owners[i];
        }
        if (nsafe > 0) {
            *out = safe[origin % nsafe];
            return true;
        }
    }
    // Nothing client-acked yet: no obligation to steer.
    return false;
}

NodeId
KvRouter::defaultReadReplica(NodeId origin, Key key) const
{
    // Allocation-free: gets are the 95% case and run once per op.
    NodeId own[maxReplication];
    unsigned count = ownersInto(key, own, params_.replication);
    for (unsigned i = 0; i < count; ++i) {
        if (own[i] == origin)
            return origin; // a local replica: zero network hops
    }
    // Spread different origins across the replica set so hot keys
    // draw read bandwidth from every copy.
    return own[origin % count];
}

bool
KvRouter::pickReadTarget(NodeId origin, Key key, NodeId *out,
                         bool *diverted) const
{
    NodeId own[maxReplication];
    unsigned count = ownersInto(key, own, params_.replication);
    if (count == 0)
        return false;
    NodeId plain = own[origin % count];
    for (unsigned i = 0; i < count; ++i) {
        if (own[i] == origin) {
            plain = origin;
            break;
        }
    }
    // The origin's own shard needs no liveness check -- if the
    // origin were gone, nobody would be asking.
    if (plain == origin ||
        members_[plain].state == MemberState::Live) {
        *out = plain;
        *diverted = false;
        return true;
    }
    // Fail over, keeping the origin-keyed spread: a Live owner
    // first; a Suspect one as last resort (it may merely be slow,
    // and slow beats Error). Dead and Joining never serve reads --
    // both are known to be missing writes.
    const MemberState passes[2] = {MemberState::Live,
                                   MemberState::Suspect};
    for (MemberState want : passes) {
        for (unsigned k = 0; k < count; ++k) {
            NodeId cand = own[(origin + k) % count];
            if (members_[cand].state != want)
                continue;
            *out = cand;
            *diverted = cand != plain;
            return true;
        }
    }
    return false;
}

bool
KvRouter::pickRetryTarget(Key key, NodeId origin,
                          const NodeId *tried, unsigned ntried,
                          NodeId *out) const
{
    NodeId own[maxReplication];
    unsigned count = ownersInto(key, own, params_.replication);
    const MemberState passes[2] = {MemberState::Live,
                                   MemberState::Suspect};
    for (MemberState want : passes) {
        for (unsigned i = 0; i < count; ++i) {
            NodeId cand = own[i];
            if (cand == origin ||
                members_[cand].state != want)
                continue;
            if (std::find(tried, tried + ntried, cand) !=
                tried + ntried)
                continue;
            *out = cand;
            return true;
        }
    }
    return false;
}

void
KvRouter::get(NodeId origin, Key key, GetDone done,
              std::uint64_t trace)
{
    std::uint64_t route =
        sim_.tracer().beginSpan(trace, "route", sim_.now());
    // Routing, in priority order: the read-your-writes steer, then
    // the liveness-aware deterministic spread. A read that ends up
    // anywhere but the PLAIN deterministic replica (steered,
    // failed over, or later retried) must go out unconditional and
    // must not fill the cache -- shard versions are per-shard
    // counters, and a cached version from replica A coincidentally
    // matching replica B's counter would confirm a stale value.
    NodeId replica;
    bool steered = false;
    NodeId steer;
    if (steerTarget(origin, key, &steer) &&
        members_[steer].state != MemberState::Dead) {
        replica = steer;
        steered = replica != defaultReadReplica(origin, key);
    } else {
        bool diverted = false;
        if (!pickReadTarget(origin, key, &replica, &diverted)) {
            // Every owner is Dead or Joining: nothing can serve
            // this read. Fail asynchronously -- callers expect it.
            failedReads_.inc();
            sim_.tracer().endSpan(route, sim_.now());
            sim_.scheduleAfter(0, [done = std::move(done)]() {
                done(PageBuffer{}, KvStatus::Error);
            });
            return;
        }
        steered = diverted;
    }
    if (replica == origin) {
        localOps_.inc();
        sim::Tick t0 = sim_.now();
        std::uint64_t span =
            sim_.tracer().beginSpan(route, "shard.get", t0);
        // `this` is safe to capture raw: the continuation only runs
        // while the shard is alive, and the shard dies with us.
        shards_[origin]->get(key,
                             [this, origin, key, t0, span, route,
                              done = std::move(done)](
                                 PageBuffer v, KvStatus st,
                                 std::uint64_t) mutable {
            sim::Tick now = sim_.now();
            stageShard_.record(now - t0);
            stageNet_.record(0);
            sim_.tracer().endSpan(span, now);
            if (st == KvStatus::Error) {
                // The local durable copy is unreadable (the flash
                // server's retry ladder exhausted; the shard marked
                // the key corrupt). Serve the client from another
                // replica and heal the local copy on the way.
                localCorruption_.inc();
                divergent_.insert(key);
                sim_.tracer().mark(route, "local.corrupt", now);
                NodeId other;
                if (pickRetryTarget(key, origin, nullptr, 0,
                                    &other)) {
                    healLocalGet(origin, other, key, route,
                                 std::move(done));
                    return;
                }
                failedReads_.inc();
            }
            sim_.tracer().endSpan(route, now);
            done(std::move(v), st);
        },
                             flash::Priority::Read, span);
        return;
    }
    remoteOps_.inc();
    // Hot-key cache: a cached (value, version) pair turns this into
    // a conditional get. The replica confirms an unchanged version
    // with a header-only reply and the value is served locally.
    std::uint64_t cached_version = 0;
    if (KvCache *cache = cacheFor(origin)) {
        if (!steered) {
            cache->touch(key);
            if (const KvCache::Entry *e = cache->lookup(key))
                cached_version = e->version;
            else
                sim_.tracer().mark(route, "cache.miss", sim_.now());
        }
    }
    std::uint64_t id = nextReqId_++;
    PendingOp &op = pending_[id];
    op.sent[0] = replica;
    op.sentCount = 1;
    op.attempts = 1;
    op.remaining = 1;
    op.getDone = std::move(done);
    op.key = key;
    op.origin = origin;
    op.cachedVersion = cached_version;
    op.steered = steered;
    op.epoch = ringEpoch_;
    op.trace = trace;
    op.routeSpan = route;
    op.sentTick = sim_.now();

    KvRequest req;
    req.reqId = id;
    req.key = key;
    req.op = KvOp::Get;
    req.cachedVersion = cached_version;
    req.trace =
        sim_.tracer().beginSpan(route, "net.req", op.sentTick);
    cluster_.network()
        .endpoint(origin, epKvService)
        .send(replica, kvHeaderBytes, std::move(req));
    if (params_.readTimeoutUs > 0)
        armOpTimer(id, params_.readTimeoutUs);
}

void
KvRouter::healLocalGet(NodeId origin, NodeId from, Key key,
                       std::uint64_t route, GetDone done)
{
    // Failover read at serving priority (the client is waiting);
    // the write-back push below rides Background inside repairPut.
    retriedReads_.inc();
    std::uint64_t span = sim_.tracer().beginSpan(
        route, "shard.heal_get", sim_.now());
    shards_[from]->get(
        key,
        [this, origin, from, key, span, route,
         done = std::move(done)](PageBuffer v, KvStatus st,
                                 std::uint64_t) mutable {
        sim::Tick now = sim_.now();
        sim_.tracer().endSpan(span, now);
        if (st == KvStatus::Ok) {
            // Push the surviving copy back under ITS stamp: the
            // corrupt local entry admits the push even at an equal
            // stamp (see KvShard::HashState), and the guard makes
            // the heal idempotent against racing writes.
            std::uint64_t stamp = 0;
            bool live = false;
            if (shards_[from]->keyState(key, &stamp, &live) &&
                live) {
                PageBuffer copy = v;
                shards_[origin]->repairPut(
                    key, std::move(copy), stamp,
                    [this, alive = alive_](KvStatus rst) {
                    if (!*alive)
                        return;
                    if (rst == KvStatus::Ok)
                        repairedKeys_.inc();
                });
            }
        } else if (st == KvStatus::Error) {
            failedReads_.inc();
        }
        sim_.tracer().endSpan(route, now);
        done(std::move(v), st);
    },
        flash::Priority::Read, span);
}

// ---------------------------------------------------------------- //
// Write path
// ---------------------------------------------------------------- //

void
KvRouter::put(NodeId origin, Key key, PageBuffer value, AckDone done,
              SettledDone settled, std::uint64_t trace)
{
    issueWrite(origin, key, KvOp::Put, std::move(value),
               std::move(done), std::move(settled), trace);
}

void
KvRouter::del(NodeId origin, Key key, AckDone done,
              SettledDone settled, std::uint64_t trace)
{
    issueWrite(origin, key, KvOp::Delete, PageBuffer{},
               std::move(done), std::move(settled), trace);
}

void
KvRouter::issueWrite(NodeId origin, Key key, KvOp kvop,
                     PageBuffer value, AckDone done,
                     SettledDone settled, std::uint64_t trace)
{
    std::uint64_t route =
        sim_.tracer().beginSpan(trace, "route", sim_.now());
    // The origin's cached copy (if any) is dead the moment the
    // overwrite is issued; validation would catch it, but dropping
    // it now saves the wasted conditional round.
    if (KvCache *cache = cacheFor(origin))
        cache->invalidate(key);

    NodeId own[maxReplication];
    unsigned count = ownersInto(key, own, params_.replication);

    // Quorum-eligible targets: the current ring's owners minus the
    // Dead ones. Suspect and Joining owners are still written --
    // a suspect may merely be slow, and a joining node must stop
    // falling behind -- but a Dead replica is skipped outright:
    // waiting out its timeout on every write would put the crash
    // on the client latency path.
    NodeId eligible[maxReplication];
    unsigned nelig = 0;
    bool clamped = false;
    for (unsigned i = 0; i < count; ++i) {
        if (members_[own[i]].state == MemberState::Dead)
            clamped = true;
        else
            eligible[nelig++] = own[i];
    }
    if (clamped && nelig > 0) {
        // Durable on fewer than the configured replicas: certain
        // divergence, recorded up front so repair owns it, and the
        // exposure is observable (degradedWrites).
        divergent_.insert(key);
        degradedWrites_.inc();
    }
    if (nelig == 0) {
        sim_.tracer().endSpan(route, sim_.now());
        sim_.scheduleAfter(0, [done = std::move(done),
                               settled = std::move(settled)]() {
            if (done)
                done(KvStatus::Error);
            if (settled)
                settled();
        });
        return;
    }

    // Dual-write (join/leave phase 1): next-ring-only owners ride
    // along as aux targets, excluded from the quorum -- the client
    // never waits on a node that is still catching up, but new
    // writes stop widening the gap the catch-up sweep must close.
    NodeId aux[maxReplication];
    unsigned naux = 0;
    if (rebalance_) {
        NodeId nown[maxReplication];
        unsigned nnew = ownersForHash(rebalance_->newRing,
                                      mix64(key), nown,
                                      params_.replication);
        for (unsigned i = 0; i < nnew; ++i) {
            if (std::find(own, own + count, nown[i]) != own + count)
                continue;
            if (members_[nown[i]].state == MemberState::Dead) {
                divergent_.insert(key);
                continue;
            }
            aux[naux++] = nown[i];
        }
    }

    std::uint64_t id = nextReqId_++;
    std::uint64_t stamp = ++nextStamp_;
    unsigned total = nelig + naux;
    NodeId targets[2 * maxReplication];
    {
        PendingOp &op = pending_[id];
        for (unsigned i = 0; i < nelig; ++i)
            op.sent[i] = eligible[i];
        for (unsigned i = 0; i < naux; ++i)
            op.sent[nelig + i] = aux[i];
        op.sentCount = std::uint8_t(total);
        op.eligible = std::uint8_t(nelig);
        op.remaining = total;
        op.quorum = std::min(params_.writeQuorum, nelig);
        op.write = true;
        op.ackDone = std::move(done);
        op.settled = std::move(settled);
        op.key = key;
        op.origin = origin;
        op.stamp = stamp;
        op.epoch = ringEpoch_;
        op.trace = trace;
        op.routeSpan = route;
        op.sentTick = sim_.now();
        for (unsigned i = 0; i < total; ++i)
            targets[i] = op.sent[i];
    }
    ledgerOpen(key, origin, eligible, nelig);

    auto bytes = kvHeaderBytes +
        static_cast<std::uint32_t>(value.size());
    for (unsigned i = 0; i < total; ++i) {
        // The last replica takes the buffer, the others a copy.
        PageBuffer copy =
            i + 1 < total ? value : std::move(value);
        NodeId replica = targets[i];
        if (replica == origin) {
            localOps_.inc();
            sim::Tick t0 = sim_.now();
            std::uint64_t span = sim_.tracer().beginSpan(
                route,
                kvop == KvOp::Put ? "shard.put" : "shard.del", t0);
            auto ack = [this, id, replica, t0, span](KvStatus st) {
                sim::Tick now = sim_.now();
                stageShard_.record(now - t0);
                stageNet_.record(0);
                sim_.tracer().endSpan(span, now);
                completeOne(id, st, PageBuffer{}, 0, replica);
            };
            if (kvop == KvOp::Put)
                shards_[origin]->put(key, std::move(copy), stamp,
                                     std::move(ack),
                                     flash::Priority::Read, span);
            else
                shards_[origin]->del(key, stamp, std::move(ack));
            continue;
        }
        remoteOps_.inc();
        KvRequest req;
        req.reqId = id;
        req.key = key;
        req.op = kvop;
        req.stamp = stamp;
        req.value = std::move(copy);
        req.trace =
            sim_.tracer().beginSpan(route, "net.req", sim_.now());
        cluster_.network()
            .endpoint(origin, epKvService)
            .send(replica,
                  kvop == KvOp::Put ? bytes : kvHeaderBytes,
                  std::move(req));
    }
    if (params_.writeTimeoutUs > 0)
        armOpTimer(id, params_.writeTimeoutUs);
}

void
KvRouter::ledgerOpen(Key key, NodeId origin, const NodeId *own,
                     unsigned count)
{
    InflightWrite &w = inflightWrites_[key];
    if (w.ops == 0) {
        w.ownerCount = count;
        for (unsigned i = 0; i < count; ++i)
            w.owners[i] = own[i];
    }
    ++w.ops;
    // Register the writing origin: its reads are the ones the
    // ledger must steer (read-your-writes is per session). Reuse a
    // drained slot before growing.
    InflightWrite::Writer *slot = nullptr;
    for (auto &wr : w.writers) {
        if (wr.origin == origin) {
            slot = &wr;
            break;
        }
        if (slot == nullptr && wr.ops == 0)
            slot = &wr;
    }
    if (slot == nullptr || slot->origin != origin) {
        if (slot == nullptr) {
            w.writers.emplace_back();
            slot = &w.writers.back();
        } else {
            *slot = InflightWrite::Writer{};
        }
        slot->origin = origin;
    }
    ++slot->ops;
}

void
KvRouter::ledgerClientAcked(Key key, NodeId origin,
                            std::uint64_t op_id,
                            std::uint8_t acked_mask)
{
    auto it = inflightWrites_.find(key);
    if (it == inflightWrites_.end())
        return;
    InflightWrite &w = it->second;
    for (auto &wr : w.writers) {
        if (wr.origin == origin && wr.ops > 0) {
            wr.ackedOp = op_id;
            wr.ackedMask = acked_mask;
            return;
        }
    }
}

void
KvRouter::ledgerLateAck(Key key, NodeId origin, std::uint64_t op_id,
                        unsigned idx)
{
    auto it = inflightWrites_.find(key);
    if (it == inflightWrites_.end())
        return;
    InflightWrite &w = it->second;
    auto bit = std::uint8_t(std::uint8_t(1) << idx);
    for (auto &wr : w.writers) {
        if (wr.origin == origin && wr.ackedOp == op_id) {
            wr.ackedMask |= bit;
            return;
        }
    }
}

void
KvRouter::ledgerOpDone(Key key, NodeId origin, std::uint64_t op_id)
{
    auto it = inflightWrites_.find(key);
    if (it == inflightWrites_.end())
        sim::panic("ledger completion for untracked key");
    InflightWrite &w = it->second;
    for (auto &wr : w.writers) {
        if (wr.origin == origin && wr.ops > 0) {
            --wr.ops;
            // The op reached every replica: its steer (if it was
            // the active one) is obsolete -- any replica serves it.
            if (wr.ackedOp == op_id) {
                wr.ackedOp = 0;
                wr.ackedMask = 0;
            }
            break;
        }
    }
    if (--w.ops == 0)
        inflightWrites_.erase(it);
}

void
KvRouter::multiGet(NodeId origin, std::vector<Key> keys,
                   MultiGetDone done, std::uint64_t trace)
{
    struct Ctx
    {
        std::vector<PageBuffer> values;
        std::vector<KvStatus> statuses;
        std::size_t remaining = 0;
        MultiGetDone done;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->values.resize(keys.size());
    ctx->statuses.assign(keys.size(), KvStatus::NotFound);
    ctx->remaining = keys.size();
    ctx->done = std::move(done);
    if (keys.empty()) {
        sim_.scheduleAfter(0, [ctx]() {
            ctx->done(std::move(ctx->values),
                      std::move(ctx->statuses));
        });
        return;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        get(origin, keys[i],
            [ctx, i](PageBuffer v, KvStatus st) {
            ctx->values[i] = std::move(v);
            ctx->statuses[i] = st;
            if (--ctx->remaining == 0)
                ctx->done(std::move(ctx->values),
                          std::move(ctx->statuses));
        },
            trace);
    }
}

void
KvRouter::installAgents()
{
    auto &net = cluster_.network();
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        // Shard agent: serve get/put/delete arriving from peers.
        // The agents outlive nothing -- they capture the liveness
        // flag because network deliveries already in flight can
        // fire after the router died; and a crashed node's agent
        // swallows everything (fail-stop: peers hear silence, the
        // payload slot still recycles).
        net.endpoint(NodeId(n), epKvService)
            .setReceiveHandler([this, alive = alive_,
                                n](net::Message msg) {
            if (!*alive)
                return;
            auto req = msg.payload.take<KvRequest>();
            if (members_[n].crashed)
                return;
            NodeId requester = msg.src;
            net::EndpointId reply_ep = req.replyEndpoint;
            serveLocal(NodeId(n), std::move(req),
                       [this, alive, n, requester,
                        reply_ep](KvResponse resp) {
                if (!*alive || members_[n].crashed)
                    return;
                auto bytes = kvHeaderBytes +
                    static_cast<std::uint32_t>(resp.value.size());
                cluster_.network()
                    .endpoint(NodeId(n), reply_ep)
                    .send(requester, bytes, std::move(resp));
            });
        });
        // Response sink: complete the origin's pending operation.
        net.endpoint(NodeId(n), epKvData)
            .setReceiveHandler([this, alive = alive_,
                                n](net::Message msg) {
            if (!*alive)
                return;
            auto resp = msg.payload.take<KvResponse>();
            if (members_[n].crashed)
                return;
            sim_.tracer().endSpan(resp.trace, sim_.now());
            completeOne(resp.reqId, resp.status,
                        std::move(resp.value), resp.version,
                        msg.src, false, resp.serviceTicks);
        });
    }
}

void
KvRouter::serveLocal(NodeId node, KvRequest req,
                     std::function<void(KvResponse)> reply)
{
    std::uint64_t id = req.reqId;
    // The request's net.req span ends on arrival; the shard span
    // opens as its sibling (both children of the origin's route
    // span), and the reply opens net.resp the same way. `start`
    // feeds KvResponse::serviceTicks, the always-on serving-side
    // time the origin uses to split the round trip into
    // kv.stage.shard and kv.stage.net without any tracing.
    // Capturing `this` raw in the shard continuations is safe: they
    // only run while the shard is alive, and the shard dies with us.
    sim::Tick start = sim_.now();
    sim_.tracer().endSpan(req.trace, start);
    switch (req.op) {
      case KvOp::Get: {
        std::uint64_t span =
            sim_.tracer().beginSibling(req.trace, "shard.get", start);
        shards_[node]->getIfNewer(
            req.key, req.cachedVersion,
            [this, id, start, span,
             reply = std::move(reply)](PageBuffer v, KvStatus st,
                                       std::uint64_t version) {
            sim::Tick now = sim_.now();
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            resp.version = version;
            resp.value = std::move(v);
            resp.serviceTicks = now - start;
            sim_.tracer().endSpan(span, now);
            resp.trace =
                sim_.tracer().beginSibling(span, "net.resp", now);
            reply(std::move(resp));
        },
            flash::Priority::Read, span);
        return;
      }
      case KvOp::Put: {
        std::uint64_t span =
            sim_.tracer().beginSibling(req.trace, "shard.put", start);
        shards_[node]->put(req.key, std::move(req.value), req.stamp,
                           [this, id, start, span,
                            reply = std::move(reply)](KvStatus st) {
            sim::Tick now = sim_.now();
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            resp.serviceTicks = now - start;
            sim_.tracer().endSpan(span, now);
            resp.trace =
                sim_.tracer().beginSibling(span, "net.resp", now);
            reply(std::move(resp));
        },
                           flash::Priority::Read, span);
        return;
      }
      case KvOp::Delete: {
        std::uint64_t span =
            sim_.tracer().beginSibling(req.trace, "shard.del", start);
        shards_[node]->del(req.key, req.stamp,
                           [this, id, start, span,
                            reply = std::move(reply)](KvStatus st) {
            sim::Tick now = sim_.now();
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            resp.serviceTicks = now - start;
            sim_.tracer().endSpan(span, now);
            resp.trace =
                sim_.tracer().beginSibling(span, "net.resp", now);
            reply(std::move(resp));
        });
        return;
      }
    }
    sim::panic("unknown KV op");
}

void
KvRouter::armOpTimer(std::uint64_t id, std::uint64_t us)
{
    auto it = pending_.find(id);
    if (it == pending_.end())
        sim::panic("arming timer for unknown KV request");
    PendingOp &op = it->second;
    if (op.timer != sim::invalidEventId)
        sim_.cancel(op.timer);
    op.timer = sim_.scheduleAfter(
        sim::usToTicks(double(us)), [this, id]() {
        auto it2 = pending_.find(id);
        if (it2 == pending_.end())
            return;
        PendingOp &op2 = it2->second;
        op2.timer = sim::invalidEventId;
        // Synthesize a failure for every unresponded target (for a
        // read there is exactly one: the latest attempt; earlier
        // ones closed their slots when THEIR timeout retried).
        // Gather first -- completeOne may retire the op mid-loop.
        NodeId silent[2 * maxReplication];
        unsigned nsilent = 0;
        for (unsigned i = 0; i < op2.sentCount; ++i) {
            if (!(op2.respondedMask & (1u << i)))
                silent[nsilent++] = op2.sent[i];
        }
        for (unsigned i = 0; i < nsilent; ++i)
            completeOne(id, KvStatus::Error, PageBuffer{}, 0,
                        silent[i], true);
    });
}

void
KvRouter::completeOne(std::uint64_t req_id, KvStatus st,
                      PageBuffer value, std::uint64_t version,
                      NodeId from, bool timed_out,
                      sim::Tick service_ticks)
{
    auto it = pending_.find(req_id);
    unsigned slot = ~0u;
    if (it != pending_.end()) {
        const PendingOp &probe = it->second;
        for (unsigned i = 0; i < probe.sentCount; ++i) {
            if (probe.sent[i] == from &&
                !(probe.respondedMask & (1u << i))) {
                slot = i;
                break;
            }
        }
    }
    if (it == pending_.end() || slot == ~0u) {
        // The request already retired: it timed out (and possibly
        // failed over), or its origin died. The response is
        // dropped -- but it is proof its sender is alive, which
        // matters exactly when the sender was slow enough to be
        // suspected.
        lateResponses_.inc();
        noteAlive(from);
        return;
    }
    PendingOp &op = it->second;
    op.respondedMask |= std::uint16_t(1u << slot);
    --op.remaining;
    if (timed_out) {
        noteTimeout(from);
        sim_.tracer().mark(op.routeSpan, "rpc.timeout", sim_.now());
        if (op.write)
            writeTimeouts_.inc();
        else
            readTimeouts_.inc();
    } else {
        noteAlive(from);
        if (from != op.origin) {
            // Always-on stage attribution: the serving side
            // reported its own time, the rest of the round trip is
            // the network's.
            sim::Tick rtt = sim_.now() - op.sentTick;
            stageShard_.record(service_ticks);
            stageNet_.record(rtt > service_ticks
                                 ? rtt - service_ticks
                                 : 0);
        }
    }

    if (!op.write) {
        // Read path: one target in flight at a time.
        if (!timed_out && st != KvStatus::Error) {
            if (op.timer != sim::invalidEventId)
                sim_.cancel(op.timer);
            PendingOp fin = std::move(op);
            pending_.erase(it);
            fin.status = st;
            fin.version = version;
            fin.value = std::move(value);
            finishGet(std::move(fin));
            return;
        }
        // A real storage Error (not a synthesized timeout) means
        // the serving replica's durable copy is unreadable -- it
        // marked itself corrupt. Record the divergence so the next
        // sweep pushes a healthy copy across even if every retry
        // below also fails.
        if (!timed_out && st == KvStatus::Error)
            divergent_.insert(op.key);
        // Timeout or storage error: fail over to another replica.
        // The retry is unconditional and its result never fills
        // the cache -- it answers from a different replica's
        // version space (see get()).
        NodeId next;
        if (op.attempts <= params_.readRetries &&
            pickRetryTarget(op.key, op.origin, op.sent,
                            op.sentCount, &next)) {
            retriedReads_.inc();
            remoteOps_.inc();
            op.steered = true;
            op.cachedVersion = 0;
            op.sent[op.sentCount++] = next;
            ++op.attempts;
            ++op.remaining;
            op.sentTick = sim_.now();
            KvRequest req;
            req.reqId = req_id;
            req.key = op.key;
            req.op = KvOp::Get;
            req.trace = sim_.tracer().beginSpan(
                op.routeSpan, "net.req", op.sentTick);
            cluster_.network()
                .endpoint(op.origin, epKvService)
                .send(next, kvHeaderBytes, std::move(req));
            if (params_.readTimeoutUs > 0)
                armOpTimer(req_id, params_.readTimeoutUs);
            return;
        }
        failedReads_.inc();
        if (op.timer != sim::invalidEventId)
            sim_.cancel(op.timer);
        PendingOp fin = std::move(op);
        pending_.erase(it);
        fin.status = KvStatus::Error;
        fin.value = PageBuffer{};
        finishGet(std::move(fin));
        return;
    }

    // Write path. Eligible slots feed the quorum; aux (dual-write
    // catch-up) slots only feed the divergence set -- the catch-up
    // sweep owns whatever they miss.
    if (slot < op.eligible) {
        if (st == KvStatus::Ok) {
            ++op.okAcks;
            // Record which replica acked Ok (durable implies
            // applied): the bit feeds the read-your-writes steer.
            auto lit = inflightWrites_.find(op.key);
            if (lit != inflightWrites_.end()) {
                const InflightWrite &w = lit->second;
                for (unsigned i = 0; i < w.ownerCount; ++i) {
                    if (w.owners[i] == from) {
                        op.ackedMask |= std::uint8_t(1) << i;
                        if (op.clientAcked)
                            ledgerLateAck(op.key, op.origin,
                                          req_id, i);
                        break;
                    }
                }
            }
        } else {
            ++op.failed;
            if (op.status == KvStatus::Ok)
                op.status = st;
        }
    } else if (st != KvStatus::Ok) {
        divergent_.insert(op.key);
    }

    bool last = op.remaining == 0;

    // Quorum decision: the client completes on the W-th Ok, or as
    // soon as the failures make W unreachable. With all replies in,
    // one of the two has necessarily triggered.
    AckDone fire_client;
    KvStatus client_status = KvStatus::Ok;
    if (!op.clientAcked) {
        if (op.okAcks >= op.quorum) {
            op.clientAcked = true;
            fire_client = std::move(op.ackDone);
        } else if (op.failed > op.eligible - op.quorum) {
            op.clientAcked = true;
            fire_client = std::move(op.ackDone);
            client_status = op.status;
        }
    }

    if (!last) {
        // Stragglers still out: the op stays pending in the
        // background. Fire the client last -- the callback may
        // re-enter the router and grow pending_, invalidating op.
        if (fire_client) {
            // The route span measures client-perceived latency: it
            // ends at the ack, not at settlement. Straggler spans
            // left open are closed when the caller ends the trace.
            sim_.tracer().endSpan(op.routeSpan, sim_.now());
            op.routeSpan = 0;
            ++backgroundWrites_;
            if (backgroundWrites_ > maxBackgroundWrites_)
                maxBackgroundWrites_ = backgroundWrites_;
            if (client_status == KvStatus::Ok)
                ledgerClientAcked(op.key, op.origin, req_id,
                                  op.ackedMask);
            fire_client(client_status);
        }
        return;
    }

    // Last replica reply: retire the op and the ledger entry, and
    // record divergence (a mixed outcome means some replicas hold
    // the new value and at least one rolled back or went silent --
    // repairSweep() owns closing that window; see kv_types.hh).
    if (op.timer != sim::invalidEventId)
        sim_.cancel(op.timer);
    bool was_background = op.clientAcked && !fire_client;
    Key key = op.key;
    NodeId origin = op.origin;
    unsigned failed = op.failed, eligible = op.eligible;
    SettledDone settled = std::move(op.settled);
    std::uint64_t route_span = op.routeSpan;
    pending_.erase(it);
    sim_.tracer().endSpan(route_span, sim_.now());
    ledgerOpDone(key, origin, req_id);
    if (was_background)
        --backgroundWrites_;
    if (failed != 0 && failed < eligible)
        divergent_.insert(key);
    if (fire_client)
        fire_client(client_status);
    if (settled)
        settled();
}

// ---------------------------------------------------------------- //
// Anti-entropy repair and catch-up traversal
// ---------------------------------------------------------------- //

/**
 * One sweep (or rebalance catch-up) in flight: a cursor over the
 * traversed ring's segments plus a count of asynchronous repair
 * pushes still outstanding. The traversal walks segments in chunks
 * (yielding to the event loop between chunks -- repair is
 * maintenance, not serving), compares replica digests per segment,
 * and fires repairs fire-and-forget; completion runs only after
 * the cursor finished AND every repair completed.
 */
void
KvRouter::repairSweep(std::function<void()> done)
{
    if (sweepRunning_) {
        // A sweep or membership handoff is mid-flight (possibly
        // the periodic timer's): queue this request and serve
        // every queued caller with one fresh full sweep once the
        // current one completes. The completion contract holds --
        // the caller's done still fires only after a whole-ring
        // pass that started at or after the request.
        queuedSweeps_.push_back(std::move(done));
        return;
    }
    sweepRunning_ = true;
    auto state = std::make_shared<SweepState>();
    state->done = std::move(done);
    // Tombstones older than every in-flight write are stable on
    // digest-identical ranges: safe to drop everywhere at once.
    state->pruneBelow = nextStamp_ + 1;
    for (const auto &[id, op] : pending_) {
        (void)id;
        if (op.write && op.stamp < state->pruneBelow)
            state->pruneBelow = op.stamp;
    }
    sweepChunk(state);
}

void
KvRouter::sweepChunk(std::shared_ptr<SweepState> state)
{
    const bool reb = state->rebalance;
    std::size_t total =
        reb ? rebalance_->finer->size() : ring_.size();
    unsigned budget = params_.repairChunk;
    while (budget-- > 0 && state->nextSeg < total &&
           state->outstanding < params_.repairChunk) {
        if (reb)
            rebalanceSegment(state, state->nextSeg++);
        else
            sweepSegment(state, state->nextSeg++);
    }
    if (state->nextSeg < total) {
        if (state->outstanding >= params_.repairChunk) {
            // In-flight cap reached: park the traversal until the
            // pushes drain. This is the throttle that keeps a bulk
            // catch-up (rebuild, join) from saturating the very
            // nodes still serving foreground reads.
            state->stalled = true;
            return;
        }
        // Yield between chunks: serving traffic interleaves.
        sim_.scheduleAfter(0, [this, state, alive = alive_]() {
            if (*alive)
                sweepChunk(state);
        });
        return;
    }
    state->traversalDone = true;
    sweepFinish(state);
}

void
KvRouter::sweepFinish(const std::shared_ptr<SweepState> &state)
{
    if (!state->traversalDone || state->outstanding != 0)
        return;
    if (state->rebalance) {
        finishRebalance(state);
        return;
    }
    sweepRunning_ = false;
    repairSweeps_.inc();
    if (state->done)
        state->done();
    // Whoever queued behind this sweep -- a ring change, or repair
    // requests that arrived mid-sweep -- runs now. (The done
    // callback above may itself have started a sweep; if so, THAT
    // sweep's finish drains the queues instead.)
    releaseExclusive();
}

void
KvRouter::sweepSegment(std::shared_ptr<SweepState> state,
                       std::size_t seg)
{
    // Every key hashing into segment seg -- the ring arc ending at
    // point seg -- maps to the same replica set: the first R
    // distinct nodes walking the ring from that point.
    NodeId own[maxReplication];
    unsigned count =
        ownersFromRing(ring_, seg, own, params_.replication);
    if (count < 2)
        return; // unreplicated: nothing to reconcile

    std::uint64_t ranges[2][2];
    unsigned nranges = segmentRanges(ring_, seg, ranges);

    // Reconcilable replicas only: a crashed or Dead copy can
    // neither answer digests nor take pushes. An incomplete
    // segment is still reconciled among the survivors, but it
    // keeps its divergence marks and prunes nothing -- the missing
    // replica may hold older state that only its tombstones can
    // kill, and only a sweep that sees the FULL set (after
    // rebuildNode) may declare the segment clean.
    NodeId rec[maxReplication];
    unsigned nrec = 0;
    for (unsigned i = 0; i < count; ++i) {
        MemberState ms = members_[own[i]].state;
        if (!members_[own[i]].crashed &&
            (ms == MemberState::Live ||
             ms == MemberState::Suspect ||
             ms == MemberState::Joining))
            rec[nrec++] = own[i];
    }
    bool complete = nrec == count;
    if (nrec >= 2) {
        for (unsigned r = 0; r < nranges; ++r)
            sweepRange(state, rec, nrec, ranges[r][0],
                       ranges[r][1], complete);
    }
    if (!complete)
        return;

    // The full segment was compared (and any repairs are in
    // flight): keys here are no longer unaccountedly divergent. A
    // repair push that FAILS re-marks its key below.
    if (!divergent_.empty()) {
        for (auto it = divergent_.begin();
             it != divergent_.end();) {
            std::uint64_t h = mix64(*it);
            bool in_seg = false;
            for (unsigned r = 0; r < nranges; ++r)
                in_seg = in_seg || (h >= ranges[r][0] &&
                                    h <= ranges[r][1]);
            it = in_seg ? divergent_.erase(it) : std::next(it);
        }
    }
}

void
KvRouter::sweepRange(std::shared_ptr<SweepState> state,
                     const NodeId *own, unsigned count,
                     std::uint64_t lo, std::uint64_t hi,
                     bool may_prune)
{
    if (lo > hi)
        return;
    // The cheap pass: identical content folds to identical digests,
    // and consistent ranges (the overwhelming majority) cost no
    // enumeration and no flash I/O at all.
    std::uint64_t first = shards_[own[0]]->rangeDigest(lo, hi);
    bool mismatch = false;
    for (unsigned i = 1; i < count && !mismatch; ++i)
        mismatch = shards_[own[i]]->rangeDigest(lo, hi) != first;
    if (!mismatch) {
        // Digest-identical replicas hold identical tombstones, so
        // dropping the settled ones on every replica at once keeps
        // the digests equal and the repair index bounded. (Only
        // when every configured replica took part: see
        // sweepSegment.)
        if (may_prune) {
            for (unsigned i = 0; i < count; ++i)
                shards_[own[i]]->pruneTombstones(
                    lo, hi, state->pruneBelow);
        }
        return;
    }
    // Reconcile ALL replicas at once, not pairwise against the
    // primary: with R >= 3 the primary can itself be one of the
    // stale copies, and two equally-stale replicas must still be
    // pulled up to the newest-stamped state wherever it lives.
    struct Side
    {
        std::uint64_t stamp = 0;
        bool live = false;
        bool present = false;
        bool corrupt = false;
    };
    struct MergedKey
    {
        Key key = 0;
        Side sides[maxReplication];
    };
    std::map<std::uint64_t, MergedKey> merged;
    for (unsigned i = 0; i < count; ++i) {
        std::vector<KvShard::RangeEntry> entries;
        shards_[own[i]]->rangeEntries(lo, hi, entries);
        for (const auto &e : entries) {
            MergedKey &m = merged[mix64(e.key)];
            m.key = e.key;
            m.sides[i] = Side{e.stamp, e.live, true, e.corrupt};
        }
    }
    for (auto &[hash, m] : merged) {
        (void)hash;
        // Newest-stamped INTACT side wins; absent counts as stamp
        // 0. A corrupt side is never the source -- its stamp says
        // what it USED to hold, but the bytes are gone, so pushing
        // from it would spread garbage (and its repairPut source
        // read would fail anyway).
        unsigned newest = count;
        for (unsigned i = 0; i < count; ++i) {
            if (m.sides[i].corrupt)
                continue;
            if (newest == count ||
                m.sides[i].stamp > m.sides[newest].stamp)
                newest = i;
        }
        if (newest == count || m.sides[newest].stamp == 0)
            continue; // every copy corrupt (or absent): unhealable
        for (unsigned i = 0; i < count; ++i) {
            if (i == newest)
                continue;
            // A corrupt replica NEVER "agrees", whatever its stamp:
            // equal-stamp rot is exactly the case the corrupt flag
            // exists to repair.
            if (m.sides[i].present && !m.sides[i].corrupt &&
                m.sides[i].stamp == m.sides[newest].stamp &&
                m.sides[i].live == m.sides[newest].live)
                continue; // this replica already agrees
            repairKey(state, m.key, own[newest], own[i],
                      m.sides[newest].stamp, m.sides[newest].live);
        }
    }
}

void
KvRouter::repairKey(std::shared_ptr<SweepState> state, Key key,
                    NodeId from, NodeId to, std::uint64_t stamp,
                    bool live)
{
    ++state->outstanding;
    bool moved = state->rebalance;
    auto finish = [this, state, key, moved,
                   alive = alive_](KvStatus st) {
        if (!*alive)
            return;
        if (st != KvStatus::Ok && st != KvStatus::NotFound)
            // Push failed (unreadable source, shed append, ...):
            // still divergent. NotFound is repairDel finding the key
            // already absent -- the tombstone applied, so that copy
            // DID converge.
            divergent_.insert(key);
        else if (moved)
            movedKeys_.inc(); // rebalance copy (handoff traffic)
        else
            repairedKeys_.inc(); // reconciled (applied or caught up)
        --state->outstanding;
        if (state->stalled &&
            state->outstanding < params_.repairChunk) {
            state->stalled = false;
            sweepChunk(state);
            return;
        }
        sweepFinish(state);
    };
    if (!live) {
        shards_[to]->repairDel(key, stamp, std::move(finish));
        return;
    }
    // The source read rides Background with the push: recovery
    // traffic must never suspend a serving program or queue a
    // serving read behind it.
    shards_[from]->get(
        key,
        [this, key, to, stamp, alive = alive_,
         finish = std::move(finish)](PageBuffer v, KvStatus st,
                                     std::uint64_t) mutable {
        if (!*alive)
            return;
        if (st != KvStatus::Ok) {
            // Source read failed; leave the key for the next sweep.
            finish(KvStatus::Error);
            return;
        }
        shards_[to]->repairPut(key, std::move(v), stamp,
                               std::move(finish));
    },
        flash::Priority::Background);
}

void
KvRouter::finishGet(PendingOp fin)
{
    sim::Tick now = sim_.now();
    KvCache *cache = cacheFor(fin.origin);
    if (fin.status == KvStatus::Ok && fin.cachedVersion != 0 &&
        fin.version == fin.cachedVersion) {
        // "Not modified": the replica confirmed our cached copy.
        if (cache) {
            if (const KvCache::Entry *e = cache->lookup(fin.key)) {
                cacheServed_.inc();
                sim_.tracer().mark(fin.routeSpan, "cache.hit", now);
                sim_.tracer().endSpan(fin.routeSpan, now);
                fin.getDone(e->value, KvStatus::Ok);
                return;
            }
        }
        // Evicted while the validation was in flight (rare): fall
        // back to a plain fetch, which cannot loop -- the entry is
        // gone, so the retry goes out unconditional. The re-issue
        // opens a fresh route span under the original parent.
        sim_.tracer().endSpan(fin.routeSpan, now);
        get(fin.origin, fin.key, std::move(fin.getDone), fin.trace);
        return;
    }
    if (fin.status == KvStatus::Ok) {
        if (fin.cachedVersion != 0) {
            cacheStale_.inc(); // self-detected: fresh value came back
            sim_.tracer().mark(fin.routeSpan, "cache.stale", now);
        }
        // Steered / failed-over results carry another replica's
        // version space, and results from before a ring flip may
        // belong to an owner that no longer serves the key: never
        // let either into the cache (see get()).
        if (cache && !fin.steered && fin.epoch == ringEpoch_)
            cache->fill(fin.key, fin.version, fin.value);
    } else if (fin.status == KvStatus::NotFound && cache) {
        cache->invalidate(fin.key);
    }
    sim_.tracer().endSpan(fin.routeSpan, now);
    fin.getDone(std::move(fin.value), fin.status);
}

} // namespace kv
} // namespace bluedbm
