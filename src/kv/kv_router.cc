#include "kv/kv_router.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;
using net::NodeId;

KvRouter::KvRouter(sim::Simulator &sim, core::Cluster &cluster,
                   const KvParams &params)
    : sim_(sim), cluster_(cluster), params_(params)
{
    if (cluster_.network().endpointCount() < kvRequiredEndpoints)
        sim::fatal("KV service needs >= %u network endpoints, "
                   "cluster has %u",
                   kvRequiredEndpoints,
                   cluster_.network().endpointCount());
    if (params_.replication == 0 ||
        params_.replication > cluster_.size() ||
        params_.replication > maxReplication)
        sim::fatal("replication factor %u invalid for %u nodes",
                   params_.replication, cluster_.size());
    if (params_.vnodes == 0)
        sim::fatal("consistent hashing needs >= 1 vnode");

    // Fixed hash ring: vnodes points per node, sorted once. Every
    // node derives identical owners with no directory service.
    ring_.reserve(std::size_t(cluster_.size()) * params_.vnodes);
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        for (unsigned v = 0; v < params_.vnodes; ++v)
            ring_.emplace_back(
                mix64((std::uint64_t(n) << 32) | v), NodeId(n));
    }
    std::sort(ring_.begin(), ring_.end());

    for (unsigned n = 0; n < cluster_.size(); ++n) {
        shards_.emplace_back(std::make_unique<KvShard>(
            sim_, cluster_.node(n).fs(), params_.shardLog));
        if (params_.cacheSlots > 0) {
            KvCache::Params cp;
            cp.slots = params_.cacheSlots;
            cp.admitHits = params_.cacheAdmitHits;
            caches_.emplace_back(std::make_unique<KvCache>(cp));
        } else {
            caches_.emplace_back(nullptr);
        }
    }

    installAgents();
}

unsigned
KvRouter::ownersInto(Key key, NodeId *out, unsigned max) const
{
    std::uint64_t h = mix64(key);
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::make_pair(h, NodeId(0)));
    unsigned count = 0;
    for (std::size_t step = 0;
         step < ring_.size() && count < max; ++step) {
        if (it == ring_.end())
            it = ring_.begin();
        NodeId n = it->second;
        if (std::find(out, out + count, n) == out + count)
            out[count++] = n;
        ++it;
    }
    return count;
}

std::vector<NodeId>
KvRouter::owners(Key key) const
{
    std::vector<NodeId> out(params_.replication);
    out.resize(ownersInto(key, out.data(), params_.replication));
    return out;
}

NodeId
KvRouter::readReplica(NodeId origin, Key key) const
{
    // Allocation-free: gets are the 95% case and run once per op.
    NodeId own[maxReplication];
    unsigned count = ownersInto(key, own, params_.replication);
    for (unsigned i = 0; i < count; ++i) {
        if (own[i] == origin)
            return origin; // a local replica: zero network hops
    }
    // Spread different origins across the replica set so hot keys
    // draw read bandwidth from every copy.
    return own[origin % count];
}

void
KvRouter::get(NodeId origin, Key key, GetDone done)
{
    NodeId replica = readReplica(origin, key);
    if (replica == origin) {
        ++localOps_;
        shards_[origin]->get(key,
                             [done = std::move(done)](
                                 PageBuffer v, KvStatus st,
                                 std::uint64_t) {
            done(std::move(v), st);
        });
        return;
    }
    ++remoteOps_;
    // Hot-key cache: a cached (value, version) pair turns this into
    // a conditional get. The replica confirms an unchanged version
    // with a header-only reply and the value is served locally.
    std::uint64_t cached_version = 0;
    if (KvCache *cache = cacheFor(origin)) {
        cache->touch(key);
        if (const KvCache::Entry *e = cache->lookup(key))
            cached_version = e->version;
    }
    std::uint64_t id = nextReqId_++;
    PendingOp &op = pending_[id];
    op.remaining = 1;
    op.total = 1;
    op.getDone = std::move(done);
    op.key = key;
    op.origin = origin;
    op.cachedVersion = cached_version;

    KvRequest req;
    req.reqId = id;
    req.key = key;
    req.op = KvOp::Get;
    req.cachedVersion = cached_version;
    cluster_.network()
        .endpoint(origin, epKvService)
        .send(replica, kvHeaderBytes, std::move(req));
}

void
KvRouter::put(NodeId origin, Key key, PageBuffer value, AckDone done)
{
    // The origin's cached copy (if any) is dead the moment the
    // overwrite is issued; validation would catch it, but dropping
    // it now saves the wasted conditional round.
    if (KvCache *cache = cacheFor(origin))
        cache->invalidate(key);

    std::vector<NodeId> own = owners(key);
    std::uint64_t id = nextReqId_++;
    PendingOp &op = pending_[id];
    op.remaining = unsigned(own.size());
    op.total = unsigned(own.size());
    op.ackDone = std::move(done);
    op.key = key;
    op.origin = origin;

    auto bytes = kvHeaderBytes +
        static_cast<std::uint32_t>(value.size());
    for (std::size_t i = 0; i < own.size(); ++i) {
        // The last replica takes the buffer, the others a copy.
        PageBuffer copy =
            i + 1 < own.size() ? value : std::move(value);
        if (own[i] == origin) {
            ++localOps_;
            shards_[origin]->put(key, std::move(copy),
                                 [this, id](KvStatus st) {
                completeOne(id, st, PageBuffer{}, 0);
            });
            continue;
        }
        ++remoteOps_;
        KvRequest req;
        req.reqId = id;
        req.key = key;
        req.op = KvOp::Put;
        req.value = std::move(copy);
        cluster_.network()
            .endpoint(origin, epKvService)
            .send(own[i], bytes, std::move(req));
    }
}

void
KvRouter::del(NodeId origin, Key key, AckDone done)
{
    if (KvCache *cache = cacheFor(origin))
        cache->invalidate(key);

    std::vector<NodeId> own = owners(key);
    std::uint64_t id = nextReqId_++;
    PendingOp &op = pending_[id];
    op.remaining = unsigned(own.size());
    op.total = unsigned(own.size());
    op.ackDone = std::move(done);
    op.key = key;
    op.origin = origin;

    for (NodeId n : own) {
        if (n == origin) {
            ++localOps_;
            shards_[origin]->del(key, [this, id](KvStatus st) {
                completeOne(id, st, PageBuffer{}, 0);
            });
            continue;
        }
        ++remoteOps_;
        KvRequest req;
        req.reqId = id;
        req.key = key;
        req.op = KvOp::Delete;
        cluster_.network()
            .endpoint(origin, epKvService)
            .send(n, kvHeaderBytes, std::move(req));
    }
}

void
KvRouter::multiGet(NodeId origin, std::vector<Key> keys,
                   MultiGetDone done)
{
    struct Ctx
    {
        std::vector<PageBuffer> values;
        std::vector<KvStatus> statuses;
        std::size_t remaining = 0;
        MultiGetDone done;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->values.resize(keys.size());
    ctx->statuses.assign(keys.size(), KvStatus::NotFound);
    ctx->remaining = keys.size();
    ctx->done = std::move(done);
    if (keys.empty()) {
        sim_.scheduleAfter(0, [ctx]() {
            ctx->done(std::move(ctx->values),
                      std::move(ctx->statuses));
        });
        return;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        get(origin, keys[i],
            [ctx, i](PageBuffer v, KvStatus st) {
            ctx->values[i] = std::move(v);
            ctx->statuses[i] = st;
            if (--ctx->remaining == 0)
                ctx->done(std::move(ctx->values),
                          std::move(ctx->statuses));
        });
    }
}

void
KvRouter::installAgents()
{
    auto &net = cluster_.network();
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        // Shard agent: serve get/put/delete arriving from peers.
        net.endpoint(NodeId(n), epKvService)
            .setReceiveHandler([this, n](net::Message msg) {
            auto req = msg.payload.take<KvRequest>();
            NodeId requester = msg.src;
            net::EndpointId reply_ep = req.replyEndpoint;
            serveLocal(NodeId(n), std::move(req),
                       [this, n, requester,
                        reply_ep](KvResponse resp) {
                auto bytes = kvHeaderBytes +
                    static_cast<std::uint32_t>(resp.value.size());
                cluster_.network()
                    .endpoint(NodeId(n), reply_ep)
                    .send(requester, bytes, std::move(resp));
            });
        });
        // Response sink: complete the origin's pending operation.
        net.endpoint(NodeId(n), epKvData)
            .setReceiveHandler([this](net::Message msg) {
            auto resp = msg.payload.take<KvResponse>();
            completeOne(resp.reqId, resp.status,
                        std::move(resp.value), resp.version);
        });
    }
}

void
KvRouter::serveLocal(NodeId node, KvRequest req,
                     std::function<void(KvResponse)> reply)
{
    std::uint64_t id = req.reqId;
    switch (req.op) {
      case KvOp::Get:
        shards_[node]->getIfNewer(
            req.key, req.cachedVersion,
            [id, reply = std::move(reply)](PageBuffer v, KvStatus st,
                                           std::uint64_t version) {
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            resp.version = version;
            resp.value = std::move(v);
            reply(std::move(resp));
        });
        return;
      case KvOp::Put:
        shards_[node]->put(req.key, std::move(req.value),
                           [id, reply = std::move(reply)](
                               KvStatus st) {
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            reply(std::move(resp));
        });
        return;
      case KvOp::Delete:
        shards_[node]->del(req.key,
                           [id, reply = std::move(reply)](
                               KvStatus st) {
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            reply(std::move(resp));
        });
        return;
    }
    sim::panic("unknown KV op");
}

void
KvRouter::completeOne(std::uint64_t req_id, KvStatus st,
                      PageBuffer value, std::uint64_t version)
{
    auto it = pending_.find(req_id);
    if (it == pending_.end())
        sim::panic("response for unknown KV request %llu",
                   static_cast<unsigned long long>(req_id));
    PendingOp &op = it->second;
    if (st != KvStatus::Ok) {
        ++op.failed;
        if (op.status == KvStatus::Ok)
            op.status = st;
    }
    if (!value.empty())
        op.value = std::move(value);
    if (version != 0)
        op.version = version;
    if (--op.remaining != 0)
        return;
    PendingOp fin = std::move(op);
    pending_.erase(it);
    if (fin.getDone) {
        finishGet(std::move(fin));
        return;
    }
    // Write-all epilogue: a mixed outcome (some replicas applied,
    // some failed) leaves the copies divergent until the client
    // retries -- count it (see kv_types.hh for the contract).
    if (fin.failed != 0 && fin.failed < fin.total)
        ++divergentWrites_;
    fin.ackDone(fin.status);
}

void
KvRouter::finishGet(PendingOp fin)
{
    KvCache *cache = cacheFor(fin.origin);
    if (fin.status == KvStatus::Ok && fin.cachedVersion != 0 &&
        fin.version == fin.cachedVersion) {
        // "Not modified": the replica confirmed our cached copy.
        if (cache) {
            if (const KvCache::Entry *e = cache->lookup(fin.key)) {
                ++cacheServed_;
                fin.getDone(e->value, KvStatus::Ok);
                return;
            }
        }
        // Evicted while the validation was in flight (rare): fall
        // back to a plain fetch, which cannot loop -- the entry is
        // gone, so the retry goes out unconditional.
        get(fin.origin, fin.key, std::move(fin.getDone));
        return;
    }
    if (fin.status == KvStatus::Ok) {
        if (fin.cachedVersion != 0)
            ++cacheStale_; // self-detected: fresh value came back
        if (cache)
            cache->fill(fin.key, fin.version, fin.value);
    } else if (fin.status == KvStatus::NotFound && cache) {
        cache->invalidate(fin.key);
    }
    fin.getDone(std::move(fin.value), fin.status);
}

} // namespace kv
} // namespace bluedbm
