#include "kv/kv_router.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;
using net::NodeId;

KvRouter::KvRouter(sim::Simulator &sim, core::Cluster &cluster,
                   const KvParams &params)
    : sim_(sim), cluster_(cluster), params_(params)
{
    if (cluster_.network().endpointCount() < kvRequiredEndpoints)
        sim::fatal("KV service needs >= %u network endpoints, "
                   "cluster has %u",
                   kvRequiredEndpoints,
                   cluster_.network().endpointCount());
    if (params_.replication == 0 ||
        params_.replication > cluster_.size() ||
        params_.replication > maxReplication)
        sim::fatal("replication factor %u invalid for %u nodes",
                   params_.replication, cluster_.size());
    if (params_.writeQuorum == 0 ||
        params_.writeQuorum > params_.replication)
        sim::fatal("write quorum %u invalid for replication %u",
                   params_.writeQuorum, params_.replication);
    if (params_.repairChunk == 0)
        sim::fatal("repair chunk must be >= 1");
    if (params_.vnodes == 0)
        sim::fatal("consistent hashing needs >= 1 vnode");

    // Fixed hash ring: vnodes points per node, sorted once. Every
    // node derives identical owners with no directory service.
    ring_.reserve(std::size_t(cluster_.size()) * params_.vnodes);
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        for (unsigned v = 0; v < params_.vnodes; ++v)
            ring_.emplace_back(
                mix64((std::uint64_t(n) << 32) | v), NodeId(n));
    }
    std::sort(ring_.begin(), ring_.end());

    if (params_.logStripes == 0)
        sim::fatal("shard log needs >= 1 stripe");
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        shards_.emplace_back(std::make_unique<KvShard>(
            sim_, cluster_.node(n).fs(), params_.shardLog,
            params_.logStripes));
        if (params_.cacheSlots > 0) {
            KvCache::Params cp;
            cp.slots = params_.cacheSlots;
            cp.admitHits = params_.cacheAdmitHits;
            caches_.emplace_back(std::make_unique<KvCache>(cp));
        } else {
            caches_.emplace_back(nullptr);
        }
    }

    installAgents();
    if (params_.repairIntervalUs > 0)
        armRepairTimer();
}

KvRouter::~KvRouter()
{
    *alive_ = false;
    if (repairTimer_ != sim::invalidEventId)
        sim_.cancel(repairTimer_);
}

void
KvRouter::armRepairTimer()
{
    repairTimer_ = sim_.scheduleAfter(
        sim::usToTicks(double(params_.repairIntervalUs)), [this]() {
        repairTimer_ = sim::invalidEventId;
        if (sweepRunning_) {
            // A manual sweep is mid-flight: let it finish and try
            // again next interval (sweeps never overlap).
            armRepairTimer();
            return;
        }
        repairSweep([this]() { armRepairTimer(); });
    });
}

unsigned
KvRouter::ownersFrom(std::size_t ring_index, NodeId *out,
                     unsigned max) const
{
    unsigned count = 0;
    for (std::size_t step = 0;
         step < ring_.size() && count < max; ++step) {
        if (ring_index == ring_.size())
            ring_index = 0;
        NodeId n = ring_[ring_index].second;
        if (std::find(out, out + count, n) == out + count)
            out[count++] = n;
        ++ring_index;
    }
    return count;
}

unsigned
KvRouter::ownersInto(Key key, NodeId *out, unsigned max) const
{
    std::uint64_t h = mix64(key);
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::make_pair(h, NodeId(0)));
    return ownersFrom(std::size_t(it - ring_.begin()), out, max);
}

std::vector<NodeId>
KvRouter::owners(Key key) const
{
    std::vector<NodeId> out(params_.replication);
    out.resize(ownersInto(key, out.data(), params_.replication));
    return out;
}

NodeId
KvRouter::readReplica(NodeId origin, Key key) const
{
    NodeId target;
    if (steerTarget(origin, key, &target))
        return target;
    return defaultReadReplica(origin, key);
}

bool
KvRouter::steerTarget(NodeId origin, Key key, NodeId *out) const
{
    // In-flight ledger: a quorum-acked write from THIS origin still
    // draining to stragglers steers this origin's reads to a
    // replica that acked it, or the writing client could read its
    // own write's predecessor off a straggler. Reads from other
    // origins keep the plain spread (see InflightWrite for why the
    // narrow scope matters). Uses the entry's owner list, so the
    // common unconstrained read never pays a second ring walk.
    auto lit = inflightWrites_.find(key);
    if (lit == inflightWrites_.end())
        return false;
    const InflightWrite &w = lit->second;
    std::uint8_t mask = 0;
    bool wrote = false;
    for (const auto &wr : w.writers) {
        if (wr.origin == origin && wr.ops > 0) {
            wrote = true;
            if (wr.ackedOp != 0)
                mask = wr.ackedMask;
            break;
        }
    }
    if (!wrote)
        return false;
    // The origin's own shard applied its writes synchronously:
    // local stays both correct and free.
    for (unsigned i = 0; i < w.ownerCount; ++i) {
        if (w.owners[i] == origin) {
            *out = origin;
            return true;
        }
    }
    if (mask != 0) {
        NodeId safe[maxReplication];
        unsigned nsafe = 0;
        for (unsigned i = 0; i < w.ownerCount; ++i) {
            if (mask & (std::uint8_t(1) << i))
                safe[nsafe++] = w.owners[i];
        }
        if (nsafe > 0) {
            *out = safe[origin % nsafe];
            return true;
        }
    }
    // Nothing client-acked yet: no obligation to steer.
    return false;
}

NodeId
KvRouter::defaultReadReplica(NodeId origin, Key key) const
{
    // Allocation-free: gets are the 95% case and run once per op.
    NodeId own[maxReplication];
    unsigned count = ownersInto(key, own, params_.replication);
    for (unsigned i = 0; i < count; ++i) {
        if (own[i] == origin)
            return origin; // a local replica: zero network hops
    }
    // Spread different origins across the replica set so hot keys
    // draw read bandwidth from every copy.
    return own[origin % count];
}

void
KvRouter::get(NodeId origin, Key key, GetDone done)
{
    // A ledger-steered read may target a different replica than
    // the origin's deterministic choice. Shard versions are
    // per-shard counters and NOT comparable across replicas, so a
    // steered read must go out unconditional and its result must
    // not fill the cache -- a cached version from replica A
    // coincidentally matching replica B's current version would
    // confirm a stale value. (Steering windows are brief and the
    // writing origin just invalidated its cached copy anyway, so
    // this costs ~no hits.)
    NodeId replica;
    bool steered = false;
    if (steerTarget(origin, key, &replica))
        steered = replica != defaultReadReplica(origin, key);
    else
        replica = defaultReadReplica(origin, key);
    if (replica == origin) {
        ++localOps_;
        shards_[origin]->get(key,
                             [done = std::move(done)](
                                 PageBuffer v, KvStatus st,
                                 std::uint64_t) {
            done(std::move(v), st);
        });
        return;
    }
    ++remoteOps_;
    // Hot-key cache: a cached (value, version) pair turns this into
    // a conditional get. The replica confirms an unchanged version
    // with a header-only reply and the value is served locally.
    std::uint64_t cached_version = 0;
    if (KvCache *cache = cacheFor(origin)) {
        if (!steered) {
            cache->touch(key);
            if (const KvCache::Entry *e = cache->lookup(key))
                cached_version = e->version;
        }
    }
    std::uint64_t id = nextReqId_++;
    PendingOp &op = pending_[id];
    op.remaining = 1;
    op.total = 1;
    op.getDone = std::move(done);
    op.key = key;
    op.origin = origin;
    op.cachedVersion = cached_version;
    op.steered = steered;

    KvRequest req;
    req.reqId = id;
    req.key = key;
    req.op = KvOp::Get;
    req.cachedVersion = cached_version;
    cluster_.network()
        .endpoint(origin, epKvService)
        .send(replica, kvHeaderBytes, std::move(req));
}

void
KvRouter::put(NodeId origin, Key key, PageBuffer value, AckDone done,
              SettledDone settled)
{
    // The origin's cached copy (if any) is dead the moment the
    // overwrite is issued; validation would catch it, but dropping
    // it now saves the wasted conditional round.
    if (KvCache *cache = cacheFor(origin))
        cache->invalidate(key);

    std::vector<NodeId> own = owners(key);
    std::uint64_t id = nextReqId_++;
    std::uint64_t stamp = ++nextStamp_;
    PendingOp &op = pending_[id];
    op.remaining = unsigned(own.size());
    op.total = unsigned(own.size());
    op.quorum = params_.writeQuorum;
    op.write = true;
    op.ackDone = std::move(done);
    op.settled = std::move(settled);
    op.key = key;
    op.origin = origin;
    op.stamp = stamp;
    ledgerOpen(key, origin, own.data(), unsigned(own.size()));

    auto bytes = kvHeaderBytes +
        static_cast<std::uint32_t>(value.size());
    for (std::size_t i = 0; i < own.size(); ++i) {
        // The last replica takes the buffer, the others a copy.
        PageBuffer copy =
            i + 1 < own.size() ? value : std::move(value);
        NodeId replica = own[i];
        if (replica == origin) {
            ++localOps_;
            shards_[origin]->put(key, std::move(copy), stamp,
                                 [this, id, replica](KvStatus st) {
                completeOne(id, st, PageBuffer{}, 0, replica);
            });
            continue;
        }
        ++remoteOps_;
        KvRequest req;
        req.reqId = id;
        req.key = key;
        req.op = KvOp::Put;
        req.stamp = stamp;
        req.value = std::move(copy);
        cluster_.network()
            .endpoint(origin, epKvService)
            .send(replica, bytes, std::move(req));
    }
}

void
KvRouter::del(NodeId origin, Key key, AckDone done,
              SettledDone settled)
{
    if (KvCache *cache = cacheFor(origin))
        cache->invalidate(key);

    std::vector<NodeId> own = owners(key);
    std::uint64_t id = nextReqId_++;
    std::uint64_t stamp = ++nextStamp_;
    PendingOp &op = pending_[id];
    op.remaining = unsigned(own.size());
    op.total = unsigned(own.size());
    op.quorum = params_.writeQuorum;
    op.write = true;
    op.ackDone = std::move(done);
    op.settled = std::move(settled);
    op.key = key;
    op.origin = origin;
    op.stamp = stamp;
    ledgerOpen(key, origin, own.data(), unsigned(own.size()));

    for (NodeId n : own) {
        if (n == origin) {
            ++localOps_;
            shards_[origin]->del(key, stamp,
                                 [this, id, n](KvStatus st) {
                completeOne(id, st, PageBuffer{}, 0, n);
            });
            continue;
        }
        ++remoteOps_;
        KvRequest req;
        req.reqId = id;
        req.key = key;
        req.op = KvOp::Delete;
        req.stamp = stamp;
        cluster_.network()
            .endpoint(origin, epKvService)
            .send(n, kvHeaderBytes, std::move(req));
    }
}

void
KvRouter::ledgerOpen(Key key, NodeId origin, const NodeId *own,
                     unsigned count)
{
    InflightWrite &w = inflightWrites_[key];
    if (w.ops == 0) {
        w.ownerCount = count;
        for (unsigned i = 0; i < count; ++i)
            w.owners[i] = own[i];
    }
    ++w.ops;
    // Register the writing origin: its reads are the ones the
    // ledger must steer (read-your-writes is per session). Reuse a
    // drained slot before growing.
    InflightWrite::Writer *slot = nullptr;
    for (auto &wr : w.writers) {
        if (wr.origin == origin) {
            slot = &wr;
            break;
        }
        if (slot == nullptr && wr.ops == 0)
            slot = &wr;
    }
    if (slot == nullptr || slot->origin != origin) {
        if (slot == nullptr) {
            w.writers.emplace_back();
            slot = &w.writers.back();
        } else {
            *slot = InflightWrite::Writer{};
        }
        slot->origin = origin;
    }
    ++slot->ops;
}

void
KvRouter::ledgerClientAcked(Key key, NodeId origin,
                            std::uint64_t op_id,
                            std::uint8_t acked_mask)
{
    auto it = inflightWrites_.find(key);
    if (it == inflightWrites_.end())
        return;
    InflightWrite &w = it->second;
    for (auto &wr : w.writers) {
        if (wr.origin == origin && wr.ops > 0) {
            wr.ackedOp = op_id;
            wr.ackedMask = acked_mask;
            return;
        }
    }
}

void
KvRouter::ledgerLateAck(Key key, NodeId origin, std::uint64_t op_id,
                        unsigned idx)
{
    auto it = inflightWrites_.find(key);
    if (it == inflightWrites_.end())
        return;
    InflightWrite &w = it->second;
    auto bit = std::uint8_t(std::uint8_t(1) << idx);
    for (auto &wr : w.writers) {
        if (wr.origin == origin && wr.ackedOp == op_id) {
            wr.ackedMask |= bit;
            return;
        }
    }
}

void
KvRouter::ledgerOpDone(Key key, NodeId origin, std::uint64_t op_id)
{
    auto it = inflightWrites_.find(key);
    if (it == inflightWrites_.end())
        sim::panic("ledger completion for untracked key");
    InflightWrite &w = it->second;
    for (auto &wr : w.writers) {
        if (wr.origin == origin && wr.ops > 0) {
            --wr.ops;
            // The op reached every replica: its steer (if it was
            // the active one) is obsolete -- any replica serves it.
            if (wr.ackedOp == op_id) {
                wr.ackedOp = 0;
                wr.ackedMask = 0;
            }
            break;
        }
    }
    if (--w.ops == 0)
        inflightWrites_.erase(it);
}

void
KvRouter::multiGet(NodeId origin, std::vector<Key> keys,
                   MultiGetDone done)
{
    struct Ctx
    {
        std::vector<PageBuffer> values;
        std::vector<KvStatus> statuses;
        std::size_t remaining = 0;
        MultiGetDone done;
    };
    auto ctx = std::make_shared<Ctx>();
    ctx->values.resize(keys.size());
    ctx->statuses.assign(keys.size(), KvStatus::NotFound);
    ctx->remaining = keys.size();
    ctx->done = std::move(done);
    if (keys.empty()) {
        sim_.scheduleAfter(0, [ctx]() {
            ctx->done(std::move(ctx->values),
                      std::move(ctx->statuses));
        });
        return;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
        get(origin, keys[i],
            [ctx, i](PageBuffer v, KvStatus st) {
            ctx->values[i] = std::move(v);
            ctx->statuses[i] = st;
            if (--ctx->remaining == 0)
                ctx->done(std::move(ctx->values),
                          std::move(ctx->statuses));
        });
    }
}

void
KvRouter::installAgents()
{
    auto &net = cluster_.network();
    for (unsigned n = 0; n < cluster_.size(); ++n) {
        // Shard agent: serve get/put/delete arriving from peers.
        net.endpoint(NodeId(n), epKvService)
            .setReceiveHandler([this, n](net::Message msg) {
            auto req = msg.payload.take<KvRequest>();
            NodeId requester = msg.src;
            net::EndpointId reply_ep = req.replyEndpoint;
            serveLocal(NodeId(n), std::move(req),
                       [this, n, requester,
                        reply_ep](KvResponse resp) {
                auto bytes = kvHeaderBytes +
                    static_cast<std::uint32_t>(resp.value.size());
                cluster_.network()
                    .endpoint(NodeId(n), reply_ep)
                    .send(requester, bytes, std::move(resp));
            });
        });
        // Response sink: complete the origin's pending operation.
        net.endpoint(NodeId(n), epKvData)
            .setReceiveHandler([this](net::Message msg) {
            auto resp = msg.payload.take<KvResponse>();
            completeOne(resp.reqId, resp.status,
                        std::move(resp.value), resp.version,
                        msg.src);
        });
    }
}

void
KvRouter::serveLocal(NodeId node, KvRequest req,
                     std::function<void(KvResponse)> reply)
{
    std::uint64_t id = req.reqId;
    switch (req.op) {
      case KvOp::Get:
        shards_[node]->getIfNewer(
            req.key, req.cachedVersion,
            [id, reply = std::move(reply)](PageBuffer v, KvStatus st,
                                           std::uint64_t version) {
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            resp.version = version;
            resp.value = std::move(v);
            reply(std::move(resp));
        });
        return;
      case KvOp::Put:
        shards_[node]->put(req.key, std::move(req.value), req.stamp,
                           [id, reply = std::move(reply)](
                               KvStatus st) {
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            reply(std::move(resp));
        });
        return;
      case KvOp::Delete:
        shards_[node]->del(req.key, req.stamp,
                           [id, reply = std::move(reply)](
                               KvStatus st) {
            KvResponse resp;
            resp.reqId = id;
            resp.status = st;
            reply(std::move(resp));
        });
        return;
    }
    sim::panic("unknown KV op");
}

void
KvRouter::completeOne(std::uint64_t req_id, KvStatus st,
                      PageBuffer value, std::uint64_t version,
                      NodeId from)
{
    auto it = pending_.find(req_id);
    if (it == pending_.end())
        sim::panic("response for unknown KV request %llu",
                   static_cast<unsigned long long>(req_id));
    PendingOp &op = it->second;
    if (st == KvStatus::Ok)
        ++op.okAcks;
    else {
        ++op.failed;
        if (op.status == KvStatus::Ok)
            op.status = st;
    }
    if (!value.empty())
        op.value = std::move(value);
    if (version != 0)
        op.version = version;
    bool last = --op.remaining == 0;

    if (!op.write) {
        if (!last)
            return;
        PendingOp fin = std::move(op);
        pending_.erase(it);
        finishGet(std::move(fin));
        return;
    }

    // Write path. Record which replica acked Ok (durable implies
    // applied): the bit feeds the read-your-writes steer.
    if (st == KvStatus::Ok) {
        auto lit = inflightWrites_.find(op.key);
        if (lit != inflightWrites_.end()) {
            const InflightWrite &w = lit->second;
            for (unsigned i = 0; i < w.ownerCount; ++i) {
                if (w.owners[i] == from) {
                    op.ackedMask |= std::uint8_t(1) << i;
                    if (op.clientAcked)
                        ledgerLateAck(op.key, op.origin, req_id, i);
                    break;
                }
            }
        }
    }

    // Quorum decision: the client completes on the W-th Ok, or as
    // soon as the failures make W unreachable. With all replies in,
    // one of the two has necessarily triggered.
    AckDone fire_client;
    KvStatus client_status = KvStatus::Ok;
    if (!op.clientAcked) {
        if (op.okAcks >= op.quorum) {
            op.clientAcked = true;
            fire_client = std::move(op.ackDone);
        } else if (op.failed > op.total - op.quorum) {
            op.clientAcked = true;
            fire_client = std::move(op.ackDone);
            client_status = op.status;
        }
    }

    if (!last) {
        // Stragglers still out: the op stays pending in the
        // background. Fire the client last -- the callback may
        // re-enter the router and grow pending_, invalidating op.
        if (fire_client) {
            ++backgroundWrites_;
            if (backgroundWrites_ > maxBackgroundWrites_)
                maxBackgroundWrites_ = backgroundWrites_;
            if (client_status == KvStatus::Ok)
                ledgerClientAcked(op.key, op.origin, req_id,
                                  op.ackedMask);
            fire_client(client_status);
        }
        return;
    }

    // Last replica reply: retire the op and the ledger entry, and
    // record divergence (a mixed outcome means some replicas hold
    // the new value and at least one rolled back -- repairSweep()
    // owns closing that window; see kv_types.hh).
    bool was_background = op.clientAcked && !fire_client;
    Key key = op.key;
    NodeId origin = op.origin;
    unsigned failed = op.failed, total = op.total;
    SettledDone settled = std::move(op.settled);
    pending_.erase(it);
    ledgerOpDone(key, origin, req_id);
    if (was_background)
        --backgroundWrites_;
    if (failed != 0 && failed < total)
        divergent_.insert(key);
    if (fire_client)
        fire_client(client_status);
    if (settled)
        settled();
}

// ---------------------------------------------------------------- //
// Anti-entropy repair
// ---------------------------------------------------------------- //

/**
 * One sweep in flight: a cursor over the ring's segments plus a
 * count of asynchronous repair pushes still outstanding. The sweep
 * walks segments in chunks (yielding to the event loop between
 * chunks -- repair is maintenance, not serving), compares replica
 * digests per segment, and fires repairs fire-and-forget; done runs
 * only after the cursor finished AND every repair completed.
 */
struct KvRouter::SweepState
{
    std::function<void()> done;
    std::size_t nextSeg = 0;
    unsigned outstanding = 0; //!< async repairs in flight
    bool traversalDone = false;
    /** Tombstones below this stamp may prune on consistent ranges:
     * older than every write in flight when the sweep started. */
    std::uint64_t pruneBelow = 0;
};

void
KvRouter::repairSweep(std::function<void()> done)
{
    if (sweepRunning_) {
        // A sweep is mid-flight (possibly the periodic timer's):
        // queue this request and serve every queued caller with one
        // fresh full sweep once the current one completes. The
        // completion contract holds -- the caller's done still
        // fires only after a whole-ring pass that started at or
        // after the request.
        queuedSweeps_.push_back(std::move(done));
        return;
    }
    sweepRunning_ = true;
    auto state = std::make_shared<SweepState>();
    state->done = std::move(done);
    // Tombstones older than every in-flight write are stable on
    // digest-identical ranges: safe to drop everywhere at once.
    state->pruneBelow = nextStamp_ + 1;
    for (const auto &[id, op] : pending_) {
        (void)id;
        if (op.write && op.stamp < state->pruneBelow)
            state->pruneBelow = op.stamp;
    }
    sweepChunk(state);
}

void
KvRouter::sweepChunk(std::shared_ptr<SweepState> state)
{
    unsigned budget = params_.repairChunk;
    while (budget-- > 0 && state->nextSeg < ring_.size())
        sweepSegment(state, state->nextSeg++);
    if (state->nextSeg < ring_.size()) {
        // Yield between chunks: serving traffic interleaves.
        sim_.scheduleAfter(0, [this, state, alive = alive_]() {
            if (*alive)
                sweepChunk(state);
        });
        return;
    }
    state->traversalDone = true;
    sweepFinish(state);
}

void
KvRouter::sweepFinish(const std::shared_ptr<SweepState> &state)
{
    if (!state->traversalDone || state->outstanding != 0)
        return;
    sweepRunning_ = false;
    ++repairSweeps_;
    if (state->done)
        state->done();
    // Requests that arrived mid-sweep get their own full pass (the
    // done callback above may itself have started one; if so, that
    // sweep's finish drains the queue instead).
    if (!queuedSweeps_.empty() && !sweepRunning_) {
        auto waiters = std::make_shared<
            std::vector<std::function<void()>>>(
            std::move(queuedSweeps_));
        queuedSweeps_.clear();
        repairSweep([waiters]() {
            for (auto &w : *waiters) {
                if (w)
                    w();
            }
        });
    }
}

void
KvRouter::sweepSegment(std::shared_ptr<SweepState> state,
                       std::size_t seg)
{
    // Every key hashing into segment seg -- the ring arc ending at
    // point seg -- maps to the same replica set: the first R
    // distinct nodes walking the ring from that point. Segment 0
    // additionally owns the wrap-around arc past the last point.
    NodeId own[maxReplication];
    unsigned count = ownersFrom(seg, own, params_.replication);
    if (count < 2)
        return; // unreplicated: nothing to reconcile

    std::uint64_t ranges[2][2];
    unsigned nranges = 0;
    constexpr std::uint64_t maxHash = ~std::uint64_t(0);
    if (seg == 0) {
        ranges[nranges][0] = 0;
        ranges[nranges][1] = ring_.front().first;
        ++nranges;
        if (ring_.back().first != maxHash) {
            ranges[nranges][0] = ring_.back().first + 1;
            ranges[nranges][1] = maxHash;
            ++nranges;
        }
    } else {
        ranges[nranges][0] = ring_[seg - 1].first + 1;
        ranges[nranges][1] = ring_[seg].first;
        ++nranges;
    }

    for (unsigned r = 0; r < nranges; ++r)
        sweepRange(state, own, count, ranges[r][0], ranges[r][1]);

    // The segment was compared (and any repairs are in flight):
    // keys here are no longer unaccountedly divergent. A repair
    // push that FAILS re-marks its key below.
    if (!divergent_.empty()) {
        for (auto it = divergent_.begin();
             it != divergent_.end();) {
            std::uint64_t h = mix64(*it);
            bool in_seg = false;
            for (unsigned r = 0; r < nranges; ++r)
                in_seg = in_seg || (h >= ranges[r][0] &&
                                    h <= ranges[r][1]);
            it = in_seg ? divergent_.erase(it) : std::next(it);
        }
    }
}

void
KvRouter::sweepRange(std::shared_ptr<SweepState> state,
                     const NodeId *own, unsigned count,
                     std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        return;
    // The cheap pass: identical content folds to identical digests,
    // and consistent ranges (the overwhelming majority) cost no
    // enumeration and no flash I/O at all.
    std::uint64_t first = shards_[own[0]]->rangeDigest(lo, hi);
    bool mismatch = false;
    for (unsigned i = 1; i < count && !mismatch; ++i)
        mismatch = shards_[own[i]]->rangeDigest(lo, hi) != first;
    if (!mismatch) {
        // Digest-identical replicas hold identical tombstones, so
        // dropping the settled ones on every replica at once keeps
        // the digests equal and the repair index bounded.
        for (unsigned i = 0; i < count; ++i)
            shards_[own[i]]->pruneTombstones(lo, hi,
                                             state->pruneBelow);
        return;
    }
    // Reconcile ALL replicas at once, not pairwise against the
    // primary: with R >= 3 the primary can itself be one of the
    // stale copies, and two equally-stale replicas must still be
    // pulled up to the newest-stamped state wherever it lives.
    struct Side
    {
        std::uint64_t stamp = 0;
        bool live = false;
        bool present = false;
    };
    struct MergedKey
    {
        Key key = 0;
        Side sides[maxReplication];
    };
    std::map<std::uint64_t, MergedKey> merged;
    for (unsigned i = 0; i < count; ++i) {
        std::vector<KvShard::RangeEntry> entries;
        shards_[own[i]]->rangeEntries(lo, hi, entries);
        for (const auto &e : entries) {
            MergedKey &m = merged[mix64(e.key)];
            m.key = e.key;
            m.sides[i] = Side{e.stamp, e.live, true};
        }
    }
    for (auto &[hash, m] : merged) {
        (void)hash;
        // Newest-stamped side wins; absent counts as stamp 0.
        unsigned newest = 0;
        for (unsigned i = 1; i < count; ++i) {
            if (m.sides[i].stamp > m.sides[newest].stamp)
                newest = i;
        }
        if (m.sides[newest].stamp == 0)
            continue; // inconceivable, but nothing to push
        for (unsigned i = 0; i < count; ++i) {
            if (i == newest)
                continue;
            if (m.sides[i].present &&
                m.sides[i].stamp == m.sides[newest].stamp &&
                m.sides[i].live == m.sides[newest].live)
                continue; // this replica already agrees
            repairKey(state, m.key, own[newest], own[i],
                      m.sides[newest].stamp, m.sides[newest].live);
        }
    }
}

void
KvRouter::repairKey(std::shared_ptr<SweepState> state, Key key,
                    NodeId from, NodeId to, std::uint64_t stamp,
                    bool live)
{
    ++state->outstanding;
    auto finish = [this, state, key, alive = alive_](KvStatus st) {
        if (!*alive)
            return;
        if (st == KvStatus::Error)
            divergent_.insert(key); // push failed: still divergent
        else
            ++repairedKeys_; // reconciled (applied or caught up)
        --state->outstanding;
        sweepFinish(state);
    };
    if (!live) {
        shards_[to]->repairDel(key, stamp, std::move(finish));
        return;
    }
    shards_[from]->get(
        key,
        [this, key, to, stamp, alive = alive_,
         finish = std::move(finish)](PageBuffer v, KvStatus st,
                                     std::uint64_t) mutable {
        if (!*alive)
            return;
        if (st != KvStatus::Ok) {
            // Source read failed; leave the key for the next sweep.
            finish(KvStatus::Error);
            return;
        }
        shards_[to]->repairPut(key, std::move(v), stamp,
                               std::move(finish));
    });
}

void
KvRouter::finishGet(PendingOp fin)
{
    KvCache *cache = cacheFor(fin.origin);
    if (fin.status == KvStatus::Ok && fin.cachedVersion != 0 &&
        fin.version == fin.cachedVersion) {
        // "Not modified": the replica confirmed our cached copy.
        if (cache) {
            if (const KvCache::Entry *e = cache->lookup(fin.key)) {
                ++cacheServed_;
                fin.getDone(e->value, KvStatus::Ok);
                return;
            }
        }
        // Evicted while the validation was in flight (rare): fall
        // back to a plain fetch, which cannot loop -- the entry is
        // gone, so the retry goes out unconditional.
        get(fin.origin, fin.key, std::move(fin.getDone));
        return;
    }
    if (fin.status == KvStatus::Ok) {
        if (fin.cachedVersion != 0)
            ++cacheStale_; // self-detected: fresh value came back
        // Steered results carry another replica's version space:
        // never let them into the cache (see get()).
        if (cache && !fin.steered)
            cache->fill(fin.key, fin.version, fin.value);
    } else if (fin.status == KvStatus::NotFound && cache) {
        cache->invalidate(fin.key);
    }
    fin.getDone(std::move(fin.value), fin.status);
}

} // namespace kv
} // namespace bluedbm
