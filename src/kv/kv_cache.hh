/**
 * @file
 * Per-node versioned hot-key read cache.
 *
 * The serving bottleneck at high skew is one shard's flash
 * interface: the rank-0 Zipfian key turns a single LogFs command
 * queue into the whole cluster's tail (ROADMAP hot-shard item).
 * This cache keeps (value, shard-global version) pairs for the few
 * genuinely hot keys near the requester. It never serves a value
 * on its own authority: the router revalidates the cached version
 * with a header-only conditional get (KvRequest::cachedVersion),
 * and the owning shard answers a version match with an O(1) index
 * probe -- no flash read, no value bytes on the wire. A put or
 * delete anywhere bumps the shard-global version, so a stale cache
 * hit self-detects at the shard and the fresh value comes back
 * instead. Coherence therefore never depends on invalidation
 * messages reaching every cache.
 *
 * Admission is gated by a tiny frequency sketch (a 4-row count-min
 * sketch with periodic halving, TinyLFU-style): a value enters the
 * cache only after its key has been requested enough times, so one
 * scan over a cold key space cannot evict the resident hot set.
 */

#ifndef BLUEDBM_KV_KV_CACHE_HH
#define BLUEDBM_KV_KV_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kv/kv_types.hh"

namespace bluedbm {
namespace kv {

/**
 * Count-min sketch with periodic aging: approximate access
 * frequencies in a few hundred bytes, no per-key state.
 */
class FreqSketch
{
  public:
    /** @param width counters per row; rounded up to a power of 2. */
    explicit FreqSketch(unsigned width = 256);

    /** Record one access of @p key. */
    void touch(Key key);

    /** Approximate access count of @p key (an upper bound). */
    unsigned estimate(Key key) const;

  private:
    static constexpr unsigned rows = 4;

    std::uint32_t slot(unsigned row, Key key) const;

    std::vector<std::uint8_t> counters_; //!< rows x width
    std::uint32_t mask_ = 0;
    /** Halve every counter after this many touches, so estimates
     * track the recent past instead of all history. */
    std::uint32_t sampleLimit_ = 0;
    std::uint32_t touches_ = 0;
};

/**
 * Small LRU cache of (key, version, value), admission-gated by the
 * sketch. One instance per node; consulted by KvRouter::get before
 * any network hop to find a revalidation candidate.
 */
class KvCache
{
  public:
    struct Params
    {
        /** Cached values (0 disables the cache entirely). */
        unsigned slots = 128;
        /** Sketch estimate required before a key may occupy a
         * slot (1 admits on first fill). */
        unsigned admitHits = 2;
    };

    struct Entry
    {
        std::uint64_t version = 0;
        flash::PageBuffer value;
    };

    explicit KvCache(const Params &params);

    /** Record one access of @p key in the admission sketch. */
    void touch(Key key);

    /** Cached entry for @p key (refreshes recency); null if none. */
    const Entry *lookup(Key key);

    /**
     * Install (or refresh) @p key -> (@p version, @p value). New
     * keys are admitted only when the sketch says they are hot;
     * an existing entry is always updated in place.
     */
    void fill(Key key, std::uint64_t version,
              const flash::PageBuffer &value);

    /** Drop @p key (deleted, or known stale). */
    void invalidate(Key key);

    /**
     * Drop every cached key @p pred claims; returns how many went.
     * The membership layer uses this at a ring flip to purge keys
     * whose owner set changed: a cached version from the old
     * owner's counter space must never validate against the new
     * owner's. A full scan -- the cache is a few hundred slots and
     * ring flips are rare.
     */
    std::size_t invalidateIf(const std::function<bool(Key)> &pred);

    std::size_t size() const { return map_.size(); }

    /** @name Statistics */
    ///@{
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t admitted() const { return admitted_; }
    /** Fills turned away by the admission sketch. */
    std::uint64_t rejectedFills() const { return rejectedFills_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t invalidations() const { return invalidations_; }
    ///@}

  private:
    using LruList = std::list<std::pair<Key, Entry>>;

    Params params_;
    FreqSketch sketch_;
    LruList lru_; //!< front = most recent
    std::unordered_map<Key, LruList::iterator> map_;

    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejectedFills_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_CACHE_HH
