/**
 * @file
 * Key routing over the cluster: consistent hashing onto per-node
 * shards, replication, the shard request/response protocol over
 * the integrated storage network, and the hot-key read path.
 *
 * The router is what turns twenty independent flash nodes into one
 * key-value appliance (the paper's figure 17 RAMCloud scenario with
 * the roles reversed: instead of DRAM nodes that collapse when
 * storage gets involved, every node IS storage and the network is
 * the uniform-latency fabric of section 3.2). Keys map to owner
 * nodes through a fixed ring of hashed virtual nodes; writes go to
 * all R replicas but complete to the client after W acks (quorum
 * write, default W=1 -- the put path runs at the speed of the
 * fastest replica's NAND, not the slowest's); reads go to one
 * (read-one, preferring a local replica so a well-placed client
 * pays no network hop at all). A per-key in-flight ledger keeps
 * read-one consistent while straggler replica writes drain in the
 * background, and an anti-entropy sweep (repairSweep) heals the
 * divergence a failed straggler leaves behind. kv_types.hh spells
 * out the full contract.
 *
 * Hot-key read path: before a remote get leaves the origin node,
 * the router consults that node's KvCache. On a cached (value,
 * version) pair the get goes out conditional -- the owning shard
 * answers a version match with a header-only "not modified" and
 * the cached value is served locally, skipping the flash read AND
 * the value bytes on the wire. See kv_cache.hh for the coherence
 * argument and kv_types.hh for the replication/failure contract.
 */

#ifndef BLUEDBM_KV_KV_ROUTER_HH
#define BLUEDBM_KV_KV_ROUTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_cache.hh"
#include "kv/kv_shard.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * Router / replication tuning.
 */
struct KvParams
{
    /** Copies of every key. */
    unsigned replication = 2;
    /**
     * Replica acks required before a put/delete completes to the
     * client (1..replication). The remaining replica writes finish
     * in the background; a straggler that *fails* leaves divergence
     * for repairSweep() to heal. replication (W=R) restores strict
     * write-all acking.
     */
    unsigned writeQuorum = 1;
    /** Ring segments reconciled per repair-sweep chunk before the
     * sweep yields to the event loop. */
    unsigned repairChunk = 64;
    /**
     * Microseconds between automatic anti-entropy sweeps (0 = off,
     * the default: sweeps run only when repairSweep() is called).
     * When set, the router schedules repairSweep() itself every
     * interval (measured completion-to-start, so sweeps never
     * overlap; an interval tick that finds a manual sweep running
     * skips to the next interval). Note that an armed timer keeps
     * the event queue non-empty forever: drive the simulation with
     * runUntil(), not run().
     */
    std::uint64_t repairIntervalUs = 0;
    /** Ring points per node; more points, smoother balance. */
    unsigned vnodes = 64;
    /** Shard log file name (one per node's file system). */
    std::string shardLog = "kv.shard.log";
    /**
     * Independent append chains per shard (KvShard stripes). One
     * log file serializes a node's puts behind a single tail page
     * (one program in flight at a time); striping multiplies the
     * per-node write ceiling and feeds the flash server's
     * program-coalescing stage when stripes land on one bus. The
     * hot-shard write backlog under quorum acks is exactly what
     * this bounds: stragglers drain at S chains, not one. More
     * stripes also dilute group-commit amortization (fewer puts
     * absorbed per tail-page program, so more chip-busy program
     * windows stalling reads); the default is the empirical sweet
     * spot of the 20-node serving bench, where both the write p99
     * and throughput targets clear with margin.
     */
    unsigned logStripes = 5;
    /** Hot-key cache slots per node (0 disables the cache). */
    unsigned cacheSlots = 128;
    /** Sketch estimate required before a key may occupy a cache
     * slot (1 admits on the first fill). */
    unsigned cacheAdmitHits = 2;
};

/**
 * Cluster-wide key-value routing layer. Owns one KvShard (and one
 * hot-key KvCache) per node and the network agents that serve
 * remote shard requests.
 */
class KvRouter
{
  public:
    /** Delivers a get result (value is empty unless status is Ok). */
    using GetDone =
        std::function<void(flash::PageBuffer, KvStatus)>;
    using AckDone = KvShard::AckDone;
    /** Values and statuses aligned with the requested key order. */
    using MultiGetDone =
        std::function<void(std::vector<flash::PageBuffer>,
                           std::vector<KvStatus>)>;

    /**
     * Build shards and install network agents on every node of
     * @p cluster. The cluster's network must have been built with
     * at least kvRequiredEndpoints endpoints.
     */
    KvRouter(sim::Simulator &sim, core::Cluster &cluster,
             const KvParams &params = KvParams{});

    /** Cancels the periodic repair timer, if armed. */
    ~KvRouter();

    /** Replication factor in use. */
    unsigned replication() const { return params_.replication; }

    /**
     * The R owner nodes of @p key, primary first. Deterministic:
     * every node computes the same owners with no directory
     * service.
     */
    std::vector<net::NodeId> owners(Key key) const;

    /**
     * Replica @p origin reads @p key from (local when possible).
     * While a write of @p key is still draining to straggler
     * replicas, the in-flight ledger narrows the choice to replicas
     * known to have applied it, so a read after a quorum ack can
     * never observe the pre-write value.
     */
    net::NodeId readReplica(net::NodeId origin, Key key) const;

    /** Fetch @p key on behalf of a client attached to @p origin. */
    void get(net::NodeId origin, Key key, GetDone done);

    /** Fires when a write finished on EVERY replica (after the
     * quorum ack); see put(). */
    using SettledDone = std::function<void()>;

    /**
     * Store @p key on all replicas; @p done acks the client after
     * writeQuorum of them landed (kv_types.hh has the contract).
     * @p settled (optional) fires once every replica completed --
     * the hook admission control uses to keep the op's straggler
     * work charged against the client's window: acking early must
     * not let a closed-loop client pump extra concurrency into
     * flash that is still digesting its durability debt, or the
     * quorum win turns into a saturation loss.
     */
    void put(net::NodeId origin, Key key, flash::PageBuffer value,
             AckDone done, SettledDone settled = nullptr);

    /** Delete @p key on all replicas (same quorum ack / settled
     * split as put). */
    void del(net::NodeId origin, Key key, AckDone done,
             SettledDone settled = nullptr);

    /**
     * One full anti-entropy sweep over the hash ring: for every
     * ring segment (whose keys share one replica set), compare the
     * replicas' range digests; on a mismatch, enumerate the range
     * and push each differing key's newer-stamped state across
     * (repairPut/repairDel on the stale shard). Runs chunked so it
     * yields to the event loop (low priority); @p done fires after
     * every segment was compared and every pushed repair completed.
     * Afterwards divergentWrites() is zero -- every key the sweep
     * visited is either reconciled or was already consistent.
     *
     * Sweeps never overlap: a call that lands while one is running
     * (e.g. a manual sweep racing the periodic timer's) queues, and
     * one fresh full pass serves every queued caller after the
     * current sweep completes.
     */
    void repairSweep(std::function<void()> done);

    /** Fetch several keys concurrently (read-one per key). */
    void multiGet(net::NodeId origin, std::vector<Key> keys,
                  MultiGetDone done);

    /** Node @p n's shard (stats / tests). */
    KvShard &shard(net::NodeId n) { return *shards_.at(n); }

    /** Node @p n's hot-key cache; null when disabled. */
    KvCache *cache(net::NodeId n) { return caches_.at(n).get(); }

    /** @name Statistics */
    ///@{
    /** Operations whose shard was on the requesting node. */
    std::uint64_t localOps() const { return localOps_; }
    /** Shard requests that crossed the network. */
    std::uint64_t remoteOps() const { return remoteOps_; }
    /** Remote gets served from the origin's cache after a
     * header-only version validation (no flash read, no value
     * bytes on the wire). */
    std::uint64_t cacheServedGets() const { return cacheServed_; }
    /** Conditional gets whose cached version had gone stale (the
     * fresh value came back instead -- the self-detect path). */
    std::uint64_t cacheStaleGets() const { return cacheStale_; }
    /** Keys CURRENTLY divergent: a write applied on some replicas
     * and failed on at least one, and no repair sweep has visited
     * the key since (see kv_types.hh). Drains to zero after
     * repairSweep(). */
    std::uint64_t divergentWrites() const { return divergent_.size(); }
    /** Writes completed to the client that still have straggler
     * replica writes outstanding, right now. */
    unsigned backgroundWrites() const { return backgroundWrites_; }
    /** High-water mark of backgroundWrites(): the repair lag --
     * the most client-acked puts ever simultaneously outstanding
     * on straggler replicas. */
    unsigned maxBackgroundWrites() const { return maxBackgroundWrites_; }
    /** Repair pushes that completed without error: the target
     * either applied the newer state or had already caught up by
     * itself (KvShard::repairsApplied() counts actual mutations).
     * A failed push is not counted -- its key goes back on the
     * divergent list for the next sweep. */
    std::uint64_t repairedKeys() const { return repairedKeys_; }
    /** Completed anti-entropy sweeps. */
    std::uint64_t repairSweeps() const { return repairSweeps_; }
    ///@}

    /** Upper bound on R, so read routing can use a stack buffer. */
    static constexpr unsigned maxReplication = 8;

  private:
    unsigned ownersInto(Key key, net::NodeId *out,
                        unsigned max) const;
    /** The ring walk behind owners(): first @p max distinct nodes
     * starting at @p ring_index. Shared by key-owner lookup and the
     * repair sweep's per-segment replica sets, so both always agree
     * on what the replica set of a ring arc is. */
    unsigned ownersFrom(std::size_t ring_index, net::NodeId *out,
                        unsigned max) const;

    struct PendingOp
    {
        unsigned remaining = 0;      //!< outstanding replica acks
        unsigned total = 0;          //!< replicas addressed
        unsigned failed = 0;         //!< replicas that reported failure
        unsigned okAcks = 0;         //!< replicas that reported Ok
        unsigned quorum = 1;         //!< acks that complete the client
        std::uint8_t ackedMask = 0;  //!< owner-index bits that acked Ok
        bool write = false;          //!< put/delete (vs get)
        bool clientAcked = false;    //!< client callback already fired
        /** Get routed off the deterministic replica by the ledger:
         * its version is from another replica's counter space, so
         * it was sent unconditional and must not fill the cache. */
        bool steered = false;
        KvStatus status = KvStatus::Ok;
        GetDone getDone;             //!< set for gets
        AckDone ackDone;             //!< set for puts/deletes
        SettledDone settled;         //!< all-replica completion hook
        flash::PageBuffer value;     //!< get result
        Key key = 0;
        net::NodeId origin = 0;
        std::uint64_t cachedVersion = 0; //!< conditional get in flight
        std::uint64_t version = 0;       //!< version of the result
        std::uint64_t stamp = 0;         //!< write stamp (0 for gets)
    };

    /**
     * Per-key in-flight write ledger, the read-your-writes guard
     * under W < R. The obligation is narrow and the tracking must
     * be exactly as narrow: a session (node-homed) that received an
     * Ok for its write may not subsequently read the pre-write
     * value off a replica the write has not reached yet. So the
     * ledger steers ONLY reads from an origin with a client-acked
     * write still draining, and steers them ONLY to replicas that
     * acked that specific op (acked = durable = applied; per-link
     * FIFO means a replica that acked the origin's latest op also
     * applied its earlier ones). Anything coarser -- steering every
     * origin, or keying on "some write of this key is outstanding"
     * -- funnels a hot Zipfian key's entire read load onto one
     * replica (hot keys ALWAYS have a write outstanding) and
     * resurrects the hot-shard tail that read spreading kills.
     * Non-writing origins keep the plain deterministic spread; what
     * they may transiently observe is unchanged from write-all, and
     * a failed straggler is healed by repair either way.
     */
    struct InflightWrite
    {
        unsigned ops = 0; //!< outstanding write operations
        unsigned ownerCount = 0;
        net::NodeId owners[maxReplication] = {};
        /** Per writing origin: the latest client-acked op still
         * draining (opId 0 = none) and the owner-index bitmask of
         * replicas that acked it. One slot per distinct origin with
         * writes in flight (bounded by the cluster size; drained
         * slots are reused) -- the guarantee must hold for EVERY
         * writer, so there is deliberately no lossy overflow path:
         * an approximate fallback mask could steer a writer to a
         * replica that acked someone else's older op but not its
         * own. */
        struct Writer
        {
            net::NodeId origin = 0;
            unsigned ops = 0;          //!< outstanding write ops
            std::uint64_t ackedOp = 0; //!< latest client-acked op
            std::uint8_t ackedMask = 0;
        };
        std::vector<Writer> writers;
    };

    KvCache *cacheFor(net::NodeId n) { return caches_[n].get(); }

    /** The plain deterministic read choice, ignoring the ledger. */
    net::NodeId defaultReadReplica(net::NodeId origin,
                                   Key key) const;
    /** Ledger constraint on @p origin's read of @p key: true (and
     * *out set) when an outstanding client-acked write obliges the
     * read to hit a specific replica. */
    bool steerTarget(net::NodeId origin, Key key,
                     net::NodeId *out) const;

    void installAgents();
    /** Serve one shard request arriving at (or issued on) @p node. */
    void serveLocal(net::NodeId node, KvRequest req,
                    std::function<void(KvResponse)> reply);
    /** One replica (or the get replica) finished; @p from is the
     * node that served it (ledger bookkeeping for writes). */
    void completeOne(std::uint64_t req_id, KvStatus st,
                     flash::PageBuffer value, std::uint64_t version,
                     net::NodeId from);
    /** Finish a get: cache bookkeeping + the user callback. */
    void finishGet(PendingOp fin);
    /** Open (or join) the key's ledger entry for one write op. */
    void ledgerOpen(Key key, net::NodeId origin,
                    const net::NodeId *own, unsigned count);
    /** Op @p op_id of @p key was acked Ok by owner-index @p idx
     * after the client already completed: extend its steer mask. */
    void ledgerLateAck(Key key, net::NodeId origin,
                       std::uint64_t op_id, unsigned idx);
    /** Op @p op_id (origin @p origin) completed to the client with
     * Ok while replicas are still draining: arm the steer. */
    void ledgerClientAcked(Key key, net::NodeId origin,
                           std::uint64_t op_id,
                           std::uint8_t acked_mask);
    /** One write op of @p key (issued by @p origin) fully
     * completed on every replica. */
    void ledgerOpDone(Key key, net::NodeId origin,
                      std::uint64_t op_id);

    struct SweepState; //!< one repairSweep in flight
    /** Reconcile the next chunk of ring segments, then yield. */
    void sweepChunk(std::shared_ptr<SweepState> state);
    /** Complete the sweep when traversal and repairs are done. */
    void sweepFinish(const std::shared_ptr<SweepState> &state);
    /** Compare + repair one ring segment ([lo,hi] on the hash
     * ring, replica set shared by every key in it). */
    void sweepSegment(std::shared_ptr<SweepState> state,
                      std::size_t seg);
    /** Reconcile one (lo,hi) hash range across ALL of the
     * segment's replicas at once (pairwise-vs-primary would miss a
     * divergence between two non-primary replicas at R >= 3). */
    void sweepRange(std::shared_ptr<SweepState> state,
                    const net::NodeId *own, unsigned count,
                    std::uint64_t lo, std::uint64_t hi);
    /** Push @p key's newer side (@p from, at @p stamp) to @p to. */
    void repairKey(std::shared_ptr<SweepState> state, Key key,
                   net::NodeId from, net::NodeId to,
                   std::uint64_t stamp, bool live);

    sim::Simulator &sim_;
    core::Cluster &cluster_;
    KvParams params_;

    /** Hash ring: (point, node), sorted by point. */
    std::vector<std::pair<std::uint64_t, net::NodeId>> ring_;
    std::vector<std::unique_ptr<KvShard>> shards_;
    std::vector<std::unique_ptr<KvCache>> caches_;

    std::uint64_t nextReqId_ = 1;
    /** Cluster-wide write stamp source (anti-entropy ordering). */
    std::uint64_t nextStamp_ = 0;
    std::unordered_map<std::uint64_t, PendingOp> pending_;
    std::unordered_map<Key, InflightWrite> inflightWrites_;
    /** Keys with observed divergence awaiting a repair sweep. */
    std::unordered_set<Key> divergent_;
    bool sweepRunning_ = false;
    /** Callbacks of repairSweep() calls that arrived mid-sweep; a
     * follow-up full pass serves them all. */
    std::vector<std::function<void()>> queuedSweeps_;
    /**
     * Liveness flag captured by the sweep's detached continuations
     * (chunk yields, repair-push completions). The periodic timer
     * can start sweeps nobody is awaiting, so teardown mid-sweep is
     * reachable from correct caller code; the destructor flips this
     * and a continuation firing afterwards returns without touching
     * the dead router.
     */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    /** Arm the next periodic sweep (KvParams::repairIntervalUs). */
    void armRepairTimer();
    /** Pending periodic-sweep event (invalidEventId = none). */
    sim::EventId repairTimer_ = sim::invalidEventId;

    std::uint64_t localOps_ = 0;
    std::uint64_t remoteOps_ = 0;
    std::uint64_t cacheServed_ = 0;
    std::uint64_t cacheStale_ = 0;
    unsigned backgroundWrites_ = 0;
    unsigned maxBackgroundWrites_ = 0;
    std::uint64_t repairedKeys_ = 0;
    std::uint64_t repairSweeps_ = 0;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_ROUTER_HH
