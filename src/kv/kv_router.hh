/**
 * @file
 * Key routing over the cluster: consistent hashing onto per-node
 * shards, replication, and the shard request/response protocol over
 * the integrated storage network.
 *
 * The router is what turns twenty independent flash nodes into one
 * key-value appliance (the paper's figure 17 RAMCloud scenario with
 * the roles reversed: instead of DRAM nodes that collapse when
 * storage gets involved, every node IS storage and the network is
 * the uniform-latency fabric of section 3.2). Keys map to owner
 * nodes through a fixed ring of hashed virtual nodes; writes go to
 * all R replicas (write-all), reads to one (read-one, preferring a
 * local replica so a well-placed client pays no network hop at
 * all).
 */

#ifndef BLUEDBM_KV_KV_ROUTER_HH
#define BLUEDBM_KV_KV_ROUTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_shard.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * Router / replication tuning.
 */
struct KvParams
{
    /** Copies of every key (write-all / read-one). */
    unsigned replication = 2;
    /** Ring points per node; more points, smoother balance. */
    unsigned vnodes = 64;
    /** Shard log file name (one per node's file system). */
    std::string shardLog = "kv.shard.log";
};

/**
 * Cluster-wide key-value routing layer. Owns one KvShard per node
 * and the network agents that serve remote shard requests.
 */
class KvRouter
{
  public:
    using GetDone = KvShard::GetDone;
    using AckDone = KvShard::AckDone;
    /** Values and statuses aligned with the requested key order. */
    using MultiGetDone =
        std::function<void(std::vector<flash::PageBuffer>,
                           std::vector<KvStatus>)>;

    /**
     * Build shards and install network agents on every node of
     * @p cluster. The cluster's network must have been built with
     * at least kvRequiredEndpoints endpoints.
     */
    KvRouter(sim::Simulator &sim, core::Cluster &cluster,
             const KvParams &params = KvParams{});

    /** Replication factor in use. */
    unsigned replication() const { return params_.replication; }

    /**
     * The R owner nodes of @p key, primary first. Deterministic:
     * every node computes the same owners with no directory
     * service.
     */
    std::vector<net::NodeId> owners(Key key) const;

    /** Replica @p origin reads @p key from (local when possible). */
    net::NodeId readReplica(net::NodeId origin, Key key) const;

    /** Fetch @p key on behalf of a client attached to @p origin. */
    void get(net::NodeId origin, Key key, GetDone done);

    /** Store @p key on all replicas; acks when every copy landed. */
    void put(net::NodeId origin, Key key, flash::PageBuffer value,
             AckDone done);

    /** Delete @p key on all replicas. */
    void del(net::NodeId origin, Key key, AckDone done);

    /** Fetch several keys concurrently (read-one per key). */
    void multiGet(net::NodeId origin, std::vector<Key> keys,
                  MultiGetDone done);

    /** Node @p n's shard (stats / tests). */
    KvShard &shard(net::NodeId n) { return *shards_.at(n); }

    /** @name Statistics */
    ///@{
    /** Operations whose shard was on the requesting node. */
    std::uint64_t localOps() const { return localOps_; }
    /** Shard requests that crossed the network. */
    std::uint64_t remoteOps() const { return remoteOps_; }
    ///@}

    /** Upper bound on R, so read routing can use a stack buffer. */
    static constexpr unsigned maxReplication = 8;

  private:
    unsigned ownersInto(Key key, net::NodeId *out,
                        unsigned max) const;

    struct PendingOp
    {
        unsigned remaining = 0;      //!< outstanding replica acks
        KvStatus status = KvStatus::Ok;
        GetDone getDone;             //!< set for gets
        AckDone ackDone;             //!< set for puts/deletes
        flash::PageBuffer value;     //!< get result
    };

    void installAgents();
    /** Serve one shard request arriving at (or issued on) @p node. */
    void serveLocal(net::NodeId node, KvRequest req,
                    std::function<void(KvResponse)> reply);
    /** One replica (or the get replica) finished. */
    void completeOne(std::uint64_t req_id, KvStatus st,
                     flash::PageBuffer value);

    sim::Simulator &sim_;
    core::Cluster &cluster_;
    KvParams params_;

    /** Hash ring: (point, node), sorted by point. */
    std::vector<std::pair<std::uint64_t, net::NodeId>> ring_;
    std::vector<std::unique_ptr<KvShard>> shards_;

    std::uint64_t nextReqId_ = 1;
    std::unordered_map<std::uint64_t, PendingOp> pending_;

    std::uint64_t localOps_ = 0;
    std::uint64_t remoteOps_ = 0;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_ROUTER_HH
