/**
 * @file
 * Key routing over the cluster: consistent hashing onto per-node
 * shards, replication, the shard request/response protocol over
 * the integrated storage network, and the hot-key read path.
 *
 * The router is what turns twenty independent flash nodes into one
 * key-value appliance (the paper's figure 17 RAMCloud scenario with
 * the roles reversed: instead of DRAM nodes that collapse when
 * storage gets involved, every node IS storage and the network is
 * the uniform-latency fabric of section 3.2). Keys map to owner
 * nodes through a fixed ring of hashed virtual nodes; writes go to
 * all R replicas (write-all), reads to one (read-one, preferring a
 * local replica so a well-placed client pays no network hop at
 * all).
 *
 * Hot-key read path: before a remote get leaves the origin node,
 * the router consults that node's KvCache. On a cached (value,
 * version) pair the get goes out conditional -- the owning shard
 * answers a version match with a header-only "not modified" and
 * the cached value is served locally, skipping the flash read AND
 * the value bytes on the wire. See kv_cache.hh for the coherence
 * argument and kv_types.hh for the replication/failure contract.
 */

#ifndef BLUEDBM_KV_KV_ROUTER_HH
#define BLUEDBM_KV_KV_ROUTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_cache.hh"
#include "kv/kv_shard.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * Router / replication tuning.
 */
struct KvParams
{
    /** Copies of every key (write-all / read-one). */
    unsigned replication = 2;
    /** Ring points per node; more points, smoother balance. */
    unsigned vnodes = 64;
    /** Shard log file name (one per node's file system). */
    std::string shardLog = "kv.shard.log";
    /** Hot-key cache slots per node (0 disables the cache). */
    unsigned cacheSlots = 128;
    /** Sketch estimate required before a key may occupy a cache
     * slot (1 admits on the first fill). */
    unsigned cacheAdmitHits = 2;
};

/**
 * Cluster-wide key-value routing layer. Owns one KvShard (and one
 * hot-key KvCache) per node and the network agents that serve
 * remote shard requests.
 */
class KvRouter
{
  public:
    /** Delivers a get result (value is empty unless status is Ok). */
    using GetDone =
        std::function<void(flash::PageBuffer, KvStatus)>;
    using AckDone = KvShard::AckDone;
    /** Values and statuses aligned with the requested key order. */
    using MultiGetDone =
        std::function<void(std::vector<flash::PageBuffer>,
                           std::vector<KvStatus>)>;

    /**
     * Build shards and install network agents on every node of
     * @p cluster. The cluster's network must have been built with
     * at least kvRequiredEndpoints endpoints.
     */
    KvRouter(sim::Simulator &sim, core::Cluster &cluster,
             const KvParams &params = KvParams{});

    /** Replication factor in use. */
    unsigned replication() const { return params_.replication; }

    /**
     * The R owner nodes of @p key, primary first. Deterministic:
     * every node computes the same owners with no directory
     * service.
     */
    std::vector<net::NodeId> owners(Key key) const;

    /** Replica @p origin reads @p key from (local when possible). */
    net::NodeId readReplica(net::NodeId origin, Key key) const;

    /** Fetch @p key on behalf of a client attached to @p origin. */
    void get(net::NodeId origin, Key key, GetDone done);

    /** Store @p key on all replicas; acks when every copy landed.
     * See kv_types.hh for the partial-failure contract. */
    void put(net::NodeId origin, Key key, flash::PageBuffer value,
             AckDone done);

    /** Delete @p key on all replicas. */
    void del(net::NodeId origin, Key key, AckDone done);

    /** Fetch several keys concurrently (read-one per key). */
    void multiGet(net::NodeId origin, std::vector<Key> keys,
                  MultiGetDone done);

    /** Node @p n's shard (stats / tests). */
    KvShard &shard(net::NodeId n) { return *shards_.at(n); }

    /** Node @p n's hot-key cache; null when disabled. */
    KvCache *cache(net::NodeId n) { return caches_.at(n).get(); }

    /** @name Statistics */
    ///@{
    /** Operations whose shard was on the requesting node. */
    std::uint64_t localOps() const { return localOps_; }
    /** Shard requests that crossed the network. */
    std::uint64_t remoteOps() const { return remoteOps_; }
    /** Remote gets served from the origin's cache after a
     * header-only version validation (no flash read, no value
     * bytes on the wire). */
    std::uint64_t cacheServedGets() const { return cacheServed_; }
    /** Conditional gets whose cached version had gone stale (the
     * fresh value came back instead -- the self-detect path). */
    std::uint64_t cacheStaleGets() const { return cacheStale_; }
    /** Write-alls that left replicas divergent: some replicas
     * applied the write, at least one failed (see kv_types.hh). */
    std::uint64_t divergentWrites() const { return divergentWrites_; }
    ///@}

    /** Upper bound on R, so read routing can use a stack buffer. */
    static constexpr unsigned maxReplication = 8;

  private:
    unsigned ownersInto(Key key, net::NodeId *out,
                        unsigned max) const;

    struct PendingOp
    {
        unsigned remaining = 0;      //!< outstanding replica acks
        unsigned total = 0;          //!< replicas addressed
        unsigned failed = 0;         //!< replicas that reported failure
        KvStatus status = KvStatus::Ok;
        GetDone getDone;             //!< set for gets
        AckDone ackDone;             //!< set for puts/deletes
        flash::PageBuffer value;     //!< get result
        Key key = 0;
        net::NodeId origin = 0;
        std::uint64_t cachedVersion = 0; //!< conditional get in flight
        std::uint64_t version = 0;       //!< version of the result
    };

    KvCache *cacheFor(net::NodeId n) { return caches_[n].get(); }

    void installAgents();
    /** Serve one shard request arriving at (or issued on) @p node. */
    void serveLocal(net::NodeId node, KvRequest req,
                    std::function<void(KvResponse)> reply);
    /** One replica (or the get replica) finished. */
    void completeOne(std::uint64_t req_id, KvStatus st,
                     flash::PageBuffer value, std::uint64_t version);
    /** Finish a get: cache bookkeeping + the user callback. */
    void finishGet(PendingOp fin);

    sim::Simulator &sim_;
    core::Cluster &cluster_;
    KvParams params_;

    /** Hash ring: (point, node), sorted by point. */
    std::vector<std::pair<std::uint64_t, net::NodeId>> ring_;
    std::vector<std::unique_ptr<KvShard>> shards_;
    std::vector<std::unique_ptr<KvCache>> caches_;

    std::uint64_t nextReqId_ = 1;
    std::unordered_map<std::uint64_t, PendingOp> pending_;

    std::uint64_t localOps_ = 0;
    std::uint64_t remoteOps_ = 0;
    std::uint64_t cacheServed_ = 0;
    std::uint64_t cacheStale_ = 0;
    std::uint64_t divergentWrites_ = 0;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_ROUTER_HH
