/**
 * @file
 * Key routing over the cluster: consistent hashing onto per-node
 * shards, replication, the shard request/response protocol over
 * the integrated storage network, the hot-key read path, and the
 * elastic-membership layer (failure detection, crash rebuild, ring
 * join/leave) that keeps the appliance serving through all of it.
 *
 * The router is what turns twenty independent flash nodes into one
 * key-value appliance (the paper's figure 17 RAMCloud scenario with
 * the roles reversed: instead of DRAM nodes that collapse when
 * storage gets involved, every node IS storage and the network is
 * the uniform-latency fabric of section 3.2). Keys map to owner
 * nodes through a ring of hashed virtual nodes; writes go to all R
 * replicas but complete to the client after W acks (quorum write,
 * default W=1 -- the put path runs at the speed of the fastest
 * replica's NAND, not the slowest's); reads go to one (read-one,
 * preferring a local replica so a well-placed client pays no
 * network hop at all). A per-key in-flight ledger keeps read-one
 * consistent while straggler replica writes drain in the
 * background, and an anti-entropy sweep (repairSweep) heals the
 * divergence a failed straggler leaves behind. kv_types.hh spells
 * out the full contract.
 *
 * Membership: every node is Live, Suspect, Dead, Joining or
 * Standby (kv_types.hh, MemberState). Detection is organic --
 * per-request timers, consecutive timeouts, a grace period -- and
 * routing reacts per state: reads fail over off suspects, writes
 * clamp their quorum past dead replicas, and recovery (rebuild
 * after a crash, catch-up during a join) rides the SAME
 * anti-entropy machinery as straggler repair, at flash
 * Priority::Background so serving latency never queues behind it.
 * Ring changes (joinNode/leaveNode) run a two-phase handoff:
 * dual-write to the union of old and new owners while a throttled
 * catch-up sweep copies history, then an atomic ring flip.
 *
 * Hot-key read path: before a remote get leaves the origin node,
 * the router consults that node's KvCache. On a cached (value,
 * version) pair the get goes out conditional -- the owning shard
 * answers a version match with a header-only "not modified" and
 * the cached value is served locally, skipping the flash read AND
 * the value bytes on the wire. See kv_cache.hh for the coherence
 * argument; failover and rebalancing never fill the cache across
 * replicas (shard version counters are not comparable).
 */

#ifndef BLUEDBM_KV_KV_ROUTER_HH
#define BLUEDBM_KV_KV_ROUTER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_cache.hh"
#include "kv/kv_shard.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * Router / replication tuning.
 */
struct KvParams
{
    /** Copies of every key. */
    unsigned replication = 2;
    /**
     * Replica acks required before a put/delete completes to the
     * client (1..replication). The remaining replica writes finish
     * in the background; a straggler that *fails* leaves divergence
     * for repairSweep() to heal. replication (W=R) restores strict
     * write-all acking. Clamps down to the addressable (non-Dead)
     * owner count when replicas have failed -- see kv_types.hh.
     */
    unsigned writeQuorum = 1;
    /** Ring segments reconciled per repair-sweep chunk before the
     * sweep yields to the event loop. */
    unsigned repairChunk = 64;
    /**
     * Microseconds between automatic anti-entropy sweeps (0 = off,
     * the default: sweeps run only when repairSweep() is called).
     * When set, the router schedules repairSweep() itself every
     * interval (measured completion-to-start, so sweeps never
     * overlap; an interval tick that finds a manual sweep running
     * skips to the next interval). Note that an armed timer keeps
     * the event queue non-empty forever: drive the simulation with
     * runUntil(), not run().
     */
    std::uint64_t repairIntervalUs = 0;
    /** Ring points per node; more points, smoother balance. */
    unsigned vnodes = 64;
    /** Shard log file name (one per node's file system). */
    std::string shardLog = "kv.shard.log";
    /**
     * Independent append chains per shard (KvShard stripes). One
     * log file serializes a node's puts behind a single tail page
     * (one program in flight at a time); striping multiplies the
     * per-node write ceiling and feeds the flash server's
     * program-coalescing stage when stripes land on one bus. The
     * hot-shard write backlog under quorum acks is exactly what
     * this bounds: stragglers drain at S chains, not one. More
     * stripes also dilute group-commit amortization (fewer puts
     * absorbed per tail-page program, so more chip-busy program
     * windows stalling reads); the default is the empirical sweet
     * spot of the 20-node serving bench, where both the write p99
     * and throughput targets clear with margin.
     */
    unsigned logStripes = 5;
    /** Hot-key cache slots per node (0 disables the cache). */
    unsigned cacheSlots = 128;
    /** Sketch estimate required before a key may occupy a cache
     * slot (1 admits on the first fill). */
    unsigned cacheAdmitHits = 2;
    /**
     * Nodes initially in the hash ring (0 = every cluster node).
     * The remainder start Standby -- provisioned (shard, cache,
     * network agents) but owning no keys -- and enter service via
     * joinNode(). How a bench models cluster expansion without
     * rebuilding the cluster object.
     */
    unsigned activeNodes = 0;
    /**
     * @name Failure detection
     * Microsecond timeouts on remote shard requests. A request that
     * times out counts against its target (suspectAfter consecutive
     * timeouts -> Suspect; deadGraceUs more with no sign of life ->
     * Dead); any response, however late, is proof of life. Sizing:
     * comfortably above the serving tail (a spurious timeout is
     * benign -- the retry duplicates a read, divergence repair
     * covers a write -- but wasteful), well below the p99 budget a
     * crash is allowed to consume, since an affected read pays one
     * timeout before its failover retry. 0 disables the timer (and
     * with it detection and failover) for that operation class.
     */
    ///@{
    std::uint64_t readTimeoutUs = 2000;
    /** Failover retries per read (distinct replicas, each paying a
     * fresh readTimeoutUs) before the read fails with Error. */
    unsigned readRetries = 1;
    std::uint64_t writeTimeoutUs = 8000;
    /** Consecutive timeouts that turn a Live node Suspect. */
    unsigned suspectAfter = 3;
    /** Microseconds a Suspect node has to show life before it is
     * declared Dead (0 = never auto-declare Dead). */
    std::uint64_t deadGraceUs = 5000;
    ///@}
};

/**
 * Cluster-wide key-value routing layer. Owns one KvShard (and one
 * hot-key KvCache) per node and the network agents that serve
 * remote shard requests.
 */
class KvRouter
{
  public:
    /** Delivers a get result (value is empty unless status is Ok). */
    using GetDone =
        std::function<void(flash::PageBuffer, KvStatus)>;
    using AckDone = KvShard::AckDone;
    /** Values and statuses aligned with the requested key order. */
    using MultiGetDone =
        std::function<void(std::vector<flash::PageBuffer>,
                           std::vector<KvStatus>)>;

    /**
     * Build shards and install network agents on every node of
     * @p cluster. The cluster's network must have been built with
     * at least kvRequiredEndpoints endpoints.
     */
    KvRouter(sim::Simulator &sim, core::Cluster &cluster,
             const KvParams &params = KvParams{});

    /** Cancels every armed timer (periodic repair, per-request
     * timeouts, membership grace periods); in-flight operations
     * are dropped without completing -- safe mid-quorum-write. */
    ~KvRouter();

    /** Replication factor in use. */
    unsigned replication() const { return params_.replication; }

    /**
     * The R owner nodes of @p key on the CURRENT ring, primary
     * first. Deterministic: every node computes the same owners
     * with no directory service.
     */
    std::vector<net::NodeId> owners(Key key) const;

    /**
     * Replica @p origin reads @p key from (local when possible).
     * While a write of @p key is still draining to straggler
     * replicas, the in-flight ledger narrows the choice to replicas
     * known to have applied it, so a read after a quorum ack can
     * never observe the pre-write value. Failed replicas are routed
     * around: no Live owner leaves a Suspect one as last resort.
     */
    net::NodeId readReplica(net::NodeId origin, Key key) const;

    /**
     * Fetch @p key on behalf of a client attached to @p origin.
     *
     * @p trace (here and on put/del/multiGet; sim::Tracer handle,
     * 0 = untraced) parents a "route" span covering the whole
     * routed operation, under which the network hops (net.req /
     * net.resp), the serving shard (shard.get / shard.put /
     * shard.del, with the flash spans inside) and retry/timeout
     * marks hang. See docs/observability.md for the taxonomy.
     */
    void get(net::NodeId origin, Key key, GetDone done,
             std::uint64_t trace = 0);

    /** Fires when a write finished on EVERY replica (after the
     * quorum ack); see put(). */
    using SettledDone = std::function<void()>;

    /**
     * Store @p key on all replicas; @p done acks the client after
     * writeQuorum of them landed (kv_types.hh has the contract).
     * @p settled (optional) fires once every replica completed --
     * the hook admission control uses to keep the op's straggler
     * work charged against the client's window: acking early must
     * not let a closed-loop client pump extra concurrency into
     * flash that is still digesting its durability debt, or the
     * quorum win turns into a saturation loss.
     */
    void put(net::NodeId origin, Key key, flash::PageBuffer value,
             AckDone done, SettledDone settled = nullptr,
             std::uint64_t trace = 0);

    /** Delete @p key on all replicas (same quorum ack / settled
     * split as put). */
    void del(net::NodeId origin, Key key, AckDone done,
             SettledDone settled = nullptr,
             std::uint64_t trace = 0);

    /**
     * One full anti-entropy sweep over the hash ring: for every
     * ring segment (whose keys share one replica set), compare the
     * replicas' range digests; on a mismatch, enumerate the range
     * and push each differing key's newer-stamped state across
     * (repairPut/repairDel on the stale shard). Runs chunked so it
     * yields to the event loop, and repair I/O rides flash
     * Priority::Background; @p done fires after every segment was
     * compared and every pushed repair completed. Afterwards
     * divergentWrites() is zero -- every key the sweep visited is
     * either reconciled or was already consistent -- PROVIDED every
     * replica was reconcilable: segments with a crashed or Dead
     * replica are compared among the remaining ones but keep their
     * divergence marks until a sweep sees the full set again
     * (i.e. after rebuildNode readmits the missing replica).
     *
     * Sweeps never overlap: a call that lands while one is running
     * (e.g. a manual sweep racing the periodic timer's) queues, and
     * one fresh full pass serves every queued caller after the
     * current sweep completes. Ring changes (joinNode/leaveNode)
     * serialize with sweeps the same way.
     */
    void repairSweep(std::function<void()> done);

    /** Fetch several keys concurrently (read-one per key); each
     * key's route span hangs under @p trace. */
    void multiGet(net::NodeId origin, std::vector<Key> keys,
                  MultiGetDone done, std::uint64_t trace = 0);

    /**
     * @name Elastic membership
     * Crash, rebuild, join and leave -- the kv_types.hh membership
     * contract's verbs. All of them keep the cluster serving: the
     * only global barrier anywhere is the atomic ring flip at the
     * end of a join/leave handoff.
     */
    ///@{

    /** Membership state of node @p n as the router sees it. */
    MemberState member(net::NodeId n) const;

    /** Nodes currently Live. */
    unsigned liveNodes() const;

    /**
     * Fail-stop crash of node @p n (fault injection): from now the
     * node drops every arriving shard request and response, so
     * peers experience silence and the ordinary timeout path marks
     * it Suspect, then Dead. Operations ORIGINATED at @p n complete
     * with Error immediately -- their clients died with the node
     * (pause the node's workload clients first; see
     * WorkloadEngine::pauseNode). Detection is deliberately NOT
     * short-circuited: routing keeps addressing the node until
     * timeouts prove it gone, exactly as with a real crash.
     */
    void killNode(net::NodeId n);

    /**
     * Readmit crashed node @p n as Joining: it receives writes
     * again (so it stops falling further behind) but serves no
     * reads until rebuildNode() caught it up. Requires a preceding
     * killNode (the simulation's stand-in for process restart).
     */
    void reviveNode(net::NodeId n);

    /**
     * Stream Joining node @p n back to currency: one anti-entropy
     * sweep with @p n reconcilable again, pushing every key it
     * missed (newest-stamp-wins) at Priority::Background. When the
     * sweep completes the node returns to Live, divergentWrites()
     * has drained, and @p done fires.
     */
    void rebuildNode(net::NodeId n, std::function<void()> done);

    /**
     * Two-phase ring expansion onto Standby node @p n: dual-write
     * (union of current and next owners; next-only owners excluded
     * from the quorum) plus a Background catch-up sweep copying
     * @p n's future key ranges onto it, then an atomic ring flip --
     * epoch bump, stale cache purge, @p n Live. @p done fires after
     * the flip. Serving continues throughout; reads address the old
     * owners until the flip.
     */
    void joinNode(net::NodeId n, std::function<void()> done);

    /**
     * Two-phase ring drain of Live node @p n (the reverse of
     * joinNode): dual-write to the union ring while the catch-up
     * sweep copies @p n's ranges to their next owners, then the
     * flip makes @p n Standby. Its shard keeps its (now unowned)
     * data; a later joinNode would reconcile it afresh.
     */
    void leaveNode(net::NodeId n, std::function<void()> done);

    /** Bumped at every ring flip. In-flight operations carry the
     * epoch they were issued under; results from a previous epoch
     * never fill the hot-key cache. */
    std::uint64_t ringEpoch() const { return ringEpoch_; }

    ///@}

    /** Node @p n's shard (stats / tests). */
    KvShard &shard(net::NodeId n) { return *shards_.at(n); }

    /** Node @p n's hot-key cache; null when disabled. */
    KvCache *cache(net::NodeId n) { return caches_.at(n).get(); }

    /** @name Statistics
     *
     * Registry-backed (`kv.router.*`); the accessors are thin
     * reads kept for existing callers.
     */
    ///@{
    /** Operations whose shard was on the requesting node. */
    std::uint64_t localOps() const { return localOps_.value(); }
    /** Shard requests that crossed the network. */
    std::uint64_t remoteOps() const { return remoteOps_.value(); }
    /** Remote gets served from the origin's cache after a
     * header-only version validation (no flash read, no value
     * bytes on the wire). */
    std::uint64_t cacheServedGets() const { return cacheServed_.value(); }
    /** Conditional gets whose cached version had gone stale (the
     * fresh value came back instead -- the self-detect path). */
    std::uint64_t cacheStaleGets() const { return cacheStale_.value(); }
    /** Keys CURRENTLY divergent: a write applied on some replicas
     * and failed (or was skipped / timed out) on at least one, and
     * no repair sweep has reconciled the key since (see
     * kv_types.hh). Drains to zero after repairSweep() once every
     * replica is reconcilable. */
    std::uint64_t divergentWrites() const { return divergent_.size(); }
    /** Writes completed to the client that still have straggler
     * replica writes outstanding, right now. */
    unsigned backgroundWrites() const { return backgroundWrites_; }
    /** High-water mark of backgroundWrites(): the repair lag --
     * the most client-acked puts ever simultaneously outstanding
     * on straggler replicas. */
    unsigned maxBackgroundWrites() const { return maxBackgroundWrites_; }
    /** Repair pushes that completed without error: the target
     * either applied the newer state or had already caught up by
     * itself (KvShard::repairsApplied() counts actual mutations).
     * A failed push is not counted -- its key goes back on the
     * divergent list for the next sweep. */
    std::uint64_t repairedKeys() const { return repairedKeys_.value(); }
    /** Completed anti-entropy sweeps. */
    std::uint64_t repairSweeps() const { return repairSweeps_.value(); }
    /** Remote reads that timed out (including spurious ones whose
     * response later arrived -- see lateResponses). */
    std::uint64_t readTimeouts() const { return readTimeouts_.value(); }
    /** Replica writes timed out and completed as failed. */
    std::uint64_t writeTimeouts() const { return writeTimeouts_.value(); }
    /** Reads re-sent to another replica after a timeout/error. */
    std::uint64_t retriedReads() const { return retriedReads_.value(); }
    /** Reads that exhausted their retries and returned Error. */
    std::uint64_t failedReads() const { return failedReads_.value(); }
    /** Writes acked under a clamped quorum (>= 1 owner skipped as
     * Dead): durable on fewer than the configured W replicas. */
    std::uint64_t degradedWrites() const { return degradedWrites_.value(); }
    /** Responses for already-retired requests (a timeout fired
     * first, or the origin died). Dropped -- but counted as proof
     * of life for the sender. */
    std::uint64_t lateResponses() const { return lateResponses_.value(); }
    /** Live -> Suspect transitions. */
    std::uint64_t suspectTransitions() const { return suspectTransitions_.value(); }
    /** Suspect -> Dead transitions (grace expiries). */
    std::uint64_t deadTransitions() const { return deadTransitions_.value(); }
    /** Keys copied by join/leave catch-up sweeps (rebalance
     * traffic; rebuild and straggler repair count repairedKeys). */
    std::uint64_t movedKeys() const { return movedKeys_.value(); }
    /** Local reads that hit an unreadable (uncorrectable) durable
     * copy on the origin's own shard. Each one fails over to a
     * healthy replica for the client AND pushes the surviving copy
     * back into the corrupt shard (stamp-guarded repairPut), so
     * aged-flash data loss heals on the read path instead of
     * waiting for the next anti-entropy sweep. */
    std::uint64_t localCorruptions() const { return localCorruption_.value(); }
    ///@}

    /** Upper bound on R, so read routing can use a stack buffer. */
    static constexpr unsigned maxReplication = 8;

  private:
    /** Hash ring: (point, node), sorted by point. */
    using Ring = std::vector<std::pair<std::uint64_t, net::NodeId>>;

    /** First @p max distinct nodes walking @p ring from
     * @p ring_index. Shared by key-owner lookup and the repair
     * sweep's per-segment replica sets, so both always agree on
     * what the replica set of a ring arc is. */
    static unsigned ownersFromRing(const Ring &ring,
                                   std::size_t ring_index,
                                   net::NodeId *out, unsigned max);
    /** Owner set of hash point @p h on @p ring. */
    static unsigned ownersForHash(const Ring &ring, std::uint64_t h,
                                  net::NodeId *out, unsigned max);
    /** Hash range(s) of @p ring's segment @p seg (the arc ending at
     * point seg; segment 0 also owns the wrap-around arc). Fills
     * inclusive [lo, hi] pairs; returns how many (1 or 2). */
    static unsigned segmentRanges(const Ring &ring, std::size_t seg,
                                  std::uint64_t ranges[2][2]);

    unsigned ownersInto(Key key, net::NodeId *out,
                        unsigned max) const;

    /** One node's membership record. */
    struct Member
    {
        MemberState state = MemberState::Live;
        /** Consecutive request timeouts (any response resets). */
        unsigned consecTimeouts = 0;
        /** Pending Suspect -> Dead grace expiry. */
        sim::EventId graceTimer = sim::invalidEventId;
        /** killNode() called (and no reviveNode since): the node
         * drops traffic. Routing NEVER consults this -- detection
         * must run the organic timeout path. */
        bool crashed = false;
    };

    struct PendingOp
    {
        /** Replicas addressed, in send order: for writes the
         * quorum-eligible owners first, then any dual-write aux
         * targets; for reads the initial target plus one slot per
         * failover retry. */
        net::NodeId sent[2 * maxReplication] = {};
        std::uint16_t respondedMask = 0; //!< sent[] slots answered
        std::uint8_t sentCount = 0;
        /** Writes: sent[0..eligible) count toward the quorum; the
         * rest are aux (catch-up) targets whose outcome only feeds
         * the divergence set. */
        std::uint8_t eligible = 0;
        std::uint8_t attempts = 0;   //!< reads: targets tried
        unsigned remaining = 0;      //!< outstanding replica acks
        unsigned failed = 0;         //!< eligible replicas failed
        unsigned okAcks = 0;         //!< eligible replicas acked Ok
        unsigned quorum = 1;         //!< acks that complete the client
        std::uint8_t ackedMask = 0;  //!< owner-index bits that acked Ok
        bool write = false;          //!< put/delete (vs get)
        bool clientAcked = false;    //!< client callback already fired
        /** Get routed off the deterministic replica (by the ledger,
         * a liveness failover, or a retry): its version is from
         * another replica's counter space, so it was sent
         * unconditional and must not fill the cache. */
        bool steered = false;
        KvStatus status = KvStatus::Ok;
        GetDone getDone;             //!< set for gets
        AckDone ackDone;             //!< set for puts/deletes
        SettledDone settled;         //!< all-replica completion hook
        flash::PageBuffer value;     //!< get result
        Key key = 0;
        net::NodeId origin = 0;
        std::uint64_t cachedVersion = 0; //!< conditional get in flight
        std::uint64_t version = 0;       //!< version of the result
        std::uint64_t stamp = 0;         //!< write stamp (0 for gets)
        std::uint64_t epoch = 0;         //!< ring epoch at issue
        /** Caller's trace handle (parent of routeSpan; 0 =
         * untraced). Kept so a cache-miss re-issue can open a
         * fresh route span at the right level. */
        std::uint64_t trace = 0;
        /** The op's "route" span (0 = untraced or already ended:
         * a write ends it at the client ack, not at settlement). */
        std::uint64_t routeSpan = 0;
        /** Tick of the latest network send: per-response network
         * time is (arrival - sentTick) - KvResponse::serviceTicks
         * (always-on kv.stage.net attribution, no tracer needed). */
        sim::Tick sentTick = 0;
        /** Pending timeout expiry (invalidEventId = none). */
        sim::EventId timer = sim::invalidEventId;
    };

    /**
     * Per-key in-flight write ledger, the read-your-writes guard
     * under W < R. The obligation is narrow and the tracking must
     * be exactly as narrow: a session (node-homed) that received an
     * Ok for its write may not subsequently read the pre-write
     * value off a replica the write has not reached yet. So the
     * ledger steers ONLY reads from an origin with a client-acked
     * write still draining, and steers them ONLY to replicas that
     * acked that specific op (acked = durable = applied; per-link
     * FIFO means a replica that acked the origin's latest op also
     * applied its earlier ones). Anything coarser -- steering every
     * origin, or keying on "some write of this key is outstanding"
     * -- funnels a hot Zipfian key's entire read load onto one
     * replica (hot keys ALWAYS have a write outstanding) and
     * resurrects the hot-shard tail that read spreading kills.
     * Non-writing origins keep the plain deterministic spread; what
     * they may transiently observe is unchanged from write-all, and
     * a failed straggler is healed by repair either way.
     */
    struct InflightWrite
    {
        unsigned ops = 0; //!< outstanding write operations
        unsigned ownerCount = 0;
        net::NodeId owners[maxReplication] = {};
        /** Per writing origin: the latest client-acked op still
         * draining (opId 0 = none) and the owner-index bitmask of
         * replicas that acked it. One slot per distinct origin with
         * writes in flight (bounded by the cluster size; drained
         * slots are reused) -- the guarantee must hold for EVERY
         * writer, so there is deliberately no lossy overflow path:
         * an approximate fallback mask could steer a writer to a
         * replica that acked someone else's older op but not its
         * own. */
        struct Writer
        {
            net::NodeId origin = 0;
            unsigned ops = 0;          //!< outstanding write ops
            std::uint64_t ackedOp = 0; //!< latest client-acked op
            std::uint8_t ackedMask = 0;
        };
        std::vector<Writer> writers;
    };

    /** One join/leave handoff in flight (phase 1: dual-write +
     * catch-up sweep; finishRebalance() is phase 2, the flip). */
    struct Rebalance
    {
        Ring oldRing; //!< the ring in force until the flip
        Ring newRing; //!< the ring installed at the flip
        /** Whichever ring has MORE points (new for a join, old for
         * a leave): its points are a superset of the other's, so
         * its segments have constant owner sets under BOTH rings --
         * the granularity the catch-up traversal walks. */
        const Ring *finer = nullptr;
        net::NodeId node = 0;
        bool joining = false;
        std::function<void()> done;
    };

    KvCache *cacheFor(net::NodeId n) { return caches_[n].get(); }

    /** The plain deterministic read choice: liveness-blind, so the
     * conditional-get/cache-fill gate (only plain-routed results
     * may touch the cache) stays stable across membership churn. */
    net::NodeId defaultReadReplica(net::NodeId origin,
                                   Key key) const;
    /** Ledger constraint on @p origin's read of @p key: true (and
     * *out set) when an outstanding client-acked write obliges the
     * read to hit a specific replica. */
    [[nodiscard]] bool steerTarget(net::NodeId origin, Key key,
                     net::NodeId *out) const;
    /** Liveness-aware read routing: the plain choice when it is
     * Live, else a Live owner, else a Suspect one (last resort).
     * False when no owner is readable. *diverted reports whether
     * the pick differs from the plain choice (cache gate). */
    [[nodiscard]] bool pickReadTarget(net::NodeId origin, Key key,
                        net::NodeId *out, bool *diverted) const;
    /** A readable replica for a read retry, excluding @p origin
     * (local ops have no timeout machinery) and every node in
     * @p tried (the already-attempted sent[] prefix). */
    [[nodiscard]] bool pickRetryTarget(Key key, net::NodeId origin,
                         const net::NodeId *tried, unsigned ntried,
                         net::NodeId *out) const;

    void installAgents();
    /** Serve one shard request arriving at (or issued on) @p node. */
    void serveLocal(net::NodeId node, KvRequest req,
                    std::function<void(KvResponse)> reply);
    /** Shared body of put()/del(). */
    void issueWrite(net::NodeId origin, Key key, KvOp kvop,
                    flash::PageBuffer value, AckDone done,
                    SettledDone settled, std::uint64_t trace);
    /** One replica (or the get replica) finished; @p from is the
     * node that served it (ledger bookkeeping for writes).
     * @p timed_out marks a synthesized completion from the op's
     * timeout timer rather than a real response. @p service_ticks
     * is KvResponse::serviceTicks for a remote response (feeds the
     * kv.stage.net / kv.stage.shard histograms); local completions
     * record their stages at the call site and pass 0. */
    void completeOne(std::uint64_t req_id, KvStatus st,
                     flash::PageBuffer value, std::uint64_t version,
                     net::NodeId from, bool timed_out = false,
                     sim::Tick service_ticks = 0);
    /** Arm (or re-arm) op @p id's timeout timer for @p us. */
    void armOpTimer(std::uint64_t id, std::uint64_t us);
    /** Origin's local read of @p key hit a corrupt durable copy:
     * serve the client from replica @p from and push the surviving
     * copy back into the origin's shard (see localCorruptions()). */
    void healLocalGet(net::NodeId origin, net::NodeId from, Key key,
                      std::uint64_t route, GetDone done);
    /** Finish a get: cache bookkeeping + the user callback. */
    void finishGet(PendingOp fin);
    /** Open (or join) the key's ledger entry for one write op. */
    void ledgerOpen(Key key, net::NodeId origin,
                    const net::NodeId *own, unsigned count);
    /** Op @p op_id of @p key was acked Ok by owner-index @p idx
     * after the client already completed: extend its steer mask. */
    void ledgerLateAck(Key key, net::NodeId origin,
                       std::uint64_t op_id, unsigned idx);
    /** Op @p op_id (origin @p origin) completed to the client with
     * Ok while replicas are still draining: arm the steer. */
    void ledgerClientAcked(Key key, net::NodeId origin,
                           std::uint64_t op_id,
                           std::uint8_t acked_mask);
    /** One write op of @p key (issued by @p origin) fully
     * completed on every replica. */
    void ledgerOpDone(Key key, net::NodeId origin,
                      std::uint64_t op_id);

    /** @name Failure detection */
    ///@{
    /** Node @p n timed out one request. */
    void noteTimeout(net::NodeId n);
    /** Node @p n produced a response (possibly late): proof of
     * life. Resets the timeout streak; recovers Suspect to Live.
     * Dead stays Dead -- it missed writes, only a rebuild
     * readmits it. */
    void noteAlive(net::NodeId n);
    ///@}

    struct SweepState; //!< one repairSweep / catch-up in flight

    /** Run @p fn now, or after the in-flight sweep/handoff (ring
     * changes and sweeps are mutually exclusive). */
    void startExclusive(std::function<void()> fn);
    /** Phase 1 of a join/leave: install dual-write state and start
     * the catch-up traversal. */
    void beginRebalance(net::NodeId n, bool joining,
                        std::function<void()> done);
    /** Phase 2: flip the ring, purge stale cache entries, settle
     * the member's state, release the exclusive lock. */
    void finishRebalance(const std::shared_ptr<SweepState> &state);
    /** Hand the sweep/handoff lock to whoever queued for it. */
    void releaseExclusive();

    /** Reconcile the next chunk of ring segments, then yield. */
    void sweepChunk(std::shared_ptr<SweepState> state);
    /** Complete the sweep when traversal and repairs are done. */
    void sweepFinish(const std::shared_ptr<SweepState> &state);
    /** Compare + repair one ring segment ([lo,hi] on the hash
     * ring, replica set shared by every key in it). */
    void sweepSegment(std::shared_ptr<SweepState> state,
                      std::size_t seg);
    /** Catch-up variant: one finer-ring segment, replica set the
     * union of old- and new-ring owners. */
    void rebalanceSegment(std::shared_ptr<SweepState> state,
                          std::size_t seg);
    /** Reconcile one (lo,hi) hash range across ALL of the
     * segment's replicas at once (pairwise-vs-primary would miss a
     * divergence between two non-primary replicas at R >= 3). */
    void sweepRange(std::shared_ptr<SweepState> state,
                    const net::NodeId *own, unsigned count,
                    std::uint64_t lo, std::uint64_t hi,
                    bool may_prune);
    /** Push @p key's newer side (@p from, at @p stamp) to @p to. */
    void repairKey(std::shared_ptr<SweepState> state, Key key,
                   net::NodeId from, net::NodeId to,
                   std::uint64_t stamp, bool live);

    sim::Simulator &sim_;
    core::Cluster &cluster_;
    KvParams params_;

    Ring ring_;
    std::vector<std::unique_ptr<KvShard>> shards_;
    std::vector<std::unique_ptr<KvCache>> caches_;
    std::vector<Member> members_;
    /** Bumped at each ring flip (see ringEpoch()). */
    std::uint64_t ringEpoch_ = 0;
    /** In-flight join/leave handoff (dual-write phase). */
    std::unique_ptr<Rebalance> rebalance_;
    /** Ring changes waiting for the running sweep/handoff. */
    std::vector<std::function<void()>> pendingExclusive_;

    std::uint64_t nextReqId_ = 1;
    /** Cluster-wide write stamp source (anti-entropy ordering). */
    std::uint64_t nextStamp_ = 0;
    std::unordered_map<std::uint64_t, PendingOp> pending_;
    std::unordered_map<Key, InflightWrite> inflightWrites_;
    /** Keys with observed divergence awaiting a repair sweep. */
    std::unordered_set<Key> divergent_;
    bool sweepRunning_ = false;
    /** Callbacks of repairSweep() calls that arrived mid-sweep; a
     * follow-up full pass serves them all. */
    std::vector<std::function<void()>> queuedSweeps_;
    /**
     * Liveness flag captured by detached continuations (sweep
     * chunk yields, repair-push completions, network agents, op
     * timers). The periodic timer can start sweeps nobody is
     * awaiting, so teardown mid-sweep is reachable from correct
     * caller code; the destructor flips this and a continuation
     * firing afterwards returns without touching the dead router.
     */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    /** Arm the next periodic sweep (KvParams::repairIntervalUs). */
    void armRepairTimer();
    /** Pending periodic-sweep event (invalidEventId = none). */
    sim::EventId repairTimer_ = sim::invalidEventId;

    /** Live background-write count / high-water mark: both move
     * down (or are maxima), so they stay plain members exposed as
     * kv.router.* gauges rather than monotone registry counters. */
    unsigned backgroundWrites_ = 0;
    unsigned maxBackgroundWrites_ = 0;

    // Registry-backed statistics (kv.router.*; the accessors above
    // are thin reads). The router is one-per-cluster, so these
    // carry no "inst" label.
    sim::Counter &localOps_;
    sim::Counter &remoteOps_;
    sim::Counter &cacheServed_;
    sim::Counter &cacheStale_;
    sim::Counter &repairedKeys_;
    sim::Counter &repairSweeps_;
    sim::Counter &readTimeouts_;
    sim::Counter &writeTimeouts_;
    sim::Counter &retriedReads_;
    sim::Counter &failedReads_;
    sim::Counter &degradedWrites_;
    sim::Counter &lateResponses_;
    sim::Counter &suspectTransitions_;
    sim::Counter &deadTransitions_;
    sim::Counter &movedKeys_;
    sim::Counter &localCorruption_;
    /** Always-on per-stage latency attribution (ticks, one sample
     * per response): kv.stage.shard is the serving side's
     * request-arrival-to-reply time, kv.stage.net the remainder of
     * the round trip (local completions record shard time directly
     * and 0 network). Cluster-wide cells shared with KvService's
     * kv.stage.admission -- see docs/observability.md. */
    sim::LatencyHistogram &stageNet_;
    sim::LatencyHistogram &stageShard_;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_ROUTER_HH
