/**
 * @file
 * Client-facing request front-end of the KV appliance.
 *
 * Models the serving side of the paper's figure 17 scenario: many
 * concurrent clients (the "millions of users" traffic of the
 * ROADMAP north star) each hold a session against one node of the
 * rack. The service applies per-client admission control -- a
 * bounded in-flight window plus a bounded wait queue -- so a
 * misbehaving or bursty client saturates neither the node's flash
 * servers nor the integrated network; excess load is rejected with
 * KvStatus::Overloaded instead of growing queues without bound
 * (the difference between an open-loop melt-down and a served
 * SLO). A write's window slot stays charged until the op settled
 * on EVERY replica, not just until its (possibly quorum-early)
 * client ack -- straggler replica writes still occupy the system,
 * and admission that ignored them would let W < R turn into an
 * overload amplifier at saturation.
 *
 * Failure semantics seen by clients: every done callback fires
 * exactly once. Ok on a put or delete means the operation is
 * durable on at least W replicas (KvParams::writeQuorum; the
 * remaining replica writes complete in the background, with
 * read-your-writes preserved by the router's in-flight ledger and
 * any straggler failure healed by anti-entropy repair); Error
 * means the quorum was not reached and the copies may be divergent
 * until repair or a retry (kv_types.hh spells out the full quorum
 * contract); Overloaded means the operation was never dispatched
 * and changed nothing.
 */

#ifndef BLUEDBM_KV_KV_SERVICE_HH
#define BLUEDBM_KV_KV_SERVICE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "kv/kv_router.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * Admission-controlled session multiplexer over a KvRouter.
 */
class KvService
{
  public:
    /** Session handle returned by addClient(). */
    using ClientId = std::uint32_t;

    /** Per-client admission knobs. */
    struct ClientParams
    {
        /** Operations dispatched concurrently for this client. */
        unsigned window = 8;
        /** Operations parked awaiting a window slot before the
         * service starts rejecting with Overloaded. */
        unsigned queueCap = 256;
        /**
         * Base of the retry-after hint handed out with Overloaded
         * rejections: the hint is this many microseconds per
         * window's worth of queued backlog (so it grows with how
         * far behind the client actually is). 0 disables hinting.
         */
        std::uint64_t retryBaseUs = 20;
        /**
         * Retry-after hint attached when a put is shed at the
         * flash capacity red line (KvStatus::Pressure, surfaced to
         * the client as Overloaded). Sized to the time a cleaner
         * pass needs to reclaim a block (erase + relocations) --
         * much longer than an admission-queue blip, which is why
         * it is a separate knob from retryBaseUs. 0 disables
         * hinting.
         */
        std::uint64_t pressureRetryUs = 500;
    };

    KvService(sim::Simulator &sim, KvRouter &router)
        : sim_(sim), router_(router),
          admitted_(sim.metrics().counter("kv.svc.admitted")),
          rejected_(sim.metrics().counter("kv.svc.rejected")),
          pressured_(sim.metrics().counter("kv.svc.pressured")),
          stageAdmission_(
              sim.metrics().histogram("kv.stage.admission"))
    {
        // The service may die before the Simulator in tests, so the
        // gauge checks the liveness flag before touching members.
        sim.metrics().registerGauge(
            "kv.svc.max_queued", {}, [this, alive = alive_]() {
            return *alive ? double(maxQueued_) : 0.0;
        });
    }

    ~KvService() { *alive_ = false; }

    /** Open a session homed on node @p origin. */
    ClientId addClient(net::NodeId origin,
                       const ClientParams &params);

    /** Open a session with default admission parameters. */
    ClientId
    addClient(net::NodeId origin)
    {
        return addClient(origin, ClientParams{});
    }

    /** Number of sessions. */
    std::size_t clientCount() const { return clients_.size(); }

    /**
     * @name Operations
     * Each call either enters the client's window (possibly after
     * queueing) or completes promptly with Overloaded. The done
     * callback always fires exactly once.
     */
    ///@{
    void get(ClientId client, Key key, KvRouter::GetDone done);
    void put(ClientId client, Key key, flash::PageBuffer value,
             KvRouter::AckDone done);
    void del(ClientId client, Key key, KvRouter::AckDone done);
    void multiGet(ClientId client, std::vector<Key> keys,
                  KvRouter::MultiGetDone done);
    ///@}

    /** Operations currently dispatched for @p client. */
    unsigned inFlight(ClientId client) const
    {
        return clients_.at(client).inFlight;
    }

    /** Operations currently queued for @p client. */
    std::size_t queued(ClientId client) const
    {
        return clients_.at(client).queue.size();
    }

    /**
     * Retry-after hint of the client's most recent Overloaded
     * rejection, in simulated microseconds (0 = never rejected, or
     * hinting disabled). Sized to the backlog at rejection time:
     * a deeper queue hands out a longer hint. Well-behaved
     * closed-loop clients (WorkloadParams::honorRetryAfter) pause
     * for a jittered multiple of this instead of immediately
     * re-submitting into a full queue -- which matters most while
     * the cluster is absorbing failover or rebalance load.
     */
    std::uint64_t retryAfterUs(ClientId client) const
    {
        return clients_.at(client).retryAfterUs;
    }

    /** @name Statistics
     *
     * Registry-backed (`kv.svc.*`); the accessors are thin reads
     * kept for existing callers.
     */
    ///@{
    std::uint64_t admitted() const { return admitted_.value(); }
    std::uint64_t rejected() const { return rejected_.value(); }
    /** Puts shed by a shard at the capacity red line and surfaced
     * to the client as Overloaded with the pressureRetryUs hint. */
    std::uint64_t pressureRejects() const { return pressured_.value(); }
    /** High-water mark of any client's wait queue. */
    std::size_t maxQueued() const { return maxQueued_; }
    ///@}

  private:
    /** A queued operation: fires the real dispatch when a window
     * slot frees up, receiving the completion hook to call when the
     * operation finishes. */
    using Launch = std::function<void(std::function<void()>)>;

    struct Client
    {
        net::NodeId origin = 0;
        ClientParams params;
        unsigned inFlight = 0;
        std::deque<Launch> queue;
        /** Hint attached to the last Overloaded rejection. */
        std::uint64_t retryAfterUs = 0;
    };

    /** Admit (or reject) one operation for @p client. @p reject
     * must complete the caller's callback with Overloaded. */
    void submit(ClientId client, Launch launch,
                std::function<void()> reject);

    /** Dispatch queued work while the window has room. */
    void pump(ClientId client);

    sim::Simulator &sim_;
    KvRouter &router_;
    std::deque<Client> clients_; //!< stable storage, index = id
    /** Flipped by the destructor; guards the max_queued gauge. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    /** High-water mark (not monotone-increment): stays a plain
     * member, published as the kv.svc.max_queued gauge. */
    std::size_t maxQueued_ = 0;

    // Registry-backed statistics (accessors above are thin reads).
    sim::Counter &admitted_;
    sim::Counter &rejected_;
    sim::Counter &pressured_;
    /** Always-on admission-wait histogram (ticks, one sample per
     * admitted op): submit() to window-slot launch. The front end
     * of the kv.stage.* breakdown -- see docs/observability.md. */
    sim::LatencyHistogram &stageAdmission_;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_SERVICE_HH
