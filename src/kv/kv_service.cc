#include "kv/kv_service.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;

KvService::ClientId
KvService::addClient(net::NodeId origin, const ClientParams &params)
{
    if (params.window == 0)
        sim::fatal("client window must be >= 1");
    Client c;
    c.origin = origin;
    c.params = params;
    clients_.push_back(std::move(c));
    return ClientId(clients_.size() - 1);
}

void
KvService::submit(ClientId client, Launch launch,
                  std::function<void()> reject)
{
    Client &c = clients_.at(client);
    if (c.queue.size() >= c.params.queueCap) {
        rejected_.inc();
        // Size the retry-after hint to the backlog: one base unit
        // per window's worth of queued work, so a client a hundred
        // windows behind is told to stay away proportionally
        // longer than one that just grazed the cap.
        c.retryAfterUs = c.params.retryBaseUs *
            (1 + c.queue.size() / std::max(1u, c.params.window));
        // Completes on a fresh event like every other path: callers
        // may rely on done never firing re-entrantly.
        sim_.scheduleAfter(0, [reject = std::move(reject)]() {
            reject();
        });
        return;
    }
    admitted_.inc();
    c.queue.push_back(std::move(launch));
    pump(client);
    // High-water mark of operations actually left waiting (an op
    // that dispatched straight into a window slot never queued).
    maxQueued_ =
        std::max(maxQueued_, clients_.at(client).queue.size());
}

void
KvService::pump(ClientId client)
{
    Client &c = clients_.at(client);
    while (c.inFlight < c.params.window && !c.queue.empty()) {
        Launch launch = std::move(c.queue.front());
        c.queue.pop_front();
        ++c.inFlight;
        launch([this, client]() {
            Client &cl = clients_.at(client);
            if (cl.inFlight == 0)
                sim::panic("KV window underflow");
            --cl.inFlight;
            pump(client);
        });
    }
}

void
KvService::get(ClientId client, Key key, KvRouter::GetDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    // Root of the op's span tree; 0 when the op was not sampled
    // (every tracer call below then early-outs). The trace covers
    // the client-perceived lifetime, queueing included.
    sim::Tick enq = sim_.now();
    std::uint64_t root = sim_.tracer().beginTrace("kv.get", enq, key);
    std::uint64_t qspan =
        sim_.tracer().beginSpan(root, "svc.queue", enq);
    auto done_sh =
        std::make_shared<KvRouter::GetDone>(std::move(done));
    submit(client,
           [this, origin, key, done_sh, root, qspan,
            enq](std::function<void()> slot) {
        sim::Tick launched = sim_.now();
        stageAdmission_.record(launched - enq);
        sim_.tracer().endSpan(qspan, launched);
        router_.get(origin, key,
                    [&sim = sim_, done_sh, root,
                     slot = std::move(slot)](PageBuffer v,
                                             KvStatus st) {
            slot();
            sim.tracer().endTrace(root, sim.now());
            (*done_sh)(std::move(v), st);
        },
                    root);
    },
           [&sim = sim_, done_sh, root]() {
        sim.tracer().endTrace(root, sim.now());
        (*done_sh)(PageBuffer{}, KvStatus::Overloaded);
    });
}

void
KvService::put(ClientId client, Key key, PageBuffer value,
               KvRouter::AckDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    auto done_sh =
        std::make_shared<KvRouter::AckDone>(std::move(done));
    auto value_sh = std::make_shared<PageBuffer>(std::move(value));
    sim::Tick enq = sim_.now();
    std::uint64_t root = sim_.tracer().beginTrace("kv.put", enq, key);
    std::uint64_t qspan =
        sim_.tracer().beginSpan(root, "svc.queue", enq);
    submit(client,
           [this, client, origin, key, done_sh, value_sh, root,
            qspan, enq](std::function<void()> slot) {
        sim::Tick launched = sim_.now();
        stageAdmission_.record(launched - enq);
        sim_.tracer().endSpan(qspan, launched);
        // The client completes at the quorum ack, but the window
        // slot stays charged until every replica settled: the
        // op's straggler writes still occupy flash and network,
        // and admission must account them or quorum acks let a
        // closed-loop client overrun the node (see KvRouter::put).
        // The trace ends with the client too -- endTrace closes
        // any straggler replica span still open at that instant.
        router_.put(origin, key, std::move(*value_sh),
                    [this, alive = alive_, client, done_sh,
                     root](KvStatus st) {
            sim_.tracer().endTrace(root, sim_.now());
            if (st == KvStatus::Pressure && *alive) {
                // Capacity red line at the owning shard: surface
                // the standard Overloaded + retry-after contract,
                // with the hint sized for block reclaim rather
                // than a queue blip, so well-behaved clients back
                // off long enough for the cleaner to free space.
                pressured_.inc();
                Client &cl = clients_.at(client);
                if (cl.params.pressureRetryUs > 0)
                    cl.retryAfterUs = cl.params.pressureRetryUs;
                st = KvStatus::Overloaded;
            }
            (*done_sh)(st);
        },
                    [slot = std::move(slot)]() { slot(); }, root);
    },
           [&sim = sim_, done_sh, root]() {
        sim.tracer().endTrace(root, sim.now());
        (*done_sh)(KvStatus::Overloaded);
    });
}

void
KvService::del(ClientId client, Key key, KvRouter::AckDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    auto done_sh =
        std::make_shared<KvRouter::AckDone>(std::move(done));
    sim::Tick enq = sim_.now();
    std::uint64_t root = sim_.tracer().beginTrace("kv.del", enq, key);
    std::uint64_t qspan =
        sim_.tracer().beginSpan(root, "svc.queue", enq);
    submit(client,
           [this, origin, key, done_sh, root, qspan,
            enq](std::function<void()> slot) {
        sim::Tick launched = sim_.now();
        stageAdmission_.record(launched - enq);
        sim_.tracer().endSpan(qspan, launched);
        router_.del(origin, key,
                    [&sim = sim_, done_sh, root](KvStatus st) {
            sim.tracer().endTrace(root, sim.now());
            (*done_sh)(st);
        },
                    [slot = std::move(slot)]() { slot(); }, root);
    },
           [&sim = sim_, done_sh, root]() {
        sim.tracer().endTrace(root, sim.now());
        (*done_sh)(KvStatus::Overloaded);
    });
}

void
KvService::multiGet(ClientId client, std::vector<Key> keys,
                    KvRouter::MultiGetDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    auto done_sh =
        std::make_shared<KvRouter::MultiGetDone>(std::move(done));
    auto keys_sh =
        std::make_shared<std::vector<Key>>(std::move(keys));
    sim::Tick enq = sim_.now();
    std::uint64_t root = sim_.tracer().beginTrace(
        "kv.scan", enq, keys_sh->empty() ? 0 : keys_sh->front());
    std::uint64_t qspan =
        sim_.tracer().beginSpan(root, "svc.queue", enq);
    submit(client,
           [this, origin, done_sh, keys_sh, root, qspan,
            enq](std::function<void()> slot) {
        sim::Tick launched = sim_.now();
        stageAdmission_.record(launched - enq);
        sim_.tracer().endSpan(qspan, launched);
        router_.multiGet(origin, std::move(*keys_sh),
                         [&sim = sim_, done_sh, root,
                          slot = std::move(slot)](
                             std::vector<PageBuffer> values,
                             std::vector<KvStatus> sts) {
            slot();
            sim.tracer().endTrace(root, sim.now());
            (*done_sh)(std::move(values), std::move(sts));
        },
                         root);
    },
           [&sim = sim_, done_sh, keys_sh, root]() {
        sim.tracer().endTrace(root, sim.now());
        (*done_sh)(std::vector<PageBuffer>(keys_sh->size()),
                   std::vector<KvStatus>(keys_sh->size(),
                                         KvStatus::Overloaded));
    });
}

} // namespace kv
} // namespace bluedbm
