#include "kv/kv_service.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;

KvService::ClientId
KvService::addClient(net::NodeId origin, const ClientParams &params)
{
    if (params.window == 0)
        sim::fatal("client window must be >= 1");
    Client c;
    c.origin = origin;
    c.params = params;
    clients_.push_back(std::move(c));
    return ClientId(clients_.size() - 1);
}

void
KvService::submit(ClientId client, Launch launch,
                  std::function<void()> reject)
{
    Client &c = clients_.at(client);
    if (c.queue.size() >= c.params.queueCap) {
        ++rejected_;
        // Size the retry-after hint to the backlog: one base unit
        // per window's worth of queued work, so a client a hundred
        // windows behind is told to stay away proportionally
        // longer than one that just grazed the cap.
        c.retryAfterUs = c.params.retryBaseUs *
            (1 + c.queue.size() / std::max(1u, c.params.window));
        // Completes on a fresh event like every other path: callers
        // may rely on done never firing re-entrantly.
        sim_.scheduleAfter(0, [reject = std::move(reject)]() {
            reject();
        });
        return;
    }
    ++admitted_;
    c.queue.push_back(std::move(launch));
    pump(client);
    // High-water mark of operations actually left waiting (an op
    // that dispatched straight into a window slot never queued).
    maxQueued_ =
        std::max(maxQueued_, clients_.at(client).queue.size());
}

void
KvService::pump(ClientId client)
{
    Client &c = clients_.at(client);
    while (c.inFlight < c.params.window && !c.queue.empty()) {
        Launch launch = std::move(c.queue.front());
        c.queue.pop_front();
        ++c.inFlight;
        launch([this, client]() {
            Client &cl = clients_.at(client);
            if (cl.inFlight == 0)
                sim::panic("KV window underflow");
            --cl.inFlight;
            pump(client);
        });
    }
}

void
KvService::get(ClientId client, Key key, KvRouter::GetDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    auto done_sh =
        std::make_shared<KvRouter::GetDone>(std::move(done));
    submit(client,
           [this, origin, key, done_sh](std::function<void()> slot) {
        router_.get(origin, key,
                    [done_sh, slot = std::move(slot)](
                        PageBuffer v, KvStatus st) {
            slot();
            (*done_sh)(std::move(v), st);
        });
    },
           [done_sh]() {
        (*done_sh)(PageBuffer{}, KvStatus::Overloaded);
    });
}

void
KvService::put(ClientId client, Key key, PageBuffer value,
               KvRouter::AckDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    auto done_sh =
        std::make_shared<KvRouter::AckDone>(std::move(done));
    auto value_sh = std::make_shared<PageBuffer>(std::move(value));
    submit(client,
           [this, origin, key, done_sh,
            value_sh](std::function<void()> slot) {
        // The client completes at the quorum ack, but the window
        // slot stays charged until every replica settled: the
        // op's straggler writes still occupy flash and network,
        // and admission must account them or quorum acks let a
        // closed-loop client overrun the node (see KvRouter::put).
        router_.put(origin, key, std::move(*value_sh),
                    [done_sh](KvStatus st) { (*done_sh)(st); },
                    [slot = std::move(slot)]() { slot(); });
    },
           [done_sh]() { (*done_sh)(KvStatus::Overloaded); });
}

void
KvService::del(ClientId client, Key key, KvRouter::AckDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    auto done_sh =
        std::make_shared<KvRouter::AckDone>(std::move(done));
    submit(client,
           [this, origin, key, done_sh](std::function<void()> slot) {
        router_.del(origin, key,
                    [done_sh](KvStatus st) { (*done_sh)(st); },
                    [slot = std::move(slot)]() { slot(); });
    },
           [done_sh]() { (*done_sh)(KvStatus::Overloaded); });
}

void
KvService::multiGet(ClientId client, std::vector<Key> keys,
                    KvRouter::MultiGetDone done)
{
    net::NodeId origin = clients_.at(client).origin;
    auto done_sh =
        std::make_shared<KvRouter::MultiGetDone>(std::move(done));
    auto keys_sh =
        std::make_shared<std::vector<Key>>(std::move(keys));
    submit(client,
           [this, origin, done_sh,
            keys_sh](std::function<void()> slot) {
        router_.multiGet(origin, std::move(*keys_sh),
                         [done_sh, slot = std::move(slot)](
                             std::vector<PageBuffer> values,
                             std::vector<KvStatus> sts) {
            slot();
            (*done_sh)(std::move(values), std::move(sts));
        });
    },
           [done_sh, keys_sh]() {
        (*done_sh)(std::vector<PageBuffer>(keys_sh->size()),
                   std::vector<KvStatus>(keys_sh->size(),
                                         KvStatus::Overloaded));
    });
}

} // namespace kv
} // namespace bluedbm
