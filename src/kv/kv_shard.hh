/**
 * @file
 * Per-node key-value shard: a log-structured value store over the
 * node's flash file system.
 *
 * Values are appended to one shard log file in fs::LogFs (which
 * stripes pages across the card's buses and garbage-collects
 * blocks); the shard keeps the key -> byte-range index in host
 * memory, exactly as the paper's RFS keeps file metadata in memory
 * (section 4). A small write-back memtable holds values whose log
 * append is still in flight so that reads are always
 * read-your-writes without waiting for NAND program latency --
 * the same role as the paper's host-side page buffers.
 *
 * Failure semantics: the index only ever points at durable log
 * records. While an append is in flight its value is served from
 * the memtable; if the append fails, the shard rolls the key back
 * to its last durable version (or absence when there is none), the
 * memtable entry is discarded, and the put acks KvStatus::Error.
 * A failed append is therefore never later served as Ok with bytes
 * that did not reach flash. A get issued during the doomed window
 * returns the in-flight value (ordinary read-your-writes of a
 * write that subsequently fails).
 *
 * Hot-key reads: every get result carries the entry's shard-global
 * version, so requesters can cache (value, version) pairs and
 * revalidate with getIfNewer() -- a version match costs one O(1)
 * index probe, no flash read, no value bytes. Duplicate in-flight
 * gets on the same key coalesce onto one LogFs read.
 *
 * This is the storage half of the figure 17 scenario: every value
 * lives in flash, none are assumed cached in DRAM, and a get costs
 * at most one (queued) flash page read.
 */

#ifndef BLUEDBM_KV_KV_SHARD_HH
#define BLUEDBM_KV_KV_SHARD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/log_fs.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * One node's slice of the key space.
 */
class KvShard
{
  public:
    /**
     * Delivers a get result: the value (empty unless status is Ok),
     * the status, and the entry's shard-global version (0 on a
     * miss). A conditional get whose version matched delivers an
     * empty value with the unchanged version ("not modified").
     */
    using GetDone = std::function<void(flash::PageBuffer, KvStatus,
                                       std::uint64_t version)>;
    /** Acknowledges a put or delete. */
    using AckDone = std::function<void(KvStatus)>;

    /**
     * @param sim      simulation kernel
     * @param fs       the node's log-structured file system
     * @param log_name shard log file, created here (must be fresh)
     */
    KvShard(sim::Simulator &sim, fs::LogFs &fs, std::string log_name);

    /**
     * Store @p value under @p key. The index and memtable are
     * updated immediately (reads see the new version at once); the
     * ack fires when the log append is durable on flash, or with
     * KvStatus::Error after rolling the key back to its last
     * durable version when the append fails.
     */
    void put(Key key, flash::PageBuffer value, AckDone done);

    /**
     * Fetch the live version of @p key: from the memtable when the
     * append is still in flight, else one flash read of the log
     * (shared with any identical get already in flight).
     */
    void get(Key key, GetDone done);

    /**
     * Conditional fetch: like get(), but when the live entry's
     * version equals @p cached_version (and it is non-zero) the
     * shard skips the flash read entirely and delivers an empty
     * value with the unchanged version -- the requester's cached
     * copy is current. 0 means unconditional.
     */
    void getIfNewer(Key key, std::uint64_t cached_version,
                    GetDone done);

    /**
     * Drop @p key. Index-only (metadata persistence is out of scope
     * for the simulation, as in LogFs); acks NotFound when absent.
     */
    void del(Key key, AckDone done);

    /** Whether a live version of @p key exists. */
    bool contains(Key key) const { return index_.count(key) != 0; }

    /** Number of live keys. */
    std::size_t keyCount() const { return index_.size(); }

    /** Bytes of live values (excludes dead log versions). */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** @name Statistics */
    ///@{
    std::uint64_t gets() const { return gets_; }
    std::uint64_t puts() const { return puts_; }
    std::uint64_t deletes() const { return deletes_; }
    std::uint64_t misses() const { return misses_; }
    /** Gets served from the in-flight write-back memtable. */
    std::uint64_t memtableHits() const { return memtableHits_; }
    /** Conditional gets answered "not modified" (no flash read). */
    std::uint64_t validatedGets() const { return validatedGets_; }
    /** Gets that joined an in-flight flash read instead of issuing
     * their own. */
    std::uint64_t coalescedGets() const { return coalescedGets_; }
    /** Puts whose log append failed (rolled back, acked Error). */
    std::uint64_t failedPuts() const { return failedPuts_; }
    /** Bytes appended to the shard log (live + since-dead; failed
     * appends are rolled back out). */
    std::uint64_t logBytes() const { return logBytes_; }
    ///@}

  private:
    /** Per-record log header: key + value length. */
    static constexpr std::uint32_t recordHeaderBytes = 12;

    struct Entry
    {
        std::uint64_t valueOffset = 0; //!< byte offset in the log
        std::uint32_t valueLen = 0;
        /** Shard-global monotonic version; gates memtable
         * retirement and read-cache validation (0 = freshly
         * default-constructed). */
        std::uint64_t version = 0;
    };

    /**
     * Last known-durable state of a key: the rollback target when
     * a newer append fails. live=false records a tombstone (the
     * key was deleted at that version) so a failed re-put cannot
     * resurrect an older value.
     */
    struct Durable
    {
        std::uint64_t valueOffset = 0;
        std::uint32_t valueLen = 0;
        std::uint64_t version = 0;
        bool live = false;
    };

    /** Waiters coalesced onto one in-flight flash read. */
    struct ReadGroup
    {
        std::vector<GetDone> waiters;
    };

    sim::Simulator &sim_;
    fs::LogFs &fs_;
    std::string logName_;

    std::unordered_map<Key, Entry> index_;
    /** Values whose append has not completed yet, newest version. */
    std::unordered_map<Key, flash::PageBuffer> memtable_;
    /** Rollback targets; an entry exists only while the key has
     * appends in flight (see Durable). */
    std::unordered_map<Key, Durable> durable_;
    /** In-flight appends per key: gates durable_ lifetime. */
    std::unordered_map<Key, unsigned> inflightPuts_;
    /** In-flight flash reads, keyed by the entry version they
     * serve (shard-global versions are never reused, so a version
     * pins both the key and the byte range). */
    std::unordered_map<std::uint64_t, ReadGroup> reads_;
    std::uint64_t nextVersion_ = 0;

    std::uint64_t liveBytes_ = 0;
    std::uint64_t logBytes_ = 0;
    std::uint64_t gets_ = 0;
    std::uint64_t puts_ = 0;
    std::uint64_t deletes_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t memtableHits_ = 0;
    std::uint64_t validatedGets_ = 0;
    std::uint64_t coalescedGets_ = 0;
    std::uint64_t failedPuts_ = 0;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_SHARD_HH
