/**
 * @file
 * Per-node key-value shard: a log-structured value store over the
 * node's flash file system.
 *
 * Values are appended to one shard log file in fs::LogFs (which
 * stripes pages across the card's buses and garbage-collects
 * blocks); the shard keeps the key -> byte-range index in host
 * memory, exactly as the paper's RFS keeps file metadata in memory
 * (section 4). A small write-back memtable holds values whose log
 * append is still in flight so that reads are always
 * read-your-writes without waiting for NAND program latency --
 * the same role as the paper's host-side page buffers.
 *
 * This is the storage half of the figure 17 scenario: every value
 * lives in flash, none are assumed cached in DRAM, and a get costs
 * one (queued) flash page read.
 */

#ifndef BLUEDBM_KV_KV_SHARD_HH
#define BLUEDBM_KV_KV_SHARD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "fs/log_fs.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * One node's slice of the key space.
 */
class KvShard
{
  public:
    /** Delivers a get result (value is empty unless status is Ok). */
    using GetDone = std::function<void(flash::PageBuffer, KvStatus)>;
    /** Acknowledges a put or delete. */
    using AckDone = std::function<void(KvStatus)>;

    /**
     * @param sim      simulation kernel
     * @param fs       the node's log-structured file system
     * @param log_name shard log file, created here (must be fresh)
     */
    KvShard(sim::Simulator &sim, fs::LogFs &fs, std::string log_name);

    /**
     * Store @p value under @p key. The index and memtable are
     * updated immediately (reads see the new version at once); the
     * ack fires when the log append is durable on flash.
     */
    void put(Key key, flash::PageBuffer value, AckDone done);

    /**
     * Fetch the live version of @p key: from the memtable when the
     * append is still in flight, else one flash read of the log.
     */
    void get(Key key, GetDone done);

    /**
     * Drop @p key. Index-only (metadata persistence is out of scope
     * for the simulation, as in LogFs); acks NotFound when absent.
     */
    void del(Key key, AckDone done);

    /** Whether a live version of @p key exists. */
    bool contains(Key key) const { return index_.count(key) != 0; }

    /** Number of live keys. */
    std::size_t keyCount() const { return index_.size(); }

    /** Bytes of live values (excludes dead log versions). */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** @name Statistics */
    ///@{
    std::uint64_t gets() const { return gets_; }
    std::uint64_t puts() const { return puts_; }
    std::uint64_t deletes() const { return deletes_; }
    std::uint64_t misses() const { return misses_; }
    /** Gets served from the in-flight write-back memtable. */
    std::uint64_t memtableHits() const { return memtableHits_; }
    /** Bytes appended to the shard log (live + since-dead). */
    std::uint64_t logBytes() const { return logBytes_; }
    ///@}

  private:
    /** Per-record log header: key + value length. */
    static constexpr std::uint32_t recordHeaderBytes = 12;

    struct Entry
    {
        std::uint64_t valueOffset = 0; //!< byte offset in the log
        std::uint32_t valueLen = 0;
        /** Shard-global monotonic version; gates memtable
         * retirement (0 = freshly default-constructed). */
        std::uint64_t version = 0;
    };

    sim::Simulator &sim_;
    fs::LogFs &fs_;
    std::string logName_;

    std::unordered_map<Key, Entry> index_;
    /** Values whose append has not completed yet, newest version. */
    std::unordered_map<Key, flash::PageBuffer> memtable_;
    std::uint64_t nextVersion_ = 0;

    std::uint64_t liveBytes_ = 0;
    std::uint64_t logBytes_ = 0;
    std::uint64_t gets_ = 0;
    std::uint64_t puts_ = 0;
    std::uint64_t deletes_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t memtableHits_ = 0;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_SHARD_HH
