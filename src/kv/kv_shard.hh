/**
 * @file
 * Per-node key-value shard: a log-structured value store over the
 * node's flash file system.
 *
 * Values are appended to one shard log file in fs::LogFs (which
 * stripes pages across the card's buses and garbage-collects
 * blocks); the shard keeps the key -> byte-range index in host
 * memory, exactly as the paper's RFS keeps file metadata in memory
 * (section 4). A small write-back memtable holds values whose log
 * append is still in flight so that reads are always
 * read-your-writes without waiting for NAND program latency --
 * the same role as the paper's host-side page buffers.
 *
 * Failure semantics: the index only ever points at durable log
 * records. While an append is in flight its value is served from
 * the memtable; if the append fails, the shard rolls the key back
 * to its last durable version (or absence when there is none), the
 * memtable entry is discarded, and the put acks KvStatus::Error.
 * A failed append is therefore never later served as Ok with bytes
 * that did not reach flash. A get issued during the doomed window
 * returns the in-flight value (ordinary read-your-writes of a
 * write that subsequently fails).
 *
 * Hot-key reads: every get result carries the entry's shard-global
 * version, so requesters can cache (value, version) pairs and
 * revalidate with getIfNewer() -- a version match costs one O(1)
 * index probe, no flash read, no value bytes. Duplicate in-flight
 * gets on the same key coalesce onto one LogFs read.
 *
 * Anti-entropy support: shard versions are local counters and not
 * comparable across replicas, so every write additionally carries a
 * router-issued cluster-wide *stamp*. The shard keeps a hash-ordered
 * side index of (key, stamp, live/tombstone) -- mix64 is a bijection,
 * so one map entry per key -- from which it answers cheap per-range
 * digests (rangeDigest) and enumerations (rangeEntries). The repair
 * sweep compares digests between replicas and pushes the newer-
 * stamped side across with repairPut()/repairDel(), which apply only
 * when their stamp is strictly newer than everything the shard knows
 * for the key, making repair idempotent and race-tolerant.
 *
 * This is the storage half of the figure 17 scenario: every value
 * lives in flash, none are assumed cached in DRAM, and a get costs
 * at most one (queued) flash page read.
 */

#ifndef BLUEDBM_KV_KV_SHARD_HH
#define BLUEDBM_KV_KV_SHARD_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/log_fs.hh"
#include "kv/kv_types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace kv {

/**
 * One node's slice of the key space.
 */
class KvShard
{
  public:
    /**
     * Delivers a get result: the value (empty unless status is Ok),
     * the status, and the entry's shard-global version (0 on a
     * miss). A conditional get whose version matched delivers an
     * empty value with the unchanged version ("not modified").
     */
    using GetDone = std::function<void(flash::PageBuffer, KvStatus,
                                       std::uint64_t version)>;
    /** Acknowledges a put or delete. */
    using AckDone = std::function<void(KvStatus)>;

    /**
     * @param sim      simulation kernel
     * @param fs       the node's log-structured file system
     * @param log_name shard log file name (must be fresh); with
     *                 @p stripes > 1 the shard keeps `stripes`
     *                 independent log files ("name.0" ..) and
     *                 hashes keys across them
     * @param stripes  independent append chains. One log file means
     *                 one tail page and so one program in flight at
     *                 a time -- a per-node put ceiling of roughly
     *                 one NAND program window per group commit.
     *                 Striping multiplies that ceiling and lets
     *                 concurrent puts program different buses (or
     *                 share a coalesced program window when stripes
     *                 collide on one).
     */
    KvShard(sim::Simulator &sim, fs::LogFs &fs, std::string log_name,
            unsigned stripes = 1);

    /**
     * Safe to destroy with appends or reads still in flight: the
     * file system (whose lifetime exceeds the shard's) holds
     * continuations that capture this shard, and they check a
     * shared liveness flag before touching it. Outstanding
     * completions are simply dropped -- their callers died with
     * the shard's owner.
     */
    ~KvShard();

    /**
     * Store @p value under @p key. The index and memtable are
     * updated immediately (reads see the new version at once); the
     * ack fires when the log append is durable on flash, or with
     * KvStatus::Error after rolling the key back to its last
     * durable version when the append fails.
     *
     * @p stamp is the router's cluster-wide write stamp, recorded
     * for anti-entropy digests (see file comment). The stampless
     * overload draws from a shard-local counter -- fine for
     * single-shard use, never for replicated writes.
     *
     * @p pri is the flash traffic class of the log append: serving
     * puts are flash::Priority::Read (a client waits on the ack);
     * anti-entropy repair pushes pass Background so maintenance
     * programs are accounted as such at the NAND.
     */
    void put(Key key, flash::PageBuffer value, std::uint64_t stamp,
             AckDone done,
             flash::Priority pri = flash::Priority::Read,
             std::uint64_t trace = 0);
    void
    put(Key key, flash::PageBuffer value, AckDone done)
    {
        put(key, std::move(value), ++fallbackStamp_,
            std::move(done));
    }

    /**
     * Fetch the live version of @p key: from the memtable when the
     * append is still in flight, else one flash read of the log
     * (shared with any identical get already in flight).
     *
     * @p pri is the flash traffic class of the log read: serving
     * gets ride Priority::Read; maintenance readers (anti-entropy
     * source reads, replica rebuild) pass Background so recovery
     * never suspends serving programs. A Background get that
     * coalesces onto an in-flight serving read simply shares it.
     *
     * @p trace (on get/getIfNewer/put; sim::Tracer handle, 0 =
     * untraced) is threaded into the file system so the fs.read /
     * fs.append span (and the flash spans inside it) nest under the
     * caller's span; served-from-memory outcomes leave a mark
     * instead (shard.memtable / shard.validated / shard.coalesced).
     */
    void get(Key key, GetDone done,
             flash::Priority pri = flash::Priority::Read,
             std::uint64_t trace = 0);

    /**
     * Conditional fetch: like get(), but when the live entry's
     * version equals @p cached_version (and it is non-zero) the
     * shard skips the flash read entirely and delivers an empty
     * value with the unchanged version -- the requester's cached
     * copy is current. 0 means unconditional.
     */
    void getIfNewer(Key key, std::uint64_t cached_version,
                    GetDone done,
                    flash::Priority pri = flash::Priority::Read,
                    std::uint64_t trace = 0);

    /**
     * Drop @p key. Index-only (metadata persistence is out of scope
     * for the simulation, as in LogFs); acks NotFound when absent.
     * Always records a tombstone at @p stamp so replicas of a
     * partially-failed delete converge under repair.
     */
    void del(Key key, std::uint64_t stamp, AckDone done);
    void
    del(Key key, AckDone done)
    {
        del(key, ++fallbackStamp_, std::move(done));
    }

    /**
     * @name Anti-entropy (KvRouter::repairSweep)
     */
    ///@{

    /** One key's repair-relevant state. */
    struct RangeEntry
    {
        Key key = 0;
        std::uint64_t stamp = 0;
        bool live = false; //!< false = tombstone
        /** The local durable copy is unreadable (uncorrectable
         * flash page); an equal-stamp replica copy must win. */
        bool corrupt = false;
    };

    /**
     * Order-independent digest of (key, stamp, liveness) for every
     * key with mix64(key) in [lo, hi] (inclusive; empty when
     * lo > hi). Replicas holding identical content for the range
     * produce identical digests; any single-key difference flips it
     * with overwhelming probability. Costs O(log keys + range size),
     * no flash I/O.
     */
    std::uint64_t rangeDigest(std::uint64_t lo,
                              std::uint64_t hi) const;

    /** Append the range's entries (hash order) to @p out. */
    void rangeEntries(std::uint64_t lo, std::uint64_t hi,
                      std::vector<RangeEntry> &out) const;

    /**
     * Repair push: install @p value at @p stamp unless the shard
     * already knows a state of @p key at or past that stamp (then a
     * no-op acking Ok). Idempotent; safe to race with live traffic.
     */
    void repairPut(Key key, flash::PageBuffer value,
                   std::uint64_t stamp, AckDone done);

    /** Repair push of a tombstone; same stamp rules as repairPut. */
    void repairDel(Key key, std::uint64_t stamp, AckDone done);

    /** Repair pushes that actually changed state. */
    std::uint64_t repairsApplied() const { return repairsApplied_.value(); }

    /**
     * Drop tombstones in [lo, hi] (hash bounds, inclusive) with
     * stamp < @p below. Called by the repair sweep on ranges whose
     * replicas are digest-identical, with @p below older than any
     * write still in flight: every replica then prunes the same
     * set, digests stay equal, and the repair index stops growing
     * monotonically under delete churn.
     */
    void pruneTombstones(std::uint64_t lo, std::uint64_t hi,
                         std::uint64_t below);

    /** Live keys + retained tombstones in the repair index. */
    std::size_t repairIndexSize() const { return byHash_.size(); }

    /**
     * Repair-index state of @p key (stamp, liveness, corruption);
     * false when the shard has never seen it. The router's
     * read-path heal uses the healthy replica's stamp here so its
     * push into the corrupt replica is correctly stamp-guarded.
     */
    [[nodiscard]] bool keyState(Key key, std::uint64_t *stamp,
                                bool *live,
                                bool *corrupt = nullptr) const;

    ///@}

    /** Whether a live version of @p key exists. */
    [[nodiscard]] bool contains(Key key) const { return index_.count(key) != 0; }

    /** Number of live keys. */
    std::size_t keyCount() const { return index_.size(); }

    /** Bytes of live values (excludes dead log versions). */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** @name Statistics
     *
     * Registry-backed (`kv.shard.*`, labeled by instance); the
     * accessors are thin reads kept for existing callers.
     */
    ///@{
    std::uint64_t gets() const { return gets_.value(); }
    std::uint64_t puts() const { return puts_.value(); }
    std::uint64_t deletes() const { return deletes_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    /** Gets served from the in-flight write-back memtable. */
    std::uint64_t memtableHits() const { return memtableHits_.value(); }
    /** Conditional gets answered "not modified" (no flash read). */
    std::uint64_t validatedGets() const { return validatedGets_.value(); }
    /** Gets that joined an in-flight flash read instead of issuing
     * their own. */
    std::uint64_t coalescedGets() const { return coalescedGets_.value(); }
    /** Puts whose log append failed (rolled back, acked Error). */
    std::uint64_t failedPuts() const { return failedPuts_.value(); }
    /** Puts shed with KvStatus::Pressure because the file system
     * was at its free-block red line (see kv_types.hh). */
    std::uint64_t pressuredPuts() const { return pressuredPuts_.value(); }
    /** Keys whose durable copy read back uncorrectable and are now
     * marked corrupt in the repair index (healed by replica push). */
    std::uint64_t corruptKeys() const { return corruptKeys_.value(); }
    /** Keys currently marked corrupt (drains to 0 as repair heals). */
    std::size_t corruptKeyCount() const;
    /** Bytes appended to the shard log (live + since-dead; failed
     * appends are rolled back out). */
    std::uint64_t logBytes() const { return logBytes_; }
    ///@}

  private:
    /** Per-record log header: key + value length. */
    static constexpr std::uint32_t recordHeaderBytes = 12;

    struct Entry
    {
        std::uint64_t valueOffset = 0; //!< byte offset in the log
        std::uint32_t valueLen = 0;
        /** Shard-global monotonic version; gates memtable
         * retirement and read-cache validation (0 = freshly
         * default-constructed). */
        std::uint64_t version = 0;
        /** Cluster-wide write stamp (anti-entropy ordering). */
        std::uint64_t stamp = 0;
    };

    /**
     * Last known-durable state of a key: the rollback target when
     * a newer append fails. live=false records a tombstone (the
     * key was deleted at that version) so a failed re-put cannot
     * resurrect an older value.
     */
    struct Durable
    {
        std::uint64_t valueOffset = 0;
        std::uint32_t valueLen = 0;
        std::uint64_t version = 0;
        std::uint64_t stamp = 0;
        bool live = false;
    };

    /** Value of the hash-ordered repair index (see byHash_). */
    struct HashState
    {
        Key key = 0;
        std::uint64_t stamp = 0;
        bool live = false;
        /**
         * The key's durable flash copy came back uncorrectable: the
         * stamp still describes WHICH write the shard holds, but
         * the bytes are gone. Folded into rangeDigest (so the sweep
         * detects equal-stamp corruption) and honored by repairPut
         * (an equal-stamp push heals instead of no-oping). Cleared
         * by any successful write of the key.
         */
        bool corrupt = false;
    };

    /** Waiters coalesced onto one in-flight flash read. */
    struct ReadGroup
    {
        std::vector<GetDone> waiters;
    };

    /**
     * Account @p len bytes at @p offset of @p log as dead (their
     * record was superseded, deleted, or rolled back) and trim any
     * log page that became fully dead, releasing its physical flash
     * page to the cleaner. Called only for byte ranges whose pages
     * have already been programmed at least once (durable records,
     * or failed appends after their program completions), so the
     * trim never races an unmapped in-flight page.
     */
    void markDead(const std::string &log, std::uint64_t offset,
                  std::uint64_t len);

    /** Mark @p key's repair-index entry corrupt (durable copy read
     * back uncorrectable) so the anti-entropy machinery heals it. */
    void markCorrupt(Key key);

    /** Log file of @p key: stripes decorrelate from the routing
     * ring by using different mix64 bits. */
    const std::string &
    fileFor(Key key) const
    {
        if (logNames_.size() == 1)
            return logNames_[0];
        return logNames_[(mix64(key) >> 32) % logNames_.size()];
    }

    sim::Simulator &sim_;
    fs::LogFs &fs_;
    std::vector<std::string> logNames_;
    /** Flipped by the destructor; continuations held by fs_ / the
     * simulator check it before touching the shard or invoking
     * completion callbacks into the (equally dead) owner. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

    std::unordered_map<Key, Entry> index_;
    /** Values whose append has not completed yet, newest version. */
    std::unordered_map<Key, flash::PageBuffer> memtable_;
    /** Rollback targets; an entry exists only while the key has
     * appends in flight (see Durable). */
    std::unordered_map<Key, Durable> durable_;
    /** In-flight appends per key: gates durable_ lifetime. */
    std::unordered_map<Key, unsigned> inflightPuts_;
    /** In-flight flash reads, keyed by the entry version they
     * serve (shard-global versions are never reused, so a version
     * pins both the key and the byte range). */
    std::unordered_map<std::uint64_t, ReadGroup> reads_;
    /**
     * Hash-ordered repair index: mix64(key) -> (key, stamp, live).
     * Mirrors the *optimistic* state (updated with index_, including
     * in-flight writes and rollbacks) and additionally holds
     * tombstones, which index_ drops. Ordered so rangeDigest /
     * rangeEntries answer ring-segment queries in O(log n + range).
     */
    std::map<std::uint64_t, HashState> byHash_;
    std::uint64_t nextVersion_ = 0;
    /** Stamp source for the stampless put/del overloads. */
    std::uint64_t fallbackStamp_ = 0;

    std::uint64_t liveBytes_ = 0;
    std::uint64_t logBytes_ = 0;
    /**
     * Dead bytes per log page (log name -> page index -> bytes),
     * fed by markDead(). A page whose records are all dead is
     * trimmed from the file system -- without this, a shard log's
     * pages are permanently live and the cleaner can never reclaim
     * a block, so sustained overwrites would wedge an aged card.
     * Entries are dropped once their page is trimmed.
     */
    std::unordered_map<std::string,
                       std::unordered_map<std::uint64_t, std::uint32_t>>
        deadBytes_;

    /** Construction serial among shards; the "inst" label of the
     * kv.shard.* metrics below. */
    unsigned inst_;
    // Registry-backed statistics (accessors above are thin reads).
    sim::Counter &gets_;
    sim::Counter &puts_;
    sim::Counter &deletes_;
    sim::Counter &misses_;
    sim::Counter &memtableHits_;
    sim::Counter &validatedGets_;
    sim::Counter &coalescedGets_;
    sim::Counter &failedPuts_;
    sim::Counter &repairsApplied_;
    sim::Counter &pressuredPuts_;
    sim::Counter &corruptKeys_;
};

} // namespace kv
} // namespace bluedbm

#endif // BLUEDBM_KV_KV_SHARD_HH
