#include "kv/kv_shard.hh"

#include <cstring>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;

namespace {

/** Registry cell labeled with this shard's instance serial. */
sim::Counter &
cell(sim::Simulator &sim, unsigned inst, const char *name)
{
    return sim.metrics().counter(name,
                                 {{"inst", std::to_string(inst)}});
}

} // namespace

KvShard::KvShard(sim::Simulator &sim, fs::LogFs &fs,
                 std::string log_name, unsigned stripes)
    : sim_(sim), fs_(fs),
      inst_(sim.metrics().nextInstance("shard")),
      gets_(cell(sim, inst_, "kv.shard.gets")),
      puts_(cell(sim, inst_, "kv.shard.puts")),
      deletes_(cell(sim, inst_, "kv.shard.deletes")),
      misses_(cell(sim, inst_, "kv.shard.misses")),
      memtableHits_(cell(sim, inst_, "kv.shard.memtable_hits")),
      validatedGets_(cell(sim, inst_, "kv.shard.validated_gets")),
      coalescedGets_(cell(sim, inst_, "kv.shard.coalesced_gets")),
      failedPuts_(cell(sim, inst_, "kv.shard.failed_puts")),
      repairsApplied_(cell(sim, inst_, "kv.shard.repairs_applied")),
      pressuredPuts_(cell(sim, inst_, "kv.shard.pressured_puts")),
      corruptKeys_(cell(sim, inst_, "kv.shard.corrupt_keys"))
{
    // Unlike most models a shard may die before the Simulator (see
    // ~KvShard), so its gauges check the liveness flag.
    sim.metrics().registerGauge(
        "kv.shard.live_bytes", {{"inst", std::to_string(inst_)}},
        [this, alive = alive_]() {
        return *alive ? static_cast<double>(liveBytes_) : 0.0;
    });
    sim.metrics().registerGauge(
        "kv.shard.log_bytes", {{"inst", std::to_string(inst_)}},
        [this, alive = alive_]() {
        return *alive ? static_cast<double>(logBytes_) : 0.0;
    });
    if (stripes == 0)
        sim::fatal("shard log needs >= 1 stripe");
    if (stripes == 1) {
        logNames_.push_back(std::move(log_name));
    } else {
        for (unsigned s = 0; s < stripes; ++s)
            logNames_.push_back(log_name + "." +
                                std::to_string(s));
    }
    for (const std::string &name : logNames_) {
        if (!fs_.create(name))
            sim::fatal("shard log '%s' already exists",
                       name.c_str());
    }
}

KvShard::~KvShard()
{
    *alive_ = false;
}

void
KvShard::put(Key key, PageBuffer value, std::uint64_t stamp,
             AckDone done, flash::Priority pri, std::uint64_t trace)
{
    puts_.inc();
    // Capacity red line: below the file system's reserved free-block
    // floor, shed the put with a retryable status instead of
    // appending. Consuming the last free blocks would leave the
    // cleaner nowhere to relocate live pages and wedge the card;
    // reads (which consume no capacity) are never shed. Background
    // (maintenance-class) appends are admitted all the way down to
    // the cleaner's own relocation reserve: repair pushes are few
    // and bounded (KvRouter throttles them at repairChunk in
    // flight), and shedding them at the ordinary red line would
    // make pressure self-sustaining -- anti-entropy could never
    // converge on a card the cleaner holds near the line, which is
    // exactly when replicas have diverged the most.
    bool shed = pri == flash::Priority::Background
                    ? fs_.exhausted()
                    : fs_.underPressure();
    if (shed) {
        pressuredPuts_.inc();
        sim_.scheduleAfter(0, [alive = alive_,
                               done = std::move(done)]() {
            if (!*alive)
                return;
            done(KvStatus::Pressure);
        });
        return;
    }
    auto len = static_cast<std::uint32_t>(value.size());

    // Log record: [key][len][value bytes], appended at the frontier.
    std::vector<std::uint8_t> record(recordHeaderBytes + value.size());
    std::memcpy(record.data(), &key, sizeof(key));
    std::memcpy(record.data() + sizeof(key), &len, sizeof(len));
    std::memcpy(record.data() + recordHeaderBytes, value.data(),
                value.size());
    const std::string &log = fileFor(key);
    std::uint64_t value_offset = fs_.size(log) + recordHeaderBytes;
    std::uint64_t record_bytes = record.size();

    std::uint64_t hash = mix64(key);
    Entry &e = index_[key];
    // With no append in flight, the current entry (or absence) IS
    // the durable state: snapshot it as the rollback target for the
    // in-flight chain this put starts. The snapshot lives exactly
    // as long as the chain does. An absent entry may still carry a
    // tombstone stamp in the repair index; preserve it so a failed
    // re-put rolls back to the tombstone, not to oblivion.
    if (inflightPuts_[key]++ == 0) {
        Durable &d = durable_[key];
        d.valueOffset = e.valueOffset;
        d.valueLen = e.valueLen;
        d.version = e.version;
        d.stamp = e.stamp;
        d.live = e.version != 0;
        if (!d.live) {
            auto hit = byHash_.find(hash);
            if (hit != byHash_.end())
                d.stamp = hit->second.stamp; // tombstone stamp
        }
    }
    // Record the version this put supersedes: when THIS append
    // becomes durable the superseded record's bytes are dead and
    // get charged to their log pages (see markDead). Deferred to
    // the completion so a failed append's rollback never finds its
    // restore target already trimmed.
    bool prev_live = e.version != 0;
    std::uint64_t prev_offset = e.valueOffset;
    std::uint32_t prev_len = e.valueLen;
    if (e.version != 0)
        liveBytes_ -= e.valueLen; // overwrite: old version is dead
    e.valueOffset = value_offset;
    e.valueLen = len;
    e.stamp = stamp;
    // Shard-global version: a delete + re-put must never collide
    // with a still-in-flight append of the key's previous life.
    std::uint64_t version = e.version = ++nextVersion_;
    liveBytes_ += len;
    logBytes_ += record_bytes;
    byHash_[hash] = HashState{key, stamp, true};

    // Reads must see this version immediately (read-your-writes):
    // park it in the memtable until the append is durable.
    memtable_[key] = std::move(value);

    fs_.append(log, std::move(record),
               [this, alive = alive_, key, hash, version, stamp,
                value_offset, len, record_bytes, prev_live,
                prev_offset, prev_len,
                done = std::move(done)](bool ok) {
        if (!*alive)
            return; // shard (and its owner) died mid-append
        auto it = index_.find(key);
        bool current =
            it != index_.end() && it->second.version == version;
        // Last completion of the key's in-flight chain: the
        // rollback snapshot is no longer reachable after this
        // handler, so drop it (bounds durable_ by in-flight keys,
        // not every key ever written).
        auto cit = inflightPuts_.find(key);
        bool last_inflight = --cit->second == 0;
        if (last_inflight)
            inflightPuts_.erase(cit);
        if (!ok) {
            // The record never became durable: charge it off and,
            // if no newer operation superseded this one, roll the
            // key back to its last durable version so a later get
            // can never serve never-written flash bytes as Ok.
            failedPuts_.inc();
            logBytes_ -= record_bytes;
            // The failed record's byte range is garbage forever
            // (log offsets are never reused): account it as dead.
            // Only when no NEWER put is in flight, though -- a
            // newer put captured this range as ITS rollback
            // predecessor and will account it on its own
            // completion; marking twice could trim a page whose
            // dead-byte count was double-charged.
            if (current || it == index_.end())
                markDead(fileFor(key),
                         value_offset - recordHeaderBytes,
                         std::uint64_t(len) + recordHeaderBytes);
            if (current) {
                memtable_.erase(key);
                liveBytes_ -= it->second.valueLen;
                const Durable &d = durable_.at(key);
                if (d.live) {
                    it->second.valueOffset = d.valueOffset;
                    it->second.valueLen = d.valueLen;
                    it->second.version = d.version;
                    it->second.stamp = d.stamp;
                    liveBytes_ += d.valueLen;
                    byHash_[hash] = HashState{key, d.stamp, true};
                } else {
                    index_.erase(it);
                    // Roll the repair index back too: to the prior
                    // tombstone when there was one, else to absence
                    // -- so replica digests reflect the rollback.
                    if (d.stamp != 0)
                        byHash_[hash] =
                            HashState{key, d.stamp, false};
                    else
                        byHash_.erase(hash);
                }
            }
            if (last_inflight)
                durable_.erase(key);
            done(KvStatus::Error);
            return;
        }
        if (last_inflight) {
            durable_.erase(key);
        } else {
            // Durable: remember this version as the rollback target
            // for the rest of the in-flight chain. Appends to one
            // log complete in issue order, but a delete's tombstone
            // is applied instantly, so only ever advance.
            Durable &d = durable_.at(key);
            if (version > d.version) {
                d.valueOffset = value_offset;
                d.valueLen = len;
                d.version = version;
                d.stamp = stamp;
                d.live = true;
            }
        }
        // Durable, so the version it superseded is now safely dead
        // (no failure can roll back to it any more). A put whose
        // key was deleted while the append was in flight is dead on
        // arrival: its own bytes are accounted too (the delete
        // skipped them precisely because this append was pending).
        if (prev_live)
            markDead(fileFor(key),
                     prev_offset - recordHeaderBytes,
                     std::uint64_t(prev_len) + recordHeaderBytes);
        if (it == index_.end())
            markDead(fileFor(key),
                     value_offset - recordHeaderBytes,
                     std::uint64_t(len) + recordHeaderBytes);
        if (current)
            memtable_.erase(key); // no newer in-flight version
        done(KvStatus::Ok);
    },
               pri, trace);
}

void
KvShard::get(Key key, GetDone done, flash::Priority pri,
             std::uint64_t trace)
{
    getIfNewer(key, 0, std::move(done), pri, trace);
}

void
KvShard::getIfNewer(Key key, std::uint64_t cached_version,
                    GetDone done, flash::Priority pri,
                    std::uint64_t trace)
{
    gets_.inc();
    auto it = index_.find(key);
    if (it == index_.end()) {
        misses_.inc();
        sim_.scheduleAfter(0, [alive = alive_,
                               done = std::move(done)]() {
            if (!*alive)
                return;
            done(PageBuffer{}, KvStatus::NotFound, 0);
        });
        return;
    }
    std::uint64_t version = it->second.version;
    if (cached_version != 0 && version == cached_version) {
        // The requester's cached copy is current: an O(1) index
        // probe is the whole cost -- no memtable copy, no flash
        // read, no value bytes.
        validatedGets_.inc();
        sim_.tracer().mark(trace, "shard.validated", sim_.now());
        sim_.scheduleAfter(0, [alive = alive_, version,
                               done = std::move(done)]() {
            if (!*alive)
                return;
            done(PageBuffer{}, KvStatus::Ok, version);
        });
        return;
    }
    auto mem = memtable_.find(key);
    if (mem != memtable_.end()) {
        memtableHits_.inc();
        sim_.tracer().mark(trace, "shard.memtable", sim_.now());
        PageBuffer value = mem->second; // copy: append still owns it
        sim_.scheduleAfter(0, [alive = alive_, version,
                               value = std::move(value),
                               done = std::move(done)]() mutable {
            if (!*alive)
                return;
            done(std::move(value), KvStatus::Ok, version);
        });
        return;
    }
    // Read coalescing: duplicate gets of the same version join the
    // in-flight flash read instead of issuing their own.
    auto rit = reads_.find(version);
    if (rit != reads_.end()) {
        coalescedGets_.inc();
        sim_.tracer().mark(trace, "shard.coalesced", sim_.now());
        rit->second.waiters.push_back(std::move(done));
        return;
    }
    reads_[version].waiters.push_back(std::move(done));
    fs_.read(fileFor(key), it->second.valueOffset,
             it->second.valueLen,
             [this, alive = alive_, key,
              version](std::vector<std::uint8_t> data, bool ok) {
        if (!*alive)
            return; // shard died mid-read; waiters died with it
        auto git = reads_.find(version);
        std::vector<GetDone> waiters =
            std::move(git->second.waiters);
        reads_.erase(git); // before callbacks: they may re-enter
        KvStatus st = ok ? KvStatus::Ok : KvStatus::Error;
        if (!ok) {
            // The durable copy is gone (uncorrectable after the
            // flash server's retry ladder). If the entry we read
            // is still the live version, flag it in the repair
            // index: digests now differ from the healthy replica
            // even at equal stamps, and an equal-stamp repair push
            // is allowed through to heal it (see HashState).
            auto iit = index_.find(key);
            if (iit != index_.end() &&
                iit->second.version == version)
                markCorrupt(key);
        }
        for (std::size_t i = 0; i + 1 < waiters.size(); ++i)
            waiters[i](data, st, version); // copy for all but last
        waiters.back()(std::move(data), st, version);
    },
             pri, trace);
}

void
KvShard::del(Key key, std::uint64_t stamp, AckDone done)
{
    deletes_.inc();
    auto it = index_.find(key);
    KvStatus st = KvStatus::NotFound;
    if (it != index_.end()) {
        liveBytes_ -= it->second.valueLen;
        // Tombstone at a fresh version while appends are in
        // flight: a pending older append that completes (or fails)
        // after this delete must neither reinstate nor roll back
        // to a resurrected value. With nothing in flight there is
        // nothing to guard.
        auto d = durable_.find(key);
        if (d != durable_.end()) {
            d->second.version = ++nextVersion_;
            d->second.stamp = stamp;
            d->second.live = false;
        } else {
            // Quiescent key: its record is durable and now dead --
            // charge it to its log pages for reclamation. (With a
            // chain in flight the completions do the accounting;
            // see put().)
            markDead(fileFor(key),
                     it->second.valueOffset - recordHeaderBytes,
                     std::uint64_t(it->second.valueLen) +
                         recordHeaderBytes);
        }
        index_.erase(it);
        memtable_.erase(key);
        st = KvStatus::Ok;
    }
    // Record the tombstone even for a miss: a delete that reached
    // only some replicas of a (divergent) key must leave matching
    // repair-index state everywhere it DID arrive, or anti-entropy
    // would re-detect the difference on every sweep.
    byHash_[mix64(key)] = HashState{key, stamp, false};
    sim_.scheduleAfter(0, [alive = alive_, st,
                           done = std::move(done)]() {
        if (!*alive)
            return;
        done(st);
    });
}

std::uint64_t
KvShard::rangeDigest(std::uint64_t lo, std::uint64_t hi) const
{
    if (lo > hi)
        return 0;
    std::uint64_t digest = 0;
    for (auto it = byHash_.lower_bound(lo);
         it != byHash_.end() && it->first <= hi; ++it) {
        const HashState &hs = it->second;
        // Order-independent fold of (key, stamp, liveness,
        // corruption). Corruption is folded in so a replica whose
        // copy rotted at the SAME stamp as its healthy peer still
        // produces a differing digest -- otherwise the sweep would
        // skip the range and the corrupt key could never heal.
        digest ^= mix64(it->first ^
                        mix64(hs.stamp * 0x9e3779b97f4a7c15ull +
                              (hs.live ? 1 : 2) +
                              (hs.corrupt ? 2 : 0)));
    }
    return digest;
}

void
KvShard::pruneTombstones(std::uint64_t lo, std::uint64_t hi,
                         std::uint64_t below)
{
    if (lo > hi)
        return;
    auto it = byHash_.lower_bound(lo);
    while (it != byHash_.end() && it->first <= hi) {
        if (!it->second.live && it->second.stamp < below)
            it = byHash_.erase(it);
        else
            ++it;
    }
}

void
KvShard::rangeEntries(std::uint64_t lo, std::uint64_t hi,
                      std::vector<RangeEntry> &out) const
{
    if (lo > hi)
        return;
    for (auto it = byHash_.lower_bound(lo);
         it != byHash_.end() && it->first <= hi; ++it)
        out.push_back(RangeEntry{it->second.key, it->second.stamp,
                                 it->second.live,
                                 it->second.corrupt});
}

void
KvShard::repairPut(Key key, PageBuffer value, std::uint64_t stamp,
                   AckDone done)
{
    auto hit = byHash_.find(mix64(key));
    if (hit != byHash_.end() && !hit->second.corrupt &&
        hit->second.stamp >= stamp) {
        // The shard caught up on its own (a newer write landed, or
        // an earlier repair already applied): nothing to push. A
        // CORRUPT local copy never blocks the push, whatever its
        // stamp: its bytes are gone, so a replica's equal-stamp
        // (or even older) copy is strictly better than garbage.
        sim_.scheduleAfter(0, [alive = alive_,
                               done = std::move(done)]() {
            if (!*alive)
                return;
            done(KvStatus::Ok);
        });
        return;
    }
    // Count only on success: a failed append rolls back and acks
    // Error, and the router re-marks the key for the next sweep.
    // Repair is maintenance: its log append rides the background
    // flash class and never suspends serving programs.
    put(key, std::move(value), stamp,
        [this, done = std::move(done)](KvStatus st) {
        if (st == KvStatus::Ok)
            repairsApplied_.inc();
        done(st);
    },
        flash::Priority::Background);
}

void
KvShard::repairDel(Key key, std::uint64_t stamp, AckDone done)
{
    auto hit = byHash_.find(mix64(key));
    if (hit != byHash_.end() && !hit->second.corrupt &&
        hit->second.stamp >= stamp) {
        sim_.scheduleAfter(0, [alive = alive_,
                               done = std::move(done)]() {
            if (!*alive)
                return;
            done(KvStatus::Ok);
        });
        return;
    }
    // del applies the tombstone unconditionally (NotFound just
    // means the key was already absent): always a state change.
    repairsApplied_.inc();
    del(key, stamp, std::move(done));
}

bool
KvShard::keyState(Key key, std::uint64_t *stamp, bool *live,
                  bool *corrupt) const
{
    auto hit = byHash_.find(mix64(key));
    if (hit == byHash_.end())
        return false;
    *stamp = hit->second.stamp;
    *live = hit->second.live;
    if (corrupt != nullptr)
        *corrupt = hit->second.corrupt;
    return true;
}

void
KvShard::markCorrupt(Key key)
{
    auto hit = byHash_.find(mix64(key));
    if (hit == byHash_.end() || !hit->second.live ||
        hit->second.corrupt)
        return;
    hit->second.corrupt = true;
    corruptKeys_.inc();
}

std::size_t
KvShard::corruptKeyCount() const
{
    std::size_t n = 0;
    for (const auto &kv : byHash_)
        if (kv.second.corrupt)
            ++n;
    return n;
}

void
KvShard::markDead(const std::string &log, std::uint64_t offset,
                  std::uint64_t len)
{
    if (len == 0)
        return;
    const std::uint32_t psz = fs_.pageSize();
    auto &pages = deadBytes_[log];
    std::uint64_t first = offset / psz;
    std::uint64_t last = (offset + len - 1) / psz;
    for (std::uint64_t p = first; p <= last; ++p) {
        std::uint64_t pstart = p * psz;
        std::uint64_t pend = pstart + psz;
        auto lo = offset > pstart ? offset : pstart;
        auto hi = offset + len < pend ? offset + len : pend;
        std::uint32_t &dead = pages[p];
        dead += static_cast<std::uint32_t>(hi - lo);
        if (dead >= psz) {
            // Every byte of the page belongs to dead records: drop
            // its physical backing so the cleaner sees the page as
            // reclaimable. trim() can refuse (page already poisoned
            // or never mapped); the dead-byte entry is retired
            // either way -- its bytes can die only once.
            (void)fs_.trim(log, p);
            pages.erase(p);
        }
    }
}

} // namespace kv
} // namespace bluedbm
