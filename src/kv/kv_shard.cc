#include "kv/kv_shard.hh"

#include <cstring>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;

KvShard::KvShard(sim::Simulator &sim, fs::LogFs &fs,
                 std::string log_name)
    : sim_(sim), fs_(fs), logName_(std::move(log_name))
{
    if (!fs_.create(logName_))
        sim::fatal("shard log '%s' already exists", logName_.c_str());
}

void
KvShard::put(Key key, PageBuffer value, AckDone done)
{
    ++puts_;
    auto len = static_cast<std::uint32_t>(value.size());

    // Log record: [key][len][value bytes], appended at the frontier.
    std::vector<std::uint8_t> record(recordHeaderBytes + value.size());
    std::memcpy(record.data(), &key, sizeof(key));
    std::memcpy(record.data() + sizeof(key), &len, sizeof(len));
    std::memcpy(record.data() + recordHeaderBytes, value.data(),
                value.size());
    std::uint64_t value_offset = fs_.size(logName_) + recordHeaderBytes;

    Entry &e = index_[key];
    if (e.version != 0)
        liveBytes_ -= e.valueLen; // overwrite: old version is dead
    e.valueOffset = value_offset;
    e.valueLen = len;
    // Shard-global version: a delete + re-put must never collide
    // with a still-in-flight append of the key's previous life.
    std::uint64_t version = e.version = ++nextVersion_;
    liveBytes_ += len;
    logBytes_ += record.size();

    // Reads must see this version immediately (read-your-writes):
    // park it in the memtable until the append is durable.
    memtable_[key] = std::move(value);

    fs_.append(logName_, std::move(record),
               [this, key, version, done = std::move(done)](bool ok) {
        auto it = index_.find(key);
        if (it != index_.end() && it->second.version == version)
            memtable_.erase(key); // no newer in-flight version
        done(ok ? KvStatus::Ok : KvStatus::Error);
    });
}

void
KvShard::get(Key key, GetDone done)
{
    ++gets_;
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        sim_.scheduleAfter(0, [done = std::move(done)]() {
            done(PageBuffer{}, KvStatus::NotFound);
        });
        return;
    }
    auto mem = memtable_.find(key);
    if (mem != memtable_.end()) {
        ++memtableHits_;
        PageBuffer value = mem->second; // copy: append still owns it
        sim_.scheduleAfter(0, [value = std::move(value),
                               done = std::move(done)]() mutable {
            done(std::move(value), KvStatus::Ok);
        });
        return;
    }
    fs_.read(logName_, it->second.valueOffset, it->second.valueLen,
             [done = std::move(done)](std::vector<std::uint8_t> data,
                                      bool ok) {
        done(std::move(data),
             ok ? KvStatus::Ok : KvStatus::Error);
    });
}

void
KvShard::del(Key key, AckDone done)
{
    ++deletes_;
    auto it = index_.find(key);
    KvStatus st = KvStatus::NotFound;
    if (it != index_.end()) {
        liveBytes_ -= it->second.valueLen;
        index_.erase(it);
        memtable_.erase(key);
        st = KvStatus::Ok;
    }
    sim_.scheduleAfter(0,
                       [st, done = std::move(done)]() { done(st); });
}

} // namespace kv
} // namespace bluedbm
