#include "kv/kv_shard.hh"

#include <cstring>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace kv {

using flash::PageBuffer;

KvShard::KvShard(sim::Simulator &sim, fs::LogFs &fs,
                 std::string log_name)
    : sim_(sim), fs_(fs), logName_(std::move(log_name))
{
    if (!fs_.create(logName_))
        sim::fatal("shard log '%s' already exists", logName_.c_str());
}

void
KvShard::put(Key key, PageBuffer value, AckDone done)
{
    ++puts_;
    auto len = static_cast<std::uint32_t>(value.size());

    // Log record: [key][len][value bytes], appended at the frontier.
    std::vector<std::uint8_t> record(recordHeaderBytes + value.size());
    std::memcpy(record.data(), &key, sizeof(key));
    std::memcpy(record.data() + sizeof(key), &len, sizeof(len));
    std::memcpy(record.data() + recordHeaderBytes, value.data(),
                value.size());
    std::uint64_t value_offset = fs_.size(logName_) + recordHeaderBytes;
    std::uint64_t record_bytes = record.size();

    Entry &e = index_[key];
    // With no append in flight, the current entry (or absence) IS
    // the durable state: snapshot it as the rollback target for the
    // in-flight chain this put starts. The snapshot lives exactly
    // as long as the chain does.
    if (inflightPuts_[key]++ == 0) {
        Durable &d = durable_[key];
        d.valueOffset = e.valueOffset;
        d.valueLen = e.valueLen;
        d.version = e.version;
        d.live = e.version != 0;
    }
    if (e.version != 0)
        liveBytes_ -= e.valueLen; // overwrite: old version is dead
    e.valueOffset = value_offset;
    e.valueLen = len;
    // Shard-global version: a delete + re-put must never collide
    // with a still-in-flight append of the key's previous life.
    std::uint64_t version = e.version = ++nextVersion_;
    liveBytes_ += len;
    logBytes_ += record_bytes;

    // Reads must see this version immediately (read-your-writes):
    // park it in the memtable until the append is durable.
    memtable_[key] = std::move(value);

    fs_.append(logName_, std::move(record),
               [this, key, version, value_offset, len, record_bytes,
                done = std::move(done)](bool ok) {
        auto it = index_.find(key);
        bool current =
            it != index_.end() && it->second.version == version;
        // Last completion of the key's in-flight chain: the
        // rollback snapshot is no longer reachable after this
        // handler, so drop it (bounds durable_ by in-flight keys,
        // not every key ever written).
        auto cit = inflightPuts_.find(key);
        bool last_inflight = --cit->second == 0;
        if (last_inflight)
            inflightPuts_.erase(cit);
        if (!ok) {
            // The record never became durable: charge it off and,
            // if no newer operation superseded this one, roll the
            // key back to its last durable version so a later get
            // can never serve never-written flash bytes as Ok.
            ++failedPuts_;
            logBytes_ -= record_bytes;
            if (current) {
                memtable_.erase(key);
                liveBytes_ -= it->second.valueLen;
                const Durable &d = durable_.at(key);
                if (d.live) {
                    it->second.valueOffset = d.valueOffset;
                    it->second.valueLen = d.valueLen;
                    it->second.version = d.version;
                    liveBytes_ += d.valueLen;
                } else {
                    index_.erase(it);
                }
            }
            if (last_inflight)
                durable_.erase(key);
            done(KvStatus::Error);
            return;
        }
        if (last_inflight) {
            durable_.erase(key);
        } else {
            // Durable: remember this version as the rollback target
            // for the rest of the in-flight chain. Appends to one
            // log complete in issue order, but a delete's tombstone
            // is applied instantly, so only ever advance.
            Durable &d = durable_.at(key);
            if (version > d.version) {
                d.valueOffset = value_offset;
                d.valueLen = len;
                d.version = version;
                d.live = true;
            }
        }
        if (current)
            memtable_.erase(key); // no newer in-flight version
        done(KvStatus::Ok);
    });
}

void
KvShard::get(Key key, GetDone done)
{
    getIfNewer(key, 0, std::move(done));
}

void
KvShard::getIfNewer(Key key, std::uint64_t cached_version,
                    GetDone done)
{
    ++gets_;
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        sim_.scheduleAfter(0, [done = std::move(done)]() {
            done(PageBuffer{}, KvStatus::NotFound, 0);
        });
        return;
    }
    std::uint64_t version = it->second.version;
    if (cached_version != 0 && version == cached_version) {
        // The requester's cached copy is current: an O(1) index
        // probe is the whole cost -- no memtable copy, no flash
        // read, no value bytes.
        ++validatedGets_;
        sim_.scheduleAfter(0, [version, done = std::move(done)]() {
            done(PageBuffer{}, KvStatus::Ok, version);
        });
        return;
    }
    auto mem = memtable_.find(key);
    if (mem != memtable_.end()) {
        ++memtableHits_;
        PageBuffer value = mem->second; // copy: append still owns it
        sim_.scheduleAfter(0, [version, value = std::move(value),
                               done = std::move(done)]() mutable {
            done(std::move(value), KvStatus::Ok, version);
        });
        return;
    }
    // Read coalescing: duplicate gets of the same version join the
    // in-flight flash read instead of issuing their own.
    auto rit = reads_.find(version);
    if (rit != reads_.end()) {
        ++coalescedGets_;
        rit->second.waiters.push_back(std::move(done));
        return;
    }
    reads_[version].waiters.push_back(std::move(done));
    fs_.read(logName_, it->second.valueOffset, it->second.valueLen,
             [this, version](std::vector<std::uint8_t> data,
                             bool ok) {
        auto git = reads_.find(version);
        std::vector<GetDone> waiters =
            std::move(git->second.waiters);
        reads_.erase(git); // before callbacks: they may re-enter
        KvStatus st = ok ? KvStatus::Ok : KvStatus::Error;
        for (std::size_t i = 0; i + 1 < waiters.size(); ++i)
            waiters[i](data, st, version); // copy for all but last
        waiters.back()(std::move(data), st, version);
    });
}

void
KvShard::del(Key key, AckDone done)
{
    ++deletes_;
    auto it = index_.find(key);
    KvStatus st = KvStatus::NotFound;
    if (it != index_.end()) {
        liveBytes_ -= it->second.valueLen;
        index_.erase(it);
        memtable_.erase(key);
        // Tombstone at a fresh version while appends are in
        // flight: a pending older append that completes (or fails)
        // after this delete must neither reinstate nor roll back
        // to a resurrected value. With nothing in flight there is
        // nothing to guard.
        auto d = durable_.find(key);
        if (d != durable_.end()) {
            d->second.version = ++nextVersion_;
            d->second.live = false;
        }
        st = KvStatus::Ok;
    }
    sim_.scheduleAfter(0,
                       [st, done = std::move(done)]() { done(st); });
}

} // namespace kv
} // namespace bluedbm
