/**
 * @file
 * The BlueDBM appliance: a rack of nodes whose storage devices form
 * one global address space over the integrated network (paper
 * section 3, figure 1).
 */

#ifndef BLUEDBM_CORE_CLUSTER_HH
#define BLUEDBM_CORE_CLUSTER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/node.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace core {

/**
 * A page address in the cluster-wide global address space.
 */
struct GlobalAddress
{
    net::NodeId node = 0;
    std::uint8_t card = 0;
    flash::Address addr;
};

/**
 * Cluster configuration.
 */
struct ClusterParams
{
    net::Topology topology;              //!< physical wiring
    net::StorageNetwork::Params network; //!< lane/endpoint params
    NodeParams node;                     //!< per-node configuration
};

/**
 * A BlueDBM cluster: network plus nodes.
 */
class Cluster
{
  public:
    /**
     * Build the appliance. The number of nodes comes from the
     * topology.
     */
    Cluster(sim::Simulator &sim, const ClusterParams &params);

    /** Number of nodes. */
    unsigned size() const { return unsigned(nodes_.size()); }

    /** Node @p i. */
    Node &node(unsigned i) { return *nodes_.at(i); }

    /** The integrated storage network. */
    net::StorageNetwork &network() { return *net_; }

    /** Cluster parameters. */
    const ClusterParams &params() const { return params_; }

    /** Total raw flash capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return std::uint64_t(size()) * params_.node.cards *
            params_.node.geometry.capacityBytes();
    }

    /** Number of pages in the global address space. */
    std::uint64_t
    globalPages() const
    {
        return std::uint64_t(size()) * params_.node.cards *
            params_.node.geometry.pages();
    }

    /**
     * Map a dense global page index onto (node, card, address).
     * Consecutive indices stripe across nodes, then cards, then
     * buses, maximizing parallelism for sequential scans -- this is
     * the "near-uniform latency global address space" layout.
     */
    GlobalAddress globalPage(std::uint64_t index) const;

    /** Inverse of globalPage(). */
    std::uint64_t globalIndex(const GlobalAddress &ga) const;

  private:
    sim::Simulator &sim_;
    ClusterParams params_;
    std::unique_ptr<net::StorageNetwork> net_;
    std::vector<std::unique_ptr<Node>> nodes_;
};

} // namespace core
} // namespace bluedbm

#endif // BLUEDBM_CORE_CLUSTER_HH
