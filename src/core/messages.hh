/**
 * @file
 * Wire payloads of the BlueDBM remote-access protocol.
 *
 * These ride inside net::Message::payload; their timed size is the
 * Message::bytes field set by the sender (small fixed-size requests,
 * page-sized responses).
 */

#ifndef BLUEDBM_CORE_MESSAGES_HH
#define BLUEDBM_CORE_MESSAGES_HH

#include <cstdint>

#include "flash/types.hh"
#include "net/message.hh"

namespace bluedbm {
namespace core {

/** Endpoint assignment on every node. */
enum : net::EndpointId
{
    epReadService = 1, //!< remote flash read requests (ISP-F, H-F)
    epIspData = 2,     //!< page responses consumed by the ISP
    epHostData = 3,    //!< page responses destined for host memory
    epHostService = 4, //!< requests serviced by remote host software
    epIspData1 = 5,    //!< extra ISP data endpoints: striping them
    epIspData2 = 6,    //!< across endpoints spreads page responses
    epIspData3 = 7,    //!< over parallel lanes (section 3.2.3)
};

/** Reply endpoints ISP page data is striped across. */
constexpr net::EndpointId ispDataEndpoints[] = {
    epIspData, epIspData1, epIspData2, epIspData3};
constexpr unsigned ispDataEndpointCount = 4;

/** On-wire size of a read request (command + address + tag). */
constexpr std::uint32_t readRequestBytes = 32;

/**
 * Ask a remote storage device for one flash page.
 */
struct ReadRequest
{
    std::uint64_t reqId = 0;
    std::uint8_t card = 0;
    flash::Address addr;
    /** Endpoint the response should be sent to. */
    net::EndpointId replyEndpoint = epIspData;
};

/**
 * Ask a remote *host server* (not its ISP) for data: flash or DRAM
 * (the H-RH-F and H-D experiments).
 */
struct HostServiceRequest
{
    std::uint64_t reqId = 0;
    std::uint8_t card = 0;
    flash::Address addr;
    /** When true the remote host serves from its DRAM instead. */
    bool fromDram = false;
    std::uint32_t bytes = 8192;
    net::EndpointId replyEndpoint = epHostData;
};

/**
 * One flash page (or DRAM block) coming back.
 */
struct ReadResponse
{
    std::uint64_t reqId = 0;
    flash::PageBuffer data;
    flash::Status status = flash::Status::Ok;
};

} // namespace core
} // namespace bluedbm

#endif // BLUEDBM_CORE_MESSAGES_HH
