/**
 * @file
 * One BlueDBM node (paper figure 2): a host server coupled with a
 * storage device that carries two custom flash cards, an in-store
 * processing substrate, on-board DRAM, the host PCIe link, and
 * integrated network endpoints.
 *
 * The node exposes the four access paths the paper measures:
 *  - ispReadLocal/ispReadRemote: the in-store processor reading local
 *    or remote flash directly over the integrated network (ISP-F);
 *  - hostReadLocal: host software reading its own device (Host-Local);
 *  - hostReadRemote: host software reading remote flash through the
 *    integrated network (H-F);
 *  - hostReadRemoteViaHost: the conventional path through the remote
 *    server's software (H-RH-F), or its DRAM (H-D).
 */

#ifndef BLUEDBM_CORE_NODE_HH
#define BLUEDBM_CORE_NODE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "core/messages.hh"
#include "flash/flash_card.hh"
#include "flash/flash_server.hh"
#include "fs/log_fs.hh"
#include "ftl/ftl.hh"
#include "host/host_cpu.hh"
#include "host/pcie.hh"
#include "host/software.hh"
#include "net/network.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace core {

/**
 * Per-node configuration.
 */
struct NodeParams
{
    flash::Geometry geometry;        //!< per-card geometry
    flash::Timing timing;            //!< NAND timing
    unsigned cards = 2;              //!< flash cards per node
    unsigned controllerTags = 256;   //!< hardware tags per card
    host::PcieParams pcie;           //!< Connectal host link
    host::SoftwareParams software;   //!< software path costs
    unsigned cores = 24;             //!< host cores
    /** Device DRAM read rate (on-board buffer, section 3). */
    double dramBytesPerSec = 10e9;
    std::uint64_t seed = 1;          //!< content seed
};

/**
 * A host server plus its BlueDBM storage device.
 */
class Node
{
  public:
    /** Page-delivery callback for read paths. */
    using PageDone = std::function<void(flash::PageBuffer)>;

    /**
     * @param sim    simulation kernel
     * @param net    cluster storage network
     * @param id     this node's network id
     * @param params node configuration
     */
    Node(sim::Simulator &sim, net::StorageNetwork &net,
         net::NodeId id, const NodeParams &params);

    /** Network id of this node. */
    net::NodeId id() const { return id_; }

    /** Node configuration. */
    const NodeParams &params() const { return params_; }

    /** Flash card @p i. */
    flash::FlashCard &card(unsigned i) { return *cards_.at(i); }

    /** Number of cards. */
    unsigned cardCount() const { return unsigned(cards_.size()); }

    /** In-order flash server used by the in-store processor. */
    flash::FlashServer &
    ispServer(unsigned card)
    {
        return *ispServers_.at(card);
    }

    /** In-order flash server used by host software. */
    flash::FlashServer &
    hostServer(unsigned card)
    {
        return *hostServers_.at(card);
    }

    /** Log-structured file system (lives on card 0). */
    fs::LogFs &fs() { return *fs_; }

    /** Compatibility FTL block device (lives on the last card). */
    ftl::Ftl &ftl() { return *ftl_; }

    /** Host CPU. */
    host::HostCpu &cpu() { return *cpu_; }

    /** Host link. */
    host::PcieLink &pcie() { return *pcie_; }

    /** Software path costs. */
    const host::SoftwareParams &software() const
    {
        return params_.software;
    }

    /** Network endpoint @p e of this node. */
    net::Endpoint &
    endpoint(net::EndpointId e)
    {
        return net_.endpoint(id_, e);
    }

    /** @name Data paths (paper sections 6.4, 6.5) */
    ///@{

    /**
     * In-store processor reads a local page: no host involvement.
     */
    void ispReadLocal(unsigned card, const flash::Address &addr,
                      PageDone done);

    /**
     * In-store processor reads a page on @p remote via the
     * integrated network (ISP-F).
     */
    void ispReadRemote(net::NodeId remote, unsigned card,
                       const flash::Address &addr, PageDone done);

    /**
     * Host software reads a local page: request setup, RPC doorbell,
     * flash access, DMA into a read buffer, completion interrupt.
     */
    void hostReadLocal(unsigned card, const flash::Address &addr,
                       PageDone done);

    /**
     * Host software reads a remote page over the integrated network
     * (H-F): like hostReadLocal but the flash access happens on the
     * remote device.
     */
    void hostReadRemote(net::NodeId remote, unsigned card,
                        const flash::Address &addr, PageDone done);

    /**
     * Host software asks the *remote host's software* for a page
     * (H-RH-F). Data still returns over the integrated network.
     */
    void hostReadRemoteViaHost(net::NodeId remote, unsigned card,
                               const flash::Address &addr,
                               PageDone done);

    /**
     * Host software asks the remote host for @p bytes out of its
     * DRAM (H-D).
     */
    void hostReadRemoteDram(net::NodeId remote, std::uint32_t bytes,
                            PageDone done);

    /**
     * In-store processor reads @p bytes from the device's on-board
     * DRAM buffer.
     */
    void ispReadDeviceDram(std::uint32_t bytes,
                           std::function<void()> done);

    ///@}

    /** Pages served by this node's read-service agent. */
    std::uint64_t remoteReadsServed() const { return served_; }

  private:
    void installServices();

    /** Track one outstanding remote request. */
    std::uint64_t
    track(PageDone done)
    {
        std::uint64_t id = nextReqId_++;
        pending_.emplace(id, std::move(done));
        return id;
    }

    void complete(std::uint64_t req_id, flash::PageBuffer data);

    sim::Simulator &sim_;
    net::StorageNetwork &net_;
    net::NodeId id_;
    NodeParams params_;

    std::vector<std::unique_ptr<flash::FlashCard>> cards_;
    std::vector<std::unique_ptr<flash::FlashServer>> ispServers_;
    std::vector<std::unique_ptr<flash::FlashServer>> hostServers_;
    std::vector<std::unique_ptr<flash::FlashServer>> agentServers_;
    std::unique_ptr<fs::LogFs> fs_;
    std::unique_ptr<ftl::Ftl> ftl_;
    std::unique_ptr<host::HostCpu> cpu_;
    std::unique_ptr<host::PcieLink> pcie_;
    std::unique_ptr<sim::LatencyRateServer> deviceDram_;

    std::uint64_t nextReqId_ = 1;
    std::unordered_map<std::uint64_t, PageDone> pending_;
    std::uint64_t served_ = 0;

    unsigned ispIfcRotor_ = 0;
    unsigned hostIfcRotor_ = 0;
    unsigned agentIfcRotor_ = 0;
};

} // namespace core
} // namespace bluedbm

#endif // BLUEDBM_CORE_NODE_HH
