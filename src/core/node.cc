#include "core/node.hh"

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace core {

using flash::Address;
using flash::PageBuffer;
using flash::Status;
using net::Message;

namespace {
/**
 * FlashServer shapes per agent. The host interface mirrors the
 * paper's 128 page buffers (4 I/O interfaces x 32 deep); interfaces
 * 4 and 5 of the host server belong to the file system and the FTL,
 * and interface 6 is the file system's reserved read-spill lane (a
 * read-hot file stripes page reads onto it when the primary FS
 * queue is deep).
 */
constexpr unsigned ispIfcs = 4, ispDepth = 64;
constexpr unsigned hostIfcs = 7, hostDepth = 32;
constexpr unsigned hostIoIfcs = 4;
constexpr unsigned agentIfcs = 4, agentDepth = 64;
constexpr unsigned fsIfc = 4, ftlIfc = 5, fsSpillIfc = 6;
} // namespace

Node::Node(sim::Simulator &sim, net::StorageNetwork &net,
           net::NodeId id, const NodeParams &params)
    : sim_(sim), net_(net), id_(id), params_(params)
{
    if (params_.cards == 0)
        sim::fatal("node needs at least one flash card");

    for (unsigned c = 0; c < params_.cards; ++c) {
        cards_.emplace_back(std::make_unique<flash::FlashCard>(
            sim_, params_.geometry, params_.timing,
            params_.controllerTags,
            params_.seed + id_ * 131 + c));
        auto &split = cards_.back()->splitter();
        auto &isp_port = split.addPort(ispIfcs * ispDepth);
        auto &host_port = split.addPort(hostIfcs * hostDepth);
        auto &agent_port = split.addPort(agentIfcs * agentDepth);
        ispServers_.emplace_back(std::make_unique<flash::FlashServer>(
            sim_, isp_port, ispIfcs, ispDepth));
        hostServers_.emplace_back(std::make_unique<flash::FlashServer>(
            sim_, host_port, hostIfcs, hostDepth));
        agentServers_.emplace_back(
            std::make_unique<flash::FlashServer>(
                sim_, agent_port, agentIfcs, agentDepth));
    }

    // File system on card 0; compatibility FTL on the last card so
    // the two software stacks do not fight over blocks.
    fs::FsParams fsp;
    fsp.spillInterface = int(fsSpillIfc);
    fs_ = std::make_unique<fs::LogFs>(sim_, *hostServers_[0], fsIfc,
                                      params_.geometry, fsp);
    ftl_ = std::make_unique<ftl::Ftl>(
        sim_, *hostServers_[params_.cards - 1], ftlIfc,
        params_.geometry);

    cpu_ = std::make_unique<host::HostCpu>(sim_, params_.cores);
    pcie_ = std::make_unique<host::PcieLink>(sim_, params_.pcie);
    deviceDram_ = std::make_unique<sim::LatencyRateServer>(
        params_.dramBytesPerSec, sim::nsToTicks(200));

    installServices();
}

void
Node::installServices()
{
    // Read-service agent: remote devices ask for pages over the
    // integrated network; the agent reads flash and streams the page
    // straight back -- no host software anywhere (section 3.2).
    endpoint(epReadService).setReceiveHandler([this](Message msg) {
        auto req = msg.payload.take<ReadRequest>();
        auto &server = *agentServers_.at(req.card);
        unsigned ifc = agentIfcRotor_++ % agentIfcs;
        net::NodeId requester = msg.src;
        server.readPage(ifc, req.addr,
                        [this, req, requester](PageBuffer data,
                                               Status st) {
            ++served_;
            ReadResponse resp;
            resp.reqId = req.reqId;
            resp.data = std::move(data);
            resp.status = st;
            endpoint(req.replyEndpoint)
                .send(requester,
                      params_.geometry.pageSize + readRequestBytes,
                      std::move(resp));
        });
    });

    // ISP data responses: consumed directly by the in-store
    // processor. Several endpoints carry this traffic so responses
    // spread across parallel lanes (per-endpoint routing).
    for (unsigned e = 0; e < ispDataEndpointCount; ++e) {
        endpoint(ispDataEndpoints[e])
            .setReceiveHandler([this](Message msg) {
            auto resp = msg.payload.take<ReadResponse>();
            complete(resp.reqId, std::move(resp.data));
        });
    }

    // Host data responses: cross PCIe into a read buffer, then an
    // interrupt wakes the waiting software.
    endpoint(epHostData).setReceiveHandler([this](Message msg) {
        auto resp = msg.payload.take<ReadResponse>();
        std::uint64_t req_id = resp.reqId;
        auto data = std::make_shared<PageBuffer>(
            std::move(resp.data));
        pcie_->deviceToHost(
            std::uint32_t(data->size()), [this, req_id, data]() {
            pcie_->interrupt([this, req_id, data]() {
                complete(req_id, std::move(*data));
            });
        });
    });

    // Host-service agent: the conventional distributed path. The
    // remote *server software* fields the request: interrupt, daemon
    // scheduling, then a local storage (or DRAM) access, then the
    // data is handed back to the device for the return trip.
    endpoint(epHostService).setReceiveHandler([this](Message msg) {
        auto req = msg.payload.take<HostServiceRequest>();
        net::NodeId requester = msg.src;
        pcie_->interrupt([this, req, requester]() {
            cpu_->execute(params_.software.remoteService,
                          [this, req, requester]() {
                auto reply = [this, req, requester](PageBuffer data,
                                                    Status st) {
                    ReadResponse resp;
                    resp.reqId = req.reqId;
                    resp.data = std::move(data);
                    resp.status = st;
                    // Hoist the length: the capture below moves resp
                    // *during argument evaluation*, so reading
                    // resp.data.size() in the same argument list is
                    // order-dependent (and gcc picked the empty one).
                    const auto len = std::uint32_t(resp.data.size());
                    // The daemon pushes the payload through its
                    // device (host-to-device DMA) and the device
                    // ships it over the integrated network.
                    pcie_->hostToDevice(
                        len,
                        [this, req, requester, len,
                         resp = std::move(resp)]() mutable {
                        endpoint(req.replyEndpoint)
                            .send(requester, len + readRequestBytes,
                                  std::move(resp));
                    });
                };
                if (req.fromDram) {
                    // Host DRAM access is effectively instant at
                    // this scale.
                    reply(PageBuffer(req.bytes, 0xd7), Status::Ok);
                } else {
                    auto &server = *hostServers_.at(req.card);
                    unsigned ifc = hostIfcRotor_++ % hostIoIfcs;
                    server.readPage(ifc, req.addr, reply);
                }
            });
        });
    });
}

void
Node::complete(std::uint64_t req_id, PageBuffer data)
{
    auto it = pending_.find(req_id);
    if (it == pending_.end())
        sim::panic("response for unknown request %llu",
                   static_cast<unsigned long long>(req_id));
    PageDone done = std::move(it->second);
    pending_.erase(it);
    done(std::move(data));
}

void
Node::ispReadLocal(unsigned card, const Address &addr, PageDone done)
{
    auto &server = *ispServers_.at(card);
    unsigned ifc = ispIfcRotor_++ % ispIfcs;
    server.readPage(ifc, addr,
                    [done = std::move(done)](PageBuffer data,
                                             Status) {
        done(std::move(data));
    });
}

void
Node::ispReadRemote(net::NodeId remote, unsigned card,
                    const Address &addr, PageDone done)
{
    if (remote == id_) {
        ispReadLocal(card, addr, std::move(done));
        return;
    }
    ReadRequest req;
    req.reqId = track(std::move(done));
    req.card = std::uint8_t(card);
    req.addr = addr;
    req.replyEndpoint =
        ispDataEndpoints[req.reqId % ispDataEndpointCount];
    endpoint(epReadService)
        .send(remote, readRequestBytes, std::move(req));
}

void
Node::hostReadLocal(unsigned card, const Address &addr, PageDone done)
{
    // Request setup in user space, then the RPC doorbell, then the
    // device reads flash and DMAs into a read buffer, then the
    // completion interrupt wakes the caller (section 3.3).
    cpu_->execute(params_.software.requestSetup,
                  [this, card, addr, done = std::move(done)]() {
        pcie_->rpc([this, card, addr, done = std::move(done)]() {
            auto &server = *hostServers_.at(card);
            unsigned ifc = hostIfcRotor_++ % hostIoIfcs;
            server.readPage(ifc, addr,
                            [this, done = std::move(done)](
                                PageBuffer data, Status) {
                auto shared = std::make_shared<PageBuffer>(
                    std::move(data));
                pcie_->deviceToHost(
                    std::uint32_t(shared->size()),
                    [this, shared, done = std::move(done)]() {
                    pcie_->interrupt([shared,
                                      done = std::move(done)]() {
                        done(std::move(*shared));
                    });
                });
            });
        });
    });
}

void
Node::hostReadRemote(net::NodeId remote, unsigned card,
                     const Address &addr, PageDone done)
{
    if (remote == id_) {
        hostReadLocal(card, addr, std::move(done));
        return;
    }
    cpu_->execute(params_.software.requestSetup,
                  [this, remote, card, addr,
                   done = std::move(done)]() mutable {
        pcie_->rpc([this, remote, card, addr,
                    done = std::move(done)]() mutable {
            ReadRequest req;
            req.reqId = track(std::move(done));
            req.card = std::uint8_t(card);
            req.addr = addr;
            req.replyEndpoint = epHostData;
            endpoint(epReadService)
                .send(remote, readRequestBytes, std::move(req));
        });
    });
}

void
Node::hostReadRemoteViaHost(net::NodeId remote, unsigned card,
                            const Address &addr, PageDone done)
{
    cpu_->execute(params_.software.requestSetup,
                  [this, remote, card, addr,
                   done = std::move(done)]() mutable {
        pcie_->rpc([this, remote, card, addr,
                    done = std::move(done)]() mutable {
            HostServiceRequest req;
            req.reqId = track(std::move(done));
            req.card = std::uint8_t(card);
            req.addr = addr;
            req.fromDram = false;
            req.bytes = params_.geometry.pageSize;
            req.replyEndpoint = epHostData;
            endpoint(epHostService)
                .send(remote, readRequestBytes, std::move(req));
        });
    });
}

void
Node::hostReadRemoteDram(net::NodeId remote, std::uint32_t bytes,
                         PageDone done)
{
    cpu_->execute(params_.software.requestSetup,
                  [this, remote, bytes,
                   done = std::move(done)]() mutable {
        pcie_->rpc([this, remote, bytes,
                    done = std::move(done)]() mutable {
            HostServiceRequest req;
            req.reqId = track(std::move(done));
            req.fromDram = true;
            req.bytes = bytes;
            req.replyEndpoint = epHostData;
            endpoint(epHostService)
                .send(remote, readRequestBytes, std::move(req));
        });
    });
}

void
Node::ispReadDeviceDram(std::uint32_t bytes,
                        std::function<void()> done)
{
    sim::Tick t = deviceDram_->occupy(sim_.now(), bytes);
    sim_.scheduleAt(t, std::move(done));
}

} // namespace core
} // namespace bluedbm
