#include "core/cluster.hh"

#include "sim/logging.hh"

namespace bluedbm {
namespace core {

Cluster::Cluster(sim::Simulator &sim, const ClusterParams &params)
    : sim_(sim), params_(params)
{
    net_ = std::make_unique<net::StorageNetwork>(
        sim_, params_.topology, params_.network);
    for (unsigned n = 0; n < params_.topology.nodes; ++n) {
        nodes_.emplace_back(std::make_unique<Node>(
            sim_, *net_, net::NodeId(n), params_.node));
    }
}

GlobalAddress
Cluster::globalPage(std::uint64_t index) const
{
    if (index >= globalPages())
        sim::fatal("global page index out of range");
    GlobalAddress ga;
    ga.node = net::NodeId(index % size());
    index /= size();
    ga.card = std::uint8_t(index % params_.node.cards);
    index /= params_.node.cards;
    ga.addr = flash::Address::fromStriped(params_.node.geometry,
                                          index);
    return ga;
}

std::uint64_t
Cluster::globalIndex(const GlobalAddress &ga) const
{
    const flash::Geometry &g = params_.node.geometry;
    // Invert Address::fromStriped.
    std::uint64_t within =
        ((std::uint64_t(ga.addr.block) * g.pagesPerBlock +
          ga.addr.page) * g.chipsPerBus + ga.addr.chip) * g.buses +
        ga.addr.bus;
    return (within * params_.node.cards + ga.card) * size() +
        ga.node;
}

} // namespace core
} // namespace bluedbm
