#include "resource/fpga_model.hh"

#include <utility>

namespace bluedbm {
namespace resource {

Device
artix7()
{
    // XC7A200T-class device on the custom flash card.
    return Device{"Artix-7 (XC7A200T)", 134600, 269200, 365, 730};
}

Device
virtex7()
{
    // XC7VX485T on the VC707.
    return Device{"Virtex-7 (XC7VX485T)", 303600, 607200, 1030, 2060};
}

std::vector<Usage>
flashControllerUsage(const FlashControllerConfig &cfg)
{
    std::vector<Usage> rows;

    // Sub-module groups of one bus controller (Table 1 indented
    // rows): the LUT/reg numbers are the group's contribution per
    // bus controller, the instance column is the count within it.
    Usage ecc_dec{"-> ECC Decoder", cfg.eccDecodersPerBus,
                  1790 * cfg.eccDecodersPerBus / 2,
                  1233 * cfg.eccDecodersPerBus / 2,
                  2 * cfg.eccDecodersPerBus / 2, 0, true};
    Usage scoreboard{"-> Scoreboard", 1, 1149, 780, 0, 0, true};
    Usage phy{"-> PHY", 1, 1635, 607, 0, 0, true};
    Usage ecc_enc{"-> ECC Encoder", cfg.eccEncodersPerBus,
                  565 * cfg.eccEncodersPerBus / 2,
                  222 * cfg.eccEncodersPerBus / 2, 0, 0, true};

    // One bus controller = the groups above + per-bus glue;
    // calibrated to the paper's 7131/4870/21 per bus controller.
    std::uint32_t bus_luts = 1992 + ecc_dec.luts + scoreboard.luts +
        phy.luts + ecc_enc.luts;
    std::uint32_t bus_regs = 2028 + ecc_dec.registers +
        scoreboard.registers + phy.registers + ecc_enc.registers;
    std::uint32_t bus_bram = 19 + ecc_dec.bram36;
    Usage bus{"Bus Controller", cfg.busControllers, bus_luts,
              bus_regs, bus_bram, 0, false};

    // SerDes (aurora) scales with lane count; 3061/3463/13 at 4.
    Usage serdes{"SerDes", 1, 501 + 640 * cfg.serdesLanes,
                 403 + 765 * cfg.serdesLanes,
                 1 + 3 * cfg.serdesLanes, 0, false};

    // Top-level glue (tag tables, request muxing, FMC interface).
    Usage glue{"Controller glue", 1, 15116, 20378, 0, 0, false};

    rows.push_back(bus);
    rows.push_back(ecc_dec);
    rows.push_back(scoreboard);
    rows.push_back(phy);
    rows.push_back(ecc_enc);
    rows.push_back(serdes);
    rows.push_back(glue);
    return rows;
}

std::vector<Usage>
hostFpgaUsage(const HostFpgaConfig &cfg)
{
    std::vector<Usage> rows;

    // Flash interface: per-card aurora endpoints + request muxing;
    // 1389/2139 at two cards.
    rows.push_back(Usage{"Flash Interface", 1,
                         99 + 645 * cfg.flashCards,
                         139 + 1000 * cfg.flashCards, 0, 0});

    // Network interface: router + per-port serdes and buffers;
    // 29591/27509 at fan-out 8.
    rows.push_back(Usage{"Network Interface", 1,
                         1591 + 3500 * cfg.networkPorts,
                         2309 + 3150 * cfg.networkPorts, 0, 0});

    // DRAM interface (MIG controller): fixed.
    rows.push_back(Usage{"DRAM Interface", 1, 11045, 7937, 0, 0});

    // Host interface: DMA engines plus the 128+128 page buffers with
    // their per-buffer burst FIFOs; 88376/46065/169/14 at defaults.
    unsigned engines = cfg.dmaReadEngines + cfg.dmaWriteEngines;
    unsigned buffers = cfg.readBuffers + cfg.writeBuffers;
    rows.push_back(Usage{"Host Interface", 1,
                         29976 + 2500 * engines + 150 * buffers,
                         10865 + 1200 * engines + 100 * buffers,
                         9 + (buffers * 5) / 8, 6 + engines});

    // Connectal platform glue, clock crossings, PCIe endpoint.
    rows.push_back(Usage{"Platform glue", 1, 4870, 52247, 55, 4});
    return rows;
}

Usage
totalUsage(const std::vector<Usage> &rows, std::string name)
{
    Usage total;
    total.name = std::move(name);
    total.instances = 1;
    std::uint64_t luts = 0, regs = 0, b36 = 0, b18 = 0;
    for (const auto &r : rows) {
        if (r.subModule)
            continue; // already counted inside its parent
        luts += r.totalLuts();
        regs += r.totalRegs();
        b36 += std::uint64_t(r.bram36) * r.instances;
        b18 += std::uint64_t(r.bram18) * r.instances;
    }
    total.luts = static_cast<std::uint32_t>(luts);
    total.registers = static_cast<std::uint32_t>(regs);
    total.bram36 = static_cast<std::uint32_t>(b36);
    total.bram18 = static_cast<std::uint32_t>(b18);
    return total;
}

double
percent(std::uint64_t used, std::uint64_t capacity)
{
    return capacity == 0
        ? 0.0
        : 100.0 * static_cast<double>(used) /
            static_cast<double>(capacity);
}

} // namespace resource
} // namespace bluedbm
