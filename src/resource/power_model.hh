/**
 * @file
 * Power model reproducing Table 3 and the cost/power comparison
 * against a ram-cloud deployment (paper sections 6.2 and 8).
 */

#ifndef BLUEDBM_RESOURCE_POWER_MODEL_HH
#define BLUEDBM_RESOURCE_POWER_MODEL_HH

#include <cstdint>

namespace bluedbm {
namespace resource {

/**
 * Per-node power budget (datasheet values, Table 3).
 */
struct NodePower
{
    double vc707Watts = 30.0;
    double flashBoardWatts = 5.0;
    unsigned flashBoards = 2;
    double xeonServerWatts = 200.0;

    /** Power of the BlueDBM additions (FPGA + flash boards). */
    double
    deviceWatts() const
    {
        return vc707Watts + flashBoardWatts * flashBoards;
    }

    /** Whole node including the host server. */
    double
    totalWatts() const
    {
        return deviceWatts() + xeonServerWatts;
    }

    /** Fraction of node power added by the storage device. */
    double
    deviceFraction() const
    {
        return deviceWatts() / totalWatts();
    }
};

/**
 * Compare a BlueDBM rack against a ram-cloud sized for the same
 * dataset.
 */
struct ClusterComparison
{
    std::uint64_t datasetTB = 20;
    unsigned bluedbmNodes = 20;
    NodePower nodePower;

    /** DRAM per ram-cloud server in GB. */
    unsigned ramcloudServerGB = 256;
    /** Power of one ram-cloud server (large DRAM loadout). */
    double ramcloudServerWatts = 350.0;

    /** Servers the ram cloud needs to hold the dataset. */
    unsigned
    ramcloudServers() const
    {
        std::uint64_t gb = datasetTB * 1024;
        return unsigned((gb + ramcloudServerGB - 1) /
                        ramcloudServerGB);
    }

    /** Total BlueDBM power. */
    double
    bluedbmWatts() const
    {
        return bluedbmNodes * nodePower.totalWatts();
    }

    /** Total ram-cloud power. */
    double
    ramcloudWatts() const
    {
        return ramcloudServers() * ramcloudServerWatts;
    }

    /** Power advantage factor. */
    double
    powerAdvantage() const
    {
        return ramcloudWatts() / bluedbmWatts();
    }
};

} // namespace resource
} // namespace bluedbm

#endif // BLUEDBM_RESOURCE_POWER_MODEL_HH
