/**
 * @file
 * FPGA resource cost model reproducing Tables 1 and 2 of the paper.
 *
 * Hardware cannot be synthesized here, so resource usage is modeled:
 * each hardware module has a cost function in terms of its design
 * parameters (interleaving ways, port counts, buffer depths),
 * calibrated so the paper's configuration lands exactly on the
 * published numbers. The model is still useful beyond the defaults:
 * ablation benches use it to show how costs scale with, e.g., the
 * network fan-out or DMA buffering.
 */

#ifndef BLUEDBM_RESOURCE_FPGA_MODEL_HH
#define BLUEDBM_RESOURCE_FPGA_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bluedbm {
namespace resource {

/**
 * Resource usage of one module instance.
 */
struct Usage
{
    std::string name;
    unsigned instances = 1;
    std::uint32_t luts = 0;      //!< per instance
    std::uint32_t registers = 0; //!< per instance
    std::uint32_t bram36 = 0;    //!< RAMB36 per instance
    std::uint32_t bram18 = 0;    //!< RAMB18 per instance
    /** Sub-modules are constituents of the row above them and are
     * excluded from totals (the indented rows of Table 1). */
    bool subModule = false;

    std::uint64_t
    totalLuts() const
    {
        return std::uint64_t(luts) * instances;
    }

    std::uint64_t
    totalRegs() const
    {
        return std::uint64_t(registers) * instances;
    }
};

/**
 * Device capacities for utilization percentages.
 */
struct Device
{
    std::string name;
    std::uint64_t luts = 0;
    std::uint64_t registers = 0;
    std::uint64_t bram36 = 0;
    std::uint64_t bram18 = 0;
};

/** The Artix-7 chip on each custom flash card (XC7A200T-class). */
Device artix7();

/** The Virtex-7 chip on the VC707 host board (XC7VX485T). */
Device virtex7();

/**
 * Flash controller on the Artix-7 (Table 1) parameterized by the
 * design knobs of our flash substrate.
 */
struct FlashControllerConfig
{
    unsigned busControllers = 8; //!< one per flash bus
    unsigned eccDecodersPerBus = 2;
    unsigned eccEncodersPerBus = 2;
    unsigned serdesLanes = 4;    //!< aurora lanes to the host FPGA
};

/** Per-module usage of the flash-card controller (Table 1 rows). */
std::vector<Usage> flashControllerUsage(const FlashControllerConfig &);

/**
 * Host-side Virtex-7 design (Table 2) parameterized by our node
 * configuration.
 */
struct HostFpgaConfig
{
    unsigned flashCards = 2;
    unsigned networkPorts = 8;
    unsigned dmaReadEngines = 4;
    unsigned dmaWriteEngines = 4;
    unsigned readBuffers = 128;
    unsigned writeBuffers = 128;
};

/** Per-module usage of the host FPGA (Table 2 rows). */
std::vector<Usage> hostFpgaUsage(const HostFpgaConfig &);

/** Sum a usage list. */
Usage totalUsage(const std::vector<Usage> &rows, std::string name);

/** Percent utilization helper. */
double percent(std::uint64_t used, std::uint64_t capacity);

} // namespace resource
} // namespace bluedbm

#endif // BLUEDBM_RESOURCE_FPGA_MODEL_HH
