#include "net/network.hh"

// lint: hot-path

#include <queue>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace net {

// ---------------------------------------------------------------- //
// Endpoint
// ---------------------------------------------------------------- //

void
Endpoint::send(NodeId dst, std::uint32_t bytes, PayloadRef payload)
{
    if (dst >= net_.nodeCount())
        sim::fatal("send to node %u but network has %u nodes", dst,
                   net_.nodeCount());
    Message msg;
    msg.src = node_;
    msg.dst = dst;
    msg.endpoint = id_;
    msg.bytes = bytes;
    msg.payload = std::move(payload);
    msg.headArrival = net_.sim_.now();
    ++sent_;
    sendQueue_.push_back(std::move(msg));
    pumpSend();
}

void
Endpoint::pumpSend()
{
    while (!sendQueue_.empty()) {
        Message &head = sendQueue_.front();
        if (e2eCredits_ > 0) {
            unsigned &avail = e2eAvail_[head.dst];
            if (avail == 0)
                return; // wait for a credit to come back
            --avail;
            head.flowControlled = true;
        }
        Message msg = std::move(head);
        sendQueue_.pop_front();
        net_.inject(std::move(msg));
    }
}

std::optional<Message>
Endpoint::receive()
{
    if (recvQueue_.empty())
        return std::nullopt;
    Message msg = std::move(recvQueue_.front());
    recvQueue_.pop_front();
    if (msg.flowControlled)
        net_.returnE2eCredit(msg);
    // Admit a parked message now that a buffer slot is free.
    if (!parked_.empty()) {
        Parked p = std::move(parked_.front());
        parked_.pop_front();
        recvQueue_.push_back(std::move(p.msg));
        ++received_;
        if (p.release)
            p.release();
    }
    return msg;
}

void
Endpoint::setReceiveHandler(Handler handler)
{
    handler_ = std::move(handler);
    if (!recvQueue_.empty())
        scheduleDrain();
}

void
Endpoint::scheduleDrain()
{
    if (drainScheduled_)
        return;
    drainScheduled_ = true;
    net_.sim_.scheduleAfter(0, [this]() {
        drainScheduled_ = false;
        while (handler_ && !recvQueue_.empty()) {
            auto msg = receive();
            handler_(std::move(*msg));
        }
    });
}

void
Endpoint::enableEndToEnd(unsigned credits)
{
    if (credits == 0)
        sim::fatal("end-to-end flow control needs >= 1 credit");
    e2eCredits_ = credits;
    // Flat per-destination credit table, sized once at enable time.
    e2eAvail_.assign(net_.nodeCount(), credits);
}

void
Endpoint::deliver(Message msg, HopHook release)
{
    if (recvQueue_.size() >= recvCapacity_) {
        // Hold the upstream buffer: this is where backpressure
        // originates when the consumer stalls.
        parked_.push_back(Parked{std::move(msg), std::move(release)});
        return;
    }
    recvQueue_.push_back(std::move(msg));
    ++received_;
    if (release)
        release();
    if (handler_)
        scheduleDrain();
}

void
Endpoint::creditReturned(NodeId from)
{
    // Tokens only flow back to the endpoint that consumed a credit,
    // but guard anyway: without flow control there is no table.
    if (e2eCredits_ == 0)
        return;
    unsigned &avail = e2eAvail_[from];
    if (avail < e2eCredits_)
        ++avail;
    pumpSend();
}

// ---------------------------------------------------------------- //
// StorageNetwork
// ---------------------------------------------------------------- //

StorageNetwork::StorageNetwork(sim::Simulator &sim,
                               const Topology &topo,
                               const Params &params)
    : sim_(sim), topo_(topo), params_(params),
      // lint: allow(hot-path-alloc) construction-time pool setup
      payloadPool_(std::make_shared<PayloadPool>())
{
    // Pending events capture Messages whose payloads live in this
    // pool; the simulator keeps it alive past our destruction.
    sim_.retainResource(payloadPool_);

    std::string err = topo_.validate();
    if (!err.empty())
        sim::fatal("invalid topology: %s", err.c_str());
    if (params_.endpoints < 2)
        sim::fatal("need >= 2 endpoints (0 is reserved for control)");

    outLanes_.resize(topo_.nodes);
    for (const auto &spec : topo_.links) {
        // Two directed lanes per cable.
        for (int dir = 0; dir < 2; ++dir) {
            LaneEnd end;
            end.owner = dir == 0 ? spec.nodeA : spec.nodeB;
            end.peer = dir == 0 ? spec.nodeB : spec.nodeA;
            // lint: allow(hot-path-alloc) construction-time lane setup
            end.lane = std::make_unique<Lane>(sim_, params_.lane);
            std::size_t idx = lanes_.size();
            auto on_deliver = [this, idx](Message msg) {
                arrive(lanes_[idx].peer, idx, std::move(msg));
            };
            static_assert(Lane::Deliver::storedInline<
                              decltype(on_deliver)>(),
                          "lane delivery capture must stay inline");
            end.lane->setDeliver(std::move(on_deliver));
            outLanes_[end.owner].push_back(idx);
            lanes_.push_back(std::move(end));
        }
    }

    computeRoutes();

    endpoints_.resize(topo_.nodes);
    for (unsigned n = 0; n < topo_.nodes; ++n) {
        for (unsigned e = 0; e < params_.endpoints; ++e) {
            endpoints_[n].emplace_back(std::unique_ptr<Endpoint>(
                // lint: allow(hot-path-alloc) construction-time endpoint setup
                new Endpoint(*this, NodeId(n), EndpointId(e),
                             params_.recvCapacity)));
        }
    }
}

void
StorageNetwork::computeRoutes()
{
    unsigned n = topo_.nodes;
    nextHop_.assign(std::size_t(n) * n, RouteSlot{});
    ecmpLanes_.clear();

    // One BFS per destination yields every node's next-hop set for
    // that destination directly; the per-endpoint spread is applied
    // at lookup time (e % count), so no per-endpoint tables exist.
    for (NodeId dst = 0; dst < n; ++dst) {
        std::vector<int> dist(n, -1);
        std::queue<NodeId> bfs;
        dist[dst] = 0;
        bfs.push(dst);
        while (!bfs.empty()) {
            NodeId v = bfs.front();
            bfs.pop();
            for (std::size_t l : outLanes_[v]) {
                NodeId u = lanes_[l].peer;
                if (dist[u] < 0) {
                    dist[u] = dist[v] + 1;
                    bfs.push(u);
                }
            }
        }

        for (NodeId v = 0; v < n; ++v) {
            if (v == dst)
                continue;
            // All outgoing lanes on a shortest path, in port order
            // (the order the old tables enumerated them, so the
            // endpoint -> lane assignment is unchanged).
            RouteSlot slot;
            slot.base = static_cast<std::uint32_t>(ecmpLanes_.size());
            for (std::size_t l : outLanes_[v]) {
                if (dist[lanes_[l].peer] == dist[v] - 1)
                    ecmpLanes_.push_back(
                        static_cast<std::uint32_t>(l));
            }
            slot.count =
                static_cast<std::uint32_t>(ecmpLanes_.size()) -
                slot.base;
            if (slot.count == 0)
                sim::panic("no route from %u to %u", v, dst);
            nextHop_[std::size_t(v) * n + dst] = slot;
        }
    }
    // Tables are immutable after construction; drop growth slack so
    // routingTableBytes() reports what actually stays resident.
    ecmpLanes_.shrink_to_fit();
}

Endpoint &
StorageNetwork::endpoint(NodeId node, EndpointId e)
{
    if (node >= topo_.nodes)
        sim::fatal("node %u out of range", node);
    if (e == controlEndpoint || e >= params_.endpoints)
        sim::fatal("endpoint %u out of range (1..%u)", e,
                   params_.endpoints - 1);
    return *endpoints_[node][e];
}

unsigned
StorageNetwork::routeHops(EndpointId e, NodeId src, NodeId dst) const
{
    unsigned hops = 0;
    NodeId v = src;
    while (v != dst) {
        int l = routeLane(e, v, dst);
        if (l < 0)
            sim::panic("broken route %u->%u", src, dst);
        v = lanes_[std::size_t(l)].peer;
        ++hops;
        if (hops > topo_.nodes)
            sim::panic("routing loop %u->%u", src, dst);
    }
    return hops;
}

int
StorageNetwork::routeLane(EndpointId e, NodeId node, NodeId dst) const
{
    const RouteSlot &s = nextHop_[std::size_t(node) * topo_.nodes + dst];
    if (s.count == 0)
        return -1; // local
    // Deterministic per-endpoint choice spreads endpoints across
    // equal-cost paths (paper section 3.2.3).
    return int(ecmpLanes_[s.base + e % s.count]);
}

std::size_t
StorageNetwork::routingTableBytes() const
{
    return nextHop_.capacity() * sizeof(RouteSlot) +
           ecmpLanes_.capacity() * sizeof(std::uint32_t);
}

std::uint64_t
StorageNetwork::totalLaneBytes() const
{
    std::uint64_t sum = 0;
    for (const auto &end : lanes_)
        sum += end.lane->deliveredBytes();
    return sum;
}

void
StorageNetwork::inject(Message msg)
{
    // The head enters the network now, regardless of how long the
    // message waited in the endpoint's send queue.
    msg.headArrival = std::max(msg.headArrival, sim_.now());
    if (msg.dst == msg.src) {
        // Local loopback through the internal switch: no serial hop.
        // (The capture recovers the node from the message itself to
        // stay within the inline event buffer.)
        sim_.scheduleAfter(0, [this, m = std::move(msg)]() mutable {
            NodeId here = m.dst;
            route(here, std::move(m), {});
        });
        return;
    }
    int l = routeLane(msg.endpoint, msg.src, msg.dst);
    lanes_[std::size_t(l)].lane->send(std::move(msg));
}

void
StorageNetwork::arrive(NodeId node, std::size_t lane_idx, Message msg)
{
    Lane *upstream = lanes_[lane_idx].lane.get();
    std::uint32_t bytes = msg.bytes;
    auto release = [upstream, bytes]() {
        upstream->releaseCredits(bytes);
    };
    static_assert(HopHook::storedInline<decltype(release)>(),
                  "credit release capture must stay inline");
    route(node, std::move(msg), std::move(release));
}

void
StorageNetwork::route(NodeId node, Message msg, HopHook release)
{
    if (msg.dst == node) {
        if (msg.endpoint == controlEndpoint) {
            // Credit token: payload is the endpoint index.
            auto e = msg.payload.take<EndpointId>();
            if (release)
                release();
            endpoints_[node][e]->creditReturned(msg.src);
            return;
        }
        endpoints_[node][msg.endpoint]->deliver(std::move(msg),
                                                std::move(release));
        return;
    }
    int l = routeLane(msg.endpoint, node, msg.dst);
    // Credits of the upstream lane are held until this message is
    // accepted onto the wire of the next lane: backpressure chains.
    lanes_[std::size_t(l)].lane->send(std::move(msg),
                                      std::move(release));
}

void
StorageNetwork::returnE2eCredit(const Message &msg)
{
    Message token;
    token.src = msg.dst; // we are the receiver
    token.dst = msg.src;
    token.endpoint = controlEndpoint;
    token.bytes = 8; // tiny control packet
    token.payload = PayloadRef::inlineOf(msg.endpoint);
    token.headArrival = sim_.now();
    inject(std::move(token));
}

} // namespace net
} // namespace bluedbm
