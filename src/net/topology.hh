/**
 * @file
 * Topology description and builders for the integrated storage
 * network.
 *
 * BlueDBM nodes have a fan-out of 8 serial ports; any topology wirable
 * within that budget is possible (paper figure 5). Physical cabling is
 * a list of point-to-point links; routing is computed separately and
 * can be re-generated without re-wiring, as in the paper where routing
 * tables come from a network configuration file.
 */

#ifndef BLUEDBM_NET_TOPOLOGY_HH
#define BLUEDBM_NET_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.hh"

namespace bluedbm {
namespace net {

/**
 * One full-duplex serial cable between two node ports.
 */
struct LinkSpec
{
    NodeId nodeA = 0;
    std::uint8_t portA = 0;
    NodeId nodeB = 0;
    std::uint8_t portB = 0;
};

/**
 * Physical shape of a storage network.
 */
struct Topology
{
    unsigned nodes = 0;
    unsigned portsPerNode = 8;
    std::vector<LinkSpec> links;

    /**
     * Validate the wiring: port budget respected, no port used twice,
     * no self-loops, and the graph is connected.
     *
     * @return empty string when valid, else a description of the
     *         violation
     */
    std::string validate() const;

    /** Whether the wiring is valid. */
    bool valid() const { return validate().empty(); }

    /**
     * Ring of @p n nodes with @p lanes_each_dir parallel cables to
     * each neighbor (the paper discusses a 20-node ring with 4 lanes
     * each way: 32.8 Gb/s of ring throughput).
     */
    static Topology ring(unsigned n, unsigned lanes_each_dir = 1);

    /** Full 2-D mesh of @p w x @p h nodes (paper figure 5b). */
    static Topology mesh2d(unsigned w, unsigned h);

    /**
     * Distributed star (paper figure 5a): @p hubs fully
     * interconnected star centers, remaining nodes attached
     * round-robin as leaves with one uplink each.
     */
    static Topology distributedStar(unsigned n, unsigned hubs);

    /**
     * Fat tree (paper figure 5c): complete @p fanout -ary tree over
     * @p n nodes where the number of parallel cables doubles each
     * level toward the root, within the port budget.
     */
    static Topology fatTree(unsigned n, unsigned fanout = 2);

    /** All-pairs direct wiring (small clusters only). */
    static Topology fullyConnected(unsigned n);

    /** Chain (line) of @p n nodes, handy for hop-count experiments. */
    static Topology line(unsigned n, unsigned lanes = 1);

    /**
     * Parse a network configuration (the paper populates routing
     * from such a file rather than running discovery). Format, one
     * directive per line, '#' comments:
     *
     *   nodes <count>
     *   ports <count>          (optional, default 8)
     *   link <nodeA> <portA> <nodeB> <portB>
     *
     * Fatal on malformed input or an invalid resulting topology.
     */
    static Topology fromConfig(const std::string &text);

    /** Serialize into the fromConfig() format. */
    std::string toConfig() const;
};

} // namespace net
} // namespace bluedbm

#endif // BLUEDBM_NET_TOPOLOGY_HH
