/**
 * @file
 * The integrated storage network (paper section 3.2).
 *
 * StorageNetwork instantiates one external switch per node, lanes for
 * every cable in the topology, and a set of logical endpoints
 * (virtual channels) per node. Routing is deterministic per
 * (endpoint, destination): all packets of one endpoint to one
 * destination follow the same path -- preserving FIFO order without
 * completion buffers -- while different endpoints spread across
 * equal-cost paths (paper section 3.2.3, figure 6).
 *
 * Endpoints expose send/receive with backpressure so that an endpoint
 * pair behaves like a FIFO across the whole cluster. End-to-end flow
 * control is optional per endpoint: when on, a sender consumes a
 * credit per message and the receiver returns credits over the
 * control endpoint as the application drains data; when off, latency
 * is lower but a non-draining receiver eventually blocks the links
 * (exactly the trade-off of section 3.2.3).
 */

#ifndef BLUEDBM_NET_NETWORK_HH
#define BLUEDBM_NET_NETWORK_HH

// lint: hot-path

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "net/link.hh"
#include "net/message.hh"
#include "net/payload.hh"
#include "net/topology.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace net {

class StorageNetwork;

/**
 * A logical endpoint: the network as seen by one in-store processor
 * service port.
 */
class Endpoint
{
  public:
    /** Handler invoked for each received message (auto-drain mode).
     * InlineFunction so installing and invoking receive handlers
     * never allocates for the typical capture (a this-pointer or a
     * few references; 48 bytes of room, heap fallback beyond). */
    using Handler = sim::InlineFunction<void(Message), 48>;

    /**
     * Send @p bytes to endpoint @p endpoint-equivalent on node
     * @p dst. Returns immediately; transmission is subject to
     * backpressure.
     *
     * @param dst     destination node
     * @param bytes   payload size for timing purposes
     * @param payload untimed data carried to the receiver
     */
    void send(NodeId dst, std::uint32_t bytes,
              PayloadRef payload = PayloadRef());

    /**
     * Convenience overload boxing @p payload through the network's
     * payload pool (inline for small trivial types, a recycled slab
     * slot for protocol structs -- no per-send allocation).
     */
    template <typename T,
              typename = std::enable_if_t<!std::is_same_v<
                  std::remove_cv_t<std::remove_reference_t<T>>,
                  PayloadRef>>>
    void send(NodeId dst, std::uint32_t bytes, T &&payload);

    /**
     * Pop the oldest received message, if any. Draining the receive
     * buffer is what returns credits (end-to-end and link-level).
     */
    std::optional<Message> receive();

    /** Number of messages waiting in the receive buffer. */
    std::size_t pendingReceive() const { return recvQueue_.size(); }

    /**
     * Install a handler that automatically drains every arriving
     * message (models an ISP consuming at line rate).
     */
    void setReceiveHandler(Handler handler);

    /**
     * Enable end-to-end flow control: at most @p credits messages
     * in flight per destination; safe against receiver stalls.
     */
    void enableEndToEnd(unsigned credits);

    /** Whether end-to-end flow control is on. */
    bool endToEnd() const { return e2eCredits_ > 0; }

    /** Node this endpoint lives on. */
    NodeId node() const { return node_; }

    /** Endpoint index. */
    EndpointId id() const { return id_; }

    /** Messages sent (accepted into the send queue). */
    std::uint64_t sent() const { return sent_; }

    /** Messages received (delivered into the receive buffer). */
    std::uint64_t received() const { return received_; }

  private:
    friend class StorageNetwork;

    Endpoint(StorageNetwork &net, NodeId node, EndpointId id,
             std::size_t recv_capacity)
        : net_(net), node_(node), id_(id), recvCapacity_(recv_capacity)
    {
    }

    /** Try to inject queued messages into the network. */
    void pumpSend();

    /** Called by the network when a message arrives for us. */
    void deliver(Message msg, HopHook release);

    /** Arm the auto-drain event if it is not already pending. One
     * drain event empties the whole receive buffer, so a burst of
     * same-tick arrivals across many ports costs one event, not one
     * per arrival -- delivery event churn stays independent of the
     * cluster's total port count. */
    void scheduleDrain();

    /** Called when an end-to-end credit comes back from @p from. */
    void creditReturned(NodeId from);

    StorageNetwork &net_;
    NodeId node_;
    EndpointId id_;
    std::size_t recvCapacity_;
    Handler handler_;
    bool drainScheduled_ = false; //!< auto-drain event pending

    std::deque<Message> sendQueue_;
    struct Parked
    {
        Message msg;
        HopHook release;
    };
    std::deque<Message> recvQueue_;
    std::deque<Parked> parked_; //!< arrived but receive buffer full

    unsigned e2eCredits_ = 0; //!< 0 = end-to-end flow control off
    /** Credits available per destination node; flat, indexed by
     * NodeId, sized at enable time -- no hashing on the send path. */
    std::vector<unsigned> e2eAvail_;

    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
};

/**
 * The whole inter-controller network: lanes, switches and endpoints.
 */
class StorageNetwork
{
  public:
    /** Configuration knobs. */
    struct Params
    {
        LaneParams lane;
        /** Logical endpoints per node (index 0 is control). */
        unsigned endpoints = 8;
        /** Receive buffer capacity per endpoint, in messages. */
        std::size_t recvCapacity = 1024;
    };

    /**
     * Build the network for @p topo. Fatal on invalid topologies.
     */
    StorageNetwork(sim::Simulator &sim, const Topology &topo,
                   const Params &params);

    /** Build with default parameters. */
    StorageNetwork(sim::Simulator &sim, const Topology &topo)
        : StorageNetwork(sim, topo, Params{})
    {
    }

    /** Endpoint @p e of node @p node (e >= 1; 0 is control). */
    Endpoint &endpoint(NodeId node, EndpointId e);

    /** Number of nodes. */
    unsigned nodeCount() const { return topo_.nodes; }

    /** Number of endpoints per node. */
    unsigned endpointCount() const { return params_.endpoints; }

    /** Topology in use. */
    const Topology &topology() const { return topo_; }

    /** Lane parameters in use. */
    const LaneParams &laneParams() const { return params_.lane; }

    /**
     * Hop count of the route endpoint @p e uses from @p src to
     * @p dst (diagnostics / tests).
     */
    unsigned routeHops(EndpointId e, NodeId src, NodeId dst) const;

    /**
     * Output lane index at @p node for (endpoint, dst), or -1 when
     * the destination is local.
     */
    int routeLane(EndpointId e, NodeId node, NodeId dst) const;

    /** Bytes resident in the routing tables (next-hop slots plus the
     * shared equal-cost candidate pool) -- the footprint the
     * table-compression work is gated on. */
    std::size_t routingTableBytes() const;

    /** Total payload bytes delivered by all lanes. */
    std::uint64_t totalLaneBytes() const;

    /** Slab the payloads of this network's messages live in. */
    PayloadPool &payloadPool() { return *payloadPool_; }

  private:
    friend class Endpoint;

    struct LaneEnd
    {
        std::unique_ptr<Lane> lane; //!< transmits away from `owner`
        NodeId owner = 0;           //!< sending node
        NodeId peer = 0;            //!< receiving node
    };

    /** Compute per-endpoint deterministic routing tables. */
    void computeRoutes();

    /** A message arrived at @p node via lane @p lane_idx. */
    void arrive(NodeId node, std::size_t lane_idx, Message msg);

    /** Inject a message at its source node. */
    void inject(Message msg);

    /** Forward or deliver @p msg at @p node; @p release frees the
     * upstream buffer once the message moves on. */
    void route(NodeId node, Message msg, HopHook release);

    /** Send an end-to-end credit token back to @p msg's sender. */
    void returnE2eCredit(const Message &msg);

    sim::Simulator &sim_;
    Topology topo_;
    Params params_;

    /** Shared with the Simulator (retainResource): messages escape
     * into the event queue as captured lambdas, so the pool must
     * survive this network if events are still pending (their
     * *destruction* is then safe; running them would still touch
     * freed lanes -- don't run a simulator past its network's
     * lifetime). Declared before anything that can hold Messages so
     * it also outlives every member holding a PayloadRef. */
    // lint: allow(hot-path-alloc) construction-time: the pool is
    // shared with every lane once, never per message
    std::shared_ptr<PayloadPool> payloadPool_;

    std::vector<LaneEnd> lanes_;
    //! node -> list of outgoing lane indices (ordered by port)
    std::vector<std::vector<std::size_t>> outLanes_;

    /** Next-hop slot for one (src, dst) pair: the equal-cost
     * shortest-path out-lanes live at ecmpLanes_[base .. base+count).
     * Endpoint e deterministically takes candidate e % count -- the
     * same per-endpoint spread the old routes_[e][src][dst] tables
     * encoded, but shared across endpoints: O(n^2) slots plus one
     * candidate pool instead of O(endpoints * n^2) full tables. */
    struct RouteSlot
    {
        std::uint32_t base = 0;  //!< offset into ecmpLanes_
        std::uint32_t count = 0; //!< candidates; 0 = local
    };
    //! nextHop_[src * nodes + dst]
    std::vector<RouteSlot> nextHop_;
    //! shared equal-cost candidate lane indices, in port order
    std::vector<std::uint32_t> ecmpLanes_;
    //! endpoints_[node][e]
    std::vector<std::vector<std::unique_ptr<Endpoint>>> endpoints_;
};

template <typename T, typename>
void
Endpoint::send(NodeId dst, std::uint32_t bytes, T &&payload)
{
    send(dst, bytes, net_.payloadPool().make(std::forward<T>(payload)));
}

} // namespace net
} // namespace bluedbm

#endif // BLUEDBM_NET_NETWORK_HH
