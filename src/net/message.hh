/**
 * @file
 * Network message type for the integrated storage network.
 *
 * The real network moves 128-bit flits; the model moves whole
 * messages (a request, a page, a credit token) whose wire occupancy is
 * the payload size inflated by the measured protocol overhead (the
 * paper reports 8.2 Gb/s effective out of 10 Gb/s physical, i.e.
 * <= 18% overhead).
 */

#ifndef BLUEDBM_NET_MESSAGE_HH
#define BLUEDBM_NET_MESSAGE_HH

#include <cstdint>

#include "net/payload.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace net {

/** Node identifier within the storage network. */
using NodeId = std::uint16_t;

/** Logical endpoint (virtual channel) index. */
using EndpointId = std::uint16_t;

/** Endpoint 0 is reserved for control traffic (credit returns). */
constexpr EndpointId controlEndpoint = 0;

/**
 * One message in flight. Move-only: the payload handle owns pooled
 * storage, so messages hand off rather than duplicate.
 *
 * Kept at 48 bytes so a per-hop delivery capture (this-pointer +
 * Message) fits the event queue's 56-byte inline callback buffer --
 * forwarding a message across a switch must not allocate.
 */
struct Message
{
    NodeId src = 0;
    NodeId dst = 0;
    EndpointId endpoint = 0;
    std::uint32_t bytes = 0; //!< payload size
    /** Sender consumed an end-to-end credit; receiver returns it. */
    bool flowControlled = false;
    PayloadRef payload;      //!< user data riding along (untimed)

    /**
     * Arrival time of the *head* of the message at the current switch;
     * used to overlap serialization across hops (cut-through).
     */
    sim::Tick headArrival = 0;
};

static_assert(sizeof(Message) <= 48,
              "Message must fit a one-cache-line event capture "
              "alongside a this-pointer");

} // namespace net
} // namespace bluedbm

#endif // BLUEDBM_NET_MESSAGE_HH
