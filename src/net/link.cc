#include "net/link.hh"

// lint: hot-path

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace net {

Lane::Lane(sim::Simulator &sim, const LaneParams &params)
    : sim_(sim), params_(params),
      wire_(params.physBytesPerSec, params.hopLatency),
      credits_(params.bufferBytes)
{
}

void
Lane::send(Message msg, HopHook on_start)
{
    if (msg.bytes > params_.bufferBytes)
        sim::fatal("message of %u bytes exceeds lane buffer %u",
                   msg.bytes, params_.bufferBytes);
    queue_.push_back(Pending{std::move(msg), std::move(on_start)});
    pump();
}

void
Lane::releaseCredits(std::uint32_t bytes)
{
    // The token travels back across the link before the sender can
    // use it.
    sim_.scheduleAfter(params_.hopLatency, [this, bytes]() {
        credits_ += bytes;
        if (credits_ > params_.bufferBytes)
            sim::panic("lane credit overflow");
        pump();
    });
}

void
Lane::pump()
{
    while (!queue_.empty() && credits_ >= queue_.front().msg.bytes) {
        Pending pending = std::move(queue_.front());
        queue_.pop_front();
        Message msg = std::move(pending.msg);
        credits_ -= msg.bytes;
        if (pending.onStart)
            pending.onStart();

        // Cut-through: serialization begins when the *head* reached
        // this switch (possibly before this forwarding event, which
        // runs at tail arrival), subject to the wire being free.
        std::uint64_t wb = wireBytes(msg.bytes);
        sim::Tick tail_arrival = wire_.occupy(msg.headArrival, wb);
        // The tail itself only got here "now" and still needs the
        // hop to cross.
        sim::Tick min_tail = sim_.now() + params_.hopLatency;
        if (tail_arrival < min_tail)
            tail_arrival = min_tail;
        sim::Tick serialization =
            sim::transferTicks(wb, params_.physBytesPerSec);
        msg.headArrival = tail_arrival - serialization;

        auto deliverEvent = [this, m = std::move(msg)]() mutable {
            deliveredBytes_ += m.bytes;
            ++deliveredMsgs_;
            if (!deliver_)
                sim::panic("lane delivers with no receiver");
            deliver_(std::move(m));
        };
        // The per-hop forwarding event is the hottest capture in the
        // simulator; it must ride the event slot, not the heap.
        static_assert(sim::EventQueue::Callback::storedInline<
                          decltype(deliverEvent)>(),
                      "message delivery capture must fit the inline "
                      "event buffer");
        sim_.scheduleAt(tail_arrival, std::move(deliverEvent));
    }
}

} // namespace net
} // namespace bluedbm
