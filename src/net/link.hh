/**
 * @file
 * Serial link lanes with token-based flow control (paper section
 * 3.2.2).
 *
 * A Lane is one direction of a serial cable: a latency-rate wire plus
 * a receiver buffer whose occupancy is governed by byte credits. The
 * sender may only place a message on the wire when the receiver has
 * buffer space; credits return to the sender (after the wire latency)
 * when the receiver forwards the message onward. This provides
 * loss-free backpressure across the link exactly like the paper's
 * token scheme: if a receiver stops draining, the sender's queue
 * grows and upstream traffic stalls.
 */

#ifndef BLUEDBM_NET_LINK_HH
#define BLUEDBM_NET_LINK_HH

// lint: hot-path

#include <cstdint>
#include <deque>

#include "net/message.hh"
#include "sim/bandwidth.hh"
#include "sim/inline_function.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace net {

/**
 * Per-hop completion hook: fires when a message leaves a buffer so
 * the upstream stage can release credits (backpressure chaining).
 * An InlineFunction rather than std::function so the move-only,
 * allocation-free property of the forwarding path is guaranteed by
 * the type (16 bytes cover the common capture: a lane pointer plus a
 * byte count) instead of depending on the standard library's SBO.
 */
using HopHook = sim::InlineFunction<void(), 16>;

/**
 * Physical parameters of one serial lane.
 */
struct LaneParams
{
    /** Physical signalling rate in bytes/second (10 Gb/s default). */
    double physBytesPerSec = 10e9 / 8.0;
    /**
     * Protocol efficiency: effective data rate / physical rate.
     * The paper measures 8.2 Gb/s effective on a 10 Gb/s link.
     */
    double efficiency = 0.82;
    /** Per-hop latency (wire + switch), 0.48 us in the paper. */
    sim::Tick hopLatency = sim::nsToTicks(480);
    /** Receiver buffer capacity in bytes (token pool). */
    std::uint32_t bufferBytes = 64 * 1024;

    /** Effective data rate in bytes/second. */
    double
    effectiveBytesPerSec() const
    {
        return physBytesPerSec * efficiency;
    }
};

/**
 * One direction of a serial link.
 */
class Lane
{
  public:
    /** Callback receiving a delivered message (a switch's arrival
     * hook: one pointer plus a lane index stays inline). */
    using Deliver = sim::InlineFunction<void(Message), 16>;

    /**
     * @param sim    simulation kernel
     * @param params physical parameters
     */
    Lane(sim::Simulator &sim, const LaneParams &params);

    /** Install the receiving switch's delivery callback. */
    void setDeliver(Deliver deliver) { deliver_ = std::move(deliver); }

    /**
     * Queue a message for transmission. Transmission starts when
     * credits and the wire allow; messages leave in FIFO order.
     *
     * @param msg      message to transmit
     * @param on_start optional callback fired when the message leaves
     *                 the queue and starts serializing; switches use
     *                 it to release the upstream lane's credits so
     *                 that backpressure chains across hops
     */
    void send(Message msg, HopHook on_start = {});

    /**
     * Return credits for @p bytes of receiver buffer. Called by the
     * receiver when a message leaves its buffer; the token flows back
     * over the reverse direction and arrives after the hop latency.
     */
    void releaseCredits(std::uint32_t bytes);

    /** Messages waiting for credits or wire. */
    std::size_t queued() const { return queue_.size(); }

    /** Bytes of receiver buffer currently available to this sender. */
    std::uint32_t credits() const { return credits_; }

    /** Total payload bytes delivered. */
    std::uint64_t deliveredBytes() const { return deliveredBytes_; }

    /** Total messages delivered. */
    std::uint64_t deliveredMessages() const { return deliveredMsgs_; }

    /** Lane parameters. */
    const LaneParams &params() const { return params_; }

    /** Wire-level bytes for a payload (adds protocol overhead). */
    std::uint64_t
    wireBytes(std::uint32_t payload_bytes) const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(payload_bytes) / params_.efficiency +
            0.5);
    }

  private:
    /** Try to start transmitting queued messages. */
    void pump();

    struct Pending
    {
        Message msg;
        HopHook onStart;
    };

    sim::Simulator &sim_;
    LaneParams params_;
    sim::LatencyRateServer wire_;
    Deliver deliver_;
    std::deque<Pending> queue_;
    std::uint32_t credits_;
    std::uint64_t deliveredBytes_ = 0;
    std::uint64_t deliveredMsgs_ = 0;
};

} // namespace net
} // namespace bluedbm

#endif // BLUEDBM_NET_LINK_HH
