/**
 * @file
 * Pooled, move-only message payloads.
 *
 * `std::any` cost one heap allocation (plus RTTI) per message send --
 * the dominant allocator traffic of a saturated network simulation.
 * Payloads now travel as a `PayloadRef`, a move-only handle with
 * three allocation-free representations:
 *
 *  - *inline*: trivially-copyable values up to 16 bytes (credit
 *    tokens, test integers) live inside the handle itself;
 *  - *pooled*: protocol structs (read requests/responses) are
 *    constructed in a fixed-size slot of the per-network
 *    `PayloadPool` slab and recycled through a LIFO free list, so a
 *    steady-state simulation performs no allocation per message;
 *  - *heap*: anything larger than a slot falls back to one `new`,
 *    keeping the API fully generic.
 *
 * Type safety comes from a per-type tag address compared on access;
 * a mismatch panics (the simulator's moral equivalent of
 * `bad_any_cast`). The pool must outlive every handle it issued.
 * Messages (and the handles inside them) escape into the simulator's
 * event queue as captured lambdas, so `StorageNetwork` shares
 * ownership of its pool with the `Simulator` (which destroys retained
 * resources only after its event queue): *destroying* a network with
 * events still queued releases every payload safely. Note this covers
 * payload storage only -- those pending events also capture pointers
 * to network internals, so the simulator must not *run* further after
 * a network it served is gone.
 */

#ifndef BLUEDBM_NET_PAYLOAD_HH
#define BLUEDBM_NET_PAYLOAD_HH

// lint: hot-path

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace bluedbm {
namespace net {

namespace detail {

/** One tag object per payload type; its address is the type id.
 * 4-byte alignment leaves the two low bits free for the handle's
 * storage-mode field. Deliberately non-const: identical read-only
 * globals may be folded to one address by ICF linkers, which would
 * collapse distinct type ids; writable data is never folded. */
template <typename T>
inline std::uint32_t payloadTypeTag = 0;

using PayloadTypeId = const void *;

template <typename T>
constexpr PayloadTypeId
payloadTypeId()
{
    return &payloadTypeTag<std::remove_cv_t<std::remove_reference_t<T>>>;
}

} // namespace detail

class PayloadPool;

/**
 * Move-only handle to one in-flight payload. See file comment for the
 * three storage modes.
 */
class PayloadRef
{
  public:
    /** Payloads at most this big and trivially copyable ride inline. */
    static constexpr std::size_t inlineBytes = 16;

    PayloadRef() noexcept = default;

    PayloadRef(PayloadRef &&other) noexcept { moveFrom(other); }

    PayloadRef &
    operator=(PayloadRef &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    PayloadRef(const PayloadRef &) = delete;
    PayloadRef &operator=(const PayloadRef &) = delete;

    ~PayloadRef() { reset(); }

    /** Whether a payload is attached. */
    explicit operator bool() const noexcept { return tm_ != 0; }

    /** Whether the payload is a @p T. */
    template <typename T>
    bool
    is() const noexcept
    {
        return typeId() ==
               reinterpret_cast<std::uintptr_t>(
                   detail::payloadTypeId<T>()) &&
               tm_ != 0;
    }

    /**
     * Move the payload out, releasing its storage.
     * Panics when empty or holding a different type.
     */
    template <typename T>
    T take();

    /** Drop the payload, releasing its storage. */
    void reset() noexcept;

    /**
     * Wrap a small trivially-copyable value with no pool involved
     * (usable for pool-less unit tests and control tokens).
     */
    template <typename T>
    static PayloadRef
    inlineOf(T value) noexcept
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                          std::is_trivially_default_constructible_v<T> &&
                          sizeof(T) <= inlineBytes &&
                          alignof(T) <= alignof(std::max_align_t),
                      "value not eligible for inline payload storage");
        PayloadRef ref;
        ref.setTypeMode(detail::payloadTypeId<T>(), Mode::Inline);
        std::memcpy(ref.store_.inlineData, &value, sizeof(T));
        return ref;
    }

  private:
    friend class PayloadPool;

    /** Storage mode, packed into the type-id pointer's low bits so
     * the handle is 24 bytes (and Message one cache line minus the
     * event-capture this-pointer). Empty is represented by tm_ == 0
     * (type ids are real object addresses, never null). */
    enum class Mode : std::uintptr_t { Empty = 0, Inline, Pooled, Heap };

    Mode mode() const noexcept { return static_cast<Mode>(tm_ & 3); }

    std::uintptr_t typeId() const noexcept { return tm_ & ~std::uintptr_t(3); }

    void
    setTypeMode(detail::PayloadTypeId type, Mode mode) noexcept
    {
        tm_ = reinterpret_cast<std::uintptr_t>(type) |
              static_cast<std::uintptr_t>(mode);
    }

    void
    moveFrom(PayloadRef &other) noexcept
    {
        tm_ = other.tm_;
        store_ = other.store_;
        other.tm_ = 0;
    }

    [[noreturn]] static void
    typeMismatch()
    {
        sim::panic("payload accessed as a different type than stored");
    }

    union Store
    {
        unsigned char inlineData[inlineBytes];
        struct
        {
            PayloadPool *pool;
            std::uint32_t slot;
        } pooled;
        struct
        {
            void *ptr;
            void (*destroy)(void *);
        } heap;
    };

    std::uintptr_t tm_ = 0; //!< type id | storage mode (see Mode)
    Store store_ = {};
};

/**
 * Slab of fixed-size payload slots with a LIFO free list.
 *
 * Slots are stored in a deque so they never move; the pool grows to
 * the high-water mark of simultaneously in-flight payloads and then
 * recycles forever. One pool per StorageNetwork.
 */
class PayloadPool
{
  public:
    /** In-slot capacity; covers every built-in protocol struct
     * (sized for KvRequest, which grew a trace handle). */
    static constexpr std::size_t slotBytes = 80;

    PayloadPool() = default;

    PayloadPool(const PayloadPool &) = delete;
    PayloadPool &operator=(const PayloadPool &) = delete;

    ~PayloadPool()
    {
        if (liveSlots_ != 0)
            sim::panic("payload pool destroyed with %llu live slots",
                       static_cast<unsigned long long>(liveSlots_));
    }

    /**
     * Box @p value into the cheapest representation: inline when
     * small and trivial, a pooled slot when it fits, one heap
     * allocation otherwise.
     */
    template <typename T>
    PayloadRef
    make(T &&value)
    {
        using V = std::remove_cv_t<std::remove_reference_t<T>>;
        if constexpr (std::is_trivially_copyable_v<V> &&
                      std::is_trivially_default_constructible_v<V> &&
                      sizeof(V) <= PayloadRef::inlineBytes) {
            return PayloadRef::inlineOf<V>(std::forward<T>(value));
        } else if constexpr (sizeof(V) <= slotBytes &&
                             alignof(V) <= alignof(std::max_align_t)) {
            std::uint32_t idx = acquireSlot();
            Slot &s = slots_[idx];
            ::new (static_cast<void *>(s.data)) V(std::forward<T>(value));
            s.destroy = [](void *p) { static_cast<V *>(p)->~V(); };
            PayloadRef ref;
            ref.setTypeMode(detail::payloadTypeId<V>(),
                            PayloadRef::Mode::Pooled);
            ref.store_.pooled.pool = this;
            ref.store_.pooled.slot = idx;
            return ref;
        } else {
            PayloadRef ref;
            ref.setTypeMode(detail::payloadTypeId<V>(),
                            PayloadRef::Mode::Heap);
            // lint: allow(hot-path-alloc) documented fallback: a value
            // too big for the slab slot takes one heap allocation
            ref.store_.heap.ptr = new V(std::forward<T>(value));
            ref.store_.heap.destroy = [](void *p) {
                delete static_cast<V *>(p);
            };
            return ref;
        }
    }

    /** Slots ever allocated (high-water mark diagnostics). */
    std::size_t slotCount() const { return slots_.size(); }

    /** Slots currently holding a live payload. */
    std::uint64_t liveSlots() const { return liveSlots_; }

  private:
    friend class PayloadRef;

    struct Slot
    {
        void (*destroy)(void *) = nullptr; //!< null while free
        alignas(std::max_align_t) unsigned char data[slotBytes];
    };

    std::uint32_t
    acquireSlot()
    {
        ++liveSlots_;
        if (!freeSlots_.empty()) {
            std::uint32_t idx = freeSlots_.back();
            freeSlots_.pop_back();
            return idx;
        }
        slots_.emplace_back();
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }

    void
    releaseSlot(std::uint32_t idx) noexcept
    {
        Slot &s = slots_[idx];
        if (s.destroy) {
            s.destroy(s.data);
            s.destroy = nullptr;
        }
        freeSlots_.push_back(idx);
        --liveSlots_;
    }

    void *slotData(std::uint32_t idx) { return slots_[idx].data; }

    std::deque<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::uint64_t liveSlots_ = 0;
};

template <typename T>
T
PayloadRef::take()
{
    if (!is<T>())
        typeMismatch();
    switch (mode()) {
      case Mode::Inline: {
        // Only small trivially-copyable types are ever stored inline,
        // so this branch is unreachable for other instantiations.
        if constexpr (std::is_trivially_copyable_v<T> &&
                      std::is_trivially_default_constructible_v<T> &&
                      sizeof(T) <= inlineBytes) {
            T out;
            std::memcpy(&out, store_.inlineData, sizeof(T));
            tm_ = 0;
            return out;
        } else {
            typeMismatch();
        }
      }
      case Mode::Pooled: {
        PayloadPool *pool = store_.pooled.pool;
        std::uint32_t idx = store_.pooled.slot;
        T *p = std::launder(
            reinterpret_cast<T *>(pool->slotData(idx)));
        T out = std::move(*p);
        pool->releaseSlot(idx);
        tm_ = 0;
        return out;
      }
      case Mode::Heap: {
        T *p = static_cast<T *>(store_.heap.ptr);
        T out = std::move(*p);
        store_.heap.destroy(store_.heap.ptr);
        tm_ = 0;
        return out;
      }
      case Mode::Empty:
      default:
        typeMismatch();
    }
}

inline void
PayloadRef::reset() noexcept
{
    switch (mode()) {
      case Mode::Pooled:
        store_.pooled.pool->releaseSlot(store_.pooled.slot);
        break;
      case Mode::Heap:
        store_.heap.destroy(store_.heap.ptr);
        break;
      case Mode::Inline:
      case Mode::Empty:
        break;
    }
    tm_ = 0;
}

} // namespace net
} // namespace bluedbm

#endif // BLUEDBM_NET_PAYLOAD_HH
