#include "net/topology.hh"

#include <algorithm>
#include <queue>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace bluedbm {
namespace net {

std::string
Topology::validate() const
{
    if (nodes == 0)
        return "topology has no nodes";
    std::vector<std::vector<bool>> used(
        nodes, std::vector<bool>(portsPerNode, false));
    for (const auto &l : links) {
        if (l.nodeA >= nodes || l.nodeB >= nodes)
            return sim::format("link references node out of range "
                               "(%u-%u, %u nodes)", l.nodeA, l.nodeB,
                               nodes);
        if (l.nodeA == l.nodeB)
            return sim::format("self-loop on node %u", l.nodeA);
        if (l.portA >= portsPerNode || l.portB >= portsPerNode)
            return sim::format("port out of range on link %u:%u-%u:%u",
                               l.nodeA, l.portA, l.nodeB, l.portB);
        if (used[l.nodeA][l.portA])
            return sim::format("port %u of node %u used twice",
                               l.portA, l.nodeA);
        if (used[l.nodeB][l.portB])
            return sim::format("port %u of node %u used twice",
                               l.portB, l.nodeB);
        used[l.nodeA][l.portA] = true;
        used[l.nodeB][l.portB] = true;
    }
    if (nodes == 1)
        return "";
    // Connectivity via BFS.
    std::vector<std::vector<NodeId>> adj(nodes);
    for (const auto &l : links) {
        adj[l.nodeA].push_back(l.nodeB);
        adj[l.nodeB].push_back(l.nodeA);
    }
    std::vector<bool> seen(nodes, false);
    std::queue<NodeId> bfs;
    bfs.push(0);
    seen[0] = true;
    unsigned count = 1;
    while (!bfs.empty()) {
        NodeId v = bfs.front();
        bfs.pop();
        for (NodeId u : adj[v]) {
            if (!seen[u]) {
                seen[u] = true;
                ++count;
                bfs.push(u);
            }
        }
    }
    if (count != nodes)
        return sim::format("network is disconnected (%u of %u nodes "
                           "reachable)", count, nodes);
    return "";
}

namespace {

/** Track next free port per node while building topologies. */
class PortAllocator
{
  public:
    PortAllocator(unsigned nodes, unsigned ports)
        : next_(nodes, 0), ports_(ports)
    {
    }

    std::uint8_t
    alloc(NodeId node)
    {
        if (next_[node] >= ports_)
            sim::fatal("node %u needs more than %u ports", node,
                       ports_);
        return static_cast<std::uint8_t>(next_[node]++);
    }

  private:
    std::vector<unsigned> next_;
    unsigned ports_;
};

void
connect(Topology &t, PortAllocator &ports, NodeId a, NodeId b)
{
    LinkSpec l;
    l.nodeA = a;
    l.portA = ports.alloc(a);
    l.nodeB = b;
    l.portB = ports.alloc(b);
    t.links.push_back(l);
}

} // namespace

Topology
Topology::ring(unsigned n, unsigned lanes_each_dir)
{
    if (n < 3)
        sim::fatal("ring needs at least 3 nodes");
    Topology t;
    t.nodes = n;
    if (2 * lanes_each_dir > t.portsPerNode)
        sim::fatal("ring with %u lanes each way exceeds %u ports",
                   lanes_each_dir, t.portsPerNode);
    PortAllocator ports(n, t.portsPerNode);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned lane = 0; lane < lanes_each_dir; ++lane)
            connect(t, ports, NodeId(i), NodeId((i + 1) % n));
    }
    return t;
}

Topology
Topology::line(unsigned n, unsigned lanes)
{
    if (n < 2)
        sim::fatal("line needs at least 2 nodes");
    Topology t;
    t.nodes = n;
    PortAllocator ports(n, t.portsPerNode);
    for (unsigned i = 0; i + 1 < n; ++i) {
        for (unsigned lane = 0; lane < lanes; ++lane)
            connect(t, ports, NodeId(i), NodeId(i + 1));
    }
    return t;
}

Topology
Topology::mesh2d(unsigned w, unsigned h)
{
    if (w < 2 || h < 2)
        sim::fatal("mesh2d needs at least 2x2 nodes");
    Topology t;
    t.nodes = w * h;
    PortAllocator ports(t.nodes, t.portsPerNode);
    auto id = [w](unsigned x, unsigned y) {
        return NodeId(y * w + x);
    };
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            if (x + 1 < w)
                connect(t, ports, id(x, y), id(x + 1, y));
            if (y + 1 < h)
                connect(t, ports, id(x, y), id(x, y + 1));
        }
    }
    return t;
}

Topology
Topology::distributedStar(unsigned n, unsigned hubs)
{
    if (hubs == 0 || hubs >= n)
        sim::fatal("distributedStar needs 1 <= hubs < nodes");
    Topology t;
    t.nodes = n;
    unsigned leaves_per_hub = (n - hubs + hubs - 1) / hubs;
    if (hubs - 1 + leaves_per_hub > t.portsPerNode)
        sim::fatal("hubs would need %u ports but only %u available",
                   hubs - 1 + leaves_per_hub, t.portsPerNode);
    PortAllocator ports(n, t.portsPerNode);
    // Star centers fully interconnected.
    for (unsigned a = 0; a < hubs; ++a) {
        for (unsigned b = a + 1; b < hubs; ++b)
            connect(t, ports, NodeId(a), NodeId(b));
    }
    // Leaves distributed round-robin, one uplink each.
    for (unsigned leaf = hubs; leaf < n; ++leaf)
        connect(t, ports, NodeId(leaf), NodeId((leaf - hubs) % hubs));
    return t;
}

Topology
Topology::fatTree(unsigned n, unsigned fanout)
{
    if (n < 2 || fanout < 2)
        sim::fatal("fatTree needs n >= 2 and fanout >= 2");
    Topology t;
    t.nodes = n;
    PortAllocator ports(n, t.portsPerNode);
    // Node 0 is the root; node i's parent is (i-1)/fanout. The lane
    // count doubles each level toward the root, capped by the port
    // budget on both ends.
    for (unsigned i = 1; i < n; ++i) {
        NodeId parent = NodeId((i - 1) / fanout);
        // Depth of the child node.
        unsigned depth = 0;
        for (unsigned v = i; v != 0; v = (v - 1) / fanout)
            ++depth;
        unsigned lanes = 1;
        if (depth <= 2)
            lanes = 2; // fatter trunk near the root
        for (unsigned lane = 0; lane < lanes; ++lane)
            connect(t, ports, NodeId(i), parent);
    }
    return t;
}

Topology
Topology::fromConfig(const std::string &text)
{
    Topology t;
    bool have_nodes = false;
    std::istringstream in(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string directive;
        if (!(ls >> directive))
            continue; // blank or comment-only line
        if (directive == "nodes") {
            if (!(ls >> t.nodes) || t.nodes == 0)
                sim::fatal("config line %u: bad node count", lineno);
            have_nodes = true;
        } else if (directive == "ports") {
            if (!(ls >> t.portsPerNode) || t.portsPerNode == 0)
                sim::fatal("config line %u: bad port count", lineno);
        } else if (directive == "link") {
            unsigned a, pa, b, pb;
            if (!(ls >> a >> pa >> b >> pb))
                sim::fatal("config line %u: link needs "
                           "<nodeA> <portA> <nodeB> <portB>", lineno);
            LinkSpec l;
            l.nodeA = NodeId(a);
            l.portA = std::uint8_t(pa);
            l.nodeB = NodeId(b);
            l.portB = std::uint8_t(pb);
            t.links.push_back(l);
        } else {
            sim::fatal("config line %u: unknown directive '%s'",
                       lineno, directive.c_str());
        }
        std::string extra;
        if (ls >> extra)
            sim::fatal("config line %u: trailing junk '%s'", lineno,
                       extra.c_str());
    }
    if (!have_nodes)
        sim::fatal("config is missing the 'nodes' directive");
    std::string err = t.validate();
    if (!err.empty())
        sim::fatal("config describes an invalid topology: %s",
                   err.c_str());
    return t;
}

std::string
Topology::toConfig() const
{
    std::string out;
    out += sim::format("nodes %u\n", nodes);
    out += sim::format("ports %u\n", portsPerNode);
    for (const auto &l : links)
        out += sim::format("link %u %u %u %u\n", l.nodeA, l.portA,
                           l.nodeB, l.portB);
    return out;
}

Topology
Topology::fullyConnected(unsigned n)
{
    if (n < 2)
        sim::fatal("fullyConnected needs at least 2 nodes");
    Topology t;
    t.nodes = n;
    if (n - 1 > t.portsPerNode)
        sim::fatal("fullyConnected(%u) exceeds the port budget", n);
    PortAllocator ports(n, t.portsPerNode);
    for (unsigned a = 0; a < n; ++a) {
        for (unsigned b = a + 1; b < n; ++b)
            connect(t, ports, NodeId(a), NodeId(b));
    }
    return t;
}

} // namespace net
} // namespace bluedbm
