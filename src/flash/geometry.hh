/**
 * @file
 * Flash card geometry and physical addressing.
 *
 * One BlueDBM node hosts two custom flash cards (paper section 5.1).
 * Each card groups NAND chips into buses; every bus transfers data
 * independently, and chips on one bus overlap their array operations
 * but serialize data transfers. Default geometry yields 512 GB/card:
 * 8 buses x 8 chips x 4096 blocks x 256 pages x 8 KB.
 */

#ifndef BLUEDBM_FLASH_GEOMETRY_HH
#define BLUEDBM_FLASH_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace bluedbm {
namespace flash {

/**
 * Static shape of one flash card.
 */
struct Geometry
{
    std::uint32_t buses = 8;          //!< independent channels
    std::uint32_t chipsPerBus = 8;    //!< NAND dies sharing one bus
    std::uint32_t blocksPerChip = 4096;
    std::uint32_t pagesPerBlock = 256;
    std::uint32_t pageSize = 8192;    //!< data bytes per page

    /** Number of chips on the card. */
    std::uint64_t
    chips() const
    {
        return std::uint64_t(buses) * chipsPerBus;
    }

    /** Number of pages on the card. */
    std::uint64_t
    pages() const
    {
        return chips() * blocksPerChip * pagesPerBlock;
    }

    /** Pages per chip. */
    std::uint64_t
    pagesPerChip() const
    {
        return std::uint64_t(blocksPerChip) * pagesPerBlock;
    }

    /** Raw capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return pages() * pageSize;
    }

    /** A small geometry convenient for unit tests. */
    static Geometry
    tiny()
    {
        Geometry g;
        g.buses = 2;
        g.chipsPerBus = 2;
        g.blocksPerChip = 8;
        g.pagesPerBlock = 16;
        g.pageSize = 512;
        return g;
    }
};

/**
 * Physical page address within one flash card.
 */
struct Address
{
    std::uint32_t bus = 0;
    std::uint32_t chip = 0;   //!< within the bus
    std::uint32_t block = 0;  //!< within the chip
    std::uint32_t page = 0;   //!< within the block

    bool
    operator==(const Address &o) const
    {
        return bus == o.bus && chip == o.chip && block == o.block &&
            page == o.page;
    }

    /** Whether this address is inside @p g. */
    [[nodiscard]] bool
    validFor(const Geometry &g) const
    {
        return bus < g.buses && chip < g.chipsPerBus &&
            block < g.blocksPerChip && page < g.pagesPerBlock;
    }

    /** Dense page index in [0, g.pages()). */
    std::uint64_t
    linearize(const Geometry &g) const
    {
        return ((std::uint64_t(bus) * g.chipsPerBus + chip) *
                    g.blocksPerChip + block) * g.pagesPerBlock + page;
    }

    /** Inverse of linearize(). */
    static Address
    fromLinear(const Geometry &g, std::uint64_t linear)
    {
        Address a;
        a.page = static_cast<std::uint32_t>(linear % g.pagesPerBlock);
        linear /= g.pagesPerBlock;
        a.block = static_cast<std::uint32_t>(linear % g.blocksPerChip);
        linear /= g.blocksPerChip;
        a.chip = static_cast<std::uint32_t>(linear % g.chipsPerBus);
        linear /= g.chipsPerBus;
        a.bus = static_cast<std::uint32_t>(linear);
        if (a.bus >= g.buses)
            sim::panic("linear address out of range");
        return a;
    }

    /**
     * Page index striped across buses then chips, so that consecutive
     * indices land on different buses (maximum parallelism, the layout
     * the paper's flash server exploits for sequential streams).
     */
    static Address
    fromStriped(const Geometry &g, std::uint64_t index)
    {
        Address a;
        a.bus = static_cast<std::uint32_t>(index % g.buses);
        index /= g.buses;
        a.chip = static_cast<std::uint32_t>(index % g.chipsPerBus);
        index /= g.chipsPerBus;
        a.page = static_cast<std::uint32_t>(index % g.pagesPerBlock);
        index /= g.pagesPerBlock;
        a.block = static_cast<std::uint32_t>(index);
        if (a.block >= g.blocksPerChip)
            sim::panic("striped address out of range");
        return a;
    }

    /** Human-readable form for diagnostics. */
    std::string
    toString() const
    {
        return sim::format("b%u.c%u.blk%u.p%u", bus, chip, block, page);
    }
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_GEOMETRY_HH
