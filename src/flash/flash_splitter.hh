/**
 * @file
 * Flash Interface Splitter with tag renaming (paper section 3.1.2,
 * figure 3).
 *
 * Several hardware endpoints -- the local in-store processor, host
 * software over PCIe DMA, and remote in-store processors over the
 * integrated network -- share one flash controller. Each attaches to
 * its own Port with a private tag space; the splitter renames port
 * tags onto controller tags and routes completions back. When the
 * controller runs out of tags, commands queue FIFO.
 */

#ifndef BLUEDBM_FLASH_FLASH_SPLITTER_HH
#define BLUEDBM_FLASH_FLASH_SPLITTER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "flash/flash_controller.hh"
#include "flash/types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace flash {

/**
 * Shares one FlashController among multiple tagged clients.
 */
class FlashSplitter : public Client
{
  public:
    /**
     * One endpoint's view of the flash controller. The interface is
     * identical to FlashController's, with tags local to the port.
     */
    class Port
    {
      public:
        /** Sentinel for "no tag". */
        static constexpr Tag noTag = ~Tag(0);

        /** Attach the callback sink for this port. */
        void setClient(Client *client) { client_ = client; }

        /** Port-local tag count. */
        unsigned tagCount() const { return tags_; }

        /** Whether a port-local tag is currently unused. */
        [[nodiscard]] bool
        tagFree(Tag tag) const
        {
            return ctrlTagOf_[tag] == noTag && !queuedTag_[tag];
        }

        /** Issue a command with a port-local tag. */
        void sendCommand(const Command &cmd);

        /** Supply write data for a port-local tag. */
        void sendWriteData(Tag tag, PageBuffer data);

      private:
        friend class FlashSplitter;

        Port(FlashSplitter &owner, unsigned index, unsigned tags)
            : owner_(owner), index_(index), tags_(tags),
              ctrlTagOf_(tags, noTag), queuedTag_(tags, false)
        {
        }

        FlashSplitter &owner_;
        unsigned index_;
        unsigned tags_;
        Client *client_ = nullptr;
        std::vector<Tag> ctrlTagOf_; //!< port tag -> controller tag
        std::vector<bool> queuedTag_;
    };

    /**
     * @param sim  simulation kernel
     * @param ctrl controller to share; the splitter installs itself as
     *             the controller's client
     */
    FlashSplitter(sim::Simulator &sim, FlashController &ctrl);

    /**
     * Create a port with @p tags port-local tags.
     *
     * Ports live as long as the splitter; the returned reference stays
     * valid.
     */
    Port &addPort(unsigned tags);

    /** Number of ports created so far. */
    std::size_t portCount() const { return ports_.size(); }

    /** Commands that had to wait for a free controller tag. */
    std::uint64_t queuedCommands() const { return queuedCommands_; }

    /** @name Client interface (driven by the controller) */
    ///@{
    void readDone(Tag tag, PageBuffer data, Status status) override;
    void writeDataRequest(Tag tag) override;
    void writeDone(Tag tag, Status status) override;
    void eraseDone(Tag tag, Status status) override;
    ///@}

  private:
    struct Owner
    {
        Port *port = nullptr;
        Tag portTag = 0;
    };

    struct Queued
    {
        Port *port;
        Command cmd;
    };

    void issue(Port &port, const Command &cmd);
    void releaseAndRefill(Tag ctrl_tag);

    sim::Simulator &sim_;
    FlashController &ctrl_;
    std::vector<Owner> owner_;       //!< controller tag -> port/tag
    std::vector<Tag> freeCtrlTags_;
    std::deque<Queued> waiting_;
    std::vector<std::unique_ptr<Port>> ports_;
    std::uint64_t queuedCommands_ = 0;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_FLASH_SPLITTER_HH
