#include "flash/ecc.hh"

#include <array>
#include <bit>
#include <cstring>

namespace bluedbm {
namespace flash {

namespace {

/**
 * Codeword layout: positions 1..71, where positions that are powers of
 * two hold the 7 Hamming parity bits and the remaining 64 positions
 * hold data bits in ascending order. Conceptual position 0 holds the
 * overall (DED) parity bit.
 */
struct Layout
{
    std::array<std::uint8_t, 64> dataPos;   //!< data bit -> position
    std::array<std::int8_t, 72> posToData;  //!< position -> data bit
    std::array<std::uint64_t, 7> parityMask; //!< data covered by p_i

    Layout()
    {
        posToData.fill(-1);
        int k = 0;
        for (int pos = 1; pos < 72; ++pos) {
            if ((pos & (pos - 1)) == 0)
                continue; // parity position
            dataPos[k] = static_cast<std::uint8_t>(pos);
            posToData[pos] = static_cast<std::int8_t>(k);
            ++k;
        }
        for (int i = 0; i < 7; ++i) {
            std::uint64_t mask = 0;
            for (int b = 0; b < 64; ++b) {
                if (dataPos[b] & (1 << i))
                    mask |= (1ull << b);
            }
            parityMask[i] = mask;
        }
    }
};

const Layout &
layout()
{
    static const Layout l;
    return l;
}

inline int
parity64(std::uint64_t v)
{
    return std::popcount(v) & 1;
}

std::uint64_t
loadWord(const std::uint8_t *p, std::size_t avail)
{
    std::uint64_t w = 0;
    std::memcpy(&w, p, avail >= 8 ? 8 : avail);
    return w;
}

void
storeWord(std::uint8_t *p, std::size_t avail, std::uint64_t w)
{
    std::memcpy(p, &w, avail >= 8 ? 8 : avail);
}

} // namespace

std::uint8_t
Secded72::encodeWord(std::uint64_t word)
{
    const Layout &l = layout();
    std::uint8_t check = 0;
    int parity_of_parities = 0;
    for (int i = 0; i < 7; ++i) {
        int p = parity64(word & l.parityMask[i]);
        check |= static_cast<std::uint8_t>(p << i);
        parity_of_parities ^= p;
    }
    // Overall parity covers every bit of the codeword (positions
    // 1..71); stored in check bit 7 (conceptual position 0).
    int overall = parity64(word) ^ parity_of_parities;
    check |= static_cast<std::uint8_t>(overall << 7);
    return check;
}

EccResult
Secded72::decodeWord(std::uint64_t &word, std::uint8_t check)
{
    EccResult res;
    std::uint8_t expected = encodeWord(word);
    if (expected == check)
        return res; // clean, fast path

    const Layout &l = layout();

    // Syndrome: XOR of the positions of all set bits in the received
    // codeword. A valid codeword yields zero.
    unsigned syndrome = 0;
    std::uint64_t w = word;
    while (w) {
        int b = std::countr_zero(w);
        w &= w - 1;
        syndrome ^= l.dataPos[b];
    }
    for (int i = 0; i < 7; ++i) {
        if (check & (1 << i))
            syndrome ^= (1u << i);
    }

    // Overall parity across all 72 bits, including the stored DED bit.
    int total = parity64(word);
    total ^= std::popcount(static_cast<unsigned>(check)) & 1;

    if (total == 0) {
        // Even parity but nonzero syndrome: double-bit error.
        res.uncorrectable = true;
        return res;
    }
    if (syndrome == 0) {
        // The overall parity bit itself flipped; data is intact.
        res.correctedBits = 1;
        return res;
    }
    if (syndrome >= 72) {
        // Syndrome points outside the codeword: >= 3 errors.
        res.uncorrectable = true;
        return res;
    }
    if ((syndrome & (syndrome - 1)) == 0) {
        // A parity bit flipped; data is intact.
        res.correctedBits = 1;
        return res;
    }
    int data_bit = l.posToData[syndrome];
    if (data_bit < 0) {
        res.uncorrectable = true;
        return res;
    }
    word ^= (1ull << data_bit);
    res.correctedBits = 1;
    return res;
}

std::vector<std::uint8_t>
Secded72::encode(const std::vector<std::uint8_t> &data)
{
    std::size_t words = (data.size() + 7) / 8;
    std::vector<std::uint8_t> check(words);
    for (std::size_t i = 0; i < words; ++i) {
        std::size_t off = i * 8;
        std::uint64_t w = loadWord(data.data() + off,
                                   data.size() - off);
        check[i] = encodeWord(w);
    }
    return check;
}

EccResult
Secded72::decode(std::vector<std::uint8_t> &data,
                 const std::vector<std::uint8_t> &check)
{
    EccResult res;
    std::size_t words = (data.size() + 7) / 8;
    for (std::size_t i = 0; i < words && i < check.size(); ++i) {
        std::size_t off = i * 8;
        std::size_t avail = data.size() - off;
        std::uint64_t w = loadWord(data.data() + off, avail);
        EccResult r = decodeWord(w, check[i]);
        if (r.correctedBits)
            storeWord(data.data() + off, avail, w);
        res.correctedBits += r.correctedBits;
        res.uncorrectable = res.uncorrectable || r.uncorrectable;
    }
    return res;
}

} // namespace flash
} // namespace bluedbm
