/**
 * @file
 * SECDED Hamming(72,64) error correcting code.
 *
 * The real flash card corrects NAND bit errors on the Artix-7 before
 * data ever leaves the board, presenting "logical error-free access
 * into flash" (paper section 5.1). We implement a genuine single-error-
 * correcting, double-error-detecting extended Hamming code over 64-bit
 * words: weaker than production BCH but a real codec whose correction
 * behaviour is testable bit-for-bit. Raw bit error rates are
 * parameterized, so the (rate x strength) product can be matched to any
 * target uncorrectable-page probability.
 */

#ifndef BLUEDBM_FLASH_ECC_HH
#define BLUEDBM_FLASH_ECC_HH

#include <cstdint>
#include <vector>

namespace bluedbm {
namespace flash {

/**
 * Result of decoding one codeword or page.
 */
struct EccResult
{
    std::uint32_t correctedBits = 0; //!< single-bit errors fixed
    bool uncorrectable = false;      //!< a double error was detected
};

/**
 * Extended Hamming(72,64) codec.
 *
 * Each 64-bit data word is protected by 7 Hamming parity bits plus one
 * overall parity bit. Encoding produces one 8-bit syndrome byte per
 * word; pages carry their check bytes out of band (the page store keeps
 * them alongside the data, as a real card keeps spare-area bytes).
 */
class Secded72
{
  public:
    /** Check bytes needed for a payload of @p data_bytes. */
    static std::size_t
    checkBytes(std::size_t data_bytes)
    {
        return (data_bytes + 7) / 8;
    }

    /**
     * Compute check bytes for @p data.
     *
     * @param data payload; length need not be a multiple of 8
     * @return one check byte per 64-bit word
     */
    static std::vector<std::uint8_t>
    encode(const std::vector<std::uint8_t> &data);

    /**
     * Verify and correct @p data in place against @p check.
     *
     * Single-bit errors per word (in data or check bits) are corrected;
     * double-bit errors are flagged uncorrectable.
     */
    static EccResult
    decode(std::vector<std::uint8_t> &data,
           const std::vector<std::uint8_t> &check);

    /** Encode a single 64-bit word into its 8 check bits. */
    static std::uint8_t encodeWord(std::uint64_t word);

    /**
     * Decode one word.
     *
     * @param word  data word, corrected in place if possible
     * @param check stored check bits
     * @return per-word result
     */
    static EccResult decodeWord(std::uint64_t &word,
                                std::uint8_t check);
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_ECC_HH
