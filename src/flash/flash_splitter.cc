#include "flash/flash_splitter.hh"

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace flash {

void
FlashSplitter::Port::sendCommand(const Command &cmd)
{
    if (cmd.tag >= tags_)
        sim::panic("port tag %u out of range (%u tags)", cmd.tag,
                   tags_);
    if (!tagFree(cmd.tag))
        sim::panic("port %u reuses busy tag %u", index_, cmd.tag);
    owner_.issue(*this, cmd);
}

void
FlashSplitter::Port::sendWriteData(Tag tag, PageBuffer data)
{
    if (tag >= tags_)
        sim::panic("port tag %u out of range", tag);
    Tag ctrl_tag = ctrlTagOf_[tag];
    if (ctrl_tag == noTag)
        sim::panic("write data for unmapped port tag %u", tag);
    owner_.ctrl_.sendWriteData(ctrl_tag, std::move(data));
}

FlashSplitter::FlashSplitter(sim::Simulator &sim, FlashController &ctrl)
    : sim_(sim), ctrl_(ctrl)
{
    ctrl_.setClient(this);
    owner_.resize(ctrl_.tagCount());
    freeCtrlTags_.reserve(ctrl_.tagCount());
    // Hand tags out in ascending order for determinism.
    for (unsigned t = ctrl_.tagCount(); t-- > 0;)
        freeCtrlTags_.push_back(t);
}

FlashSplitter::Port &
FlashSplitter::addPort(unsigned tags)
{
    if (tags == 0)
        sim::fatal("splitter port needs at least one tag");
    ports_.emplace_back(new Port(*this, unsigned(ports_.size()), tags));
    return *ports_.back();
}

void
FlashSplitter::issue(Port &port, const Command &cmd)
{
    if (freeCtrlTags_.empty()) {
        port.queuedTag_[cmd.tag] = true;
        waiting_.push_back(Queued{&port, cmd});
        ++queuedCommands_;
        return;
    }
    Tag ctrl_tag = freeCtrlTags_.back();
    freeCtrlTags_.pop_back();

    owner_[ctrl_tag] = Owner{&port, cmd.tag};
    port.ctrlTagOf_[cmd.tag] = ctrl_tag;
    port.queuedTag_[cmd.tag] = false;

    Command renamed = cmd;
    renamed.tag = ctrl_tag;
    ctrl_.sendCommand(renamed);
}

void
FlashSplitter::releaseAndRefill(Tag ctrl_tag)
{
    Owner &own = owner_[ctrl_tag];
    own.port->ctrlTagOf_[own.portTag] = Port::noTag;
    own.port = nullptr;
    freeCtrlTags_.push_back(ctrl_tag);

    if (!waiting_.empty()) {
        Queued q = waiting_.front();
        waiting_.pop_front();
        issue(*q.port, q.cmd);
    }
}

void
FlashSplitter::readDone(Tag tag, PageBuffer data, Status status)
{
    Owner own = owner_[tag];
    if (!own.port)
        sim::panic("readDone for unowned controller tag %u", tag);
    releaseAndRefill(tag);
    own.port->client_->readDone(own.portTag, std::move(data), status);
}

void
FlashSplitter::writeDataRequest(Tag tag)
{
    Owner &own = owner_[tag];
    if (!own.port)
        sim::panic("writeDataRequest for unowned tag %u", tag);
    own.port->client_->writeDataRequest(own.portTag);
}

void
FlashSplitter::writeDone(Tag tag, Status status)
{
    Owner own = owner_[tag];
    if (!own.port)
        sim::panic("writeDone for unowned controller tag %u", tag);
    releaseAndRefill(tag);
    own.port->client_->writeDone(own.portTag, status);
}

void
FlashSplitter::eraseDone(Tag tag, Status status)
{
    Owner own = owner_[tag];
    if (!own.port)
        sim::panic("eraseDone for unowned controller tag %u", tag);
    releaseAndRefill(tag);
    own.port->client_->eraseDone(own.portTag, status);
}

} // namespace flash
} // namespace bluedbm
