/**
 * @file
 * Timing-accurate model of the NAND array of one flash card: chips
 * that occupy themselves for sense/program/erase times, and buses that
 * serialize data transfers, with ECC applied on the way out.
 *
 * Parallelism model (matches the paper's controller description):
 * chips on different buses are fully independent; chips sharing a bus
 * overlap array operations but serialize page data transfers on the
 * bus; a single chip processes one array operation at a time.
 *
 * Read-priority suspend-resume: a Priority::Read page read arriving
 * at a chip that is mid-program (or mid-erase) may suspend the
 * running operation, sense with priority, and let the operation
 * resume with its remaining time plus Timing::resumeUs -- see
 * Timing for the full contract. Every in-flight array operation is
 * tracked per chip so a suspension can shift the chip's whole
 * scheduled timeline (the parked operation's completion, every
 * queued operation behind it, and an open multi-plane program
 * window as a unit) by the inserted delay.
 */

#ifndef BLUEDBM_FLASH_NAND_ARRAY_HH
#define BLUEDBM_FLASH_NAND_ARRAY_HH

// lint: hot-path

#include <cstdint>
#include <deque>
#include <vector>

#include "flash/geometry.hh"
#include "flash/page_store.hh"
#include "flash/timing.hh"
#include "flash/types.hh"
#include "sim/bandwidth.hh"
#include "sim/inline_function.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace flash {

/**
 * Completion payload for a page read.
 */
struct ReadResult
{
    PageBuffer data;
    Status status = Status::Ok;
    std::uint32_t correctedBits = 0;
};

/**
 * The NAND chips and buses of one flash card.
 */
class NandArray
{
  public:
    /** Completion callbacks: move-only, SBO -- a NAND op retires
     * millions of times per simulated second, so captures live in
     * the wrapper's cache line instead of the heap. */
    using ReadDone = sim::InlineFunction<void(ReadResult)>;
    using StatusDone = sim::InlineFunction<void(Status)>;
    using Thunk = sim::InlineFunction<void()>;

    /**
     * @param sim    simulation kernel
     * @param geo    card geometry
     * @param timing NAND/bus timing parameters
     * @param seed   synthetic-content / error-injection seed
     */
    NandArray(sim::Simulator &sim, const Geometry &geo,
              const Timing &timing, std::uint64_t seed = 1);

    /** Card geometry. */
    const Geometry &geometry() const { return store_.geometry(); }

    /** Backing store (for test inspection and preloading). */
    PageStore &store() { return store_; }

    /**
     * Start a page read; @p done fires when the last byte has crossed
     * the bus.
     *
     * The page contents are latched when the array sense actually
     * happens, not when the read is issued: a read ordered behind a
     * program or erase (FIFO or after the suspension budget is
     * spent) observes the completed operation's bytes. A
     * Priority::Read read may suspend an in-flight program/erase on
     * the chip (see Timing); Priority::Background reads always
     * queue FIFO.
     *
     * @p offset / @p len select partial page read-out (NAND random
     * data-out): the sense still costs full tR, but only the ECC
     * words covering [offset, offset + len) cross the bus, and
     * ReadResult::data holds exactly those @p len bytes. len 0 (the
     * default) reads the whole page.
     *
     * @p trace (sim::Tracer handle; 0 = untraced) hangs a
     * `nand.read` leaf span -- plus `nand.suspend` / `nand.resume` /
     * `nand.insert` marks when this read jumps chip work -- off the
     * issuing layer's span.
     */
    void read(const Address &addr, ReadDone done,
              Priority pri = Priority::Read,
              std::uint32_t offset = 0, std::uint32_t len = 0,
              std::uint64_t trace = 0);

    /**
     * Start a page write with data in hand; @p done fires when the
     * program completes.
     *
     * @p group is the program-coalescing batch id (Command::group).
     * Writes of the same non-zero group landing on one chip overlap
     * their plane programs (up to Timing::planesPerChip pages per
     * window) instead of serializing one tPROG each; every page
     * still takes a full tPROG from the moment its data arrived,
     * and each page's data still crosses the bus individually.
     * group 0 programs alone.
     */
    void write(const Address &addr, PageBuffer data,
               StatusDone done,
               std::uint32_t group = 0,
               Priority pri = Priority::Read,
               std::uint64_t trace = 0);

    /** Start a block erase. */
    void erase(const Address &addr, StatusDone done,
               Priority pri = Priority::Background,
               std::uint64_t trace = 0);

    /**
     * Raw NAND bit error rate applied to data read off the array
     * (errors are then corrected -- or not -- by the SECDED code).
     */
    void setBitErrorRate(double ber) { bitErrorRate_ = ber; }

    /**
     * Wear-driven bit errors: on top of the flat rate, a page read
     * from a block with PageStore erase count `n` sees an extra
     * `ber0 * (1 + (n / knee)^alpha)` raw BER, evaluated when the
     * sense latches (a block erased between issue and sense is read
     * at its new wear level). `ber0 = 0` (the default) disables the
     * model entirely so fresh-flash figures are untouched.
     */
    void
    setWearModel(double ber0, std::uint32_t knee, double alpha)
    {
        wearBer0_ = ber0;
        wearKnee_ = knee == 0 ? 1 : knee;
        wearAlpha_ = alpha;
    }

    /** Raw BER a sense of @p addr would see right now (flat rate
     * plus the wear curve at the block's current erase count). */
    double effectiveBitErrorRate(const Address &addr) const;

    /** Always run the ECC decoder, even when no errors are injected. */
    void setAlwaysDecode(bool on) { alwaysDecode_ = on; }

    /** Tick at which the given chip becomes idle. */
    sim::Tick
    chipBusyUntil(std::uint32_t bus, std::uint32_t chip) const
    {
        return chips_[bus * geometry().chipsPerBus + chip].busyUntil;
    }

    /**
     * Tick at which the bus's current data transfer completes (the
     * bus may hold further queued transfers behind it; see
     * queuedTransfers()). Feeds the suspension heuristic: a read
     * whose delivery is bus-bound gains nothing from suspending a
     * program, so the array leaves the program alone.
     */
    sim::Tick
    busBusyUntil(std::uint32_t bus) const
    {
        return buses_[bus].freeAt;
    }

    /** Transfers queued (not started) on @p bus right now. */
    std::size_t
    queuedTransfers(std::uint32_t bus) const
    {
        return buses_[bus].ready.size();
    }

    /** @name Statistics
     *
     * Registry-backed (sim.metrics(), names `nand.*` labeled by
     * array instance); these accessors are thin reads of the same
     * cells the registry exposes, kept for existing callers.
     */
    ///@{
    std::uint64_t pagesRead() const { return pagesRead_.value(); }
    std::uint64_t pagesWritten() const { return pagesWritten_.value(); }
    /** Grouped writes that joined an already-open program window on
     * their chip instead of paying their own tPROG. */
    std::uint64_t coalescedPrograms() const { return coalescedPrograms_.value(); }
    std::uint64_t blocksErased() const { return blocksErased_.value(); }
    std::uint64_t bitsCorrected() const { return bitsCorrected_.value(); }
    std::uint64_t uncorrectablePages() const { return uncorrectable_.value(); }
    /** Raw bit flips injected into sensed data (pre-ECC). */
    std::uint64_t bitsInjected() const { return bitsInjected_.value(); }
    /** Priority::Background page reads (maintenance traffic). */
    std::uint64_t backgroundReads() const { return backgroundReads_.value(); }
    /** Priority::Background page writes (maintenance traffic). */
    std::uint64_t backgroundWrites() const { return backgroundWrites_.value(); }
    /** Priority::Background block erases (maintenance traffic). */
    std::uint64_t backgroundErases() const { return backgroundErases_.value(); }
    /** Reads served by suspending an in-flight program window (one
     * count per read that jumped, including joins of an already
     * open suspension window). */
    std::uint64_t suspendedPrograms() const { return suspendedPrograms_.value(); }
    /** Program windows that were parked and later resumed (one
     * count per suspension window opened on a program). */
    std::uint64_t resumedPrograms() const { return resumedPrograms_.value(); }
    /** Reads served by suspending an in-flight erase. */
    std::uint64_t suspendedErases() const { return suspendedErases_.value(); }
    /** Erases that were parked and later resumed. */
    std::uint64_t resumedErases() const { return resumedErases_.value(); }
    /** Queued (not-yet-started) programs/erases displaced behind a
     * priority read by queue insertion -- the no-penalty sibling of
     * suspension, charged against the same per-op budget. */
    std::uint64_t displacedPrograms() const { return displacedPrograms_.value(); }
    ///@}

  private:
    /**
     * Work-conserving per-bus transfer scheduler: pages whose array
     * sense has completed queue here and the bus serves them in
     * readiness order, never idling while any chip has data waiting.
     * freeAt feeds the suspension heuristic (busBusyUntil()).
     */
    struct BusState
    {
        sim::Tick freeAt = 0;
        std::deque<Thunk> ready;
        /** Wire time of the queued (not started) transfers; with
         * partial read-out their sizes differ wildly, so the
         * suspension heuristic sums real ticks instead of guessing
         * from a count. */
        sim::Tick queuedTicks = 0;
        bool busy = false;
    };

    /**
     * One array operation scheduled on a chip: a sense, program or
     * erase with its planned [start, end) array occupancy and the
     * action to run at completion. Tracked so a suspension can
     * shift the chip's timeline: the parked program/erase extends
     * its end (charging one suspension), queued operations behind
     * it displace whole, and the completion event is rescheduled.
     */
    struct ChipOp
    {
        std::uint64_t id = 0;
        Op kind = Op::ReadPage;
        sim::Tick start = 0;
        sim::Tick end = 0;
        unsigned suspends = 0;       //!< suspensions charged so far
        sim::EventId event = sim::invalidEventId;
        Thunk fire;                  //!< runs when the array op ends
    };

    /** Per-chip schedule: end of all planned work, the open
     * suspension window's sense frontier, and the in-flight ops. */
    struct ChipCtl
    {
        sim::Tick busyUntil = 0;
        /** End of the last priority sense of the open suspension
         * window; now < senseFrontier means the chip's running
         * program/erase is currently parked. */
        sim::Tick senseFrontier = 0;
        std::vector<ChipOp> ops;
    };

    std::size_t
    chipIndex(const Address &a) const
    {
        return a.bus * geometry().chipsPerBus + a.chip;
    }

    /** Queue a transfer of @p wire_bytes on @p bus; @p deliver runs
     * when the last byte has crossed. */
    void busTransfer(std::uint32_t bus, std::uint64_t wire_bytes,
                     Thunk deliver);

    /** Start the next queued transfer if the bus is idle. */
    void busPump(std::uint32_t bus);

    /** Register an array op on chip @p ci and schedule its
     * completion. */
    void addChipOp(std::size_t ci, Op kind, sim::Tick start,
                   sim::Tick end, Thunk fire);

    /** An op's completion event fired: retire it and run @p fire. */
    void opComplete(std::size_t ci, std::uint64_t id);

    /**
     * Whether the program/erase occupying chip @p ci at @p now can
     * absorb one more suspension (every member of an open program
     * window must have budget; they are charged as a unit).
     * @p is_erase reports the unit kind for stats.
     */
    [[nodiscard]] bool suspendableUnit(const ChipCtl &chip, sim::Tick now,
                         bool &is_erase) const;

    /**
     * Insert @p delta ticks into chip @p ci's timeline at @p now:
     * the running program/erase unit extends its end and is charged
     * one suspension, queued ops displace whole, an open program
     * window's end shifts with its members, and every completion
     * event is rescheduled. Running senses never move.
     */
    void shiftChip(std::size_t ci, sim::Tick now, sim::Tick delta);

    /** Whether suspending for a read on (ci, bus) would actually
     * improve its delivery (false when the read is bus-bound). */
    [[nodiscard]] bool worthSuspending(const ChipCtl &chip, std::uint32_t bus,
                         sim::Tick now) const;

    /** Corrupt @p data / @p check in place at raw BER @p rate (the
     * flat rate plus any wear term, resolved at sense time). */
    std::uint32_t injectErrors(PageBuffer &data,
                               std::vector<std::uint8_t> &check,
                               double rate);

    sim::Simulator &sim_;
    Timing timing_;
    PageStore store_;
    sim::Rng errorRng_;
    double bitErrorRate_ = 0.0;
    double wearBer0_ = 0.0;
    std::uint32_t wearKnee_ = 1;
    double wearAlpha_ = 1.0;
    bool alwaysDecode_ = false;

    /**
     * Open multi-plane program window of one chip: grouped writes
     * whose data arrives while the same group's program is still
     * running on the chip complete with that program instead of
     * starting their own (bounded by Timing::planesPerChip).
     */
    struct ProgramWindow
    {
        std::uint32_t group = 0;
        /** Tick the window's array work starts (may be in the
         * future when the lead write queued behind other chip
         * work); joined pages share it so a queued window is never
         * mistaken for a running one. */
        sim::Tick progStart = 0;
        sim::Tick progEnd = 0;
        unsigned pages = 0;
    };

    std::vector<ChipCtl> chips_;
    std::vector<ProgramWindow> programWindows_;
    std::vector<BusState> buses_;
    std::uint64_t nextOpId_ = 1;
    /** Reused by the queue-insertion scan (no per-read allocation
     * once warmed up). */
    std::vector<std::size_t> orderScratch_;

    /** Construction serial among NAND arrays of this simulation;
     * the "inst" label of every nand.* metric below. */
    unsigned inst_;

    // Statistics cells live in the simulator's metrics registry
    // (registered at construction, labeled inst=<array serial>);
    // the references bump exactly as cheaply as the plain members
    // they replaced.
    sim::Counter &pagesRead_;
    sim::Counter &pagesWritten_;
    sim::Counter &coalescedPrograms_;
    sim::Counter &blocksErased_;
    sim::Counter &bitsCorrected_;
    sim::Counter &uncorrectable_;
    sim::Counter &bitsInjected_;
    sim::Counter &backgroundReads_;
    sim::Counter &backgroundWrites_;
    sim::Counter &backgroundErases_;
    sim::Counter &suspendedPrograms_;
    sim::Counter &resumedPrograms_;
    sim::Counter &suspendedErases_;
    sim::Counter &resumedErases_;
    sim::Counter &displacedPrograms_;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_NAND_ARRAY_HH
