/**
 * @file
 * Timing-accurate model of the NAND array of one flash card: chips
 * that occupy themselves for sense/program/erase times, and buses that
 * serialize data transfers, with ECC applied on the way out.
 *
 * Parallelism model (matches the paper's controller description):
 * chips on different buses are fully independent; chips sharing a bus
 * overlap array operations but serialize page data transfers on the
 * bus; a single chip processes one array operation at a time.
 */

#ifndef BLUEDBM_FLASH_NAND_ARRAY_HH
#define BLUEDBM_FLASH_NAND_ARRAY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "flash/geometry.hh"
#include "flash/page_store.hh"
#include "flash/timing.hh"
#include "flash/types.hh"
#include "sim/bandwidth.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace flash {

/**
 * Completion payload for a page read.
 */
struct ReadResult
{
    PageBuffer data;
    Status status = Status::Ok;
    std::uint32_t correctedBits = 0;
};

/**
 * The NAND chips and buses of one flash card.
 */
class NandArray
{
  public:
    /**
     * @param sim    simulation kernel
     * @param geo    card geometry
     * @param timing NAND/bus timing parameters
     * @param seed   synthetic-content / error-injection seed
     */
    NandArray(sim::Simulator &sim, const Geometry &geo,
              const Timing &timing, std::uint64_t seed = 1);

    /** Card geometry. */
    const Geometry &geometry() const { return store_.geometry(); }

    /** Backing store (for test inspection and preloading). */
    PageStore &store() { return store_; }

    /**
     * Start a page read; @p done fires when the last byte has crossed
     * the bus.
     */
    void read(const Address &addr,
              std::function<void(ReadResult)> done);

    /**
     * Start a page write with data in hand; @p done fires when the
     * program completes.
     *
     * @p group is the program-coalescing batch id (Command::group).
     * Writes of the same non-zero group landing on one chip overlap
     * their plane programs (up to Timing::planesPerChip pages per
     * window) instead of serializing one tPROG each; every page
     * still takes a full tPROG from the moment its data arrived,
     * and each page's data still crosses the bus individually.
     * group 0 programs alone.
     */
    void write(const Address &addr, PageBuffer data,
               std::function<void(Status)> done,
               std::uint32_t group = 0);

    /** Start a block erase. */
    void erase(const Address &addr, std::function<void(Status)> done);

    /**
     * Raw NAND bit error rate applied to data read off the array
     * (errors are then corrected -- or not -- by the SECDED code).
     */
    void setBitErrorRate(double ber) { bitErrorRate_ = ber; }

    /** Always run the ECC decoder, even when no errors are injected. */
    void setAlwaysDecode(bool on) { alwaysDecode_ = on; }

    /** Tick at which the given chip becomes idle. */
    sim::Tick
    chipBusyUntil(std::uint32_t bus, std::uint32_t chip) const
    {
        return chipBusy_[bus * geometry().chipsPerBus + chip];
    }

    /** @name Statistics */
    ///@{
    std::uint64_t pagesRead() const { return pagesRead_; }
    std::uint64_t pagesWritten() const { return pagesWritten_; }
    /** Grouped writes that joined an already-open program window on
     * their chip instead of paying their own tPROG. */
    std::uint64_t coalescedPrograms() const { return coalescedPrograms_; }
    std::uint64_t blocksErased() const { return blocksErased_; }
    std::uint64_t bitsCorrected() const { return bitsCorrected_; }
    std::uint64_t uncorrectablePages() const { return uncorrectable_; }
    ///@}

  private:
    /**
     * Work-conserving per-bus transfer scheduler: pages whose array
     * sense has completed queue here and the bus serves them in
     * readiness order, never idling while any chip has data waiting.
     */
    struct BusState
    {
        sim::Tick freeAt = 0;
        std::deque<std::function<void()>> ready;
        bool busy = false;
    };

    std::size_t
    chipIndex(const Address &a) const
    {
        return a.bus * geometry().chipsPerBus + a.chip;
    }

    /** Queue a transfer of @p wire_bytes on @p bus; @p deliver runs
     * when the last byte has crossed. */
    void busTransfer(std::uint32_t bus, std::uint64_t wire_bytes,
                     std::function<void()> deliver);

    /** Start the next queued transfer if the bus is idle. */
    void busPump(std::uint32_t bus);

    /** Corrupt @p data / @p check in place per the bit error rate. */
    std::uint32_t injectErrors(PageBuffer &data,
                               std::vector<std::uint8_t> &check);

    sim::Simulator &sim_;
    Timing timing_;
    PageStore store_;
    sim::Rng errorRng_;
    double bitErrorRate_ = 0.0;
    bool alwaysDecode_ = false;

    /**
     * Open multi-plane program window of one chip: grouped writes
     * whose data arrives while the same group's program is still
     * running on the chip complete with that program instead of
     * starting their own (bounded by Timing::planesPerChip).
     */
    struct ProgramWindow
    {
        std::uint32_t group = 0;
        sim::Tick progEnd = 0;
        unsigned pages = 0;
    };

    std::vector<sim::Tick> chipBusy_;
    std::vector<ProgramWindow> programWindows_;
    std::vector<BusState> buses_;

    std::uint64_t pagesRead_ = 0;
    std::uint64_t pagesWritten_ = 0;
    std::uint64_t coalescedPrograms_ = 0;
    std::uint64_t blocksErased_ = 0;
    std::uint64_t bitsCorrected_ = 0;
    std::uint64_t uncorrectable_ = 0;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_NAND_ARRAY_HH
