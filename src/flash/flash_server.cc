#include "flash/flash_server.hh"

// lint: hot-path

#include <string>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace flash {

FlashServer::FlashServer(sim::Simulator &sim,
                         FlashSplitter::Port &port,
                         unsigned interfaces, unsigned queue_depth)
    : sim_(sim), port_(port), depth_(queue_depth),
      inst_(sim.metrics().nextInstance("flash_server")),
      injectedWriteFaults_(sim.metrics().counter(
          "flash.injected_write_faults",
          {{"inst", std::to_string(inst_)}})),
      injectedReadFaults_(sim.metrics().counter(
          "flash.injected_read_faults",
          {{"inst", std::to_string(inst_)}})),
      injectedReadDrops_(sim.metrics().counter(
          "flash.injected_read_faults",
          {{"inst", std::to_string(inst_)}, {"mode", "drop"}})),
      injectedReadDelays_(sim.metrics().counter(
          "flash.injected_read_faults",
          {{"inst", std::to_string(inst_)}, {"mode", "delay"}})),
      injectedReadUncorrectable_(sim.metrics().counter(
          "flash.injected_read_faults",
          {{"inst", std::to_string(inst_)},
           {"mode", "uncorrectable"}})),
      retriedReads_(sim.metrics().counter(
          "flash.read_retries",
          {{"inst", std::to_string(inst_)}})),
      retrySuccesses_(sim.metrics().counter(
          "flash.read_retry_successes",
          {{"inst", std::to_string(inst_)}})),
      retryFailures_(sim.metrics().counter(
          "flash.read_retry_failures",
          {{"inst", std::to_string(inst_)}})),
      batchedWrites_(sim.metrics().counter(
          "flash.batched_writes",
          {{"inst", std::to_string(inst_)}})),
      stageQueueRead_(sim.metrics().histogram(
          "kv.stage.flash_queue", {{"class", "read"}})),
      stageQueueBg_(sim.metrics().histogram(
          "kv.stage.flash_queue", {{"class", "bg"}})),
      stageNandRead_(sim.metrics().histogram(
          "kv.stage.nand", {{"class", "read"}})),
      stageNandBg_(sim.metrics().histogram(
          "kv.stage.nand", {{"class", "bg"}}))
{
    if (interfaces == 0 || queue_depth == 0)
        sim::fatal("FlashServer needs >=1 interface and depth");
    if (interfaces * queue_depth > port.tagCount())
        sim::fatal("FlashServer needs %u tags but port has %u",
                   interfaces * queue_depth, port.tagCount());
    // Direct construction: Interface holds move-only Jobs in a
    // deque, so resize()'s copy-relocation path must never be
    // instantiated. Neither vector grows after this.
    ifcs_ = std::vector<Interface>(interfaces);
    tagInfo_ = std::vector<TagInfo>(interfaces * queue_depth);
    port_.setClient(this);
    for (unsigned i = 0; i < interfaces; ++i) {
        // Live queue depth as a computed gauge: no shadow counter
        // to keep in sync, snapshots just call queueLength().
        sim.metrics().registerGauge(
            "flash.queue_len",
            {{"inst", std::to_string(inst_)},
             {"ifc", std::to_string(i)}},
            [this, i]() { return double(queueLength(i)); });
    }
    sim.metrics().registerGauge(
        "flash.staged_writes", {{"inst", std::to_string(inst_)}},
        [this]() { return double(stagedTotal_); });
}

void
FlashServer::defineHandle(std::uint32_t handle,
                          std::vector<Address> pages)
{
    atu_[handle] = std::move(pages);
}

void
FlashServer::dropHandle(std::uint32_t handle)
{
    atu_.erase(handle);
}

const std::vector<Address> *
FlashServer::handlePages(std::uint32_t handle) const
{
    auto it = atu_.find(handle);
    return it == atu_.end() ? nullptr : &it->second;
}

void
FlashServer::streamRead(unsigned ifc, std::uint32_t handle,
                        std::uint64_t first, std::uint64_t count,
                        PageSink sink, Priority pri)
{
    if (ifc >= ifcs_.size())
        sim::panic("interface %u out of range", ifc);
    auto it = atu_.find(handle);
    if (it == atu_.end())
        sim::fatal("streamRead on undefined handle %u", handle);
    const auto &pages = it->second;
    if (first + count > pages.size())
        sim::fatal("streamRead past end of handle %u "
                   "(%llu + %llu > %zu)", handle,
                   static_cast<unsigned long long>(first),
                   static_cast<unsigned long long>(count),
                   pages.size());

    if (count == 0)
        return;
    std::uint32_t sid = nextStreamId_++;
    if (nextStreamId_ == 0)
        nextStreamId_ = 1;
    streams_.emplace(sid, StreamState{std::move(sink), count});
    for (std::uint64_t i = 0; i < count; ++i) {
        Job job;
        job.op = Op::ReadPage;
        job.addr = pages[first + i];
        job.streamId = sid;
        job.pri = pri;
        job.enqueued = sim_.now();
        ifcs_[ifc].pending.push_back(std::move(job));
    }
    pump(ifc);
}

void
FlashServer::readPage(unsigned ifc, const Address &addr, PageSink sink,
                      Priority pri, std::uint32_t offset,
                      std::uint32_t len, std::uint64_t trace)
{
    if (ifc >= ifcs_.size())
        sim::panic("interface %u out of range", ifc);
    Job job;
    job.op = Op::ReadPage;
    job.addr = addr;
    job.pageSink = std::move(sink);
    job.pri = pri;
    job.readOffset = offset;
    job.readLen = len;
    job.trace = trace;
    job.enqueued = sim_.now();
    job.queueSpan =
        sim_.tracer().beginSpan(trace, "flash.queue", job.enqueued);
    ifcs_[ifc].pending.push_back(std::move(job));
    pump(ifc);
}

void
FlashServer::writePage(unsigned ifc, const Address &addr,
                       PageBuffer data, WriteSink sink, Priority pri,
                       std::uint64_t trace)
{
    if (ifc >= ifcs_.size())
        sim::panic("interface %u out of range", ifc);
    Job job;
    job.op = Op::WritePage;
    job.addr = addr;
    job.writeData = std::move(data);
    job.writeSink = std::move(sink);
    job.pri = pri;
    job.trace = trace;
    job.enqueued = sim_.now();
    job.queueSpan =
        sim_.tracer().beginSpan(trace, "flash.queue", job.enqueued);
    if (ifcs_[ifc].batchMax != 0) {
        stageWrite(ifc, std::move(job));
        return;
    }
    ifcs_[ifc].pending.push_back(std::move(job));
    pump(ifc);
}

void
FlashServer::enableWriteBatching(unsigned ifc, unsigned max_batch,
                                 sim::Tick window)
{
    if (ifc >= ifcs_.size())
        sim::panic("interface %u out of range", ifc);
    if (max_batch < 2)
        sim::fatal("write batching needs max_batch >= 2");
    Interface &itf = ifcs_[ifc];
    itf.batchMax = max_batch;
    itf.batchWindow = window;
}

void
FlashServer::stageWrite(unsigned ifc, Job job)
{
    Interface &itf = ifcs_[ifc];
    std::uint32_t bus = job.addr.bus;
    if (bus >= itf.writeLoad.size())
        itf.writeLoad.resize(bus + 1, 0);
    // No same-bus write ahead: this write pays no contention, so
    // staging could only add latency. Issue it untouched. (A log's
    // tail-page chain round-robins buses, so the serialized
    // latency-critical chain always takes this path.)
    if (itf.writeLoad[bus] == 0) {
        ++itf.writeLoad[bus];
        itf.pending.push_back(std::move(job));
        pump(ifc);
        return;
    }
    // A write to this bus is already staged, queued or in flight:
    // this one would wait on the bus regardless, so gather it for
    // a shared program window instead.
    ++itf.writeLoad[bus];
    if (bus >= itf.staged.size())
        itf.staged.resize(bus + 1);
    auto &slot = itf.staged[bus];
    slot.push_back(std::move(job));
    ++itf.stagedCount;
    ++stagedTotal_;
    if (slot.size() >= itf.batchMax) {
        flushBatch(ifc, bus);
        return;
    }
    if (slot.size() == 1) {
        // Bounded wait: the batch flushes when the window expires
        // even if neither the size cap nor the blocking write's
        // completion got there first. A stale timer after an early
        // flush is harmless -- it just flushes whatever has
        // restaged since.
        sim_.scheduleAfter(itf.batchWindow, [this, ifc, bus]() {
            flushBatch(ifc, bus);
        });
    }
}

void
FlashServer::flushBatch(unsigned ifc, std::uint32_t bus)
{
    Interface &itf = ifcs_[ifc];
    if (bus >= itf.staged.size() || itf.staged[bus].empty())
        return;
    std::vector<Job> jobs = std::move(itf.staged[bus]);
    itf.staged[bus].clear();
    itf.stagedCount -= unsigned(jobs.size());
    stagedTotal_ -= unsigned(jobs.size());
    if (jobs.size() > 1) {
        // One command group: the NAND lets these share a program
        // window per chip (multi-plane one-pass program).
        std::uint32_t group = nextGroup_++;
        if (nextGroup_ == 0)
            nextGroup_ = 1;
        for (Job &j : jobs)
            j.group = group;
        batchedWrites_.inc(jobs.size());
    }
    for (Job &j : jobs)
        itf.pending.push_back(std::move(j));
    pump(ifc);
}

void
FlashServer::eraseBlock(unsigned ifc, const Address &addr,
                        WriteSink sink, Priority pri,
                        std::uint64_t trace)
{
    if (ifc >= ifcs_.size())
        sim::panic("interface %u out of range", ifc);
    Job job;
    job.op = Op::EraseBlock;
    job.addr = addr;
    job.writeSink = std::move(sink);
    job.pri = pri;
    job.trace = trace;
    job.enqueued = sim_.now();
    job.queueSpan =
        sim_.tracer().beginSpan(trace, "flash.queue", job.enqueued);
    ifcs_[ifc].pending.push_back(std::move(job));
    pump(ifc);
}

unsigned
FlashServer::queueLength(unsigned ifc) const
{
    const Interface &itf = ifcs_.at(ifc);
    return unsigned(itf.pending.size()) + itf.inFlight +
        itf.stagedCount;
}

void
FlashServer::pump(unsigned ifc)
{
    Interface &itf = ifcs_[ifc];
    while (itf.inFlight < depth_ && !itf.pending.empty()) {
        // Find a free tag in this interface's tag window.
        Tag tag = FlashSplitter::Port::noTag;
        for (unsigned t = 0; t < depth_; ++t) {
            if (!tagInfo_[tagBase(ifc) + t].busy) {
                tag = tagBase(ifc) + t;
                break;
            }
        }
        if (tag == FlashSplitter::Port::noTag)
            sim::panic("inFlight below depth but no free tag");

        TagInfo &info = tagInfo_[tag];
        info.busy = true;
        info.ifc = ifc;
        info.job = std::move(itf.pending.front());
        info.stream = streamOf(info.job.op, info.job.pri);
        info.seq = itf.nextIssueSeq[info.stream]++;
        itf.pending.pop_front();
        ++itf.inFlight;

        // Stage boundary: the job leaves the queue. Always-on
        // histogram; the spans only exist for traced ops.
        sim::Tick now = sim_.now();
        info.issued = now;
        (info.job.pri == Priority::Read ? stageQueueRead_
                                        : stageQueueBg_)
            .record(now - info.job.enqueued);
        if (info.job.queueSpan != 0) {
            sim_.tracer().endSpan(info.job.queueSpan, now);
            info.job.queueSpan = 0;
        }
        info.opSpan =
            sim_.tracer().beginSpan(info.job.trace, "flash.op", now);

        if (info.job.op == Op::WritePage && writeFault_ &&
            writeFault_(info.job.addr)) {
            // Injected program failure: the command never reaches
            // the card, so the page keeps its previous contents.
            injectedWriteFaults_.inc();
            sim_.scheduleAfter(0, [this, tag]() {
                complete(tag, PageBuffer{}, Status::IllegalWrite);
            });
            continue;
        }

        Command cmd;
        cmd.op = info.job.op;
        cmd.addr = info.job.addr;
        cmd.tag = tag;
        cmd.group = info.job.group;
        cmd.pri = info.job.pri;
        cmd.readOffset = info.job.readOffset;
        cmd.readLen = info.job.readLen;
        cmd.trace = info.opSpan;
        port_.sendCommand(cmd);
    }
}

void
FlashServer::complete(Tag tag, PageBuffer data, Status status)
{
    TagInfo &info = tagInfo_[tag];
    if (!info.busy)
        sim::panic("completion for idle tag %u", tag);
    unsigned ifc = info.ifc;
    Interface &itf = ifcs_[ifc];
    bool write_done = info.job.op == Op::WritePage;
    std::uint32_t bus = info.job.addr.bus;

    // Stage boundary: NAND service time (issue to completion,
    // including any read-fault delay the response absorbed).
    sim::Tick now = sim_.now();
    (info.job.pri == Priority::Read ? stageNandRead_ : stageNandBg_)
        .record(now - info.issued);
    if (info.opSpan != 0) {
        sim_.tracer().endSpan(info.opSpan, now);
        info.opSpan = 0;
    }

    Completion done;
    done.job = std::move(info.job);
    done.data = std::move(data);
    done.status = status;
    itf.reorder[info.stream].emplace(info.seq, std::move(done));

    info.busy = false;
    --itf.inFlight;

    if (write_done && itf.batchMax != 0 &&
        bus < itf.writeLoad.size() && itf.writeLoad[bus] > 0)
        --itf.writeLoad[bus];

    deliver(ifc);
    pump(ifc);
    // The write that was blocking this bus completed: flush the
    // batch gathered behind it rather than waiting out the window.
    if (write_done && itf.batchMax != 0)
        flushBatch(ifc, bus);
}

void
FlashServer::deliver(unsigned ifc)
{
    Interface &itf = ifcs_[ifc];
    // Page buffers restore FIFO order per stream: only the next
    // sequence number of each class may leave its reorder buffer.
    // Reads drain independently of writes/erases, so a read never
    // waits on a slow (possibly suspended-and-resumed) program's
    // completion slot.
    for (unsigned stream = 0; stream < deliveryStreams; ++stream) {
        while (true) {
            auto it = itf.reorder[stream].find(
                itf.nextDeliverSeq[stream]);
            if (it == itf.reorder[stream].end())
                break;
            Completion c = std::move(it->second);
            itf.reorder[stream].erase(it);
            ++itf.nextDeliverSeq[stream];
            if (c.job.op == Op::ReadPage) {
                if (c.job.streamId != 0) {
                    auto sit = streams_.find(c.job.streamId);
                    if (sit == streams_.end())
                        sim::panic("page for unknown stream %u",
                                   c.job.streamId);
                    // The sink may reenter streamRead() and rehash
                    // streams_ (iterators die, value references
                    // survive): retire the slot before invoking,
                    // and never touch the iterator after the call.
                    StreamState &st = sit->second;
                    bool last = --st.remaining == 0;
                    if (last) {
                        PageSink sink = std::move(st.sink);
                        streams_.erase(sit);
                        if (!c.job.dropped)
                            sink(std::move(c.data), c.status);
                    } else if (!c.job.dropped) {
                        st.sink(std::move(c.data), c.status);
                    }
                } else if (c.job.pageSink) {
                    c.job.pageSink(std::move(c.data), c.status);
                }
            } else {
                if (c.job.writeSink)
                    c.job.writeSink(c.status);
            }
        }
    }
}

void
FlashServer::resendRead(Tag tag)
{
    TagInfo &info = tagInfo_[tag];
    Command cmd;
    cmd.op = info.job.op;
    cmd.addr = info.job.addr;
    cmd.tag = tag;
    cmd.group = info.job.group;
    cmd.pri = info.job.pri;
    cmd.readOffset = info.job.readOffset;
    cmd.readLen = info.job.readLen;
    cmd.trace = info.opSpan;
    port_.sendCommand(cmd);
}

void
FlashServer::readDone(Tag tag, PageBuffer data, Status status)
{
    TagInfo &info = tagInfo_[tag];
    if (readFault_ && info.busy && info.job.op == Op::ReadPage) {
        ReadFaultAction act = readFault_(info.job.addr);
        if (act.uncorrectable) {
            // Forced decode failure: the bytes are delivered as-is
            // (a real failed decode hands up its best guess), only
            // the verdict flips. Falls through to the retry ladder
            // like an organic uncorrectable.
            injectedReadFaults_.inc();
            injectedReadUncorrectable_.inc();
            status = Status::Uncorrectable;
        }
        if (act.drop) {
            // The response is lost above the flash server: the
            // waiter hangs (its timeout machinery owns recovery),
            // but the delivery slot retires so the interface's
            // other reads keep flowing in order.
            injectedReadFaults_.inc();
            injectedReadDrops_.inc();
            info.job.pageSink.reset();
            info.job.dropped = true;
            complete(tag, PageBuffer{}, status);
            return;
        }
        if (act.delayTicks > 0) {
            // Held response: the tag stays busy for the duration,
            // backpressuring the interface like a wedged chip.
            injectedReadFaults_.inc();
            injectedReadDelays_.inc();
            sim_.scheduleAfter(act.delayTicks,
                               [this, tag, status,
                                data = std::move(data)]() mutable {
                readRetryCheck(tag, std::move(data), status);
            });
            return;
        }
    }
    readRetryCheck(tag, std::move(data), status);
}

void
FlashServer::readRetryCheck(Tag tag, PageBuffer data, Status status)
{
    TagInfo &info = tagInfo_[tag];
    if (info.busy && info.job.op == Op::ReadPage) {
        if (status == Status::Uncorrectable) {
            if (info.job.retries < retryLimit_) {
                // Re-sense on the same tag: the delivery-stream
                // slot (seq) is preserved, so interface ordering
                // never observes the retry; the NAND re-rolls its
                // error draw at the block's current wear.
                ++info.job.retries;
                retriedReads_.inc();
                resendRead(tag);
                return;
            }
            if (retryLimit_ > 0)
                retryFailures_.inc();
        } else if (info.job.retries > 0) {
            retrySuccesses_.inc();
        }
    }
    complete(tag, std::move(data), status);
}

void
FlashServer::writeDataRequest(Tag tag)
{
    TagInfo &info = tagInfo_[tag];
    if (!info.busy)
        sim::panic("writeDataRequest for idle tag %u", tag);
    port_.sendWriteData(tag, std::move(info.job.writeData));
}

void
FlashServer::writeDone(Tag tag, Status status)
{
    complete(tag, PageBuffer{}, status);
}

void
FlashServer::eraseDone(Tag tag, Status status)
{
    complete(tag, PageBuffer{}, status);
}

} // namespace flash
} // namespace bluedbm
