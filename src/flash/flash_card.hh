/**
 * @file
 * Convenience composition of one custom flash card: NAND array,
 * controller, and interface splitter (paper figure 3). A BlueDBM node
 * carries two of these.
 */

#ifndef BLUEDBM_FLASH_FLASH_CARD_HH
#define BLUEDBM_FLASH_FLASH_CARD_HH

#include <memory>

#include "flash/flash_controller.hh"
#include "flash/flash_splitter.hh"
#include "flash/nand_array.hh"

namespace bluedbm {
namespace flash {

/**
 * One custom flash board: 512 GB of NAND behind an error-corrected,
 * tag-based controller shared through a splitter.
 */
class FlashCard
{
  public:
    /**
     * @param sim    simulation kernel
     * @param geo    card geometry
     * @param timing NAND timing
     * @param tags   controller hardware tags
     * @param seed   content/error seed
     */
    FlashCard(sim::Simulator &sim, const Geometry &geo,
              const Timing &timing, unsigned tags = 128,
              std::uint64_t seed = 1)
        : nand_(sim, geo, timing, seed),
          controller_(sim, nand_, tags),
          splitter_(sim, controller_)
    {
    }

    /** NAND array (timing + backing store). */
    NandArray &nand() { return nand_; }

    /** Low-level controller. */
    FlashController &controller() { return controller_; }

    /** Interface splitter; add ports for each agent. */
    FlashSplitter &splitter() { return splitter_; }

    /** Card geometry. */
    const Geometry &geometry() const { return nand_.geometry(); }

  private:
    NandArray nand_;
    FlashController controller_;
    FlashSplitter splitter_;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_FLASH_CARD_HH
