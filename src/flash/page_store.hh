/**
 * @file
 * Byte-accurate sparse backing store for one flash card, with NAND
 * program/erase semantics.
 *
 * Pages that were never programmed return deterministic synthetic
 * content derived from the address, so multi-terabyte workloads can be
 * simulated without allocating the dataset (the content is stable, as
 * if it had been written by a prior loading phase). Pages that are
 * programmed store their real bytes plus ECC check bytes, and the NAND
 * rules are enforced: a page must be erased before it is programmed
 * again, and erases wear blocks out.
 */

#ifndef BLUEDBM_FLASH_PAGE_STORE_HH
#define BLUEDBM_FLASH_PAGE_STORE_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "flash/ecc.hh"
#include "flash/geometry.hh"
#include "flash/types.hh"

namespace bluedbm {
namespace flash {

/**
 * Sparse page/block state for a flash card.
 */
class PageStore
{
  public:
    /**
     * @param geo  card geometry
     * @param seed seed for synthetic content of never-written pages
     */
    explicit PageStore(const Geometry &geo, std::uint64_t seed = 1);

    /** Card geometry. */
    const Geometry &geometry() const { return geo_; }

    /**
     * Program a page.
     *
     * @param addr target page
     * @param data exactly geometry().pageSize bytes
     * @return Ok, or IllegalWrite if the page is not erased
     */
    [[nodiscard]] Status program(const Address &addr, PageBuffer data);

    /**
     * Read a page's stored bytes (or synthetic content when never
     * programmed).
     *
     * @param addr  source page
     * @param check out: ECC check bytes stored with the page
     * @return page contents
     */
    PageBuffer read(const Address &addr,
                    std::vector<std::uint8_t> *check = nullptr) const;

    /**
     * Erase a block: all pages return to the erased state.
     *
     * @return Ok, or BadBlock if the block is marked bad or has
     *         exceeded its program/erase endurance
     */
    [[nodiscard]] Status eraseBlock(const Address &addr);

    /** Whether @p addr has been programmed since its last erase. */
    [[nodiscard]] bool isProgrammed(const Address &addr) const;

    /** Lifetime erase count of the block containing @p addr. */
    std::uint32_t eraseCount(const Address &addr) const;

    /** Erase-count distribution over the whole card. */
    struct EraseStats
    {
        std::uint32_t min = 0;
        std::uint32_t p50 = 0;
        std::uint32_t max = 0;
        std::uint64_t total = 0;
    };

    /**
     * Erase-count distribution across ALL blocks of the card --
     * blocks never touched count as 0, so a skewed workload's
     * wear imbalance shows up as min << max.
     */
    EraseStats eraseStats() const;

    /**
     * Pre-age the block containing @p addr by @p cycles program/erase
     * cycles without disturbing its contents. Bench helper: aging a
     * card organically would cost millions of simulated erases. The
     * block does NOT turn bad here even past the erase limit; the
     * next real erase trips the endurance check.
     */
    void addWear(const Address &addr, std::uint32_t cycles);

    /** Number of blocks currently marked bad. */
    std::size_t badBlockCount() const { return badBlocks_.size(); }

    /** Mark a block as factory-bad. */
    void markBad(const Address &addr);

    /** Whether the block containing @p addr is bad. */
    [[nodiscard]] bool isBad(const Address &addr) const;

    /**
     * Program/erase endurance. Blocks whose erase count reaches the
     * limit turn bad on the next erase. 0 disables wear-out.
     */
    void setEraseLimit(std::uint32_t limit) { eraseLimit_ = limit; }

    /**
     * Enforce in-block sequential programming (real NAND requires
     * pages within a block to be programmed in order).
     */
    void setRequireSequential(bool on) { requireSequential_ = on; }

    /** Number of distinct pages currently holding real data. */
    std::size_t storedPages() const { return pages_.size(); }

    /** Total program operations accepted. */
    std::uint64_t programs() const { return programs_; }
    /** Total erase operations accepted. */
    std::uint64_t erases() const { return erases_; }

  private:
    struct BlockState
    {
        std::uint32_t eraseCount = 0;
        std::uint32_t nextPage = 0; //!< for sequential enforcement
        std::vector<bool> programmed;
    };

    struct StoredPage
    {
        PageBuffer data;
        std::vector<std::uint8_t> check;
    };

    std::uint64_t blockKey(const Address &addr) const;
    std::uint64_t pageKey(const Address &addr) const;

    /** Deterministic content for never-programmed pages. */
    PageBuffer synthesize(std::uint64_t page_key) const;

    Geometry geo_;
    std::uint64_t seed_;
    std::uint32_t eraseLimit_ = 0;
    bool requireSequential_ = false;
    std::unordered_map<std::uint64_t, StoredPage> pages_;
    std::unordered_map<std::uint64_t, BlockState> blocks_;
    std::unordered_set<std::uint64_t> badBlocks_;
    std::uint64_t programs_ = 0;
    std::uint64_t erases_ = 0;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_PAGE_STORE_HH
