#include "flash/nand_array.hh"

// lint: hot-path

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace bluedbm {
namespace flash {

namespace {

/** Registry cell for one per-array counter, labeled by instance. */
sim::Counter &
cell(sim::Simulator &sim, unsigned inst, const char *name)
{
    return sim.metrics().counter(name,
                                 {{"inst", std::to_string(inst)}});
}

} // namespace

NandArray::NandArray(sim::Simulator &sim, const Geometry &geo,
                     const Timing &timing, std::uint64_t seed)
    : sim_(sim), timing_(timing), store_(geo, seed),
      errorRng_(seed ^ 0xecc0ecc0ecc0ecc0ull),
      inst_(sim.metrics().nextInstance("nand")),
      pagesRead_(cell(sim, inst_, "nand.pages_read")),
      pagesWritten_(cell(sim, inst_, "nand.pages_written")),
      coalescedPrograms_(cell(sim, inst_, "nand.coalesced_programs")),
      blocksErased_(cell(sim, inst_, "nand.blocks_erased")),
      bitsCorrected_(cell(sim, inst_, "nand.bits_corrected")),
      uncorrectable_(cell(sim, inst_, "nand.uncorrectable_pages")),
      bitsInjected_(cell(sim, inst_, "nand.bits_injected")),
      backgroundReads_(cell(sim, inst_, "nand.background_reads")),
      backgroundWrites_(cell(sim, inst_, "nand.background_writes")),
      backgroundErases_(cell(sim, inst_, "nand.background_erases")),
      suspendedPrograms_(cell(sim, inst_, "nand.suspended_programs")),
      resumedPrograms_(cell(sim, inst_, "nand.resumed_programs")),
      suspendedErases_(cell(sim, inst_, "nand.suspended_erases")),
      resumedErases_(cell(sim, inst_, "nand.resumed_erases")),
      displacedPrograms_(cell(sim, inst_, "nand.displaced_programs"))
{
    chips_.resize(geo.chips());
    programWindows_.assign(geo.chips(), ProgramWindow{});
    // Direct construction: BusState holds a deque of move-only
    // thunks, so resize()'s copy-relocation path must never be
    // instantiated. The vector never grows after this.
    buses_ = std::vector<BusState>(geo.buses);
}

double
NandArray::effectiveBitErrorRate(const Address &addr) const
{
    double rate = bitErrorRate_;
    if (wearBer0_ > 0.0) {
        double cycles =
            static_cast<double>(store_.eraseCount(addr)) /
            static_cast<double>(wearKnee_);
        rate += wearBer0_ * (1.0 + std::pow(cycles, wearAlpha_));
    }
    return rate;
}

std::uint32_t
NandArray::injectErrors(PageBuffer &data,
                        std::vector<std::uint8_t> &check,
                        double rate)
{
    if (rate <= 0.0)
        return 0;
    // The expected number of flipped bits per page is usually small;
    // draw a count from the binomial's Poisson approximation and
    // place the flips uniformly. The draw is capped only by the
    // page's bit count (every bit flipped), never below it: a high
    // BER must inject its full Poisson tail or SECDED stress tests
    // silently under-inject.
    double total_bits =
        static_cast<double>(data.size() + check.size()) * 8.0;
    double expect = total_bits * rate;
    if (expect > 500.0) {
        // exp(-expect) underflows and the inverse transform would
        // degenerate; no plausible NAND (or SECDED model) lives
        // out here.
        sim::panic("bit error rate %g (%.0f expected flips/page) "
                   "is outside the error model's range",
                   rate, expect);
    }
    auto cap = static_cast<std::uint32_t>(total_bits);
    std::uint32_t flips = 0;
    // Inverse-transform Poisson sampling.
    double p = std::exp(-expect);
    double cum = p;
    double u = errorRng_.uniform();
    while (u > cum && flips < cap) {
        ++flips;
        p *= expect / static_cast<double>(flips);
        cum += p;
    }
    for (std::uint32_t i = 0; i < flips; ++i) {
        std::uint64_t bit =
            errorRng_.below(static_cast<std::uint64_t>(total_bits));
        std::uint64_t byte = bit / 8;
        auto mask = static_cast<std::uint8_t>(1u << (bit % 8));
        if (byte < data.size())
            data[byte] ^= mask;
        else
            check[byte - data.size()] ^= mask;
    }
    bitsInjected_.inc(flips);
    return flips;
}

void
NandArray::busTransfer(std::uint32_t bus, std::uint64_t wire_bytes,
                       Thunk deliver)
{
    BusState &state = buses_[bus];
    sim::Tick xfer =
        sim::transferTicks(wire_bytes, timing_.busBytesPerSec);
    state.queuedTicks += xfer;
    state.ready.push_back(
        [this, bus, xfer, deliver = std::move(deliver)]() mutable {
        BusState &s = buses_[bus];
        s.busy = true;
        s.queuedTicks -= xfer;
        s.freeAt = sim_.now() + xfer;
        sim_.scheduleAt(s.freeAt,
                        [this, bus,
                         deliver = std::move(deliver)]() mutable {
            buses_[bus].busy = false;
            deliver();
            busPump(bus);
        });
    });
    busPump(bus);
}

void
NandArray::busPump(std::uint32_t bus)
{
    BusState &state = buses_[bus];
    if (state.busy || state.ready.empty())
        return;
    auto next = std::move(state.ready.front());
    state.ready.pop_front();
    next();
}

void
NandArray::addChipOp(std::size_t ci, Op kind, sim::Tick start,
                     sim::Tick end, Thunk fire)
{
    ChipCtl &chip = chips_[ci];
    chip.ops.emplace_back();
    ChipOp &op = chip.ops.back();
    op.id = nextOpId_++;
    op.kind = kind;
    op.start = start;
    op.end = end;
    op.fire = std::move(fire);
    op.event = sim_.scheduleAt(end, [this, ci, id = op.id]() {
        opComplete(ci, id);
    });
}

void
NandArray::opComplete(std::size_t ci, std::uint64_t id)
{
    ChipCtl &chip = chips_[ci];
    for (auto it = chip.ops.begin(); it != chip.ops.end(); ++it) {
        if (it->id != id)
            continue;
        Thunk fire = std::move(it->fire);
        chip.ops.erase(it);
        fire();
        return;
    }
    sim::panic("completion for unknown chip op");
}

bool
NandArray::suspendableUnit(const ChipCtl &chip, sim::Tick now,
                           bool &is_erase) const
{
    bool found = false;
    is_erase = false;
    for (const ChipOp &op : chip.ops) {
        if (op.kind == Op::ReadPage)
            continue;
        if (op.start > now || op.end <= now)
            continue; // queued behind, or completing this tick
        // Members of an open program window suspend as a unit, so
        // every member needs budget left.
        if (op.suspends >= timing_.maxSuspendsPerOp)
            return false;
        found = true;
        is_erase = is_erase || op.kind == Op::EraseBlock;
    }
    return found;
}

void
NandArray::shiftChip(std::size_t ci, sim::Tick now, sim::Tick delta)
{
    ChipCtl &chip = chips_[ci];
    chip.busyUntil += delta;
    ProgramWindow &win = programWindows_[ci];
    if (win.progEnd > now) {
        win.progEnd += delta;
        if (win.progStart > now)
            win.progStart += delta;
    }
    for (ChipOp &op : chip.ops) {
        if (op.end <= now)
            continue; // completing this tick: already done cell-wise
        if (op.start <= now) {
            if (op.kind == Op::ReadPage)
                continue; // a running sense never moves
            // The parked unit: keeps its remaining array time,
            // shifted past the inserted delay, and is charged.
            op.end += delta;
            ++op.suspends;
        } else {
            // Not started: displaced whole, no suspension charged.
            op.start += delta;
            op.end += delta;
        }
        sim_.cancel(op.event);
        op.event = sim_.scheduleAt(op.end,
                                   [this, ci, id = op.id]() {
            opComplete(ci, id);
        });
    }
}

bool
NandArray::worthSuspending(const ChipCtl &chip, std::uint32_t bus,
                           sim::Tick now) const
{
    // Suspension trades program disruption for an earlier sense; if
    // the bus backlog alone outlasts the chip's queue, the read's
    // delivery is bus-bound and the early sense buys nothing.
    const BusState &b = buses_[bus];
    sim::Tick bus_clear = std::max(b.freeAt, now) + b.queuedTicks;
    return bus_clear < chip.busyUntil + timing_.readUs;
}

void
NandArray::read(const Address &addr, ReadDone done, Priority pri,
                std::uint32_t offset, std::uint32_t len,
                std::uint64_t trace)
{
    const Geometry &geo = geometry();
    if (!addr.validFor(geo))
        sim::panic("NAND read at invalid address %s",
                   addr.toString().c_str());
    if (len == 0) {
        if (offset != 0)
            sim::panic("full-page NAND read with offset %u", offset);
        offset = 0;
        len = geo.pageSize;
    }
    if (std::uint64_t(offset) + len > geo.pageSize)
        sim::panic("NAND read range [%u, %u) beyond page size %u",
                   offset, offset + len, geo.pageSize);

    sim::Tick now = sim_.now();
    std::size_t ci = chipIndex(addr);
    ChipCtl &chip = chips_[ci];

    // Random data-out: only the SECDED words covering the range
    // cross the bus, each with its check byte.
    std::uint32_t word0 = offset / 8;
    auto word1 = std::uint32_t(
        (std::uint64_t(offset) + len + 7) / 8);
    std::uint32_t slice0 = word0 * 8;
    std::uint32_t slice_bytes =
        std::min(word1 * 8, geo.pageSize) - slice0;
    std::uint64_t wire_bytes = std::uint64_t(slice_bytes) +
        Secded72::checkBytes(slice_bytes);
    pagesRead_.inc();
    if (pri == Priority::Background)
        backgroundReads_.inc();

    // The trace's NAND leaf: covers everything from here (the array
    // accepting the sense) to the last byte delivered, nesting under
    // the flash server's op span. Closed by wrapping the completion;
    // handle 0 skips all of it.
    sim::Tracer::Handle span =
        sim_.tracer().beginSpan(trace, "nand.read", now);
    if (span != 0) {
        done = [this, span,
                inner = std::move(done)](ReadResult r) mutable {
            sim_.tracer().endSpan(span, sim_.now());
            inner(std::move(r));
        };
    }

    std::uint32_t bus = addr.bus;
    Address a = addr;
    // Runs when the array sense completes: the page register latches
    // the NAND cell contents as they are THEN -- after any program
    // or erase this read was ordered behind -- never a snapshot from
    // issue time. (Within one chip nothing can alter the cells
    // during the sense itself, so latching at sense end equals
    // latching at sense start.)
    // The result and check bytes move through the stage captures --
    // sense -> bus transfer -> controller overhead each run exactly
    // once in sequence, so ownership hands off without shared state.
    auto deliver = [this, a, bus, wire_bytes, offset, len, word0,
                    slice0, slice_bytes,
                    done = std::move(done)]() mutable {
        ReadResult res;
        std::vector<std::uint8_t> check;
        res.data = store_.read(a, &check);
        // Wear is sampled at the sense, like the cell contents: the
        // raw BER of this read reflects the block's erase count NOW.
        double ber = effectiveBitErrorRate(a);
        if (slice_bytes != res.data.size()) {
            res.data.erase(res.data.begin(),
                           res.data.begin() + slice0);
            res.data.resize(slice_bytes);
            check.erase(check.begin(), check.begin() + word0);
            check.resize(Secded72::checkBytes(slice_bytes));
        }
        busTransfer(bus, wire_bytes,
                    [this, res = std::move(res),
                     check = std::move(check), offset, len, slice0,
                     ber,
                     done = std::move(done)]() mutable {
            sim_.scheduleAfter(timing_.controllerOverhead,
                               [this, res = std::move(res),
                                check = std::move(check), offset,
                                len, slice0, ber,
                                done = std::move(done)]() mutable {
                std::uint32_t injected =
                    injectErrors(res.data, check, ber);
                if (injected > 0 || alwaysDecode_) {
                    EccResult ecc =
                        Secded72::decode(res.data, check);
                    bitsCorrected_.inc(ecc.correctedBits);
                    if (ecc.uncorrectable) {
                        uncorrectable_.inc();
                        res.status = Status::Uncorrectable;
                    } else if (ecc.correctedBits > 0) {
                        res.status = Status::Corrected;
                    }
                    res.correctedBits = ecc.correctedBits;
                }
                if (res.data.size() != len) {
                    // Trim the word-aligned slice to the bytes the
                    // caller asked for.
                    std::uint32_t lead = offset - slice0;
                    res.data.erase(res.data.begin(),
                                   res.data.begin() + lead);
                    res.data.resize(len);
                }
                done(std::move(res));
            });
        });
    };

    // Read-priority suspension: jump the program/erase occupying the
    // chip instead of queueing the full array time behind it.
    if (pri == Priority::Read && timing_.maxSuspendsPerOp > 0 &&
        chip.busyUntil > now) {
        bool is_erase = false;
        if (now < chip.senseFrontier) {
            // The chip's unit is already parked with priority senses
            // running: join behind the last one. Each join charges
            // the unit one more suspension and extends its park.
            if (suspendableUnit(chip, now, is_erase)) {
                sim::Tick sense_start = chip.senseFrontier;
                chip.senseFrontier = sense_start + timing_.readUs;
                shiftChip(ci, now, timing_.readUs);
                (is_erase ? suspendedErases_ : suspendedPrograms_)
                    .inc();
                sim_.tracer().mark(span, "nand.suspend", now);
                sim_.scheduleAt(sense_start + timing_.readUs,
                                std::move(deliver));
                return;
            }
        } else if (suspendableUnit(chip, now, is_erase) &&
                   now + timing_.suspendUs < chip.busyUntil &&
                   worthSuspending(chip, addr.bus, now)) {
            // Open a suspension window: park the unit (suspendUs),
            // sense with priority, resume (resumeUs) -- the unit and
            // everything queued behind it shift by the inserted
            // delay; the unit's remaining array time is preserved.
            sim::Tick sense_start = now + timing_.suspendUs;
            chip.senseFrontier = sense_start + timing_.readUs;
            shiftChip(ci, now,
                      timing_.suspendUs + timing_.readUs +
                          timing_.resumeUs);
            (is_erase ? suspendedErases_ : suspendedPrograms_).inc();
            (is_erase ? resumedErases_ : resumedPrograms_).inc();
            sim_.tracer().mark(span, "nand.suspend", now);
            // The parked unit resumes the moment the priority sense
            // ends (plus resumeUs of re-ramp charged to the unit);
            // both instants are known now, so mark them now.
            sim_.tracer().mark(span, "nand.resume",
                               sense_start + timing_.readUs);
            sim_.scheduleAt(sense_start + timing_.readUs,
                            std::move(deliver));
            return;
        }
        // Queue insertion: the chip could not be suspended (a sense
        // is running, or the running unit's budget is spent), but
        // programs/erases QUEUED behind have not started -- a
        // read-priority controller issues the sense before them.
        // Walk the schedule backwards group-by-group (ops sharing a
        // start are one program window and move as a unit) to find
        // the displaceable suffix: trailing groups that are all
        // not-yet-started programs/erases with yield budget left.
        // The read lands right before that suffix and displaces it
        // by one sense, charging each displaced op one unit of the
        // same budget suspension draws from. No suspend/resume
        // penalty: nothing mid-flight is interrupted.
        std::vector<std::size_t> &order = orderScratch_;
        order.clear();
        for (std::size_t i = 0; i < chip.ops.size(); ++i) {
            if (chip.ops[i].end > now)
                order.push_back(i);
        }
        std::sort(order.begin(), order.end(),
                  [&](std::size_t x, std::size_t y) {
            return chip.ops[x].start < chip.ops[y].start;
        });
        std::size_t suffix = order.size();
        while (suffix > 0) {
            sim::Tick s = chip.ops[order[suffix - 1]].start;
            std::size_t g = suffix;
            while (g > 0 && chip.ops[order[g - 1]].start == s)
                --g;
            bool jumpable = s > now;
            for (std::size_t k = g; k < suffix && jumpable; ++k) {
                const ChipOp &op = chip.ops[order[k]];
                jumpable = op.kind != Op::ReadPage &&
                    op.suspends < timing_.maxSuspendsPerOp;
            }
            if (!jumpable)
                break;
            suffix = g;
        }
        if (suffix < order.size()) {
            sim::Tick insert_at = std::max(now, chip.senseFrontier);
            for (std::size_t k = 0; k < suffix; ++k)
                insert_at = std::max(insert_at,
                                     chip.ops[order[k]].end);
            for (std::size_t k = suffix; k < order.size(); ++k) {
                ChipOp &op = chip.ops[order[k]];
                op.start += timing_.readUs;
                op.end += timing_.readUs;
                ++op.suspends;
                sim_.cancel(op.event);
                op.event = sim_.scheduleAt(
                    op.end, [this, ci, id = op.id]() {
                    opComplete(ci, id);
                });
            }
            ProgramWindow &win = programWindows_[ci];
            if (win.progEnd > now && win.progStart >= insert_at) {
                win.progStart += timing_.readUs;
                win.progEnd += timing_.readUs;
            }
            chip.busyUntil += timing_.readUs;
            displacedPrograms_.inc(order.size() - suffix);
            sim_.tracer().mark(span, "nand.insert", now);
            addChipOp(ci, Op::ReadPage, insert_at,
                      insert_at + timing_.readUs,
                      std::move(deliver));
            return;
        }
    }

    // FIFO: sense after the chip's scheduled work. Registered as a
    // chip op so a later suspension displaces this queued sense
    // along with everything else.
    sim::Tick sense_start = std::max(now, chip.busyUntil);
    sim::Tick sense_done = sense_start + timing_.readUs;
    chip.busyUntil = sense_done;
    addChipOp(ci, Op::ReadPage, sense_start, sense_done,
              std::move(deliver));
}

void
NandArray::write(const Address &addr, PageBuffer data,
                 StatusDone done,
                 std::uint32_t group, Priority pri,
                 std::uint64_t trace)
{
    const Geometry &geo = geometry();
    if (!addr.validFor(geo))
        sim::panic("NAND write at invalid address %s",
                   addr.toString().c_str());
    if (data.size() != geo.pageSize)
        sim::panic("NAND write size %zu != page size %u",
                   data.size(), geo.pageSize);

    std::uint64_t wire_bytes =
        geo.pageSize + Secded72::checkBytes(geo.pageSize);
    pagesWritten_.inc();
    if (pri == Priority::Background)
        backgroundWrites_.inc();
    sim::Tracer::Handle span =
        sim_.tracer().beginSpan(trace, "nand.write", sim_.now());
    if (span != 0) {
        done = [this, span,
                inner = std::move(done)](Status st) mutable {
            sim_.tracer().endSpan(span, sim_.now());
            inner(st);
        };
    }
    Address a = addr;

    // Write data crosses the bus first, then the chip programs; the
    // payload moves stage to stage (each runs once, in order).
    busTransfer(addr.bus, wire_bytes,
                [this, a, payload = std::move(data), group,
                 done = std::move(done)]() mutable {
        std::size_t ci = chipIndex(a);
        ChipCtl &chip = chips_[ci];
        ProgramWindow &win = programWindows_[ci];
        sim::Tick now = sim_.now();
        sim::Tick prog_start, prog_done;
        if (group != 0 && win.group == group &&
            win.progEnd > now &&
            chip.busyUntil <= win.progEnd &&
            now >= chip.senseFrontier &&
            win.pages < timing_.planesPerChip) {
            // (chip.busyUntil <= progEnd guards against another op
            // -- e.g. an interleaved read -- having claimed the
            // chip since the window opened: planes overlap only
            // with their own batch, never with foreign work. A
            // window that is currently PARKED by a suspension
            // (now < senseFrontier) cannot accept new planes
            // either: its cells are not programming.)
            // Same coalesced batch, program still running: this
            // page's plane programs OVERLAPPED with the open window
            // instead of serializing a full tPROG behind it. The
            // page itself still takes a full tPROG from the moment
            // its data arrived -- no plane programs faster than the
            // cells allow -- so the window extends to cover it.
            prog_start = win.progStart;
            prog_done = std::max(win.progEnd,
                                 now + timing_.programUs);
            win.progEnd = prog_done;
            chip.busyUntil = std::max(chip.busyUntil, prog_done);
            ++win.pages;
            coalescedPrograms_.inc();
        } else {
            prog_start = std::max(now, chip.busyUntil);
            prog_done = prog_start + timing_.programUs;
            chip.busyUntil = prog_done;
            win.group = group;
            win.progStart = prog_start;
            win.progEnd = prog_done;
            win.pages = 1;
        }
        addChipOp(ci, Op::WritePage, prog_start, prog_done,
                  [this, a, payload = std::move(payload),
                   done = std::move(done)]() mutable {
            // The cells hold the data the moment the program's
            // array time ends: a sense ordered after this tick
            // observes the new bytes. The client completion still
            // pays the controller pipeline on top.
            Status st = store_.program(a, std::move(payload));
            sim_.scheduleAfter(timing_.controllerOverhead,
                               [st,
                                done = std::move(done)]() mutable {
                done(st);
            });
        });
    });
}

void
NandArray::erase(const Address &addr, StatusDone done,
                 Priority pri, std::uint64_t trace)
{
    if (!addr.validFor(geometry()))
        sim::panic("NAND erase at invalid address %s",
                   addr.toString().c_str());

    sim::Tick now = sim_.now();
    std::size_t ci = chipIndex(addr);
    ChipCtl &chip = chips_[ci];
    sim::Tick start = std::max(now, chip.busyUntil);
    sim::Tick finish = start + timing_.eraseUs;
    chip.busyUntil = finish;

    blocksErased_.inc();
    if (pri == Priority::Background)
        backgroundErases_.inc();
    sim::Tracer::Handle span =
        sim_.tracer().beginSpan(trace, "nand.erase", now);
    if (span != 0) {
        done = [this, span,
                inner = std::move(done)](Status st) mutable {
            sim_.tracer().endSpan(span, sim_.now());
            inner(st);
        };
    }
    Address a = addr;
    addChipOp(ci, Op::EraseBlock, start, finish,
              [this, a, done = std::move(done)]() mutable {
        Status st = store_.eraseBlock(a);
        sim_.scheduleAfter(timing_.controllerOverhead,
                           [st, done = std::move(done)]() mutable {
            done(st);
        });
    });
}

} // namespace flash
} // namespace bluedbm
