#include "flash/nand_array.hh"

#include <algorithm>
#include <cmath>
#include <utility>

namespace bluedbm {
namespace flash {

NandArray::NandArray(sim::Simulator &sim, const Geometry &geo,
                     const Timing &timing, std::uint64_t seed)
    : sim_(sim), timing_(timing), store_(geo, seed),
      errorRng_(seed ^ 0xecc0ecc0ecc0ecc0ull)
{
    chipBusy_.assign(geo.chips(), 0);
    programWindows_.assign(geo.chips(), ProgramWindow{});
    buses_.resize(geo.buses);
}

std::uint32_t
NandArray::injectErrors(PageBuffer &data,
                        std::vector<std::uint8_t> &check)
{
    if (bitErrorRate_ <= 0.0)
        return 0;
    // The expected number of flipped bits per page is small; draw a
    // count from the binomial's Poisson approximation and place the
    // flips uniformly.
    double total_bits =
        static_cast<double>(data.size() + check.size()) * 8.0;
    double expect = total_bits * bitErrorRate_;
    std::uint32_t flips = 0;
    // Inverse-transform Poisson sampling (expect is tiny).
    double p = std::exp(-expect);
    double cum = p;
    double u = errorRng_.uniform();
    while (u > cum && flips < 64) {
        ++flips;
        p *= expect / static_cast<double>(flips);
        cum += p;
    }
    for (std::uint32_t i = 0; i < flips; ++i) {
        std::uint64_t bit =
            errorRng_.below(static_cast<std::uint64_t>(total_bits));
        std::uint64_t byte = bit / 8;
        auto mask = static_cast<std::uint8_t>(1u << (bit % 8));
        if (byte < data.size())
            data[byte] ^= mask;
        else
            check[byte - data.size()] ^= mask;
    }
    return flips;
}

void
NandArray::busTransfer(std::uint32_t bus, std::uint64_t wire_bytes,
                       std::function<void()> deliver)
{
    BusState &state = buses_[bus];
    sim::Tick xfer =
        sim::transferTicks(wire_bytes, timing_.busBytesPerSec);
    state.ready.push_back(
        [this, bus, xfer, deliver = std::move(deliver)]() {
        BusState &s = buses_[bus];
        s.busy = true;
        s.freeAt = sim_.now() + xfer;
        sim_.scheduleAt(s.freeAt, [this, bus, deliver]() {
            buses_[bus].busy = false;
            deliver();
            busPump(bus);
        });
    });
    busPump(bus);
}

void
NandArray::busPump(std::uint32_t bus)
{
    BusState &state = buses_[bus];
    if (state.busy || state.ready.empty())
        return;
    auto next = std::move(state.ready.front());
    state.ready.pop_front();
    next();
}

void
NandArray::read(const Address &addr,
                std::function<void(ReadResult)> done)
{
    const Geometry &geo = geometry();
    if (!addr.validFor(geo))
        sim::panic("NAND read at invalid address %s",
                   addr.toString().c_str());

    sim::Tick now = sim_.now();
    sim::Tick &chip_busy = chipBusy_[chipIndex(addr)];
    sim::Tick sense_start = std::max(now, chip_busy);
    sim::Tick sense_done = sense_start + timing_.readUs;
    chip_busy = sense_done;

    std::uint64_t wire_bytes =
        geo.pageSize + Secded72::checkBytes(geo.pageSize);

    // The array senses the page contents now; a concurrent erase or
    // program completing later must not affect this read's data.
    auto res = std::make_shared<ReadResult>();
    auto check = std::make_shared<std::vector<std::uint8_t>>();
    res->data = store_.read(addr, check.get());
    ++pagesRead_;

    std::uint32_t bus = addr.bus;
    sim_.scheduleAt(sense_done, [this, bus, wire_bytes, res, check,
                                 done = std::move(done)]() mutable {
        // Data is latched in the chip's page register; it now queues
        // for the shared bus.
        busTransfer(bus, wire_bytes,
                    [this, res, check,
                     done = std::move(done)]() mutable {
            sim_.scheduleAfter(timing_.controllerOverhead,
                               [this, res, check,
                                done = std::move(done)]() {
                std::uint32_t injected =
                    injectErrors(res->data, *check);
                if (injected > 0 || alwaysDecode_) {
                    EccResult ecc =
                        Secded72::decode(res->data, *check);
                    bitsCorrected_ += ecc.correctedBits;
                    if (ecc.uncorrectable) {
                        ++uncorrectable_;
                        res->status = Status::Uncorrectable;
                    } else if (ecc.correctedBits > 0) {
                        res->status = Status::Corrected;
                    }
                    res->correctedBits = ecc.correctedBits;
                }
                done(std::move(*res));
            });
        });
    });
}

void
NandArray::write(const Address &addr, PageBuffer data,
                 std::function<void(Status)> done,
                 std::uint32_t group)
{
    const Geometry &geo = geometry();
    if (!addr.validFor(geo))
        sim::panic("NAND write at invalid address %s",
                   addr.toString().c_str());
    if (data.size() != geo.pageSize)
        sim::panic("NAND write size %zu != page size %u",
                   data.size(), geo.pageSize);

    std::uint64_t wire_bytes =
        geo.pageSize + Secded72::checkBytes(geo.pageSize);
    ++pagesWritten_;
    Address a = addr;
    auto payload = std::make_shared<PageBuffer>(std::move(data));

    // Write data crosses the bus first, then the chip programs.
    busTransfer(addr.bus, wire_bytes,
                [this, a, payload, group,
                 done = std::move(done)]() mutable {
        std::size_t ci = chipIndex(a);
        sim::Tick &chip_busy = chipBusy_[ci];
        ProgramWindow &win = programWindows_[ci];
        sim::Tick prog_done;
        if (group != 0 && win.group == group &&
            win.progEnd > sim_.now() &&
            chip_busy <= win.progEnd &&
            win.pages < timing_.planesPerChip) {
            // (chip_busy <= progEnd guards against another op --
            // e.g. an interleaved read -- having claimed the chip
            // since the window opened: planes overlap only with
            // their own batch, never with foreign work.)
            // Same coalesced batch, program still running: this
            // page's plane programs OVERLAPPED with the open window
            // instead of serializing a full tPROG behind it. The
            // page itself still takes a full tPROG from the moment
            // its data arrived -- no plane programs faster than the
            // cells allow -- so the window extends to cover it.
            prog_done = std::max(win.progEnd,
                                 sim_.now() + timing_.programUs);
            win.progEnd = prog_done;
            chip_busy = std::max(chip_busy, prog_done);
            ++win.pages;
            ++coalescedPrograms_;
        } else {
            sim::Tick prog_start = std::max(sim_.now(), chip_busy);
            prog_done = prog_start + timing_.programUs;
            chip_busy = prog_done;
            win.group = group;
            win.progEnd = prog_done;
            win.pages = 1;
        }
        sim_.scheduleAt(prog_done + timing_.controllerOverhead,
                        [this, a, payload,
                         done = std::move(done)]() mutable {
            Status st = store_.program(a, std::move(*payload));
            done(st);
        });
    });
}

void
NandArray::erase(const Address &addr, std::function<void(Status)> done)
{
    if (!addr.validFor(geometry()))
        sim::panic("NAND erase at invalid address %s",
                   addr.toString().c_str());

    sim::Tick now = sim_.now();
    sim::Tick &chip_busy = chipBusy_[chipIndex(addr)];
    sim::Tick start = std::max(now, chip_busy);
    sim::Tick finish = start + timing_.eraseUs;
    chip_busy = finish;

    ++blocksErased_;
    Address a = addr;
    sim_.scheduleAt(finish + timing_.controllerOverhead,
                    [this, a, done = std::move(done)]() {
        done(store_.eraseBlock(a));
    });
}

} // namespace flash
} // namespace bluedbm
