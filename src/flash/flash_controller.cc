#include "flash/flash_controller.hh"

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace flash {

FlashController::FlashController(sim::Simulator &sim, NandArray &nand,
                                 unsigned tags)
    : sim_(sim), nand_(nand)
{
    if (tags == 0)
        sim::fatal("FlashController needs at least one tag");
    tagState_.assign(tags, TagState::Free);
    tagAddr_.assign(tags, Address{});
    tagGroup_.assign(tags, 0);
    tagPri_.assign(tags, Priority::Read);
    tagTrace_.assign(tags, 0);
}

void
FlashController::sendCommand(const Command &cmd)
{
    if (!client_)
        sim::panic("FlashController has no client");
    if (cmd.tag >= tagState_.size())
        sim::panic("command tag %u out of range (%zu tags)", cmd.tag,
                   tagState_.size());
    if (tagState_[cmd.tag] != TagState::Free)
        sim::panic("command reuses in-flight tag %u", cmd.tag);

    Tag tag = cmd.tag;
    tagAddr_[tag] = cmd.addr;
    tagGroup_[tag] = cmd.group;
    tagPri_[tag] = cmd.pri;
    tagTrace_[tag] = cmd.trace;

    switch (cmd.op) {
      case Op::ReadPage:
        tagState_[tag] = TagState::ReadInFlight;
        ++readsIssued_;
        nand_.read(cmd.addr, [this, tag](ReadResult res) {
            tagState_[tag] = TagState::Free;
            client_->readDone(tag, std::move(res.data), res.status);
        },
                   cmd.pri, cmd.readOffset, cmd.readLen, cmd.trace);
        break;

      case Op::WritePage:
        tagState_[tag] = TagState::AwaitWriteData;
        ++writesIssued_;
        // The scheduler asks for the payload as soon as the command is
        // registered; with bounded tags this bounds buffering exactly
        // like the hardware's write-data request queue.
        sim_.scheduleAfter(0, [this, tag]() {
            if (tagState_[tag] == TagState::AwaitWriteData)
                client_->writeDataRequest(tag);
        });
        break;

      case Op::EraseBlock:
        tagState_[tag] = TagState::EraseInFlight;
        ++erasesIssued_;
        nand_.erase(cmd.addr, [this, tag](Status st) {
            tagState_[tag] = TagState::Free;
            client_->eraseDone(tag, st);
        },
                    cmd.pri, cmd.trace);
        break;
    }
}

void
FlashController::sendWriteData(Tag tag, PageBuffer data)
{
    if (tag >= tagState_.size())
        sim::panic("write data tag %u out of range", tag);
    if (tagState_[tag] != TagState::AwaitWriteData)
        sim::panic("write data for tag %u not awaiting data", tag);

    tagState_[tag] = TagState::WriteInFlight;
    nand_.write(tagAddr_[tag], std::move(data),
                [this, tag](Status st) {
        tagState_[tag] = TagState::Free;
        client_->writeDone(tag, st);
    },
                tagGroup_[tag], tagPri_[tag], tagTrace_[tag]);
}

} // namespace flash
} // namespace bluedbm
