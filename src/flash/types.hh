/**
 * @file
 * Common flash interface types: commands, tags, results and the client
 * callback interface of the low-level controller (paper section 3.1.1).
 */

#ifndef BLUEDBM_FLASH_TYPES_HH
#define BLUEDBM_FLASH_TYPES_HH

#include <cstdint>
#include <vector>

#include "flash/geometry.hh"

namespace bluedbm {
namespace flash {

/** Request identifier; the controller supports many in flight. */
using Tag = std::uint32_t;

/** One 8 KB page worth of data. */
using PageBuffer = std::vector<std::uint8_t>;

/** Operations of the thin flash interface. */
enum class Op { ReadPage, WritePage, EraseBlock };

/**
 * Traffic class of a flash command.
 *
 * `Read` marks latency-critical serving traffic: a Read-class page
 * read may suspend the program or erase occupying its chip
 * (Timing::suspendUs/resumeUs, bounded by Timing::maxSuspendsPerOp)
 * instead of queueing the full array time behind it. `Background`
 * marks maintenance traffic -- garbage collection, segment
 * cleaning, anti-entropy repair -- which never suspends anything
 * and is counted separately by the NAND array's statistics, so the
 * array can always tell serving load from maintenance load.
 *
 * The class rides flash::Command through the controller and the
 * flash server; reads default to Read, erases to Background, and
 * writes to Read (a client ack usually waits on them) with the
 * maintenance paths passing Background explicitly.
 */
enum class Priority : std::uint8_t
{
    Read,       //!< latency-critical; reads may suspend programs
    Background, //!< maintenance; never suspends, FIFO behind chip work
};

/** Completion status of a flash operation. */
enum class Status
{
    Ok,            //!< success, data (if any) is valid
    Corrected,     //!< success after ECC correction
    Uncorrectable, //!< ECC failed; data is unreliable
    BadBlock,      //!< erase discovered a worn-out block
    IllegalWrite,  //!< program on a non-erased page
};

/**
 * A command as issued by a user of the flash interface: operation,
 * address and a tag identifying the request (section 3.1.1).
 *
 * `group` marks a program-coalescing batch: write commands carrying
 * the same non-zero group id were issued together by the flash
 * server's write-combining stage and may overlap their plane
 * programs on a chip (multi-plane-style programming; each page
 * still takes a full tPROG from its data arrival). 0 means
 * ungrouped -- the command programs alone, exactly as before the
 * coalescing stage existed.
 */
struct Command
{
    Op op = Op::ReadPage;
    Address addr;
    Tag tag = 0;
    std::uint32_t group = 0;
    /** Traffic class (see Priority): whether a read may suspend an
     * in-flight program/erase, and how the op is accounted. */
    Priority pri = Priority::Read;
    /**
     * Partial page read-out (reads only): transfer just the bytes
     * of [readOffset, readOffset + readLen) off the page register
     * -- NAND random data-out -- instead of the whole page. The
     * array sense still costs full tR; only the bus transfer (and
     * the ECC words it covers) shrinks. readLen 0 reads the whole
     * page (readOffset must then be 0).
     */
    std::uint32_t readOffset = 0;
    std::uint32_t readLen = 0;
    /**
     * Tracing continuation (sim::Tracer::Handle; 0 = untraced): the
     * span the issuing layer opened for this command. The NAND
     * array hangs its op span and suspend/resume/insertion marks
     * off it. Untimed simulation metadata -- never serialized.
     */
    std::uint64_t trace = 0;
};

/**
 * Callback interface of a flash controller user.
 *
 * Read data is returned tagged and possibly out of order and
 * interleaved with other reads; completion buffers on the user side
 * restore FIFO order where needed (exactly the contract of the paper's
 * controller).
 */
class Client
{
  public:
    virtual ~Client() = default;

    /**
     * A page read finished.
     *
     * @param tag    the request's tag
     * @param data   page contents (moved to the client)
     * @param status Ok / Corrected / Uncorrectable
     */
    virtual void readDone(Tag tag, PageBuffer data, Status status) = 0;

    /**
     * The controller scheduler is ready to accept write data for a
     * previously issued write command (the "write data request" of
     * section 3.1.1).
     */
    virtual void writeDataRequest(Tag tag) = 0;

    /** A page program finished. */
    virtual void writeDone(Tag tag, Status status) = 0;

    /** A block erase finished. */
    virtual void eraseDone(Tag tag, Status status) = 0;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_TYPES_HH
