/**
 * @file
 * NAND and bus timing parameters.
 *
 * Defaults are calibrated to the paper: ~50 us array read (section
 * 3.1.1 cites "latencies of 50 us or more"), and a per-card streaming
 * bandwidth of 1.2 GB/s (section 6.5) which with 8 buses means
 * 150 MB/s per bus.
 */

#ifndef BLUEDBM_FLASH_TIMING_HH
#define BLUEDBM_FLASH_TIMING_HH

#include "sim/types.hh"

namespace bluedbm {
namespace flash {

/**
 * Timing model parameters for one flash card.
 */
struct Timing
{
    /** Array sense time for a page read (tR). */
    sim::Tick readUs = sim::usToTicks(50);
    /** Array program time for a page write (tPROG). */
    sim::Tick programUs = sim::usToTicks(400);
    /** Block erase time (tBERS). */
    sim::Tick eraseUs = sim::usToTicks(3000);
    /**
     * Bus transfer rate in bytes/second. Pages cross the bus with
     * their ECC check bytes (9216 wire bytes per 8192-byte page), so
     * the wire rate is set to deliver 150 MB/s of *payload* per bus:
     * 8 buses x 150 MB/s = the paper's 1.2 GB/s per card.
     */
    double busBytesPerSec = 150e6 * 9216.0 / 8192.0;
    /** Fixed controller pipeline overhead per command. */
    sim::Tick controllerOverhead = sim::usToTicks(1);
    /**
     * @name Program/erase suspend-resume (read priority)
     *
     * An arriving Priority::Read page read may SUSPEND the program
     * or erase currently occupying its chip, sense with priority,
     * and let the suspended operation RESUME afterwards -- exactly
     * the read-priority suspension real NAND controllers implement
     * so that read tails decouple from write load.
     *
     * Timing contract:
     *  - Suspending costs suspendUs before the priority sense may
     *    start (the die parks its charge pumps).
     *  - Resuming costs resumeUs after the last priority sense
     *    completes before array work continues.
     *  - The suspended operation keeps its REMAINING time: a
     *    program suspended T ticks before completion completes
     *    resumeUs + T after the resume point. Total array time is
     *    never shortened -- suspension inserts delay, it never
     *    skips cell work, so durability semantics are unchanged.
     *  - A coalesced multi-plane program window (Command::group)
     *    suspends and resumes as a unit: every page of the window
     *    shifts by the same inserted delay.
     *  - Each read that jumps an operation charges one suspension
     *    against it; after maxSuspendsPerOp charges the operation
     *    can no longer be suspended and later reads queue FIFO
     *    behind it, bounding write/erase latency under sustained
     *    read pressure (real controllers enforce the same cap).
     *  - Operations that have not started yet simply shift behind
     *    the suspension; they are displaced, not suspended, and
     *    their own suspend budget is untouched.
     *  - Priority::Background reads never suspend anything.
     *
     * maxSuspendsPerOp = 0 disables suspension entirely (pure FIFO
     * chips, the pre-suspension model).
     */
    ///@{
    /** Latency to park an in-flight program/erase (tPSPD). */
    sim::Tick suspendUs = sim::usToTicks(5);
    /** Penalty to resume a parked program/erase (tPRSM). */
    sim::Tick resumeUs = sim::usToTicks(5);
    /** Suspensions one program/erase may absorb (0 = disabled). */
    unsigned maxSuspendsPerOp = 4;
    ///@}
    /**
     * Planes per chip: pages of a coalesced write batch
     * (Command::group) whose programs may overlap on a single chip,
     * as multi-plane NAND programs do (each page still pays a full
     * tPROG from the moment its data arrived). Ungrouped writes
     * never overlap, so this only matters to clients that opt into
     * the flash server's write-combining stage.
     */
    unsigned planesPerChip = 4;

    /** A fast timing set for unit tests. */
    static Timing
    fast()
    {
        Timing t;
        t.readUs = sim::usToTicks(5);
        t.programUs = sim::usToTicks(20);
        t.eraseUs = sim::usToTicks(100);
        t.busBytesPerSec = 1e9;
        t.controllerOverhead = sim::usToTicks(0.1);
        t.suspendUs = sim::usToTicks(0.5);
        t.resumeUs = sim::usToTicks(0.5);
        return t;
    }
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_TIMING_HH
