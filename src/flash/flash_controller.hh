/**
 * @file
 * The low-level flash controller (paper section 3.1.1).
 *
 * Exposes a thin, tag-based, bit-error-corrected interface to raw NAND:
 * the user issues a Command carrying an operation, an address and a
 * tag; for writes the controller later raises writeDataRequest() when
 * its scheduler is ready for the payload; read data returns tagged,
 * possibly out of order with respect to issue and interleaved with
 * other reads. Saturating the card requires many commands in flight,
 * exactly as the paper notes.
 */

#ifndef BLUEDBM_FLASH_FLASH_CONTROLLER_HH
#define BLUEDBM_FLASH_FLASH_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "flash/nand_array.hh"
#include "flash/types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace flash {

/**
 * Tag-based asynchronous flash controller for one card.
 */
class FlashController
{
  public:
    /**
     * @param sim  simulation kernel
     * @param nand NAND array the controller drives
     * @param tags number of concurrently trackable requests
     */
    FlashController(sim::Simulator &sim, NandArray &nand,
                    unsigned tags = 128);

    /** Attach the single direct client (normally the splitter). */
    void setClient(Client *client) { client_ = client; }

    /** Number of hardware tags. */
    unsigned tagCount() const { return unsigned(tagState_.size()); }

    /** Whether @p tag is free to carry a new command. */
    [[nodiscard]] bool
    tagFree(Tag tag) const
    {
        return tagState_[tag] == TagState::Free;
    }

    /**
     * Issue a command. The tag must be free; commands with in-use tags
     * are a client protocol violation (panic).
     */
    void sendCommand(const Command &cmd);

    /**
     * Supply the payload for a write whose writeDataRequest() was
     * raised.
     */
    void sendWriteData(Tag tag, PageBuffer data);

    /** Underlying NAND array. */
    NandArray &nand() { return nand_; }

    /** @name Statistics */
    ///@{
    std::uint64_t readsIssued() const { return readsIssued_; }
    std::uint64_t writesIssued() const { return writesIssued_; }
    std::uint64_t erasesIssued() const { return erasesIssued_; }
    ///@}

  private:
    enum class TagState : std::uint8_t
    {
        Free,
        ReadInFlight,
        AwaitWriteData,
        WriteInFlight,
        EraseInFlight,
    };

    sim::Simulator &sim_;
    NandArray &nand_;
    Client *client_ = nullptr;
    std::vector<TagState> tagState_;
    std::vector<Address> tagAddr_;
    /** Program-coalescing group of the command on each tag (0 =
     * ungrouped); handed to the NAND when the write data arrives. */
    std::vector<std::uint32_t> tagGroup_;
    /** Traffic class of the command on each tag (see Priority). */
    std::vector<Priority> tagPri_;
    /** Tracing continuation of the command on each tag
     * (Command::trace); handed to the NAND with the operation. */
    std::vector<std::uint64_t> tagTrace_;

    std::uint64_t readsIssued_ = 0;
    std::uint64_t writesIssued_ = 0;
    std::uint64_t erasesIssued_ = 0;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_FLASH_CONTROLLER_HH
