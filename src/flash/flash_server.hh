/**
 * @file
 * Flash Server (paper section 3.1.2): converts the out-of-order,
 * interleaved flash interface into multiple simple in-order
 * request/response interfaces using page buffers, and contains an
 * Address Translation Unit mapping file handles to streams of physical
 * addresses supplied by the host file system.
 *
 * An in-store processor simply requests (handle, offset, length) and
 * receives pages in order; the width (interfaces), command queue depth
 * and buffering are adjustable per application, as in the paper.
 */

#ifndef BLUEDBM_FLASH_FLASH_SERVER_HH
#define BLUEDBM_FLASH_FLASH_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "flash/flash_splitter.hh"
#include "flash/types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace flash {

/**
 * In-order page server over a splitter port.
 */
class FlashServer : public Client
{
  public:
    /** Callback delivering one in-order page. */
    using PageSink = std::function<void(PageBuffer, Status)>;
    /** Callback signalling completion of a write. */
    using WriteSink = std::function<void(Status)>;

    /**
     * @param sim         simulation kernel
     * @param port        splitter port to drive
     * @param interfaces  number of independent in-order interfaces
     * @param queue_depth per-interface commands kept in flight
     */
    FlashServer(sim::Simulator &sim, FlashSplitter::Port &port,
                unsigned interfaces, unsigned queue_depth);

    /** Number of in-order interfaces. */
    unsigned interfaces() const { return unsigned(ifcs_.size()); }

    /** Per-interface command queue depth. */
    unsigned queueDepth() const { return depth_; }

    /**
     * @name Address Translation Unit
     * The host file system pushes the physical locations of a file
     * once; in-store processors then reference the file by handle.
     */
    ///@{

    /** Define (or replace) the page list of @p handle. */
    void defineHandle(std::uint32_t handle, std::vector<Address> pages);

    /** Remove a handle. */
    void dropHandle(std::uint32_t handle);

    /** Pages of a handle; null if unknown. */
    const std::vector<Address> *handlePages(std::uint32_t handle) const;

    ///@}

    /**
     * Read @p count pages of file @p handle starting at page
     * @p first, delivering pages in order on interface @p ifc.
     *
     * @param ifc    interface index
     * @param handle file handle previously defined
     * @param first  first file page
     * @param count  number of pages
     * @param sink   called once per page, in file order
     */
    void streamRead(unsigned ifc, std::uint32_t handle,
                    std::uint64_t first, std::uint64_t count,
                    PageSink sink);

    /** Read one physical page in order on interface @p ifc. */
    void readPage(unsigned ifc, const Address &addr, PageSink sink);

    /** Write one physical page via interface @p ifc. */
    void writePage(unsigned ifc, const Address &addr, PageBuffer data,
                   WriteSink sink);

    /**
     * @name Program coalescing (write combining)
     * An opt-in staging stage between writePage() and the command
     * queue: writes destined for the same (interface, bus) that
     * arrive within a bounded window are flushed together as one
     * command group, letting the NAND overlap their plane programs
     * (up to Timing::planesPerChip pages of a batch landing on a
     * chip program concurrently instead of serializing) --
     * concurrent small appends from different files amortize the
     * program latency they would otherwise each pay in full.
     *
     * The stage never adds latency a write would not already see:
     * a write stages ONLY while another write to the same bus is
     * ahead of it in this interface (staged, queued or in flight)
     * -- i.e. exactly when it would be waiting on that bus anyway
     * and a shared program window can pay. A write with no same-bus
     * write ahead (the common case: a log's tail-page chain
     * round-robins across buses) issues immediately, untouched.
     * Staged writes flush when the batch fills, when the window
     * expires, or the moment the blocking write completes.
     */
    ///@{

    /**
     * Enable coalescing on @p ifc.
     * @param max_batch writes flushed together at most (>= 2)
     * @param window    ticks a staged write may wait while the
     *                  interface is busy
     */
    void enableWriteBatching(unsigned ifc, unsigned max_batch,
                             sim::Tick window);

    /** Writes that were flushed in a batch of two or more. */
    std::uint64_t batchedWrites() const { return batchedWrites_; }

    /** Writes currently staged (all interfaces). */
    unsigned stagedWrites() const { return stagedTotal_; }

    ///@}

    /** Erase one physical block via interface @p ifc. */
    void eraseBlock(unsigned ifc, const Address &addr, WriteSink sink);

    /**
     * Commands queued plus in flight on interface @p ifc: the
     * congestion signal read-spreading clients (fs::LogFs) key off.
     */
    unsigned queueLength(unsigned ifc) const;

    /**
     * @name Fault injection (tests)
     * Arm a write-fault hook: every page program whose address the
     * hook claims (returns true) is dropped before it reaches the
     * flash card and completes with Status::IllegalWrite. The NAND
     * contents are left untouched -- exactly an aborted program --
     * so durability bugs (an index trusting a failed append) surface
     * as wrong bytes instead of hiding behind a magically-written
     * page. Pass nullptr to disarm.
     */
    ///@{
    using WriteFault = std::function<bool(const Address &)>;
    void setWriteFault(WriteFault hook) { writeFault_ = std::move(hook); }
    /** Programs failed by the armed hook. */
    std::uint64_t injectedWriteFaults() const { return injectedWriteFaults_; }
    ///@}

    /** @name Client interface (driven by the splitter port) */
    ///@{
    void readDone(Tag tag, PageBuffer data, Status status) override;
    void writeDataRequest(Tag tag) override;
    void writeDone(Tag tag, Status status) override;
    void eraseDone(Tag tag, Status status) override;
    ///@}

  private:
    struct Job
    {
        Op op = Op::ReadPage;
        Address addr;
        PageBuffer writeData;
        PageSink pageSink;
        WriteSink writeSink;
        std::uint32_t group = 0; //!< program-coalescing batch id
    };

    struct Completion
    {
        Job job;
        PageBuffer data;
        Status status = Status::Ok;
    };

    /** Per-interface in-order machinery. */
    struct Interface
    {
        std::deque<Job> pending;     //!< not yet issued
        std::uint64_t nextIssueSeq = 0;
        std::uint64_t nextDeliverSeq = 0;
        unsigned inFlight = 0;
        //! completion reorder buffer keyed by sequence number
        std::map<std::uint64_t, Completion> reorder;
        /** @name Write-coalescing stage (enableWriteBatching) */
        ///@{
        unsigned batchMax = 0;    //!< 0 = coalescing disabled
        sim::Tick batchWindow = 0;
        /** Staged write jobs keyed by bus (batches form per bus so
         * a flushed group lands on one bus's chips together). */
        std::vector<std::vector<Job>> staged;
        unsigned stagedCount = 0;
        /** Writes per bus currently staged, queued or in flight:
         * the contention signal that gates staging. */
        std::vector<unsigned> writeLoad;
        ///@}
    };

    struct TagInfo
    {
        unsigned ifc = 0;
        std::uint64_t seq = 0;
        Job job;
        bool busy = false;
    };

    void pump(unsigned ifc);
    void complete(Tag tag, PageBuffer data, Status status);
    void deliver(unsigned ifc);
    unsigned tagBase(unsigned ifc) const { return ifc * depth_; }

    /** Stage @p job on (ifc, bus) or decide it must issue now. */
    void stageWrite(unsigned ifc, Job job);
    /** Flush one (ifc, bus) batch into the command queue. */
    void flushBatch(unsigned ifc, std::uint32_t bus);

    sim::Simulator &sim_;
    FlashSplitter::Port &port_;
    unsigned depth_;
    std::vector<Interface> ifcs_;
    std::vector<TagInfo> tagInfo_;
    std::unordered_map<std::uint32_t, std::vector<Address>> atu_;
    WriteFault writeFault_;
    std::uint64_t injectedWriteFaults_ = 0;
    std::uint32_t nextGroup_ = 1;   //!< batch ids (0 = ungrouped)
    std::uint64_t batchedWrites_ = 0;
    unsigned stagedTotal_ = 0;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_FLASH_SERVER_HH
