/**
 * @file
 * Flash Server (paper section 3.1.2): converts the out-of-order,
 * interleaved flash interface into multiple simple in-order
 * request/response interfaces using page buffers, and contains an
 * Address Translation Unit mapping file handles to streams of physical
 * addresses supplied by the host file system.
 *
 * An in-store processor simply requests (handle, offset, length) and
 * receives pages in order; the width (interfaces), command queue depth
 * and buffering are adjustable per application, as in the paper.
 */

#ifndef BLUEDBM_FLASH_FLASH_SERVER_HH
#define BLUEDBM_FLASH_FLASH_SERVER_HH

// lint: hot-path

#include <cstdint>
#include <deque>
#include <functional> // lint: allow(hot-path-alloc) test-only fault hooks below
#include <map>
#include <unordered_map>
#include <vector>

#include "flash/flash_splitter.hh"
#include "flash/types.hh"
#include "sim/inline_function.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace flash {

/**
 * In-order page server over a splitter port.
 *
 * Ordering contract: completions are delivered in issue order PER
 * DELIVERY STREAM on each interface -- serving (Priority::Read)
 * reads, maintenance (Background) reads and writes/erases each in
 * their own issue order -- not interleaved into one global
 * sequence. A serving read therefore never waits behind a slow
 * program for delivery, neither directly (essential for
 * read-priority suspension at the NAND: a read that jumped a 400us
 * program must not then queue behind that same program's
 * completion slot) nor transitively behind a Background read that
 * queued FIFO behind the program. The write/erase stream keeps the
 * strict in-order completion the file system's tail-rewrite
 * protocol depends on. No client of this class orders reads
 * against in-flight writes (or across traffic classes) through the
 * interface: the file systems only read page locations that a
 * completed program installed, and every multi-page read delivers
 * within one stream.
 */
class FlashServer : public Client
{
  public:
    /** Callback delivering one in-order page (move-only, SBO --
     * every served page crosses one of these). */
    using PageSink = sim::InlineFunction<void(PageBuffer, Status)>;
    /** Callback signalling completion of a write. */
    using WriteSink = sim::InlineFunction<void(Status)>;

    /**
     * @param sim         simulation kernel
     * @param port        splitter port to drive
     * @param interfaces  number of independent in-order interfaces
     * @param queue_depth per-interface commands kept in flight
     */
    FlashServer(sim::Simulator &sim, FlashSplitter::Port &port,
                unsigned interfaces, unsigned queue_depth);

    /** Number of in-order interfaces. */
    unsigned interfaces() const { return unsigned(ifcs_.size()); }

    /** Per-interface command queue depth. */
    unsigned queueDepth() const { return depth_; }

    /**
     * @name Address Translation Unit
     * The host file system pushes the physical locations of a file
     * once; in-store processors then reference the file by handle.
     */
    ///@{

    /** Define (or replace) the page list of @p handle. */
    void defineHandle(std::uint32_t handle, std::vector<Address> pages);

    /** Remove a handle. */
    void dropHandle(std::uint32_t handle);

    /** Pages of a handle; null if unknown. */
    const std::vector<Address> *handlePages(std::uint32_t handle) const;

    ///@}

    /**
     * Read @p count pages of file @p handle starting at page
     * @p first, delivering pages in order on interface @p ifc.
     *
     * @param ifc    interface index
     * @param handle file handle previously defined
     * @param first  first file page
     * @param count  number of pages
     * @param sink   called once per page, in file order
     * @param pri    traffic class. Defaults to Background: a bulk
     *               stream is throughput-bound (its delivery rides
     *               the bus, not the array), so letting it suspend
     *               in-flight programs would disturb writers for no
     *               gain. Pass Priority::Read explicitly for a
     *               latency-critical in-order stream.
     */
    void streamRead(unsigned ifc, std::uint32_t handle,
                    std::uint64_t first, std::uint64_t count,
                    PageSink sink,
                    Priority pri = Priority::Background);

    /**
     * Read one physical page in order on interface @p ifc.
     *
     * @p offset / @p len select partial page read-out (NAND random
     * data-out): the sink receives exactly the @p len bytes of
     * [offset, offset + len) and only the ECC words covering the
     * range cross the flash bus. len 0 (default) reads the whole
     * page.
     */
    void readPage(unsigned ifc, const Address &addr, PageSink sink,
                  Priority pri = Priority::Read,
                  std::uint32_t offset = 0, std::uint32_t len = 0,
                  std::uint64_t trace = 0);

    /** Write one physical page via interface @p ifc.
     *
     * @p trace (here and on readPage/eraseBlock; sim::Tracer
     * handle, 0 = untraced) parents a `flash.queue` span (enqueue
     * to issue) and a `flash.op` span (issue to completion, with
     * the NAND leaf inside) for this operation. */
    void writePage(unsigned ifc, const Address &addr, PageBuffer data,
                   WriteSink sink, Priority pri = Priority::Read,
                   std::uint64_t trace = 0);

    /**
     * @name Program coalescing (write combining)
     * An opt-in staging stage between writePage() and the command
     * queue: writes destined for the same (interface, bus) that
     * arrive within a bounded window are flushed together as one
     * command group, letting the NAND overlap their plane programs
     * (up to Timing::planesPerChip pages of a batch landing on a
     * chip program concurrently instead of serializing) --
     * concurrent small appends from different files amortize the
     * program latency they would otherwise each pay in full.
     *
     * The stage never adds latency a write would not already see:
     * a write stages ONLY while another write to the same bus is
     * ahead of it in this interface (staged, queued or in flight)
     * -- i.e. exactly when it would be waiting on that bus anyway
     * and a shared program window can pay. A write with no same-bus
     * write ahead (the common case: a log's tail-page chain
     * round-robins across buses) issues immediately, untouched.
     * Staged writes flush when the batch fills, when the window
     * expires, or the moment the blocking write completes.
     */
    ///@{

    /**
     * Enable coalescing on @p ifc.
     * @param max_batch writes flushed together at most (>= 2)
     * @param window    ticks a staged write may wait while the
     *                  interface is busy
     */
    void enableWriteBatching(unsigned ifc, unsigned max_batch,
                             sim::Tick window);

    /** Writes that were flushed in a batch of two or more. */
    std::uint64_t batchedWrites() const { return batchedWrites_.value(); }

    /** Writes currently staged (all interfaces). */
    unsigned stagedWrites() const { return stagedTotal_; }

    ///@}

    /** Erase one physical block via interface @p ifc. */
    void eraseBlock(unsigned ifc, const Address &addr, WriteSink sink,
                    Priority pri = Priority::Background,
                    std::uint64_t trace = 0);

    /**
     * Commands queued plus in flight on interface @p ifc: the
     * congestion signal read-spreading clients (fs::LogFs) key off.
     */
    unsigned queueLength(unsigned ifc) const;

    /**
     * @name Fault injection (tests)
     * Arm a write-fault hook: every page program whose address the
     * hook claims (returns true) is dropped before it reaches the
     * flash card and completes with Status::IllegalWrite. The NAND
     * contents are left untouched -- exactly an aborted program --
     * so durability bugs (an index trusting a failed append) surface
     * as wrong bytes instead of hiding behind a magically-written
     * page. Pass nullptr to disarm.
     */
    ///@{
    // lint: allow(hot-path-alloc) test-only fault hook, armed by
    // tests and disarmed in production paths; never on the per-op
    // fast path unless a test installed it
    using WriteFault = std::function<bool(const Address &)>;
    void setWriteFault(WriteFault hook) { writeFault_ = std::move(hook); }
    /** Programs failed by the armed hook. */
    std::uint64_t injectedWriteFaults() const { return injectedWriteFaults_.value(); }

    /**
     * What a read-fault hook does to one page read's RESPONSE (the
     * command itself executed normally): drop it entirely, hold it
     * for delayTicks before delivery, or force its status to
     * Uncorrectable (a decode failure without waiting for wear --
     * the recovery ladder's test vector; the page data is delivered
     * as-is, exactly what a failed decode hands up). All-zero/false
     * means no fault. An uncorrectable verdict still rides the
     * retry ladder: the hook is consulted again on each re-sense,
     * so a fail-N-then-pass hook exercises retry success.
     */
    struct ReadFaultAction
    {
        bool drop = false;        //!< response lost above the server
        sim::Tick delayTicks = 0; //!< response held this long
        bool uncorrectable = false; //!< status forced to Uncorrectable
    };
    /**
     * Arm a read-fault hook, the response-side sibling of
     * setWriteFault: every completing page read is offered to the
     * hook, which may drop its response (the waiter never hears
     * back -- how a requester experiences a crashed or wedged
     * node, the timeout-and-failover test vector) or delay it (a
     * degraded chip / overloaded path). A dropped response still
     * retires its delivery-stream slot, so later reads on the
     * interface flow normally -- the hang is scoped to the faulted
     * request, not the whole interface; a delayed response holds
     * its tag busy for the duration, so sustained delays backpressure
     * the interface exactly like a slow chip. Pass nullptr to disarm.
     */
    // lint: allow(hot-path-alloc) test-only fault hook (see
    // WriteFault)
    using ReadFault = std::function<ReadFaultAction(const Address &)>;
    void setReadFault(ReadFault hook) { readFault_ = std::move(hook); }
    /** Read responses dropped, delayed or corrupted by the hook. */
    std::uint64_t injectedReadFaults() const { return injectedReadFaults_.value(); }
    ///@}

    /**
     * @name Read-retry ladder
     * A page read completing Uncorrectable is re-sensed up to
     * @p retries times before the verdict is delivered: each retry
     * re-issues the command on the same tag (the delivery-stream
     * slot is preserved, so interface ordering is untouched) and
     * re-rolls the NAND's error draw -- a marginal page often reads
     * clean on a second sense, like a real controller's read-retry
     * voltage steps. 0 (the default) delivers the first verdict.
     */
    ///@{
    void setReadRetries(unsigned retries) { retryLimit_ = retries; }
    unsigned readRetries() const { return retryLimit_; }
    /** Re-senses issued by the ladder. */
    std::uint64_t retriedReads() const { return retriedReads_.value(); }
    /** Reads that recovered (non-Uncorrectable) after >=1 retry. */
    std::uint64_t retrySuccesses() const { return retrySuccesses_.value(); }
    /** Reads still Uncorrectable with the budget exhausted. */
    std::uint64_t retryFailures() const { return retryFailures_.value(); }
    ///@}

    /** @name Client interface (driven by the splitter port) */
    ///@{
    void readDone(Tag tag, PageBuffer data, Status status) override;
    void writeDataRequest(Tag tag) override;
    void writeDone(Tag tag, Status status) override;
    void eraseDone(Tag tag, Status status) override;
    ///@}

  private:
    struct Job
    {
        Op op = Op::ReadPage;
        Address addr;
        PageBuffer writeData;
        PageSink pageSink;
        WriteSink writeSink;
        /** Non-zero: a streamRead() page; the sink lives once in
         * streams_ instead of being copied into every Job (the
         * sinks are move-only). */
        std::uint32_t streamId = 0;
        /** Read-fault drop: deliver retires the slot but skips the
         * sink. */
        bool dropped = false;
        std::uint32_t group = 0; //!< program-coalescing batch id
        Priority pri = Priority::Read; //!< traffic class
        std::uint32_t readOffset = 0; //!< partial read-out range
        std::uint32_t readLen = 0;    //!< 0 = whole page
        unsigned retries = 0;        //!< re-senses spent on this read
        std::uint64_t trace = 0;     //!< caller's tracing span
        std::uint64_t queueSpan = 0; //!< open flash.queue span
        sim::Tick enqueued = 0;      //!< when the job entered the server
    };

    struct Completion
    {
        Job job;
        PageBuffer data;
        Status status = Status::Ok;
    };

    /** Delivery streams per interface: serving reads, maintenance
     * reads and writes/erases each reorder independently. A
     * Background read queues the full array time behind a program
     * (it never suspends), so sharing its stream with serving reads
     * would head-of-line block them -- exactly what the split
     * exists to prevent. */
    static constexpr unsigned deliveryStreams = 3;

    /** Delivery stream of a job (see above). */
    static unsigned
    streamOf(Op op, Priority pri)
    {
        if (op != Op::ReadPage)
            return 1;
        return pri == Priority::Read ? 0 : 2;
    }

    /** Per-interface in-order machinery. */
    struct Interface
    {
        std::deque<Job> pending;     //!< not yet issued
        std::uint64_t nextIssueSeq[deliveryStreams] = {};
        std::uint64_t nextDeliverSeq[deliveryStreams] = {};
        unsigned inFlight = 0;
        //! per-stream completion reorder buffers keyed by sequence
        std::map<std::uint64_t, Completion> reorder[deliveryStreams];
        /** @name Write-coalescing stage (enableWriteBatching) */
        ///@{
        unsigned batchMax = 0;    //!< 0 = coalescing disabled
        sim::Tick batchWindow = 0;
        /** Staged write jobs keyed by bus (batches form per bus so
         * a flushed group lands on one bus's chips together). */
        std::vector<std::vector<Job>> staged;
        unsigned stagedCount = 0;
        /** Writes per bus currently staged, queued or in flight:
         * the contention signal that gates staging. */
        std::vector<unsigned> writeLoad;
        ///@}
    };

    struct TagInfo
    {
        unsigned ifc = 0;
        std::uint64_t seq = 0;    //!< sequence within the stream
        unsigned stream = 0;      //!< streamOf(job.op)
        Job job;
        bool busy = false;
        sim::Tick issued = 0;        //!< when the command left pump()
        std::uint64_t opSpan = 0;    //!< open flash.op span
    };

    void pump(unsigned ifc);
    void complete(Tag tag, PageBuffer data, Status status);
    void deliver(unsigned ifc);
    unsigned tagBase(unsigned ifc) const { return ifc * depth_; }

    /** Stage @p job on (ifc, bus) or decide it must issue now. */
    void stageWrite(unsigned ifc, Job job);
    /** Flush one (ifc, bus) batch into the command queue. */
    void flushBatch(unsigned ifc, std::uint32_t bus);

    /** One streamRead() in flight: the shared sink and pages left
     * to deliver. Erased when the last page (dropped or not)
     * retires. */
    struct StreamState
    {
        PageSink sink;
        std::uint64_t remaining = 0;
    };

    sim::Simulator &sim_;
    FlashSplitter::Port &port_;
    unsigned depth_;
    std::vector<Interface> ifcs_;
    std::unordered_map<std::uint32_t, StreamState> streams_;
    std::uint32_t nextStreamId_ = 1;
    std::vector<TagInfo> tagInfo_;
    std::unordered_map<std::uint32_t, std::vector<Address>> atu_;
    WriteFault writeFault_;
    ReadFault readFault_;
    std::uint32_t nextGroup_ = 1;   //!< batch ids (0 = ungrouped)
    unsigned stagedTotal_ = 0;
    unsigned retryLimit_ = 0;       //!< read-retry ladder budget

    /** Re-issue @p tag's read command for one more sense. */
    void resendRead(Tag tag);

    /** Route a read verdict through the retry ladder, then
     * complete(). */
    void readRetryCheck(Tag tag, PageBuffer data, Status status);

    /** Construction serial among flash servers; the "inst" label of
     * the flash.* metrics below. */
    unsigned inst_;
    // Registry-backed statistics (accessors above are thin reads).
    sim::Counter &injectedWriteFaults_;
    sim::Counter &injectedReadFaults_;
    sim::Counter &injectedReadDrops_;
    sim::Counter &injectedReadDelays_;
    sim::Counter &injectedReadUncorrectable_;
    sim::Counter &retriedReads_;
    sim::Counter &retrySuccesses_;
    sim::Counter &retryFailures_;
    sim::Counter &batchedWrites_;
    /**
     * Always-on per-stage latency attribution, shared by every
     * flash server of the simulation (no inst label: the bench
     * reports cluster-wide stage distributions). Ticks; labeled by
     * traffic class ("read" serving vs "bg" maintenance).
     * kv.stage.flash_queue = job enqueue to command issue,
     * kv.stage.nand = command issue to completion.
     */
    sim::LatencyHistogram &stageQueueRead_;
    sim::LatencyHistogram &stageQueueBg_;
    sim::LatencyHistogram &stageNandRead_;
    sim::LatencyHistogram &stageNandBg_;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_FLASH_SERVER_HH
