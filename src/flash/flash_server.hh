/**
 * @file
 * Flash Server (paper section 3.1.2): converts the out-of-order,
 * interleaved flash interface into multiple simple in-order
 * request/response interfaces using page buffers, and contains an
 * Address Translation Unit mapping file handles to streams of physical
 * addresses supplied by the host file system.
 *
 * An in-store processor simply requests (handle, offset, length) and
 * receives pages in order; the width (interfaces), command queue depth
 * and buffering are adjustable per application, as in the paper.
 */

#ifndef BLUEDBM_FLASH_FLASH_SERVER_HH
#define BLUEDBM_FLASH_FLASH_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "flash/flash_splitter.hh"
#include "flash/types.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace flash {

/**
 * In-order page server over a splitter port.
 */
class FlashServer : public Client
{
  public:
    /** Callback delivering one in-order page. */
    using PageSink = std::function<void(PageBuffer, Status)>;
    /** Callback signalling completion of a write. */
    using WriteSink = std::function<void(Status)>;

    /**
     * @param sim         simulation kernel
     * @param port        splitter port to drive
     * @param interfaces  number of independent in-order interfaces
     * @param queue_depth per-interface commands kept in flight
     */
    FlashServer(sim::Simulator &sim, FlashSplitter::Port &port,
                unsigned interfaces, unsigned queue_depth);

    /** Number of in-order interfaces. */
    unsigned interfaces() const { return unsigned(ifcs_.size()); }

    /** Per-interface command queue depth. */
    unsigned queueDepth() const { return depth_; }

    /**
     * @name Address Translation Unit
     * The host file system pushes the physical locations of a file
     * once; in-store processors then reference the file by handle.
     */
    ///@{

    /** Define (or replace) the page list of @p handle. */
    void defineHandle(std::uint32_t handle, std::vector<Address> pages);

    /** Remove a handle. */
    void dropHandle(std::uint32_t handle);

    /** Pages of a handle; null if unknown. */
    const std::vector<Address> *handlePages(std::uint32_t handle) const;

    ///@}

    /**
     * Read @p count pages of file @p handle starting at page
     * @p first, delivering pages in order on interface @p ifc.
     *
     * @param ifc    interface index
     * @param handle file handle previously defined
     * @param first  first file page
     * @param count  number of pages
     * @param sink   called once per page, in file order
     */
    void streamRead(unsigned ifc, std::uint32_t handle,
                    std::uint64_t first, std::uint64_t count,
                    PageSink sink);

    /** Read one physical page in order on interface @p ifc. */
    void readPage(unsigned ifc, const Address &addr, PageSink sink);

    /** Write one physical page via interface @p ifc. */
    void writePage(unsigned ifc, const Address &addr, PageBuffer data,
                   WriteSink sink);

    /** Erase one physical block via interface @p ifc. */
    void eraseBlock(unsigned ifc, const Address &addr, WriteSink sink);

    /**
     * Commands queued plus in flight on interface @p ifc: the
     * congestion signal read-spreading clients (fs::LogFs) key off.
     */
    unsigned queueLength(unsigned ifc) const;

    /**
     * @name Fault injection (tests)
     * Arm a write-fault hook: every page program whose address the
     * hook claims (returns true) is dropped before it reaches the
     * flash card and completes with Status::IllegalWrite. The NAND
     * contents are left untouched -- exactly an aborted program --
     * so durability bugs (an index trusting a failed append) surface
     * as wrong bytes instead of hiding behind a magically-written
     * page. Pass nullptr to disarm.
     */
    ///@{
    using WriteFault = std::function<bool(const Address &)>;
    void setWriteFault(WriteFault hook) { writeFault_ = std::move(hook); }
    /** Programs failed by the armed hook. */
    std::uint64_t injectedWriteFaults() const { return injectedWriteFaults_; }
    ///@}

    /** @name Client interface (driven by the splitter port) */
    ///@{
    void readDone(Tag tag, PageBuffer data, Status status) override;
    void writeDataRequest(Tag tag) override;
    void writeDone(Tag tag, Status status) override;
    void eraseDone(Tag tag, Status status) override;
    ///@}

  private:
    struct Job
    {
        Op op = Op::ReadPage;
        Address addr;
        PageBuffer writeData;
        PageSink pageSink;
        WriteSink writeSink;
    };

    struct Completion
    {
        Job job;
        PageBuffer data;
        Status status = Status::Ok;
    };

    /** Per-interface in-order machinery. */
    struct Interface
    {
        std::deque<Job> pending;     //!< not yet issued
        std::uint64_t nextIssueSeq = 0;
        std::uint64_t nextDeliverSeq = 0;
        unsigned inFlight = 0;
        //! completion reorder buffer keyed by sequence number
        std::map<std::uint64_t, Completion> reorder;
    };

    struct TagInfo
    {
        unsigned ifc = 0;
        std::uint64_t seq = 0;
        Job job;
        bool busy = false;
    };

    void pump(unsigned ifc);
    void complete(Tag tag, PageBuffer data, Status status);
    void deliver(unsigned ifc);
    unsigned tagBase(unsigned ifc) const { return ifc * depth_; }

    sim::Simulator &sim_;
    FlashSplitter::Port &port_;
    unsigned depth_;
    std::vector<Interface> ifcs_;
    std::vector<TagInfo> tagInfo_;
    std::unordered_map<std::uint32_t, std::vector<Address>> atu_;
    WriteFault writeFault_;
    std::uint64_t injectedWriteFaults_ = 0;
};

} // namespace flash
} // namespace bluedbm

#endif // BLUEDBM_FLASH_FLASH_SERVER_HH
