#include "flash/page_store.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "sim/random.hh"

namespace bluedbm {
namespace flash {

PageStore::PageStore(const Geometry &geo, std::uint64_t seed)
    : geo_(geo), seed_(seed)
{
}

std::uint64_t
PageStore::blockKey(const Address &addr) const
{
    return (std::uint64_t(addr.bus) * geo_.chipsPerBus + addr.chip) *
        geo_.blocksPerChip + addr.block;
}

std::uint64_t
PageStore::pageKey(const Address &addr) const
{
    return blockKey(addr) * geo_.pagesPerBlock + addr.page;
}

PageBuffer
PageStore::synthesize(std::uint64_t page_key) const
{
    sim::Rng rng(seed_ ^ (page_key * 0x2545f4914f6cdd1dull));
    PageBuffer data(geo_.pageSize);
    std::size_t i = 0;
    while (i + 8 <= data.size()) {
        std::uint64_t w = rng.next();
        std::memcpy(data.data() + i, &w, 8);
        i += 8;
    }
    for (std::uint64_t w = rng.next(); i < data.size(); ++i, w >>= 8)
        data[i] = static_cast<std::uint8_t>(w);
    return data;
}

Status
PageStore::program(const Address &addr, PageBuffer data)
{
    if (!addr.validFor(geo_))
        sim::panic("program at invalid address %s",
                   addr.toString().c_str());
    if (data.size() != geo_.pageSize)
        sim::panic("program with %zu bytes, page size is %u",
                   data.size(), geo_.pageSize);

    std::uint64_t bkey = blockKey(addr);
    if (badBlocks_.count(bkey))
        return Status::BadBlock;

    BlockState &blk = blocks_[bkey];
    if (blk.programmed.empty())
        blk.programmed.assign(geo_.pagesPerBlock, false);
    if (blk.programmed[addr.page])
        return Status::IllegalWrite;
    if (requireSequential_ && addr.page != blk.nextPage)
        return Status::IllegalWrite;

    blk.programmed[addr.page] = true;
    blk.nextPage = addr.page + 1;

    StoredPage sp;
    sp.check = Secded72::encode(data);
    sp.data = std::move(data);
    pages_[pageKey(addr)] = std::move(sp);
    ++programs_;
    return Status::Ok;
}

PageBuffer
PageStore::read(const Address &addr,
                std::vector<std::uint8_t> *check) const
{
    if (!addr.validFor(geo_))
        sim::panic("read at invalid address %s",
                   addr.toString().c_str());
    auto it = pages_.find(pageKey(addr));
    if (it == pages_.end()) {
        PageBuffer data = synthesize(pageKey(addr));
        if (check)
            *check = Secded72::encode(data);
        return data;
    }
    if (check)
        *check = it->second.check;
    return it->second.data;
}

Status
PageStore::eraseBlock(const Address &addr)
{
    if (!addr.validFor(geo_))
        sim::panic("erase at invalid address %s",
                   addr.toString().c_str());
    std::uint64_t bkey = blockKey(addr);
    if (badBlocks_.count(bkey))
        return Status::BadBlock;

    BlockState &blk = blocks_[bkey];
    if (blk.programmed.empty())
        blk.programmed.assign(geo_.pagesPerBlock, false);

    ++blk.eraseCount;
    ++erases_;
    if (eraseLimit_ != 0 && blk.eraseCount >= eraseLimit_) {
        badBlocks_.insert(bkey);
        return Status::BadBlock;
    }

    Address page_addr = addr;
    for (std::uint32_t p = 0; p < geo_.pagesPerBlock; ++p) {
        page_addr.page = p;
        pages_.erase(pageKey(page_addr));
    }
    blk.programmed.assign(geo_.pagesPerBlock, false);
    blk.nextPage = 0;
    return Status::Ok;
}

bool
PageStore::isProgrammed(const Address &addr) const
{
    auto it = blocks_.find(blockKey(addr));
    if (it == blocks_.end() || it->second.programmed.empty())
        return false;
    return it->second.programmed[addr.page];
}

std::uint32_t
PageStore::eraseCount(const Address &addr) const
{
    auto it = blocks_.find(blockKey(addr));
    return it == blocks_.end() ? 0 : it->second.eraseCount;
}

PageStore::EraseStats
PageStore::eraseStats() const
{
    std::uint64_t card_blocks = std::uint64_t(geo_.buses) *
        geo_.chipsPerBus * geo_.blocksPerChip;
    std::vector<std::uint32_t> counts;
    counts.reserve(card_blocks);
    // Sparse map: blocks absent from blocks_ were never erased.
    counts.assign(card_blocks, 0);
    for (const auto &kv : blocks_)
        counts[kv.first] = kv.second.eraseCount;
    std::sort(counts.begin(), counts.end());
    EraseStats st;
    if (counts.empty())
        return st;
    st.min = counts.front();
    st.p50 = counts[counts.size() / 2];
    st.max = counts.back();
    for (std::uint32_t c : counts)
        st.total += c;
    return st;
}

void
PageStore::addWear(const Address &addr, std::uint32_t cycles)
{
    if (!addr.validFor(geo_))
        sim::panic("addWear at invalid address %s",
                   addr.toString().c_str());
    BlockState &blk = blocks_[blockKey(addr)];
    if (blk.programmed.empty())
        blk.programmed.assign(geo_.pagesPerBlock, false);
    blk.eraseCount += cycles;
}

void
PageStore::markBad(const Address &addr)
{
    badBlocks_.insert(blockKey(addr));
}

bool
PageStore::isBad(const Address &addr) const
{
    return badBlocks_.count(blockKey(addr)) != 0;
}

} // namespace flash
} // namespace bluedbm
