/**
 * @file
 * Discrete event queue: the heart of the simulator.
 *
 * Events are (tick, sequence, callback) triples ordered by tick and,
 * for equal ticks, by insertion order, giving deterministic execution.
 * Cancellation is supported through EventId handles.
 *
 * ## Design: pooled slots + ladder queue + generation handles
 *
 * The hot path is allocation-free. Event callbacks live in a slab of
 * reusable 64-byte slots (one cache line each); scheduling order is
 * kept by a *ladder queue* (a multi-resolution calendar) of 16-byte
 * (tick, seq, slot) records. Where the previous 4-ary heap paid
 * O(log n) per pop -- ~90 ns at a 256K pending window, the kernel
 * bottleneck at cluster scale -- the ladder pays amortized O(1):
 *
 *  - far-future records land in an unsorted *top* list (one append);
 *  - when the near-time structures drain, the top is spread once
 *    into *rung 0*: up to 64 buckets of equal tick width;
 *  - consuming a bucket either sorts it into the *bottom* (when it
 *    is small or single-tick) or spreads it into a finer rung below;
 *  - the bottom is a fully sorted array consumed from the cheap end,
 *    so the steady-state pop is a bounds check and a pop_back;
 *  - records scheduled for the *current* tick (the scheduleAfter(0)
 *    follow-up pattern) bypass all of that through a same-tick FIFO
 *    whose append order is by construction the firing order.
 *
 * Each record is touched a bounded number of times (once per rung it
 * falls through, once in the bottom sort), so pops cost O(1)
 * amortized regardless of the pending-window size. Neither structure
 * allocates per event: slots recycle through a LIFO free list,
 * bucket/bottom vectors recycle their capacity, and all arrays only
 * ever grow to the high-water mark of simultaneously pending events.
 * Callbacks are stored as `InlineFunction<void(), 56>`, so the common
 * capture -- a this-pointer plus a couple of integers, or a moved-in
 * network message -- sits inside the slot instead of on the heap, and
 * `step()` *moves* the callback out before firing (copies are
 * impossible: the callback type is move-only).
 *
 * ## Determinism contract
 *
 * The queue pops the globally minimal live record under the strict
 * order (tick, then wrap-aware seq). The ladder only ever *partitions*
 * records by tick range and sorts each partition with that same
 * comparator before consumption, so the execution order is exactly
 * the order the heap produced: same-seed runs are bit-reproducible
 * across the refactor (gated by fig12/fig13 bit-identity and the
 * heap-vs-ladder oracle in tests/test_event_queue.cc).
 *
 * An `EventId` encodes {slot, generation}: the slot index in the high
 * 32 bits and the slot's generation at schedule time in the low 32.
 * `cancel()` is O(1): it validates the generation, bumps it, destroys
 * the callback and recycles the slot -- no hash lookup, no structure
 * surgery. The ladder record is left behind and lazily discarded when
 * it surfaces: each slot remembers the `(seq, tick)` of its live
 * record, so a record that no longer matches both is stale
 * (cancelled, fired, or the slot was reused; matching the tick too
 * makes a post-wrap seq alias harmless). Firing or cancelling
 * bumps the slot generation, so a handle can never cancel a newer
 * event that happens to reuse its slot; a slot whose 32-bit
 * generation space is exhausted is retired permanently (one 64-byte
 * slot per 2^32 events of churn), so EventIds are unique for the
 * queue's lifetime.
 *
 * `seq` is the global schedule counter and doubles as the same-tick
 * FIFO tie-break. It is 32-bit with wrap-aware comparison: ordering
 * of two *coexisting equal-tick* events is exact as long as fewer
 * than 2^31 schedules separate them, which holds for any realistic
 * pending set. Same-seed runs are bit-reproducible regardless.
 *
 * ## Zero-allocation invariant
 *
 * After warm-up (steady-state pending count reached), schedule(),
 * cancel() and step() perform no heap allocation as long as callback
 * captures fit the 56-byte inline buffer. `bench/ablation_kernel.cc`
 * tracks this: the pooled queue must stay >= 3x the events/sec of the
 * legacy std::function + priority_queue + hash-set implementation.
 */

#ifndef BLUEDBM_SIM_EVENT_QUEUE_HH
#define BLUEDBM_SIM_EVENT_QUEUE_HH

// lint: hot-path

#include <array>
#include <cstdint>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace sim {

/**
 * Handle identifying a scheduled event, usable for cancellation.
 * Encodes {slot index, slot generation}; see eventIdSlot().
 */
using EventId = std::uint64_t;

/** Sentinel meaning "no event". */
constexpr EventId invalidEventId = 0;

/** Slot index an EventId refers to (diagnostics / tests). */
constexpr std::uint32_t
eventIdSlot(EventId id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

/** Slot generation an EventId was issued for (diagnostics / tests). */
constexpr std::uint32_t
eventIdGeneration(EventId id)
{
    return static_cast<std::uint32_t>(id);
}

/**
 * Time-ordered queue of callbacks.
 *
 * Within one tick, events run in the order they were scheduled, so the
 * simulation is fully deterministic for a given seed and schedule.
 */
class EventQueue
{
  public:
    /** Callback storage: move-only, 56 bytes of inline capture --
     * one cache line including the vtable pointer, enough for a
     * this-pointer plus a whole 48-byte net::Message. */
    using Callback = InlineFunction<void(), 56>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when absolute tick; must be >= now()
     * @param fn   callback to execute
     * @return a handle usable with cancel()
     */
    EventId schedule(Tick when, Callback fn);

    /**
     * Cancel a previously scheduled event in O(1).
     *
     * @return true if the event existed and had not yet fired
     */
    bool cancel(EventId id);

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Whether any live (non-cancelled) events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live events pending. */
    std::uint64_t pending() const { return liveEvents_; }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Slots ever allocated (high-water mark of pending events). */
    std::size_t poolSlots() const { return fns_.size(); }

    /** Slots permanently retired after generation exhaustion. */
    std::uint64_t retiredSlots() const { return retiredSlots_; }

    /**
     * Run events until the queue drains or @p limit is reached.
     *
     * Events scheduled exactly at @p limit still execute.
     *
     * @param limit inclusive time bound
     * @return the tick at which execution stopped
     */
    Tick runUntil(Tick limit);

    /** Run until the queue is empty. */
    Tick run() { return runUntil(maxTick); }

    /**
     * Execute exactly one event if one exists.
     *
     * @return true if an event ran
     */
    bool step();

    /**
     * Test hook: jump a live event's slot to the last usable
     * generation so a single fire/cancel exhausts the 32-bit space
     * (reaching it organically takes 2^32 events of churn). Returns
     * the rewritten handle for the same event; the original handle
     * is dead. Never use outside tests.
     */
    EventId debugExhaustGeneration(EventId id);

  private:
    /** activeSeq value meaning "no live ladder record". nextSeq_
     * skips it, so a live record can never alias the sentinel. */
    static constexpr std::uint32_t noSeq = 0xffffffffu;

    /** Buckets per rung; spreading divides a span by this factor. */
    static constexpr std::size_t kBuckets = 64;
    /** Bucket size at or below which it is sorted into the bottom
     * instead of spread into a finer rung. */
    static constexpr std::size_t kBottomLimit = 64;
    /** Rung depth bound; width shrinks 64x per level, so 12 levels
     * cover the full 64-bit tick range down to width 1. */
    static constexpr std::size_t kMaxRungs = 12;

    /** Callback storage: exactly one cache line per event. */
    struct alignas(64) CallbackSlot
    {
        Callback fn;
    };

    /** Cold per-slot bookkeeping, dense so stale checks stay cheap.
     * A ladder record is live iff BOTH its seq and its tick match
     * the slot: seq alone could alias after a 2^32 wrap when a stale
     * record lingers in a rung, and the tick disambiguates (an
     * alias at the very same tick is behaviorally identical). */
    struct SlotMeta
    {
        std::uint32_t gen = 1;        //!< bumped on fire/cancel
        std::uint32_t activeSeq = noSeq; //!< seq of the live record
        Tick when = 0;                //!< tick of the live record
    };

    /** Ladder record: 16 bytes, four per cache line. */
    struct Rec
    {
        Tick when;
        std::uint32_t seq;  //!< schedule order; ties equal ticks
        std::uint32_t slot;
    };

    /** One ladder rung: kBuckets equal-width tick partitions of the
     * parent bucket (or the top span) it was spread from. Buckets
     * before @ref cur have been consumed. */
    struct Rung
    {
        Tick start = 0;        //!< tick at bucket 0's lower edge
        Tick width = 1;        //!< bucket width in ticks
        std::size_t cur = 0;   //!< next bucket to consume
        std::size_t count = 0; //!< records across buckets >= cur
        std::array<std::vector<Rec>, kBuckets> buckets;
    };

    /** (tick, seq) ordering; seq compare is wrap-aware (see file
     * comment). */
    static bool
    before(const Rec &a, const Rec &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return static_cast<std::int32_t>(a.seq - b.seq) < 0;
    }

    std::uint32_t acquireSlot();
    void retireSlot(std::uint32_t slot);

    /** Whether @p nd is the current occupant of its slot. */
    bool
    liveRecord(const Rec &nd) const
    {
        const SlotMeta &m = meta_[nd.slot];
        return m.activeSeq == nd.seq && m.when == nd.when;
    }

    /** Lower tick edge of rung @p r's next unconsumed bucket
     * (saturating: may exceed any schedulable tick when consumed
     * past the end). */
    Tick rungCurStart(const Rung &r) const;

    /** Route one record into top / a rung / the bottom. */
    void insertRecord(const Rec &rec);
    /** Sorted insert into the bottom (cheap-end fast path). */
    void insertBottom(const Rec &rec);
    /** Drop stale records from @p v in place. */
    void pruneStale(std::vector<Rec> &v);
    /** Spread the top list into rung 0. Top must be non-empty. */
    void spreadTop();
    /** Refill the empty bottom from the rungs/top.
     * @return false when no records remain anywhere. */
    bool refillBottom();
    /** Surface the minimal live record in nowQ_/bottom_.
     * @return false when the queue holds no live records. */
    bool prepareHead();

    std::vector<CallbackSlot> fns_;
    std::vector<SlotMeta> meta_;
    std::vector<std::uint32_t> freeSlots_;

    /** Same-tick FIFO: records scheduled for when == now(). Append
     * order equals firing order, so no sort is ever needed; consumed
     * from nowHead_ and recycled wholesale when drained. */
    std::vector<Rec> nowQ_;
    std::size_t nowHead_ = 0;
    /** Sorted *descending* by before(): the next event to fire is
     * back(), so consumption is pop_back. */
    std::vector<Rec> bottom_;
    /** rungs_[0] is the coarsest (spread from top); deeper rungs
     * subdivide one consumed bucket of the rung above. */
    std::array<Rung, kMaxRungs> rungs_;
    std::size_t nRungs_ = 0;
    /** Unsorted far-future records (when >= topStart_). */
    std::vector<Rec> top_;
    /** Ticks at or above this insert into top_. Raised when the top
     * is spread; reset to now() when the queue drains completely. */
    Tick topStart_ = 0;
    /** Whether prepareHead() surfaced the head in nowQ_ (else it is
     * bottom_.back()). */
    bool headInNow_ = false;

    Tick curTick_ = 0;
    std::uint32_t nextSeq_ = 0;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t retiredSlots_ = 0;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_EVENT_QUEUE_HH
