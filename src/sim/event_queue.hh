/**
 * @file
 * Discrete event queue: the heart of the simulator.
 *
 * Events are (tick, sequence, callback) triples ordered by tick and, for
 * equal ticks, by insertion order, giving deterministic execution.
 * Cancellation is supported through EventId handles.
 */

#ifndef BLUEDBM_SIM_EVENT_QUEUE_HH
#define BLUEDBM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace bluedbm {
namespace sim {

/** Handle identifying a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel meaning "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Time-ordered queue of callbacks.
 *
 * Within one tick, events run in the order they were scheduled, so the
 * simulation is fully deterministic for a given seed and schedule.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when absolute tick; must be >= now()
     * @param fn   callback to execute
     * @return a handle usable with cancel()
     */
    EventId schedule(Tick when, std::function<void()> fn);

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event existed and had not yet fired
     */
    bool cancel(EventId id);

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Whether any live (non-cancelled) events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live events pending. */
    std::uint64_t pending() const { return liveEvents_; }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run events until the queue drains or @p limit is reached.
     *
     * Events scheduled exactly at @p limit still execute.
     *
     * @param limit inclusive time bound
     * @return the tick at which execution stopped
     */
    Tick runUntil(Tick limit);

    /** Run until the queue is empty. */
    Tick run() { return runUntil(maxTick); }

    /**
     * Execute exactly one event if one exists.
     *
     * @return true if an event ran
     */
    bool step();

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Pop cancelled entries off the front of the heap. */
    void skipCancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> pending_;
    std::unordered_set<EventId> cancelled_;
    Tick curTick_ = 0;
    EventId nextId_ = 1;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_EVENT_QUEUE_HH
