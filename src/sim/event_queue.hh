/**
 * @file
 * Discrete event queue: the heart of the simulator.
 *
 * Events are (tick, sequence, callback) triples ordered by tick and,
 * for equal ticks, by insertion order, giving deterministic execution.
 * Cancellation is supported through EventId handles.
 *
 * ## Design: pooled slots + 4-ary heap + generation handles
 *
 * The hot path is allocation-free. Event callbacks live in a slab of
 * reusable 64-byte slots (one cache line each); scheduling order is
 * kept by a 4-ary min-heap of 16-byte (tick, seq, slot) records laid
 * out so that every sibling quadruple occupies exactly one aligned
 * cache line -- a sift-down touches one line per level instead of
 * two, which is where a simulator popping millions of events spends
 * its time. Neither structure allocates per event: slots recycle
 * through a LIFO free list and all arrays only ever grow to the
 * high-water mark of simultaneously pending events. Callbacks are
 * stored as `InlineFunction<void(), 56>`, so the common capture --
 * a this-pointer plus a couple of integers, or a moved-in network
 * message -- sits inside the slot instead of on the heap, and
 * `step()` *moves* the callback out before firing (copies are
 * impossible: the callback type is move-only).
 *
 * An `EventId` encodes {slot, generation}: the slot index in the high
 * 32 bits and the slot's generation at schedule time in the low 32.
 * `cancel()` is O(1): it validates the generation, bumps it, destroys
 * the callback and recycles the slot -- no hash lookup, no heap
 * surgery. The heap record is left behind and lazily discarded when
 * it reaches the root: each slot remembers the `(seq, tick)` of its
 * live heap record, so a record that no longer matches both is stale
 * (cancelled, fired, or the slot was reused; matching the tick too
 * makes a post-wrap seq alias harmless). Firing or cancelling
 * bumps the slot generation, so a handle can never cancel a newer
 * event that happens to reuse its slot; a slot whose 32-bit
 * generation space is exhausted is retired permanently (one 64-byte
 * slot per 2^32 events of churn), so EventIds are unique for the
 * queue's lifetime.
 *
 * `seq` is the global schedule counter and doubles as the same-tick
 * FIFO tie-break. It is 32-bit with wrap-aware comparison: ordering
 * of two *coexisting equal-tick* events is exact as long as fewer
 * than 2^31 schedules separate them, which holds for any realistic
 * pending set. Same-seed runs are bit-reproducible regardless.
 *
 * ## Zero-allocation invariant
 *
 * After warm-up (steady-state pending count reached), schedule(),
 * cancel() and step() perform no heap allocation as long as callback
 * captures fit the 56-byte inline buffer. `bench/ablation_kernel.cc`
 * tracks this: the pooled queue must stay >= 3x the events/sec of the
 * legacy std::function + priority_queue + hash-set implementation.
 */

#ifndef BLUEDBM_SIM_EVENT_QUEUE_HH
#define BLUEDBM_SIM_EVENT_QUEUE_HH

// lint: hot-path

#include <cstdint>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace sim {

/**
 * Handle identifying a scheduled event, usable for cancellation.
 * Encodes {slot index, slot generation}; see eventIdSlot().
 */
using EventId = std::uint64_t;

/** Sentinel meaning "no event". */
constexpr EventId invalidEventId = 0;

/** Slot index an EventId refers to (diagnostics / tests). */
constexpr std::uint32_t
eventIdSlot(EventId id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

/** Slot generation an EventId was issued for (diagnostics / tests). */
constexpr std::uint32_t
eventIdGeneration(EventId id)
{
    return static_cast<std::uint32_t>(id);
}

/**
 * Time-ordered queue of callbacks.
 *
 * Within one tick, events run in the order they were scheduled, so the
 * simulation is fully deterministic for a given seed and schedule.
 */
class EventQueue
{
  public:
    /** Callback storage: move-only, 56 bytes of inline capture --
     * one cache line including the vtable pointer, enough for a
     * this-pointer plus a whole 48-byte net::Message. */
    using Callback = InlineFunction<void(), 56>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @param when absolute tick; must be >= now()
     * @param fn   callback to execute
     * @return a handle usable with cancel()
     */
    EventId schedule(Tick when, Callback fn);

    /**
     * Cancel a previously scheduled event in O(1).
     *
     * @return true if the event existed and had not yet fired
     */
    bool cancel(EventId id);

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Whether any live (non-cancelled) events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live events pending. */
    std::uint64_t pending() const { return liveEvents_; }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /** Slots ever allocated (high-water mark of pending events). */
    std::size_t poolSlots() const { return fns_.size(); }

    /**
     * Run events until the queue drains or @p limit is reached.
     *
     * Events scheduled exactly at @p limit still execute.
     *
     * @param limit inclusive time bound
     * @return the tick at which execution stopped
     */
    Tick runUntil(Tick limit);

    /** Run until the queue is empty. */
    Tick run() { return runUntil(maxTick); }

    /**
     * Execute exactly one event if one exists.
     *
     * @return true if an event ran
     */
    bool step();

  private:
    /** activeSeq value meaning "no live heap record". nextSeq_ skips
     * it, so a live record can never alias the sentinel. */
    static constexpr std::uint32_t noSeq = 0xffffffffu;

    /** Callback storage: exactly one cache line per event. */
    struct alignas(64) CallbackSlot
    {
        Callback fn;
    };

    /** Cold per-slot bookkeeping, dense so stale checks stay cheap.
     * A heap record is live iff BOTH its seq and its tick match the
     * slot: seq alone could alias after a 2^32 wrap when a stale
     * record lingers in the heap, and the tick disambiguates (an
     * alias at the very same tick is behaviorally identical). */
    struct SlotMeta
    {
        std::uint32_t gen = 1;        //!< bumped on fire/cancel
        std::uint32_t activeSeq = noSeq; //!< seq of the live record
        Tick when = 0;                //!< tick of the live record
    };

    /** Heap record: 16 bytes so one sibling group is one line. */
    struct HeapNode
    {
        Tick when;
        std::uint32_t seq;  //!< schedule order; ties equal ticks
        std::uint32_t slot;
    };

    /** Sibling quadruples are cache-line aligned (see node()). */
    struct alignas(64) NodeGroup
    {
        HeapNode n[4];
    };

    /** (tick, seq) ordering; seq compare is wrap-aware (see file
     * comment). */
    static bool
    before(const HeapNode &a, const HeapNode &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return static_cast<std::int32_t>(a.seq - b.seq) < 0;
    }

    /**
     * Logical heap index -> storage. Three leading slots are skipped
     * so every sibling group {4k+1 .. 4k+4} lands in one aligned
     * NodeGroup.
     */
    HeapNode &
    node(std::size_t k)
    {
        return heap_[(k + 3) >> 2].n[(k + 3) & 3];
    }

    std::uint32_t acquireSlot();
    void retireSlot(std::uint32_t slot);

    /** Whether @p nd is the current occupant of its slot. */
    bool
    liveRecord(const HeapNode &nd) const
    {
        const SlotMeta &m = meta_[nd.slot];
        return m.activeSeq == nd.seq && m.when == nd.when;
    }

    void heapPush(HeapNode nd);
    /** Remove the root and restore heap order (hole-based sift). */
    void heapPopRoot();
    /** Drop stale (cancelled / superseded) records off the root. */
    void dropStale();

    std::vector<CallbackSlot> fns_;
    std::vector<SlotMeta> meta_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<NodeGroup> heap_;
    std::size_t heapSize_ = 0;

    Tick curTick_ = 0;
    std::uint32_t nextSeq_ = 0;
    std::uint64_t liveEvents_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_EVENT_QUEUE_HH
