/**
 * @file
 * Small-buffer-optimized, move-only callable wrapper.
 *
 * The event queue fires millions of tiny callbacks -- typically a
 * this-pointer plus a couple of integers, or a moved-in network
 * message -- and `std::function`'s 16-byte inline buffer forces
 * nearly all of them through the heap (one allocation at schedule
 * time, another whenever the wrapper is copied). InlineFunction
 * gives those captures generous inline storage (56 bytes at the
 * event queue's instantiation: a single vtable pointer leaves
 * 64 - 8 bytes of a cache line for the capture), supports move-only
 * callables (lambdas owning pooled payload handles), and never
 * copies: the wrapper itself is move-only by design, so the type
 * system proves the hot path is copy-free.
 *
 * Callables that exceed the inline capacity (or have a throwing move)
 * still work -- they fall back to a single heap allocation -- so the
 * type stays a drop-in replacement while keeping the common case
 * allocation-free.
 */

#ifndef BLUEDBM_SIM_INLINE_FUNCTION_HH
#define BLUEDBM_SIM_INLINE_FUNCTION_HH

// lint: hot-path

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bluedbm {
namespace sim {

template <typename Signature, std::size_t InlineBytes = 56>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes>
{
    static_assert(InlineBytes >= sizeof(void *),
                  "inline buffer must at least hold a pointer");

  public:
    InlineFunction() noexcept = default;

    /** Wrap any callable invocable as R(Args...). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        Ops<Fn>::construct(&buf_, std::forward<F>(f));
        vt_ = &vtableFor<Fn>;
    }

    InlineFunction(InlineFunction &&other) noexcept
    {
        moveFrom(other);
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Whether a callable is installed. */
    explicit operator bool() const noexcept { return vt_ != nullptr; }

    /** Invoke the wrapped callable. Undefined when empty. */
    R
    operator()(Args... args)
    {
        return vt_->invoke(&buf_, std::forward<Args>(args)...);
    }

    /** Destroy the wrapped callable, leaving the wrapper empty. */
    void
    reset() noexcept
    {
        if (vt_)
            vt_->manage(&buf_, nullptr, Op::Destroy);
        vt_ = nullptr;
    }

    /** Inline buffer alignment: pointer-aligned so the vtable
     * pointer + buffer stay within one cache line (over-aligned
     * callables take the heap fallback). */
    static constexpr std::size_t bufferAlign = alignof(void *);

    /** Whether a callable of type @p Fn would use the inline buffer. */
    template <typename Fn>
    static constexpr bool
    storedInline()
    {
        return sizeof(Fn) <= InlineBytes &&
               alignof(Fn) <= bufferAlign &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    enum class Op { Destroy, MoveTo };

    /** One static vtable per wrapped type: a single pointer in the
     * wrapper keeps the inline buffer at cache-line budget. */
    struct VTable
    {
        R (*invoke)(void *, Args...);
        void (*manage)(void *, void *, Op);
    };

    template <typename Fn>
    struct Ops
    {
        static constexpr bool kInline = storedInline<Fn>();

        template <typename F>
        static void
        construct(void *buf, F &&f)
        {
            if constexpr (kInline)
                ::new (buf) Fn(std::forward<F>(f));
            else
                // lint: allow(hot-path-alloc) documented fallback: a capture
                // too big for the inline buffer takes one heap allocation
                ::new (buf) Fn *(new Fn(std::forward<F>(f)));
        }

        static Fn &
        ref(void *buf)
        {
            if constexpr (kInline)
                return *std::launder(reinterpret_cast<Fn *>(buf));
            else
                return **std::launder(reinterpret_cast<Fn **>(buf));
        }

        static R
        invoke(void *buf, Args... args)
        {
            return ref(buf)(std::forward<Args>(args)...);
        }

        /**
         * MoveTo: move-construct into @p dst, then destroy the source
         * state in @p buf. Destroy: just tear down @p buf.
         */
        static void
        manage(void *buf, void *dst, Op op)
        {
            if constexpr (kInline) {
                Fn *f = std::launder(reinterpret_cast<Fn *>(buf));
                if (op == Op::MoveTo)
                    ::new (dst) Fn(std::move(*f));
                f->~Fn();
            } else {
                Fn **p = std::launder(reinterpret_cast<Fn **>(buf));
                if (op == Op::MoveTo)
                    ::new (dst) Fn *(*p); // pointer changes hands
                else
                    delete *p;
            }
        }
    };

    template <typename Fn>
    static constexpr VTable vtableFor = {&Ops<Fn>::invoke,
                                         &Ops<Fn>::manage};

    void
    moveFrom(InlineFunction &other) noexcept
    {
        vt_ = other.vt_;
        if (vt_)
            vt_->manage(&other.buf_, &buf_, Op::MoveTo);
        other.vt_ = nullptr;
    }

    const VTable *vt_ = nullptr;
    alignas(bufferAlign) std::byte buf_[InlineBytes];
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_INLINE_FUNCTION_HH
