#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace sim {

EventId
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    if (when < curTick_)
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    EventId id = nextId_++;
    heap_.push(Entry{when, id, std::move(fn)});
    pending_.insert(id);
    ++liveEvents_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == invalidEventId)
        return false;
    // We cannot remove from the middle of the heap; remember the id and
    // drop the entry lazily when it reaches the front.
    if (pending_.erase(id) == 0)
        return false;
    cancelled_.insert(id);
    --liveEvents_;
    return true;
}

void
EventQueue::skipCancelled()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        auto it = cancelled_.find(top.id);
        if (it == cancelled_.end())
            return;
        cancelled_.erase(it);
        heap_.pop();
    }
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap_.empty())
        return false;
    // Copy out before pop so the callback may schedule/cancel freely.
    Entry e = heap_.top();
    heap_.pop();
    pending_.erase(e.id);
    curTick_ = e.when;
    --liveEvents_;
    ++executed_;
    e.fn();
    return true;
}

Tick
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        skipCancelled();
        if (heap_.empty())
            break;
        if (heap_.top().when > limit) {
            curTick_ = limit;
            return curTick_;
        }
        step();
    }
    return curTick_;
}

} // namespace sim
} // namespace bluedbm
