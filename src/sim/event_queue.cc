#include "sim/event_queue.hh"

// lint: hot-path

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace sim {

std::uint32_t
EventQueue::acquireSlot()
{
    if (!freeSlots_.empty()) {
        std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    if (fns_.size() >= 0xffffffffu)
        panic("event pool exhausted (2^32 simultaneous events)");
    fns_.emplace_back();
    meta_.emplace_back();
    return static_cast<std::uint32_t>(fns_.size() - 1);
}

void
EventQueue::retireSlot(std::uint32_t slot)
{
    fns_[slot].fn.reset();
    SlotMeta &m = meta_[slot];
    m.activeSeq = noSeq;
    if (++m.gen == 0) {
        // Generation space exhausted: retire the slot permanently so
        // a stale EventId can never alias a future occupant (costs
        // one 64-byte slot per 2^32 events of churn). Handles stay
        // unique for the queue's lifetime, like the legacy 64-bit
        // ids. gen 0 is never issued, so old handles stay dead.
        return;
    }
    freeSlots_.push_back(slot);
}

void
EventQueue::heapPush(HeapNode nd)
{
    std::size_t k = heapSize_++;
    if (heapSize_ + 3 > heap_.size() * 4)
        heap_.resize(heap_.size() < 16 ? 16 : heap_.size() * 2);
    while (k > 0) {
        std::size_t parent = (k - 1) / 4;
        HeapNode &pn = node(parent);
        if (!before(nd, pn))
            break;
        node(k) = pn;
        k = parent;
    }
    node(k) = nd;
}

void
EventQueue::heapPopRoot()
{
    HeapNode last = node(--heapSize_);
    if (heapSize_ == 0)
        return;
    std::size_t k = 0;
    for (;;) {
        std::size_t first = 4 * k + 1;
        std::size_t best;
        if (first + 4 <= heapSize_) {
            // Full sibling group (one cache line): pick the minimum
            // with a branchless tournament -- the winner is data
            // dependent and would mispredict as a branch.
            std::size_t b0 = first + before(node(first + 1),
                                            node(first));
            std::size_t b1 = first + 2 + before(node(first + 3),
                                                node(first + 2));
            best = before(node(b1), node(b0)) ? b1 : b0;
        } else if (first >= heapSize_) {
            break;
        } else {
            best = first;
            for (std::size_t c = first + 1; c < heapSize_; ++c) {
                if (before(node(c), node(best)))
                    best = c;
            }
        }
        if (!before(node(best), last))
            break;
        node(k) = node(best);
        k = best;
    }
    node(k) = last;
}

void
EventQueue::dropStale()
{
    while (heapSize_ != 0 && !liveRecord(node(0)))
        heapPopRoot();
}

EventId
EventQueue::schedule(Tick when, Callback fn)
{
    if (when < curTick_)
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    if (!fn)
        panic("scheduling an empty callback");
    std::uint32_t slot = acquireSlot();
    fns_[slot].fn = std::move(fn);
    std::uint32_t seq = nextSeq_++;
    if (seq == noSeq) // sentinel is never a live seq
        seq = nextSeq_++;
    meta_[slot].activeSeq = seq;
    meta_[slot].when = when;
    heapPush(HeapNode{when, seq, slot});
    ++liveEvents_;
    return (static_cast<EventId>(slot) << 32) | meta_[slot].gen;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == invalidEventId)
        return false;
    std::uint32_t slot = eventIdSlot(id);
    std::uint32_t gen = eventIdGeneration(id);
    if (slot >= meta_.size() || meta_[slot].gen != gen)
        return false; // fired, cancelled, or slot reused since
    // The seq/generation bump invalidates the heap record lazily;
    // the slot is free for reuse immediately.
    retireSlot(slot);
    --liveEvents_;
    return true;
}

bool
EventQueue::step()
{
    dropStale();
    if (heapSize_ == 0)
        return false;
    HeapNode top = node(0);
    heapPopRoot();
    curTick_ = top.when;
    // Move the callback out of its slot and recycle the slot *before*
    // running: the callback may freely schedule into or cancel from
    // the queue (including reusing this very slot).
    Callback fn = std::move(fns_[top.slot].fn);
    retireSlot(top.slot);
    --liveEvents_;
    ++executed_;
    fn();
    return true;
}

Tick
EventQueue::runUntil(Tick limit)
{
    if (limit < curTick_)
        return curTick_; // never move time backwards
    for (;;) {
        dropStale();
        if (heapSize_ == 0)
            break;
        if (node(0).when > limit) {
            curTick_ = limit;
            return curTick_;
        }
        step();
    }
    return curTick_;
}

} // namespace sim
} // namespace bluedbm
