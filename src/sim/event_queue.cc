#include "sim/event_queue.hh"

// lint: hot-path

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace sim {

std::uint32_t
EventQueue::acquireSlot()
{
    if (!freeSlots_.empty()) {
        std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    if (fns_.size() >= 0xffffffffu)
        panic("event pool exhausted (2^32 simultaneous events)");
    fns_.emplace_back();
    meta_.emplace_back();
    return static_cast<std::uint32_t>(fns_.size() - 1);
}

void
EventQueue::retireSlot(std::uint32_t slot)
{
    fns_[slot].fn.reset();
    SlotMeta &m = meta_[slot];
    m.activeSeq = noSeq;
    if (++m.gen == 0) {
        // Generation space exhausted: retire the slot permanently so
        // a stale EventId can never alias a future occupant (costs
        // one 64-byte slot per 2^32 events of churn). Handles stay
        // unique for the queue's lifetime, like the legacy 64-bit
        // ids. gen 0 is never issued, so old handles stay dead.
        ++retiredSlots_;
        return;
    }
    freeSlots_.push_back(slot);
}

Tick
EventQueue::rungCurStart(const Rung &r) const
{
    // start + cur*width can exceed the tick range once the rung is
    // consumed near its end; saturate so comparisons stay sane.
    unsigned __int128 s = static_cast<unsigned __int128>(r.start) +
        static_cast<unsigned __int128>(r.width) * r.cur;
    if (s > maxTick)
        return maxTick;
    return static_cast<Tick>(s);
}

void
EventQueue::insertBottom(const Rec &rec)
{
    // Fast path: the new record fires before everything pending in
    // the bottom (short-delay schedules), so it belongs at the
    // consumption end.
    if (bottom_.empty() || before(rec, bottom_.back())) {
        bottom_.push_back(rec);
        return;
    }
    auto desc = [](const Rec &a, const Rec &b) { return before(b, a); };
    auto it = std::upper_bound(bottom_.begin(), bottom_.end(), rec, desc);
    bottom_.insert(it, rec);
}

void
EventQueue::insertRecord(const Rec &rec)
{
    if (rec.when == curTick_) {
        // Same-tick FIFO: append order is firing order, no sort.
        nowQ_.push_back(rec);
        return;
    }
    if (rec.when >= topStart_) {
        top_.push_back(rec);
        return;
    }
    // Walk coarse to fine; each rung's unconsumed region sits above
    // the one below it, so the first region containing the tick is
    // the right home.
    for (std::size_t r = 0; r < nRungs_; ++r) {
        Rung &rg = rungs_[r];
        if (rec.when < rungCurStart(rg))
            continue;
        std::size_t idx =
            static_cast<std::size_t>((rec.when - rg.start) / rg.width);
        // A rung spans at least its parent bucket but may have been
        // sized from the actual record min/max; late arrivals between
        // that max and the parent boundary clamp into the last bucket
        // (safe: ticks there are >= everything below, and the bucket
        // is sorted before consumption). If the rung is already fully
        // consumed, the record instead sinks into whatever finer
        // structure now serves that range.
        if (idx >= kBuckets) {
            if (rg.cur >= kBuckets)
                continue;
            idx = kBuckets - 1;
        }
        rg.buckets[idx].push_back(rec);
        ++rg.count;
        return;
    }
    // Below every rung: the tick range was already sorted into the
    // bottom, so merge into it.
    insertBottom(rec);
}

void
EventQueue::pruneStale(std::vector<Rec> &v)
{
    std::size_t out = 0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (liveRecord(v[i]))
            v[out++] = v[i];
    }
    v.resize(out);
}

void
EventQueue::spreadTop()
{
    Tick mn = top_[0].when;
    Tick mx = top_[0].when;
    for (const Rec &rec : top_) {
        mn = std::min(mn, rec.when);
        mx = std::max(mx, rec.when);
    }
    Rung &r = rungs_[0];
    r.start = mn;
    r.width = (mx - mn) / kBuckets + 1;
    r.cur = 0;
    r.count = top_.size();
    for (const Rec &rec : top_) {
        std::size_t idx =
            static_cast<std::size_t>((rec.when - mn) / r.width);
        r.buckets[idx].push_back(rec);
    }
    top_.clear();
    nRungs_ = 1;
    topStart_ = mx < maxTick ? mx + 1 : maxTick;
}

bool
EventQueue::refillBottom()
{
    for (;;) {
        if (nRungs_ == 0) {
            // Cancelled far-future guards are common; prune before
            // sizing the rung so they can't stretch its span.
            pruneStale(top_);
            if (top_.empty()) {
                // Fully drained: open a fresh epoch so future
                // schedules take the O(1) top path again instead of
                // merging one by one into the bottom.
                topStart_ = curTick_;
                return false;
            }
            spreadTop();
        }
        Rung &r = rungs_[nRungs_ - 1];
        if (r.count == 0) {
            r.cur = 0;
            --nRungs_;
            continue;
        }
        while (r.buckets[r.cur].empty())
            ++r.cur;
        std::vector<Rec> &b = r.buckets[r.cur];
        ++r.cur;
        r.count -= b.size();
        pruneStale(b);
        if (b.empty())
            continue;
        Tick mn = b[0].when;
        Tick mx = b[0].when;
        for (const Rec &rec : b) {
            mn = std::min(mn, rec.when);
            mx = std::max(mx, rec.when);
        }
        if (b.size() <= kBottomLimit || mn == mx ||
            nRungs_ == kMaxRungs) {
            // Small (or single-tick) bucket: sort it descending and
            // serve it as the new bottom. swap() recycles vector
            // capacity both ways, keeping the hot path allocation-free
            // once high-water marks are reached.
            bottom_.swap(b);
            std::sort(bottom_.begin(), bottom_.end(),
                      [](const Rec &x, const Rec &y) {
                          return before(y, x);
                      });
            return true;
        }
        // Large multi-tick bucket: spread into a finer rung (span
        // shrinks by >= kBuckets per level, so depth is bounded).
        Rung &c = rungs_[nRungs_];
        c.start = mn;
        c.width = (mx - mn) / kBuckets + 1;
        c.cur = 0;
        c.count = b.size();
        for (const Rec &rec : b) {
            std::size_t idx =
                static_cast<std::size_t>((rec.when - mn) / c.width);
            c.buckets[idx].push_back(rec);
        }
        b.clear();
        ++nRungs_;
    }
}

bool
EventQueue::prepareHead()
{
    for (;;) {
        while (nowHead_ < nowQ_.size() && !liveRecord(nowQ_[nowHead_]))
            ++nowHead_;
        if (nowHead_ >= nowQ_.size() && !nowQ_.empty()) {
            nowQ_.clear();
            nowHead_ = 0;
        }
        while (!bottom_.empty() && !liveRecord(bottom_.back()))
            bottom_.pop_back();
        bool haveNow = nowHead_ < nowQ_.size();
        bool haveBottom = !bottom_.empty();
        if (haveNow && haveBottom) {
            headInNow_ = before(nowQ_[nowHead_], bottom_.back());
            return true;
        }
        if (haveNow || haveBottom) {
            headInNow_ = haveNow;
            return true;
        }
        if (!refillBottom())
            return false;
    }
}

EventId
EventQueue::schedule(Tick when, Callback fn)
{
    if (when < curTick_)
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    if (!fn)
        panic("scheduling an empty callback");
    std::uint32_t slot = acquireSlot();
    fns_[slot].fn = std::move(fn);
    std::uint32_t seq = nextSeq_++;
    if (seq == noSeq) // sentinel is never a live seq
        seq = nextSeq_++;
    meta_[slot].activeSeq = seq;
    meta_[slot].when = when;
    insertRecord(Rec{when, seq, slot});
    ++liveEvents_;
    return (static_cast<EventId>(slot) << 32) | meta_[slot].gen;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == invalidEventId)
        return false;
    std::uint32_t slot = eventIdSlot(id);
    std::uint32_t gen = eventIdGeneration(id);
    if (slot >= meta_.size() || meta_[slot].gen != gen)
        return false; // fired, cancelled, or slot reused since
    // The seq/generation bump invalidates the ladder record lazily;
    // the slot is free for reuse immediately.
    retireSlot(slot);
    --liveEvents_;
    return true;
}

EventId
EventQueue::debugExhaustGeneration(EventId id)
{
    std::uint32_t slot = eventIdSlot(id);
    std::uint32_t gen = eventIdGeneration(id);
    if (slot >= meta_.size() || meta_[slot].gen != gen ||
        meta_[slot].activeSeq == noSeq)
        panic("debugExhaustGeneration: handle is not a live event");
    meta_[slot].gen = 0xffffffffu;
    return (static_cast<EventId>(slot) << 32) | 0xffffffffu;
}

bool
EventQueue::step()
{
    if (!prepareHead())
        return false;
    Rec rec;
    if (headInNow_) {
        rec = nowQ_[nowHead_++];
        if (nowHead_ == nowQ_.size()) {
            nowQ_.clear();
            nowHead_ = 0;
        }
    } else {
        rec = bottom_.back();
        bottom_.pop_back();
    }
    curTick_ = rec.when;
    // Move the callback out of its slot and recycle the slot *before*
    // running: the callback may freely schedule into or cancel from
    // the queue (including reusing this very slot).
    Callback fn = std::move(fns_[rec.slot].fn);
    retireSlot(rec.slot);
    --liveEvents_;
    ++executed_;
    fn();
    return true;
}

Tick
EventQueue::runUntil(Tick limit)
{
    if (limit < curTick_)
        return curTick_; // never move time backwards
    for (;;) {
        if (!prepareHead())
            break;
        Tick when = headInNow_ ? nowQ_[nowHead_].when
                               : bottom_.back().when;
        if (when > limit) {
            curTick_ = limit;
            return curTick_;
        }
        step();
    }
    return curTick_;
}

} // namespace sim
} // namespace bluedbm
