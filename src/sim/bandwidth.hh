/**
 * @file
 * Latency-rate resource models.
 *
 * LatencyRateServer is the workhorse for modeling any pipelined channel
 * (a flash bus, a serial link, a PCIe DMA engine): requests serialize
 * at a fixed byte rate and then experience a fixed latency. It captures
 * exactly the first-order behaviour the paper's measurements reflect.
 */

#ifndef BLUEDBM_SIM_BANDWIDTH_HH
#define BLUEDBM_SIM_BANDWIDTH_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace sim {

/**
 * Pipelined channel with a serialization rate and a propagation delay.
 *
 * occupy() returns the completion time of a transfer issued "now":
 * the channel is busy until max(busyUntil, now) + size/rate, and the
 * payload arrives a further @p latency later. Back-to-back transfers
 * pipeline; the channel is the only serialized resource.
 */
class LatencyRateServer
{
  public:
    /**
     * @param bytes_per_sec serialization rate
     * @param latency       propagation delay added after serialization
     */
    LatencyRateServer(double bytes_per_sec, Tick latency)
        : rate_(bytes_per_sec), latency_(latency)
    {
        if (rate_ <= 0.0)
            fatal("LatencyRateServer rate must be positive");
    }

    /**
     * Serialize @p bytes starting no earlier than @p now.
     *
     * @param now   issue time
     * @param bytes payload size
     * @return tick at which the last byte arrives at the far end
     */
    Tick
    occupy(Tick now, std::uint64_t bytes)
    {
        Tick start = std::max(now, busyUntil_);
        busyUntil_ = start + transferTicks(bytes, rate_);
        totalBytes_ += bytes;
        return busyUntil_ + latency_;
    }

    /** Time at which the channel next becomes free. */
    Tick busyUntil() const { return busyUntil_; }

    /** Whether the channel is free at @p now. */
    bool idleAt(Tick now) const { return busyUntil_ <= now; }

    /** Total bytes ever pushed through the channel. */
    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Configured rate in bytes per second. */
    double rate() const { return rate_; }

    /** Configured propagation latency. */
    Tick latency() const { return latency_; }

  private:
    double rate_;
    Tick latency_;
    Tick busyUntil_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/**
 * Pool of identical parallel servers (e.g. the four Connectal DMA read
 * engines). A transfer occupies whichever engine frees first.
 */
class ServerPool
{
  public:
    /**
     * @param servers       number of parallel engines
     * @param bytes_per_sec per-engine rate
     * @param latency       per-transfer latency
     */
    ServerPool(unsigned servers, double bytes_per_sec, Tick latency)
    {
        if (servers == 0)
            fatal("ServerPool needs at least one server");
        for (unsigned i = 0; i < servers; ++i)
            servers_.emplace_back(bytes_per_sec, latency);
    }

    /** Issue a transfer on the earliest-free engine. */
    Tick
    occupy(Tick now, std::uint64_t bytes)
    {
        auto best = &servers_.front();
        for (auto &s : servers_) {
            if (s.busyUntil() < best->busyUntil())
                best = &s;
        }
        return best->occupy(now, bytes);
    }

    /** Total bytes across all engines. */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t sum = 0;
        for (const auto &s : servers_)
            sum += s.totalBytes();
        return sum;
    }

    /** Number of engines. */
    std::size_t size() const { return servers_.size(); }

  private:
    std::vector<LatencyRateServer> servers_;
};

/**
 * Credit counter for token-based link-level flow control (paper
 * section 3.2.2). The sender consumes one token per flit and the
 * receiver returns tokens as it drains its buffer.
 */
class TokenCredits
{
  public:
    /** @param tokens initial (and maximum) credit count */
    explicit TokenCredits(unsigned tokens)
        : max_(tokens), avail_(tokens)
    {
        if (tokens == 0)
            fatal("TokenCredits needs at least one token");
    }

    /** Whether a token is available to send. */
    bool available() const { return avail_ > 0; }

    /** Consume one token; caller must check available(). */
    void
    take()
    {
        if (avail_ == 0)
            panic("TokenCredits::take with no tokens");
        --avail_;
    }

    /** Return one token (receiver drained a flit). */
    void
    give()
    {
        if (avail_ >= max_)
            panic("TokenCredits overflow: give past max %u", max_);
        ++avail_;
    }

    /** Currently available tokens. */
    unsigned count() const { return avail_; }

    /** Maximum tokens (buffer depth at the receiver). */
    unsigned max() const { return max_; }

  private:
    unsigned max_;
    unsigned avail_;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_BANDWIDTH_HH
