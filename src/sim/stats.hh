/**
 * @file
 * Lightweight statistics: counters, accumulators and histograms used
 * by models and benchmark harnesses.
 */

#ifndef BLUEDBM_SIM_STATS_HH
#define BLUEDBM_SIM_STATS_HH

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bluedbm {
namespace sim {

/**
 * Running scalar statistic: count, sum, min, max, mean, stddev.
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Arithmetic mean, or 0 with no samples. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Population standard deviation. */
    double
    stddev() const
    {
        if (count_ == 0)
            return 0.0;
        double m = mean();
        double var = sumSq_ / static_cast<double>(count_) - m * m;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Fold another accumulator's samples into this one. */
    void
    merge(const Accumulator &o)
    {
        count_ += o.count_;
        sum_ += o.sum_;
        sumSq_ += o.sumSq_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    /**
     * Remove an earlier snapshot of *this* accumulator, leaving the
     * statistics of the samples recorded since. Only valid against
     * a copy taken from this same accumulator (monotone history);
     * min/max cannot be un-merged and keep their all-time values.
     */
    void
    subtract(const Accumulator &earlier)
    {
        count_ -= earlier.count_;
        sum_ -= earlier.sum_;
        sumSq_ -= earlier.sumSq_;
        if (count_ == 0) {
            min_ = std::numeric_limits<double>::infinity();
            max_ = -std::numeric_limits<double>::infinity();
        }
    }

    /** Forget all samples. */
    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width-bucket histogram with overflow bucket, suitable for
 * latency distributions.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (same unit as samples)
     * @param buckets      number of regular buckets
     */
    Histogram(double bucket_width, std::size_t buckets)
        : width_(bucket_width), counts_(buckets + 1, 0)
    {
    }

    /** Record one sample. */
    void
    sample(double v)
    {
        acc_.sample(v);
        auto idx = static_cast<std::size_t>(v / width_);
        if (idx >= counts_.size() - 1)
            idx = counts_.size() - 1;
        ++counts_[idx];
    }

    /** Count in bucket @p i (last bucket is overflow). */
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }

    /** Number of buckets including overflow. */
    std::size_t buckets() const { return counts_.size(); }

    /** Underlying scalar statistics. */
    const Accumulator &acc() const { return acc_; }

    /**
     * Approximate quantile from bucket boundaries.
     *
     * @param q quantile in [0,1]
     * @return upper bound of the bucket containing the quantile
     */
    double
    quantile(double q) const
    {
        std::uint64_t target =
            static_cast<std::uint64_t>(q * static_cast<double>(
                acc_.count()));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen > target)
                return width_ * static_cast<double>(i + 1);
        }
        return width_ * static_cast<double>(counts_.size());
    }

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    Accumulator acc_;
};

/**
 * HDR-style latency histogram over integer values (typically ticks).
 *
 * Values are bucketed logarithmically with 128 sub-buckets per power
 * of two, bounding the relative quantile error at 1/128 (~0.8%)
 * across the whole 64-bit range while using tens of kilobytes of
 * counters regardless of how many samples are recorded. This is what
 * a tail-latency report needs: p99.9 of a million samples without
 * storing a million values (compare plain Histogram, whose fixed
 * bucket width must be chosen per workload). The sub-bucket count
 * is chosen so that p99s of benchmark configs at adjacent scales
 * never quantize into one bucket edge: at ~1ms tick values a bucket
 * is ~4us wide, well under the differences the KV bench reports.
 *
 * record() is O(1); quantile() scans the (small, fixed) bucket
 * array. min/max/mean are tracked exactly.
 */
class LatencyHistogram
{
  public:
    LatencyHistogram() : counts_(bucketCount(), 0) {}

    /** Record one non-negative sample. */
    void
    record(std::uint64_t v)
    {
        acc_.sample(static_cast<double>(v));
        if (v < minExact_)
            minExact_ = v;
        if (v > maxExact_)
            maxExact_ = v;
        ++counts_[index(v)];
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return acc_.count(); }

    /** Exact smallest sample (0 when empty). */
    std::uint64_t
    min() const
    {
        return acc_.count() == 0 ? 0 : minExact_;
    }

    /** Exact largest sample (0 when empty). */
    std::uint64_t max() const { return acc_.count() == 0 ? 0 : maxExact_; }

    /** Exact arithmetic mean (0 when empty). */
    double mean() const { return acc_.mean(); }

    /** Underlying scalar statistics. */
    const Accumulator &acc() const { return acc_; }

    /**
     * Value at quantile @p q in [0,1], within ~0.8% relative error.
     *
     * Returns the upper edge of the bucket holding the q-th sample,
     * clamped to the exact observed max (so quantile(1) == max()).
     */
    std::uint64_t
    quantile(double q) const
    {
        std::uint64_t n = acc_.count();
        if (n == 0)
            return 0;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        // Rank of the target sample, 1-based, ceil like hdrhistogram.
        auto target = static_cast<std::uint64_t>(
            std::ceil(q * static_cast<double>(n)));
        if (target == 0)
            target = 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen >= target)
                return std::min(upperEdge(i), maxExact_);
        }
        return maxExact_;
    }

    /** Shorthand percentile accessors for reports. */
    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p95() const { return quantile(0.95); }
    std::uint64_t p99() const { return quantile(0.99); }
    std::uint64_t p999() const { return quantile(0.999); }

    /**
     * Fold another histogram's samples into this one. Bucket
     * geometry is identical by construction, so the merged
     * histogram reports exactly what recording every sample of
     * both into one histogram would have -- this is how per-client
     * and per-stage histograms aggregate without re-sampling.
     */
    void
    merge(const LatencyHistogram &o)
    {
        acc_.merge(o.acc_);
        minExact_ = std::min(minExact_, o.minExact_);
        maxExact_ = std::max(maxExact_, o.maxExact_);
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] += o.counts_[i];
    }

    /**
     * Remove an earlier snapshot (a plain copy) of *this* histogram,
     * leaving the distribution of the samples recorded since -- how
     * a phase-scoped tail (crash window, handoff window) is cut out
     * of an always-on stage histogram. Exact-extreme tracking
     * cannot be un-merged: min()/max() degrade to the all-time
     * values (quantiles are unaffected except for clamping at the
     * all-time max).
     */
    void
    subtract(const LatencyHistogram &earlier)
    {
        acc_.subtract(earlier.acc_);
        for (std::size_t i = 0; i < counts_.size(); ++i)
            counts_[i] -= earlier.counts_[i];
        if (acc_.count() == 0) {
            minExact_ = ~std::uint64_t(0);
            maxExact_ = 0;
        }
    }

    /** Forget all samples. */
    void
    reset()
    {
        acc_.reset();
        minExact_ = ~std::uint64_t(0);
        maxExact_ = 0;
        std::fill(counts_.begin(), counts_.end(), 0);
    }

  private:
    /** log2 of the sub-bucket count: 128 sub-buckets per doubling. */
    static constexpr unsigned subBits = 7;
    static constexpr std::uint64_t subCount = std::uint64_t(1)
        << (subBits + 1); //!< first linear region covers [0, 256)

    static constexpr std::size_t
    bucketCount()
    {
        // Linear region + 2^subBits sub-buckets per doubling above
        // 2^(subBits + 1).
        return std::size_t(subCount) +
            (64 - (subBits + 1)) * (std::size_t(1) << subBits);
    }

    /** Bucket index of value @p v. */
    static std::size_t
    index(std::uint64_t v)
    {
        if (v < subCount)
            return static_cast<std::size_t>(v);
        // 2^k <= v < 2^(k+1) with k >= subBits + 1; keep the top
        // subBits mantissa bits below the leading one. v >= subCount
        // here, so bit_width(v) >= 1 and the subtraction never wraps.
        unsigned k = unsigned(std::bit_width(v)) - 1u;
        std::uint64_t sub = (v >> (k - subBits)) -
            (std::uint64_t(1) << subBits);
        return std::size_t(subCount) +
            (k - (subBits + 1)) * (std::size_t(1) << subBits) +
            static_cast<std::size_t>(sub);
    }

    /** Largest value mapping into bucket @p i (inclusive edge). */
    static std::uint64_t
    upperEdge(std::size_t i)
    {
        if (i < subCount)
            return static_cast<std::uint64_t>(i);
        std::size_t rel = i - subCount;
        unsigned k = subBits + 1 + unsigned(rel >> subBits);
        std::uint64_t sub = rel & ((std::uint64_t(1) << subBits) - 1);
        std::uint64_t lower = (std::uint64_t(1) << k) +
            (sub << (k - subBits));
        return lower + (std::uint64_t(1) << (k - subBits)) - 1;
    }

    Accumulator acc_;
    std::uint64_t minExact_ = ~std::uint64_t(0);
    std::uint64_t maxExact_ = 0;
    std::vector<std::uint64_t> counts_;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_STATS_HH
