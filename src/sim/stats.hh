/**
 * @file
 * Lightweight statistics: counters, accumulators and histograms used
 * by models and benchmark harnesses.
 */

#ifndef BLUEDBM_SIM_STATS_HH
#define BLUEDBM_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bluedbm {
namespace sim {

/**
 * Running scalar statistic: count, sum, min, max, mean, stddev.
 */
class Accumulator
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Arithmetic mean, or 0 with no samples. */
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }

    /** Population standard deviation. */
    double
    stddev() const
    {
        if (count_ == 0)
            return 0.0;
        double m = mean();
        double var = sumSq_ / static_cast<double>(count_) - m * m;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    /** Smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample (-inf when empty). */
    double max() const { return max_; }

    /** Forget all samples. */
    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width-bucket histogram with overflow bucket, suitable for
 * latency distributions.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (same unit as samples)
     * @param buckets      number of regular buckets
     */
    Histogram(double bucket_width, std::size_t buckets)
        : width_(bucket_width), counts_(buckets + 1, 0)
    {
    }

    /** Record one sample. */
    void
    sample(double v)
    {
        acc_.sample(v);
        auto idx = static_cast<std::size_t>(v / width_);
        if (idx >= counts_.size() - 1)
            idx = counts_.size() - 1;
        ++counts_[idx];
    }

    /** Count in bucket @p i (last bucket is overflow). */
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }

    /** Number of buckets including overflow. */
    std::size_t buckets() const { return counts_.size(); }

    /** Underlying scalar statistics. */
    const Accumulator &acc() const { return acc_; }

    /**
     * Approximate quantile from bucket boundaries.
     *
     * @param q quantile in [0,1]
     * @return upper bound of the bucket containing the quantile
     */
    double
    quantile(double q) const
    {
        std::uint64_t target =
            static_cast<std::uint64_t>(q * static_cast<double>(
                acc_.count()));
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen > target)
                return width_ * static_cast<double>(i + 1);
        }
        return width_ * static_cast<double>(counts_.size());
    }

  private:
    double width_;
    std::vector<std::uint64_t> counts_;
    Accumulator acc_;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_STATS_HH
