/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The simulator measures time in integer picoseconds so that
 * multi-gigabit link serialization (fractions of a nanosecond per byte)
 * accumulates no rounding error over millions of transfers.
 */

#ifndef BLUEDBM_SIM_TYPES_HH
#define BLUEDBM_SIM_TYPES_HH

#include <cstdint>

namespace bluedbm {
namespace sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A tick value that compares greater than any schedulable time. */
constexpr Tick maxTick = ~Tick(0);

/** One nanosecond in ticks. */
constexpr Tick onePs = 1;
/** One nanosecond in ticks. */
constexpr Tick oneNs = 1000;
/** One microsecond in ticks. */
constexpr Tick oneUs = 1000 * oneNs;
/** One millisecond in ticks. */
constexpr Tick oneMs = 1000 * oneUs;
/** One second in ticks. */
constexpr Tick oneSec = 1000 * oneMs;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * oneNs);
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * oneUs);
}

/** Convert milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * oneMs);
}

/** Convert seconds to ticks. */
constexpr Tick
secToTicks(double s)
{
    return static_cast<Tick>(s * oneSec);
}

/** Convert ticks to microseconds (floating point). */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / oneUs;
}

/** Convert ticks to nanoseconds (floating point). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / oneNs;
}

/** Convert ticks to seconds (floating point). */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / oneSec;
}

/** Bytes per second expressed from a GB/s figure (decimal GB). */
constexpr double
gbps(double gigabytes_per_sec)
{
    return gigabytes_per_sec * 1e9;
}

/**
 * Serialization delay of @p bytes at @p bytes_per_sec, in ticks.
 *
 * @param bytes          transfer size in bytes
 * @param bytes_per_sec  channel rate in bytes per second
 * @return ticks needed to clock the payload onto the channel
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    return static_cast<Tick>(
        static_cast<double>(bytes) / bytes_per_sec * oneSec);
}

/**
 * Effective rate in bytes/second given an amount moved over a duration.
 */
constexpr double
bytesPerSec(std::uint64_t bytes, Tick elapsed)
{
    return elapsed == 0
        ? 0.0
        : static_cast<double>(bytes) / ticksToSec(elapsed);
}

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_TYPES_HH
