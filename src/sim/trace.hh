/**
 * @file
 * Request tracing: sampled span trees keyed on simulated time.
 *
 * A trace is a tree of spans (named [begin,end) tick intervals) plus
 * point-in-time marks (suspend/resume, queue insertion, cache
 * hits...), built while an operation flows KvService -> KvRouter ->
 * network -> KvShard/LogFs -> FlashServer -> NAND. The whole tree is
 * addressed through 64-bit handles that ride the request structs
 * across layers; handle 0 means "untraced" and every tracer call
 * early-outs on it, which is what keeps the disabled tracer off the
 * hot path (scripts/ci.sh gates the overhead on the kernel
 * ablation).
 *
 * Because one Simulator clocks the whole simulated cluster there is
 * no clock skew: a span begun on the origin node and ended on the
 * remote one (the network-hop spans) has exact endpoints, so stage
 * durations along a sequential chain telescope to the end-to-end
 * latency without estimation.
 *
 * Retention: when enabled, EVERY live operation builds its span tree
 * (the slow-request log must see all of them), but only two kinds
 * survive endTrace(): a 1-in-sampleEvery sample, and any trace whose
 * root exceeded slowThresholdTicks (the always-on slow-request log).
 * Everything else recycles its arena slot. Retained traces export as
 * Chrome trace-event JSON (writeChromeJson) loadable in Perfetto.
 *
 * Handles are generation-guarded: a late completion (a straggler
 * replica, a timed-out NAND op) holding a handle into a recycled
 * slot is detected and ignored, never misattributed.
 *
 * Span names must be string literals (or otherwise outlive the
 * tracer): they are stored by pointer, not copied.
 */

#ifndef BLUEDBM_SIM_TRACE_HH
#define BLUEDBM_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bluedbm {
namespace sim {

class Tracer
{
  public:
    /** Opaque span reference; 0 = untraced (all calls no-op). */
    using Handle = std::uint64_t;

    static constexpr std::uint32_t noParent = ~std::uint32_t(0);

    struct Params
    {
        bool enabled = false;
        /** Retain every Nth finished trace (0 = none but slow). */
        std::uint64_t sampleEvery = 64;
        /** Slow-request log: retain any trace whose root span
         * lasted at least this many ticks (0 = off). */
        Tick slowThresholdTicks = 0;
        /** Cap on retained traces; beyond it they are counted as
         * dropped instead of kept (bounds memory on long runs). */
        std::size_t maxRetained = 1024;
    };

    struct Span
    {
        const char *name = "";
        Tick begin = 0;
        Tick end = 0;           //!< 0 while still open
        std::uint32_t parent = noParent;
    };

    /** Instant event attached to a span (suspend, insertion...). */
    struct Mark
    {
        const char *name = "";
        Tick at = 0;
        std::uint32_t span = 0;
    };

    struct Trace
    {
        std::uint64_t serial = 0; //!< 1-based begin order
        std::uint64_t key = 0;    //!< caller tag (reqId / key hash)
        const char *why = "";     //!< "sampled" or "slow" once kept
        std::vector<Span> spans;  //!< [0] is the root
        std::vector<Mark> marks;
    };

    void configure(const Params &p) { params_ = p; }
    const Params &params() const { return params_; }
    bool enabled() const { return params_.enabled; }

    // The public entry points are inline wrappers whose only job
    // is the early-out: a disabled tracer / untraced handle costs
    // one predictable branch, never a function call (the kernel
    // ablation gates this at < 2% of event throughput). The live
    // branches are [[unlikely]] so the call-bearing blocks move to
    // the caller's cold fragment and the hot path stays
    // straight-line -- production runs default to tracing off, and
    // untraced (handle-0) touches dominate even traced runs.

    /**
     * Open a new trace rooted at span @p name. Returns 0 when
     * disabled (and then every downstream call is a no-op).
     */
    Handle
    beginTrace(const char *name, Tick now, std::uint64_t key = 0)
    {
        if (params_.enabled) [[unlikely]]
            return beginTraceLive(name, now, key);
        return 0;
    }

    /** Open a child span under the span @p parent refers to. */
    Handle
    beginSpan(Handle parent, const char *name, Tick now)
    {
        if (parent != 0) [[unlikely]]
            return beginSpanLive(parent, name, now);
        return 0;
    }

    /**
     * Open a span as a *sibling* of @p peer (same parent). This is
     * how a remote node continues a trace knowing only the handle
     * that rode the request: the shard span hangs next to the
     * network-hop span, not inside it.
     */
    Handle
    beginSibling(Handle peer, const char *name, Tick now)
    {
        if (peer != 0) [[unlikely]]
            return beginSiblingLive(peer, name, now);
        return 0;
    }

    /** Close a span (first close wins; stale handles ignored). */
    void
    endSpan(Handle h, Tick now)
    {
        if (h != 0) [[unlikely]]
            endSpanLive(h, now);
    }

    /** Attach an instant event to @p h's span. */
    void
    mark(Handle h, const char *name, Tick now)
    {
        if (h != 0) [[unlikely]]
            markLive(h, name, now);
    }

    /**
     * Finish the trace @p h belongs to: closes any span left open
     * at @p now, applies the retention policy, recycles or retains.
     * Handles into this trace become stale afterwards.
     */
    void
    endTrace(Handle h, Tick now)
    {
        if (h != 0) [[unlikely]]
            endTraceLive(h, now);
    }

    /** @name Introspection */
    ///@{
    std::uint64_t started() const { return started_; }
    std::uint64_t retainedSampled() const { return sampledKept_; }
    std::uint64_t retainedSlow() const { return slowKept_; }
    std::uint64_t droppedRetained() const { return dropped_; }
    const std::vector<Trace> &retained() const { return done_; }
    /** Span depth within its trace (root = 0); noParent-safe. */
    static unsigned depthOf(const Trace &t, std::uint32_t span);
    ///@}

    /**
     * Export every retained trace as Chrome trace-event JSON
     * ("traceEvents" array of complete/instant events; ts/dur in
     * microseconds of simulated time). Each trace becomes its own
     * pid so Perfetto shows one process group per operation;
     * args carry span/parent indices for machine consumption.
     */
    bool writeChromeJson(const std::string &path) const;

  private:
    struct Slot
    {
        std::uint16_t gen = 1;
        bool open = false;
        Trace trace;
    };

    // Handle layout: [0..31] slot+1 | [32..47] generation |
    // [48..63] span index.
    static Handle pack(std::uint32_t slot, std::uint16_t gen,
                       std::uint16_t span)
    {
        return Handle(slot + 1) | (Handle(gen) << 32) |
            (Handle(span) << 48);
    }

    /** Resolve @p h to its slot; nullptr when stale/invalid. */
    Slot *resolve(Handle h, std::uint16_t *span_out);

    /** @name Out-of-line slow paths of the wrappers above. */
    ///@{
    Handle beginTraceLive(const char *name, Tick now,
                          std::uint64_t key);
    Handle beginSpanLive(Handle parent, const char *name, Tick now);
    Handle beginSiblingLive(Handle peer, const char *name,
                            Tick now);
    void endSpanLive(Handle h, Tick now);
    void markLive(Handle h, const char *name, Tick now);
    void endTraceLive(Handle h, Tick now);
    ///@}

    Params params_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::vector<Trace> done_;
    std::uint64_t started_ = 0;
    std::uint64_t sampledKept_ = 0;
    std::uint64_t slowKept_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_TRACE_HH
