/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Implements xoshiro256** (Blackman & Vigna) so that simulations are
 * reproducible across platforms and standard-library versions, which
 * std::mt19937 distributions are not.
 */

#ifndef BLUEDBM_SIM_RANDOM_HH
#define BLUEDBM_SIM_RANDOM_HH

#include <cstdint>

namespace bluedbm {
namespace sim {

/**
 * xoshiro256** PRNG with splitmix64 seeding.
 */
class Rng
{
  public:
    /** @param seed any 64-bit seed; equal seeds give equal streams */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // splitmix64 to spread the seed across the state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                m = static_cast<unsigned __int128>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_RANDOM_HH
