#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace bluedbm {
namespace sim {

namespace {
LogLevel globalLevel = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
debug(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", s.c_str());
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

} // namespace sim
} // namespace bluedbm
