/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * logging.hh.
 *
 * - inform(): normal operating messages.
 * - warn():   something is off but the simulation can continue.
 * - fatal():  the *user* asked for something impossible (bad config,
 *             bad arguments); exits with an error code.
 * - panic():  an internal invariant was violated (a bug); aborts.
 */

#ifndef BLUEDBM_SIM_LOGGING_HH
#define BLUEDBM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace bluedbm {
namespace sim {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent, Warn, Info, Debug };

/** Set the global verbosity threshold. */
void setLogLevel(LogLevel level);

/** Get the global verbosity threshold. */
LogLevel logLevel();

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an informational message (LogLevel::Info and above). */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a debug message (LogLevel::Debug only). */
void debug(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning (LogLevel::Warn and above). */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused error and exit(1). Use for bad configuration or
 * invalid arguments, not for simulator bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort(). Use when
 * something happened that should never happen regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_LOGGING_HH
