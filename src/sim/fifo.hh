/**
 * @file
 * Bounded latency-insensitive FIFO with backpressure, the universal
 * interface idiom of the BlueDBM hardware (the paper builds everything
 * from guarded FIFOs in Bluespec).
 *
 * Producers test canPush()/push(); consumers test canPop()/pop().
 * Components that must react to availability register wakeup callbacks
 * which fire (via the event queue, at the current tick) on the
 * empty->nonempty and full->nonfull transitions. Scheduling the wakeup
 * instead of calling it inline avoids unbounded reentrancy between
 * producer and consumer state machines.
 */

#ifndef BLUEDBM_SIM_FIFO_HH
#define BLUEDBM_SIM_FIFO_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace sim {

/**
 * Bounded FIFO of T with transition callbacks.
 *
 * @tparam T element type (moved in and out)
 */
template <typename T>
class Fifo
{
  public:
    /**
     * @param sim      simulation kernel used to schedule wakeups
     * @param capacity maximum occupancy; must be >= 1
     */
    Fifo(Simulator &sim, std::size_t capacity)
        : sim_(sim), capacity_(capacity)
    {
        if (capacity_ == 0)
            fatal("Fifo capacity must be >= 1");
    }

    Fifo(const Fifo &) = delete;
    Fifo &operator=(const Fifo &) = delete;

    /** Whether an element can be accepted. */
    bool canPush() const { return items_.size() < capacity_; }

    /** Whether an element is available. */
    bool canPop() const { return !items_.empty(); }

    /** Current occupancy. */
    std::size_t size() const { return items_.size(); }

    /** Configured capacity. */
    std::size_t capacity() const { return capacity_; }

    /** Remaining space. */
    std::size_t space() const { return capacity_ - items_.size(); }

    /**
     * Enqueue an element. The FIFO must not be full.
     */
    void
    push(T item)
    {
        if (!canPush())
            panic("push into full Fifo (capacity %zu)", capacity_);
        bool was_empty = items_.empty();
        items_.push_back(std::move(item));
        if (was_empty)
            fire(dataWaiters_);
    }

    /**
     * Dequeue the oldest element. The FIFO must not be empty.
     */
    T
    pop()
    {
        if (!canPop())
            panic("pop from empty Fifo");
        bool was_full = items_.size() == capacity_;
        T item = std::move(items_.front());
        items_.pop_front();
        if (was_full)
            fire(spaceWaiters_);
        return item;
    }

    /** Peek at the oldest element without removing it. */
    const T &
    front() const
    {
        if (!canPop())
            panic("front of empty Fifo");
        return items_.front();
    }

    /**
     * Register a callback fired when the FIFO becomes non-empty.
     * Callbacks persist and fire on every transition.
     */
    void
    onDataAvailable(std::function<void()> fn)
    {
        dataWaiters_.push_back(std::move(fn));
    }

    /**
     * Register a callback fired when the FIFO stops being full.
     * Callbacks persist and fire on every transition.
     */
    void
    onSpaceAvailable(std::function<void()> fn)
    {
        spaceWaiters_.push_back(std::move(fn));
    }

  private:
    void
    fire(const std::vector<std::function<void()>> &waiters)
    {
        for (const auto &fn : waiters)
            sim_.scheduleAfter(0, fn);
    }

    Simulator &sim_;
    std::size_t capacity_;
    std::deque<T> items_;
    std::vector<std::function<void()>> dataWaiters_;
    std::vector<std::function<void()>> spaceWaiters_;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_FIFO_HH
