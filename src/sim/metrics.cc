#include "sim/metrics.hh"

#include <algorithm>

namespace bluedbm {
namespace sim {

std::string
MetricsRegistry::key(std::string_view name,
                     const MetricLabels &labels)
{
    std::string k(name);
    if (labels.empty())
        return k;
    MetricLabels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    k += '{';
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            k += ',';
        k += sorted[i].first;
        k += '=';
        k += sorted[i].second;
    }
    k += '}';
    return k;
}

std::string_view
MetricsRegistry::baseName(std::string_view key)
{
    auto brace = key.find('{');
    return brace == std::string_view::npos ? key
                                           : key.substr(0, brace);
}

Counter &
MetricsRegistry::counter(std::string_view name, MetricLabels labels)
{
    auto &slot = counters_[key(name, labels)];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

LatencyHistogram &
MetricsRegistry::histogram(std::string_view name,
                           MetricLabels labels)
{
    auto &slot = histograms_[key(name, labels)];
    if (!slot)
        slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

void
MetricsRegistry::registerGauge(std::string_view name,
                               MetricLabels labels,
                               std::function<double()> fn)
{
    gauges_[key(name, labels)] = std::move(fn);
}

unsigned
MetricsRegistry::nextInstance(std::string_view kind)
{
    auto it = instances_.find(kind);
    if (it == instances_.end())
        it = instances_.emplace(std::string(kind), 0).first;
    return it->second++;
}

std::uint64_t
MetricsRegistry::counterTotal(std::string_view name) const
{
    std::uint64_t total = 0;
    for (const auto &[k, c] : counters_) {
        if (baseName(k) == name)
            total += c->value();
    }
    return total;
}

LatencyHistogram
MetricsRegistry::histogramTotal(std::string_view name) const
{
    LatencyHistogram total;
    for (const auto &[k, h] : histograms_) {
        if (baseName(k) == name)
            total.merge(*h);
    }
    return total;
}

double
MetricsRegistry::gaugeTotal(std::string_view name) const
{
    double total = 0.0;
    for (const auto &[k, g] : gauges_) {
        if (baseName(k) == name && g)
            total += g();
    }
    return total;
}

std::uint64_t
MetricsRegistry::Snapshot::value(std::string_view key) const
{
    auto it = counters.find(std::string(key));
    return it == counters.end() ? 0 : it->second;
}

std::uint64_t
MetricsRegistry::Snapshot::total(std::string_view name) const
{
    std::uint64_t sum = 0;
    for (const auto &[k, v] : counters) {
        if (baseName(k) == name)
            sum += v;
    }
    return sum;
}

MetricsRegistry::Snapshot
MetricsRegistry::Snapshot::deltaSince(const Snapshot &earlier) const
{
    Snapshot d;
    for (const auto &[k, v] : counters) {
        auto it = earlier.counters.find(k);
        std::uint64_t base =
            it == earlier.counters.end() ? 0 : it->second;
        d.counters.emplace(k, v - base);
    }
    return d;
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot s;
    for (const auto &[k, c] : counters_)
        s.counters.emplace(k, c->value());
    return s;
}

void
MetricsRegistry::forEachCounter(
    const std::function<void(const std::string &, std::uint64_t)>
        &fn) const
{
    for (const auto &[k, c] : counters_)
        fn(k, c->value());
}

void
MetricsRegistry::forEachGauge(
    const std::function<void(const std::string &, double)> &fn)
    const
{
    for (const auto &[k, g] : gauges_) {
        if (g)
            fn(k, g());
    }
}

} // namespace sim
} // namespace bluedbm
