/**
 * @file
 * Simulator facade: owns the event queue and offers convenience
 * scheduling. All hardware models hold a Simulator reference.
 */

#ifndef BLUEDBM_SIM_SIMULATOR_HH
#define BLUEDBM_SIM_SIMULATOR_HH

#include <functional>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace sim {

/**
 * Top-level simulation kernel.
 *
 * Thin wrapper over EventQueue that components use to read the clock
 * and schedule work. A single Simulator instance is shared by every
 * model in one simulated cluster.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return events_.now(); }

    /** Schedule @p fn at absolute tick @p when. */
    EventId
    scheduleAt(Tick when, std::function<void()> fn)
    {
        return events_.schedule(when, std::move(fn));
    }

    /** Schedule @p fn @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, std::function<void()> fn)
    {
        return events_.schedule(now() + delay, std::move(fn));
    }

    /** Cancel a scheduled event; true if it had not fired. */
    bool cancel(EventId id) { return events_.cancel(id); }

    /** Run until no events remain. */
    Tick run() { return events_.run(); }

    /** Run until @p limit (inclusive) or until the queue drains. */
    Tick runUntil(Tick limit) { return events_.runUntil(limit); }

    /** Execute one event; false if the queue is empty. */
    bool step() { return events_.step(); }

    /** Whether the event queue is empty. */
    bool idle() const { return events_.empty(); }

    /** Total events executed so far. */
    std::uint64_t eventsExecuted() const { return events_.executed(); }

  private:
    EventQueue events_;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_SIMULATOR_HH
