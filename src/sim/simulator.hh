/**
 * @file
 * Simulator facade: owns the event queue and offers convenience
 * scheduling. All hardware models hold a Simulator reference.
 */

#ifndef BLUEDBM_SIM_SIMULATOR_HH
#define BLUEDBM_SIM_SIMULATOR_HH

#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace sim {

/**
 * Top-level simulation kernel.
 *
 * Thin wrapper over EventQueue that components use to read the clock
 * and schedule work. A single Simulator instance is shared by every
 * model in one simulated cluster.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return events_.now(); }

    /** Schedule @p fn at absolute tick @p when. */
    EventId
    scheduleAt(Tick when, EventQueue::Callback fn)
    {
        return events_.schedule(when, std::move(fn));
    }

    /** Schedule @p fn @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, EventQueue::Callback fn)
    {
        return events_.schedule(now() + delay, std::move(fn));
    }

    /** Cancel a scheduled event; true if it had not fired. */
    bool cancel(EventId id) { return events_.cancel(id); }

    /** Run until no events remain. */
    Tick run() { return events_.run(); }

    /** Run until @p limit (inclusive) or until the queue drains. */
    Tick runUntil(Tick limit) { return events_.runUntil(limit); }

    /** Execute one event; false if the queue is empty. */
    bool step() { return events_.step(); }

    /** Whether the event queue is empty. */
    bool idle() const { return events_.empty(); }

    /** Total events executed so far. */
    std::uint64_t eventsExecuted() const { return events_.executed(); }

    /** Event-slab high-water mark (slots ever created). Bounded by
     * peak concurrent events, not by events executed: a steady-state
     * run recycles slots, so this staying small while
     * eventsExecuted() runs into the millions is the kernel's
     * zero-allocation invariant made observable. */
    std::size_t eventPoolSlots() const { return events_.poolSlots(); }

    /** This simulation's metrics registry: every component of the
     * cluster registers its counters/gauges/histograms here. */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** This simulation's request tracer (disabled by default; see
     * src/sim/trace.hh). */
    Tracer &tracer() { return tracer_; }
    const Tracer &tracer() const { return tracer_; }

    /**
     * Keep @p resource alive until after the event queue is
     * destroyed. Pending events may capture handles into
     * model-owned arenas (e.g. a network's payload pool); models
     * register those arenas here so that tearing a model down while
     * its events are still queued can never dangle.
     */
    void
    retainResource(std::shared_ptr<void> resource)
    {
        retained_.push_back(std::move(resource));
    }

  private:
    /** Declared before retained_/events_: pending events and
     * retained resources may reference metrics cells and trace
     * slots, so both observability arenas must outlive them. */
    MetricsRegistry metrics_;
    Tracer tracer_;
    /** Declared before events_: destroyed only after every pending
     * event (and any resource handle it captured) is gone. */
    std::vector<std::shared_ptr<void>> retained_;
    EventQueue events_;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_SIMULATOR_HH
