#include "sim/trace.hh"

#include <cstdio>

namespace bluedbm {
namespace sim {

Tracer::Slot *
Tracer::resolve(Handle h, std::uint16_t *span_out)
{
    if (h == 0)
        return nullptr;
    auto slot = std::uint32_t(h & 0xffffffffu) - 1;
    auto gen = std::uint16_t((h >> 32) & 0xffffu);
    auto span = std::uint16_t(h >> 48);
    if (slot >= slots_.size())
        return nullptr;
    Slot &s = slots_[slot];
    if (!s.open || s.gen != gen ||
        span >= s.trace.spans.size())
        return nullptr;
    if (span_out)
        *span_out = span;
    return &s;
}

Tracer::Handle
Tracer::beginTraceLive(const char *name, Tick now, std::uint64_t key)
{
    std::uint32_t idx;
    if (!freeSlots_.empty()) {
        idx = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        idx = std::uint32_t(slots_.size());
        slots_.emplace_back();
    }
    Slot &s = slots_[idx];
    s.open = true;
    s.trace.serial = ++started_;
    s.trace.key = key;
    s.trace.why = "";
    s.trace.spans.push_back(Span{name, now, 0, noParent});
    return pack(idx, s.gen, 0);
}

Tracer::Handle
Tracer::beginSpanLive(Handle parent, const char *name, Tick now)
{
    std::uint16_t pspan = 0;
    Slot *s = resolve(parent, &pspan);
    if (s == nullptr)
        return 0;
    if (s->trace.spans.size() >= 0xffff)
        return 0; // span index must fit the handle
    auto idx = std::uint16_t(s->trace.spans.size());
    s->trace.spans.push_back(Span{name, now, 0, pspan});
    return pack(std::uint32_t(s - slots_.data()), s->gen, idx);
}

Tracer::Handle
Tracer::beginSiblingLive(Handle peer, const char *name, Tick now)
{
    std::uint16_t pspan = 0;
    Slot *s = resolve(peer, &pspan);
    if (s == nullptr)
        return 0;
    if (s->trace.spans.size() >= 0xffff)
        return 0;
    auto idx = std::uint16_t(s->trace.spans.size());
    std::uint32_t parent = s->trace.spans[pspan].parent;
    s->trace.spans.push_back(Span{name, now, 0, parent});
    return pack(std::uint32_t(s - slots_.data()), s->gen, idx);
}

void
Tracer::endSpanLive(Handle h, Tick now)
{
    std::uint16_t span = 0;
    Slot *s = resolve(h, &span);
    if (s == nullptr)
        return;
    Span &sp = s->trace.spans[span];
    if (sp.end == 0)
        sp.end = now;
}

void
Tracer::markLive(Handle h, const char *name, Tick now)
{
    std::uint16_t span = 0;
    Slot *s = resolve(h, &span);
    if (s == nullptr)
        return;
    s->trace.marks.push_back(Mark{name, now, span});
}

void
Tracer::endTraceLive(Handle h, Tick now)
{
    Slot *s = resolve(h, nullptr);
    if (s == nullptr)
        return;
    for (Span &sp : s->trace.spans) {
        if (sp.end == 0)
            sp.end = now;
    }
    const Span &root = s->trace.spans.front();
    Tick dur = root.end - root.begin;
    bool slow = params_.slowThresholdTicks > 0 &&
        dur >= params_.slowThresholdTicks;
    bool sampled = params_.sampleEvery > 0 &&
        s->trace.serial % params_.sampleEvery == 0;
    if (slow || sampled) {
        if (done_.size() < params_.maxRetained) {
            s->trace.why = slow ? "slow" : "sampled";
            done_.push_back(std::move(s->trace));
            if (slow)
                ++slowKept_;
            else
                ++sampledKept_;
        } else {
            ++dropped_;
        }
    }
    // Recycle: clear (keeping vector capacity when not moved out)
    // and invalidate every outstanding handle via the generation.
    s->trace.spans.clear();
    s->trace.marks.clear();
    s->open = false;
    if (++s->gen == 0)
        s->gen = 1;
    freeSlots_.push_back(std::uint32_t(s - slots_.data()));
}

unsigned
Tracer::depthOf(const Trace &t, std::uint32_t span)
{
    unsigned depth = 0;
    while (span != noParent && span < t.spans.size() &&
           t.spans[span].parent != noParent) {
        span = t.spans[span].parent;
        ++depth;
    }
    return depth;
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "tracer: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\"displayTimeUnit\":\"ms\","
                    "\"traceEvents\":[\n");
    bool first = true;
    auto sep = [&]() {
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
    };
    for (const Trace &t : done_) {
        auto pid = static_cast<unsigned long long>(t.serial);
        sep();
        std::fprintf(f,
                     "{\"name\":\"process_name\",\"ph\":\"M\","
                     "\"pid\":%llu,\"args\":{\"name\":"
                     "\"trace %llu (%s) key=%llu\"}}",
                     pid, pid, t.why,
                     static_cast<unsigned long long>(t.key));
        for (std::size_t i = 0; i < t.spans.size(); ++i) {
            const Span &sp = t.spans[i];
            sep();
            long long parent = sp.parent == noParent
                ? -1
                : static_cast<long long>(sp.parent);
            std::fprintf(
                f,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"ts\":%.6f,\"dur\":%.6f,\"pid\":%llu,"
                "\"tid\":%u,\"args\":{\"span\":%zu,"
                "\"parent\":%lld,\"key\":%llu}}",
                sp.name, t.why, ticksToUs(sp.begin),
                ticksToUs(sp.end - sp.begin), pid,
                depthOf(t, std::uint32_t(i)), i, parent,
                static_cast<unsigned long long>(t.key));
        }
        for (const Mark &m : t.marks) {
            sep();
            std::fprintf(
                f,
                "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                "\"ts\":%.6f,\"pid\":%llu,\"tid\":%u,"
                "\"args\":{\"span\":%u}}",
                m.name, ticksToUs(m.at), pid,
                depthOf(t, m.span), m.span);
        }
    }
    std::fprintf(f, "\n]}\n");
    bool ok = std::ferror(f) == 0;
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace sim
} // namespace bluedbm
