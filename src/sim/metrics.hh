/**
 * @file
 * Unified metrics registry: named counters, gauges and histograms
 * with labeled dimensions, registered by components at construction.
 *
 * Before this existed every model grew its own `std::uint64_t`
 * members plus an accessor per counter, and every bench had to know
 * which component to ask for which number. The registry inverts
 * that: a component asks the registry (reached through its
 * Simulator) for a counter/histogram under a stable dotted name plus
 * labels, keeps the returned reference, and bumps it exactly as
 * cheaply as the raw member it replaces. Benches and gates then read
 * *names*, not component APIs, and can aggregate across label sets
 * (per node, per traffic class, per stage) or diff snapshots across
 * phases without the component's help.
 *
 * Naming convention (see docs/observability.md):
 *   <component>.<noun>[_<unit>]   e.g. kv.router.read_timeouts,
 *                                      kv.stage.nand (ticks)
 * Labels are free-form key=value pairs; the conventional ones are
 *   inst  - per-instance serial from nextInstance() (construction
 *           order; equals the node index for one-per-node models)
 *   class - flash traffic class ("read" / "bg")
 *   stage - pipeline stage of a latency histogram
 *
 * Counter/histogram references returned by the registry stay valid
 * for the registry's lifetime (entries are never erased).
 */

#ifndef BLUEDBM_SIM_METRICS_HH
#define BLUEDBM_SIM_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace bluedbm {
namespace sim {

/** Labels of one metric instance: key=value pairs, canonicalized
 * (sorted by key) when forming the metric's identity. */
using MetricLabels =
    std::vector<std::pair<std::string, std::string>>;

/**
 * Monotone counter. Components hold a reference and bump it on the
 * hot path; readers reach the same cell through the registry.
 */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * The per-simulation metrics registry. One instance lives in each
 * Simulator (sim.metrics()); every component of that simulated
 * cluster registers against it, so tearing down the Simulator tears
 * down exactly that run's metrics.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Get or create the counter @p name / @p labels. The reference
     * stays valid for the registry's lifetime. */
    Counter &counter(std::string_view name, MetricLabels labels = {});

    /** Get or create the latency histogram @p name / @p labels
     * (samples are ticks unless the name says otherwise). */
    LatencyHistogram &histogram(std::string_view name,
                                MetricLabels labels = {});

    /**
     * Register a computed gauge: @p fn is evaluated at read time
     * (snapshots, dumps), so live quantities like queue depths need
     * no shadow bookkeeping. @p fn must outlive the registry or the
     * owning component must never be destroyed before the Simulator
     * -- the standard lifetime contract of this codebase's models.
     * Re-registering the same name+labels replaces the function.
     */
    void registerGauge(std::string_view name, MetricLabels labels,
                       std::function<double()> fn);

    /** Per-kind construction serial (0, 1, 2, ...): gives
     * one-per-node components a deterministic "inst" label without
     * threading node ids through every constructor. */
    unsigned nextInstance(std::string_view kind);

    /** Sum of one counter name across all its label sets. */
    std::uint64_t counterTotal(std::string_view name) const;

    /** Merge of one histogram name across all its label sets. */
    LatencyHistogram histogramTotal(std::string_view name) const;

    /** Sum of one gauge name across all its label sets. */
    double gaugeTotal(std::string_view name) const;

    /**
     * Point-in-time copy of every counter (by full key). Snapshots
     * subtract, which is how phase-scoped deltas are taken:
     *
     *   auto before = reg.snapshot();
     *   ... run the crash window ...
     *   auto win = reg.snapshot().deltaSince(before);
     *   win.total("kv.router.read_timeouts");
     */
    struct Snapshot
    {
        /** full key ("name{k=v,...}") -> value */
        std::map<std::string, std::uint64_t> counters;

        /** Value of one full key (0 when absent). */
        std::uint64_t value(std::string_view key) const;
        /** Sum across every label set of @p name. */
        std::uint64_t total(std::string_view name) const;
        /** Per-key difference this-minus-earlier (counters are
         * monotone, so this is the activity in between). */
        Snapshot deltaSince(const Snapshot &earlier) const;
    };
    Snapshot snapshot() const;

    /** Visit every counter as (full key, value), sorted by key. */
    void forEachCounter(
        const std::function<void(const std::string &,
                                 std::uint64_t)> &fn) const;
    /** Visit every gauge as (full key, value()), sorted by key. */
    void forEachGauge(const std::function<void(const std::string &,
                                               double)> &fn) const;

    /** Canonical full key: name + sorted "{k=v,...}" suffix. */
    static std::string key(std::string_view name,
                           const MetricLabels &labels);

  private:
    /** Bare metric name of a full key (strips the label suffix). */
    static std::string_view baseName(std::string_view key);

    // unique_ptr entries: references handed out survive rehashing.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>>
        histograms_;
    std::map<std::string, std::function<double()>> gauges_;
    std::map<std::string, unsigned, std::less<>> instances_;
};

} // namespace sim
} // namespace bluedbm

#endif // BLUEDBM_SIM_METRICS_HH
