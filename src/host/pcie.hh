/**
 * @file
 * Host link model: the Connectal PCIe Gen1 endpoint (paper sections
 * 3.3 and 5.3).
 *
 * Connectal's implementation caps the host link at 1.6 GB/s for
 * device-to-host DMA and 1.0 GB/s for host-to-device DMA. Four read
 * and four write DMA engines share those caps; RPC doorbells and
 * completion interrupts add fixed latencies.
 */

#ifndef BLUEDBM_HOST_PCIE_HH
#define BLUEDBM_HOST_PCIE_HH

#include <cstdint>
#include <functional>

#include "sim/bandwidth.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace host {

/**
 * Parameters of the Connectal host link.
 */
struct PcieParams
{
    /** Device-to-host DMA cap (reads from storage). */
    double devToHostBytesPerSec = 1.6e9;
    /** Host-to-device DMA cap (writes to storage). */
    double hostToDevBytesPerSec = 1.0e9;
    /** DMA engines per direction. */
    unsigned dmaEngines = 4;
    /** PCIe transaction latency per DMA transfer. */
    sim::Tick dmaLatency = sim::usToTicks(1);
    /** RPC doorbell latency (user request reaching the FPGA). */
    sim::Tick rpcLatency = sim::usToTicks(2);
    /** Completion interrupt + driver + user wakeup latency. */
    sim::Tick interruptLatency = sim::usToTicks(4);
};

/**
 * The host link of one node.
 *
 * Both directions are shared channels: transfers serialize at the
 * direction's cap regardless of which engine carries them (the four
 * engines exist to keep the pipe busy; the cap is the bottleneck the
 * paper measures, e.g. Host-Local tops out at 1.6 GB/s in figure 13).
 */
class PcieLink
{
  public:
    PcieLink(sim::Simulator &sim, const PcieParams &params)
        : sim_(sim), params_(params),
          devToHost_(params.devToHostBytesPerSec, params.dmaLatency),
          hostToDev_(params.hostToDevBytesPerSec, params.dmaLatency)
    {
    }

    /** Parameters in use. */
    const PcieParams &params() const { return params_; }

    /**
     * DMA @p bytes from the device into host memory; @p done runs
     * when the transfer completes (before any interrupt latency).
     */
    void
    deviceToHost(std::uint32_t bytes, std::function<void()> done)
    {
        sim::Tick t = devToHost_.occupy(sim_.now(), bytes);
        sim_.scheduleAt(t, std::move(done));
    }

    /**
     * DMA @p bytes from host memory into the device.
     */
    void
    hostToDevice(std::uint32_t bytes, std::function<void()> done)
    {
        sim::Tick t = hostToDev_.occupy(sim_.now(), bytes);
        sim_.scheduleAt(t, std::move(done));
    }

    /**
     * Deliver an RPC doorbell to the device: @p fn runs on the
     * "hardware side" after the doorbell latency.
     */
    void
    rpc(std::function<void()> fn)
    {
        sim_.scheduleAfter(params_.rpcLatency, std::move(fn));
    }

    /**
     * Raise a completion interrupt: @p fn runs on the "software
     * side" after interrupt + driver + wakeup latency.
     */
    void
    interrupt(std::function<void()> fn)
    {
        sim_.scheduleAfter(params_.interruptLatency, std::move(fn));
    }

    /** Total bytes moved device-to-host. */
    std::uint64_t
    devToHostBytes() const
    {
        return devToHost_.totalBytes();
    }

    /** Total bytes moved host-to-device. */
    std::uint64_t
    hostToDevBytes() const
    {
        return hostToDev_.totalBytes();
    }

  private:
    sim::Simulator &sim_;
    PcieParams params_;
    sim::LatencyRateServer devToHost_;
    sim::LatencyRateServer hostToDev_;
};

} // namespace host
} // namespace bluedbm

#endif // BLUEDBM_HOST_PCIE_HH
