/**
 * @file
 * Software-stack latency profiles (paper section 4).
 *
 * BlueDBM sends user requests to hardware directly, bypassing almost
 * all of the OS kernel; conventional paths cross the kernel block
 * layer, and involving a *remote* host's software costs an interrupt,
 * scheduling, and a daemon round trip. These parameters place each
 * path's fixed costs; they are the "Software" component of the
 * latency breakdown in figure 12.
 */

#ifndef BLUEDBM_HOST_SOFTWARE_HH
#define BLUEDBM_HOST_SOFTWARE_HH

#include "sim/types.hh"

namespace bluedbm {
namespace host {

/**
 * Fixed software-path costs for one node.
 */
struct SoftwareParams
{
    /**
     * User-level request preparation on the BlueDBM direct path:
     * buffer management plus the file-system physical-address query
     * (figure 8 steps 1-2). Charged once per request batch element.
     */
    sim::Tick requestSetup = sim::usToTicks(10);

    /**
     * Conventional kernel block-I/O overhead per operation (used by
     * the off-the-shelf SSD/disk baselines which cannot bypass the
     * kernel).
     */
    sim::Tick kernelBlockIo = sim::usToTicks(20);

    /**
     * Cost of servicing a request in a *remote host's* software:
     * completion interrupt, scheduler wakeup, daemon processing and
     * re-issuing the request to local hardware. Calibrated so that
     * H-RH-F lands ~3x below ISP-F as the paper reports (figures 12
     * and 20).
     */
    sim::Tick remoteService = sim::usToTicks(160);

    /**
     * CPU time to hash/compare one 8 KB page on the host (the
     * nearest-neighbor kernel, section 7.1). Calibrated from the
     * paper's figure-17 numbers: 8 host threads sustain ~350K
     * comparisons/s on DRAM-resident data => ~23 us per item.
     */
    sim::Tick hammingComputePerPage = sim::usToTicks(23);

    /**
     * CPU time for software string search per 8 KB page. Calibrated
     * from figure 21, whose CPU axis is top-style per-core
     * utilization: single-threaded grep at 600 MB/s (73K pages/s)
     * showing 65% CPU => ~9 us of core time per page (~0.9 GB/s of
     * fixed-string scanning per core).
     */
    sim::Tick grepComputePerPage = sim::usToTicks(9);
};

} // namespace host
} // namespace bluedbm

#endif // BLUEDBM_HOST_SOFTWARE_HH
