#include "host/host_cpu.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace host {

HostCpu::HostCpu(sim::Simulator &sim, unsigned cores)
    : sim_(sim)
{
    if (cores == 0)
        sim::fatal("HostCpu needs at least one core");
    coreFree_.assign(cores, 0);
}

void
HostCpu::execute(sim::Tick duration, std::function<void()> done)
{
    // Earliest-free core, FCFS beyond that.
    auto it = std::min_element(coreFree_.begin(), coreFree_.end());
    sim::Tick start = std::max(sim_.now(), *it);
    sim::Tick finish = start + duration;
    *it = finish;
    busyTime_ += duration;
    sim_.scheduleAt(finish, std::move(done));
}

} // namespace host
} // namespace bluedbm
