/**
 * @file
 * Host server CPU model.
 *
 * Each BlueDBM node is a Xeon server with 24 cores (paper section 5).
 * Software work is modeled as compute segments executed on a pool of
 * cores: a segment occupies one core for its duration, and segments
 * beyond the core count queue FCFS. This reproduces the two effects
 * the paper's host-side experiments hinge on: thread-count scaling
 * until the host is compute-bound, and the CPU utilization cost of
 * software I/O paths (figure 21).
 */

#ifndef BLUEDBM_HOST_HOST_CPU_HH
#define BLUEDBM_HOST_HOST_CPU_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace host {

/**
 * A pool of identical cores executing compute segments.
 */
class HostCpu
{
  public:
    /**
     * @param sim   simulation kernel
     * @param cores number of cores (24 in the paper's servers)
     */
    HostCpu(sim::Simulator &sim, unsigned cores = 24);

    /**
     * Execute a compute segment of @p duration on the earliest
     * available core, then invoke @p done.
     */
    void execute(sim::Tick duration, std::function<void()> done);

    /** Number of cores. */
    unsigned cores() const { return unsigned(coreFree_.size()); }

    /** Total core-busy time accumulated. */
    sim::Tick busyTime() const { return busyTime_; }

    /**
     * Average utilization over [0, now]: busy core-time divided by
     * total core-time.
     */
    double
    utilization() const
    {
        sim::Tick elapsed = sim_.now();
        if (elapsed == 0)
            return 0.0;
        return static_cast<double>(busyTime_) /
            (static_cast<double>(elapsed) * cores());
    }

    /** Reset the utilization accounting (start of a measurement). */
    void resetAccounting() { busyTime_ = 0; }

  private:
    sim::Simulator &sim_;
    std::vector<sim::Tick> coreFree_;
    sim::Tick busyTime_ = 0;
};

} // namespace host
} // namespace bluedbm

#endif // BLUEDBM_HOST_HOST_CPU_HH
