#include "host/page_buffers.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace host {

BufferPool::BufferPool(unsigned count)
    : count_(count)
{
    if (count == 0)
        sim::fatal("BufferPool needs at least one buffer");
    free_.reserve(count);
    for (unsigned i = count; i-- > 0;)
        free_.push_back(i);
}

void
BufferPool::acquire(Acquired acquired)
{
    if (free_.empty()) {
        waiters_.push_back(std::move(acquired));
        return;
    }
    unsigned idx = free_.back();
    free_.pop_back();
    acquired(idx);
}

void
BufferPool::release(unsigned index)
{
    if (index >= count_)
        sim::panic("releasing buffer %u out of range", index);
    if (!waiters_.empty()) {
        Acquired next = std::move(waiters_.front());
        waiters_.pop_front();
        next(index);
        return;
    }
    free_.push_back(index);
    if (free_.size() > count_)
        sim::panic("buffer %u double-released", index);
}

BurstDma::BurstDma(sim::Simulator &sim, PcieLink &pcie,
                   std::uint32_t page_bytes, std::uint32_t burst_bytes,
                   bool per_buffer_fifos)
    : sim_(sim), pcie_(pcie), pageBytes_(page_bytes),
      burstBytes_(burst_bytes), perBufferFifos_(per_buffer_fifos)
{
    if (burst_bytes == 0 || page_bytes == 0)
        sim::fatal("BurstDma needs nonzero page and burst sizes");
}

void
BurstDma::beginRead(unsigned buffer, std::function<void()> done)
{
    Request req;
    req.buffer = buffer;
    req.done = std::move(done);
    open_.push_back(std::move(req));
}

void
BurstDma::addData(unsigned buffer, std::uint32_t bytes)
{
    for (auto &req : open_) {
        if (req.buffer == buffer) {
            req.arrived = std::min<std::uint32_t>(
                req.arrived + bytes, pageBytes_);
            pump();
            return;
        }
    }
    sim::panic("data for buffer %u with no open request", buffer);
}

void
BurstDma::pump()
{
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t i = 0; i < open_.size(); ++i) {
            Request &req = open_[i];
            std::uint32_t ready = req.arrived - req.transferred;
            bool tail = req.arrived == pageBytes_;
            // A burst may issue when a full burst of contiguous data
            // is buffered (or the final partial burst of a page).
            if (ready >= burstBytes_ || (tail && ready > 0)) {
                std::uint32_t burst = std::min(ready, burstBytes_);
                req.transferred += burst;
                unsigned buffer = req.buffer;
                bool complete = req.transferred == pageBytes_;
                auto done = complete ? std::move(req.done)
                                     : std::function<void()>{};
                pcie_.deviceToHost(burst,
                                   [done = std::move(done)]() {
                    if (done)
                        done();
                });
                if (complete) {
                    open_.erase(open_.begin() +
                                std::deque<Request>::difference_type(
                                    i));
                }
                progress = true;
                (void)buffer;
                break;
            }
            // Without per-buffer FIFOs the engine is a single FIFO:
            // if the head-of-line request has no burst ready, nothing
            // behind it may move.
            if (!perBufferFifos_)
                break;
        }
    }
}

} // namespace host
} // namespace bluedbm
