/**
 * @file
 * Host interface page buffers and DMA burst reordering (paper
 * section 3.3, figure 7).
 *
 * The host interface provides software with 128 page buffers each for
 * reads and writes. Reads are tricky: data from multiple flash buses
 * (or remote nodes) arrives interleaved at the DMA engine, which
 * needs enough *contiguous* data per buffer before it can issue a
 * DMA burst. BlueDBM fixes this with a dual-ported buffer that acts
 * as a vector of FIFOs -- one per request -- so each request's data
 * accumulates independently until a burst is ready.
 *
 * BurstDma models this explicitly and can be switched to a single
 * head-of-line FIFO to quantify what the per-buffer FIFOs buy
 * (ablation bench).
 */

#ifndef BLUEDBM_HOST_PAGE_BUFFERS_HH
#define BLUEDBM_HOST_PAGE_BUFFERS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "host/pcie.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace host {

/**
 * Pool of page buffers handed to software on request.
 */
class BufferPool
{
  public:
    /** Callback receiving an acquired buffer index. */
    using Acquired = std::function<void(unsigned)>;

    /**
     * @param count number of buffers (128 in the paper)
     */
    explicit BufferPool(unsigned count);

    /**
     * Acquire a free buffer. If none is free, the request queues and
     * @p acquired fires when a buffer is returned.
     */
    void acquire(Acquired acquired);

    /** Return buffer @p index to the free pool. */
    void release(unsigned index);

    /** Free buffers right now. */
    unsigned available() const { return unsigned(free_.size()); }

    /** Total buffers. */
    unsigned count() const { return count_; }

  private:
    unsigned count_;
    std::vector<unsigned> free_;
    std::deque<Acquired> waiters_;
};

/**
 * DMA read path with per-buffer burst FIFOs.
 *
 * Data destined for several read buffers arrives in arbitrary
 * interleavings via addData(). Whenever a buffer holds at least one
 * full burst, the burst is eligible for the shared PCIe channel.
 * With per-buffer FIFOs any ready buffer may issue; without them
 * (ablation), only the oldest incomplete request's data may move, so
 * interleaved arrivals stall the pipe (head-of-line blocking).
 */
class BurstDma
{
  public:
    /**
     * @param sim              simulation kernel
     * @param pcie             shared host link
     * @param page_bytes       full transfer size per request
     * @param burst_bytes      DMA burst granularity
     * @param per_buffer_fifos false = single head-of-line FIFO
     */
    BurstDma(sim::Simulator &sim, PcieLink &pcie,
             std::uint32_t page_bytes, std::uint32_t burst_bytes,
             bool per_buffer_fifos = true);

    /**
     * Register a read request on @p buffer; @p done fires when the
     * whole page has crossed PCIe.
     */
    void beginRead(unsigned buffer, std::function<void()> done);

    /**
     * Deliver @p bytes of data for @p buffer from the device side
     * (flash bus burst or network packet).
     */
    void addData(unsigned buffer, std::uint32_t bytes);

    /** Requests currently open. */
    std::size_t openRequests() const { return open_.size(); }

  private:
    struct Request
    {
        unsigned buffer = 0;
        std::uint32_t arrived = 0;   //!< bytes present in the FIFO
        std::uint32_t transferred = 0;
        std::function<void()> done;
    };

    /** Issue every eligible burst. */
    void pump();

    sim::Simulator &sim_;
    PcieLink &pcie_;
    std::uint32_t pageBytes_;
    std::uint32_t burstBytes_;
    bool perBufferFifos_;
    std::deque<Request> open_; //!< FIFO order of beginRead calls
};

} // namespace host
} // namespace bluedbm

#endif // BLUEDBM_HOST_PAGE_BUFFERS_HH
