/**
 * @file
 * Hard disk model for the grep comparison (paper section 7.3) and
 * the DRAM + disk miss experiments (section 7.1).
 */

#ifndef BLUEDBM_BASELINE_HDD_HH
#define BLUEDBM_BASELINE_HDD_HH

#include <cstdint>
#include <functional>

#include "sim/bandwidth.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace baseline {

/**
 * HDD model parameters (a 2015 7200 rpm SATA drive).
 */
struct HddParams
{
    /** Sustained sequential transfer rate. */
    double seqBytesPerSec = 150e6;
    /** Average seek plus rotational latency for a random access. */
    sim::Tick randomAccess = sim::msToTicks(8);
};

/**
 * Single-actuator disk: one operation at a time; sequential
 * continuations skip the seek.
 */
class HardDisk
{
  public:
    HardDisk(sim::Simulator &sim, const HddParams &params)
        : sim_(sim), params_(params),
          platter_(params.seqBytesPerSec, 0)
    {
    }

    /** Read @p bytes at page address @p lba. */
    void
    read(std::uint64_t lba, std::uint32_t bytes,
         std::function<void()> done)
    {
        bool sequential = lba == lastLba_ + 1;
        lastLba_ = lba;
        ++reads_;
        sim::Tick start = sim_.now();
        if (!sequential) {
            // The single head seeks; it is busy for the whole op.
            start = std::max(start, platter_.busyUntil());
            start += params_.randomAccess;
            ++seeks_;
        }
        sim::Tick t = platter_.occupy(start, bytes);
        sim_.scheduleAt(t, std::move(done));
    }

    /** Total reads. */
    std::uint64_t reads() const { return reads_; }

    /** Reads that paid a seek. */
    std::uint64_t seeks() const { return seeks_; }

  private:
    sim::Simulator &sim_;
    HddParams params_;
    sim::LatencyRateServer platter_;
    std::uint64_t lastLba_ = ~std::uint64_t(0) - 1;
    std::uint64_t reads_ = 0;
    std::uint64_t seeks_ = 0;
};

} // namespace baseline
} // namespace bluedbm

#endif // BLUEDBM_BASELINE_HDD_HH
