/**
 * @file
 * Off-the-shelf M.2 PCIe SSD model (paper section 7.1).
 *
 * The comparison SSD delivers 600 MB/s for 8 KB accesses *when the
 * access pattern is sequential* (its firmware optimizes readahead);
 * random accesses are served by limited internal parallelism at
 * ~100 us device latency, which is why H-RFlash performs poorly in
 * figure 18 until accesses are artificially arranged sequentially
 * (H-SFlash).
 */

#ifndef BLUEDBM_BASELINE_SSD_HH
#define BLUEDBM_BASELINE_SSD_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/bandwidth.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace baseline {

/**
 * SSD model parameters.
 */
struct SsdParams
{
    /** Sequential streaming rate at 8 KB granularity. */
    double seqBytesPerSec = 600e6;
    /** Device latency of one random read. */
    sim::Tick randomLatency = sim::usToTicks(100);
    /** Internal channels serving random reads concurrently. */
    unsigned channels = 4;
    /** Interface cap (shared by both patterns). */
    double linkBytesPerSec = 600e6;
};

/**
 * A block-device SSD with sequential-pattern optimization.
 */
class OffTheShelfSsd
{
  public:
    OffTheShelfSsd(sim::Simulator &sim, const SsdParams &params)
        : sim_(sim), params_(params),
          link_(params.linkBytesPerSec, sim::usToTicks(20)),
          channelFree_(params.channels, 0)
    {
    }

    /**
     * Read @p bytes at logical block address @p lba (in pages).
     * Sequential continuation of the previous read hits the
     * readahead path; anything else pays the random path.
     */
    void
    read(std::uint64_t lba, std::uint32_t bytes,
         std::function<void()> done)
    {
        bool sequential = lba == lastLba_ + 1;
        lastLba_ = lba;
        ++reads_;
        if (sequential) {
            ++seqReads_;
            sim::Tick t = link_.occupy(sim_.now(), bytes);
            sim_.scheduleAt(t, std::move(done));
            return;
        }
        // Random: a channel is busy for the whole device access, so
        // random throughput tops out at channels / latency.
        auto chan = std::min_element(channelFree_.begin(),
                                     channelFree_.end());
        sim::Tick start = std::max(sim_.now(), *chan);
        sim::Tick chip_done = start + params_.randomLatency;
        *chan = chip_done;
        sim::Tick t = link_.occupy(chip_done, bytes);
        sim_.scheduleAt(t, std::move(done));
    }

    /** Total reads issued. */
    std::uint64_t reads() const { return reads_; }

    /** Reads that hit the sequential path. */
    std::uint64_t sequentialReads() const { return seqReads_; }

  private:
    sim::Simulator &sim_;
    SsdParams params_;
    sim::LatencyRateServer link_;
    std::vector<sim::Tick> channelFree_;
    std::uint64_t lastLba_ = ~std::uint64_t(0) - 1;
    std::uint64_t reads_ = 0;
    std::uint64_t seqReads_ = 0;
};

} // namespace baseline
} // namespace bluedbm

#endif // BLUEDBM_BASELINE_SSD_HH
