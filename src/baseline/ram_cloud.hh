/**
 * @file
 * Ram-cloud-style host processing model (paper sections 7.1, 7.2).
 *
 * Models a multithreaded application on the host whose working set
 * lives (mostly) in DRAM: each item costs CPU compute plus, with some
 * probability, a demand-paging miss to secondary storage. This is
 * the system whose performance the paper shows "falls sharply even
 * if only 5%-10% of the references are to the secondary storage".
 *
 * The miss penalty is the *measured-equivalent* cost of a demand
 * fault through the 2015 Linux paging path (fault, kernel block
 * layer, device, readahead pollution), calibrated so the paper's
 * reported throughput collapse is reproduced; see EXPERIMENTS.md.
 */

#ifndef BLUEDBM_BASELINE_RAM_CLOUD_HH
#define BLUEDBM_BASELINE_RAM_CLOUD_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "host/host_cpu.hh"
#include "sim/bandwidth.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace baseline {

/**
 * Ram-cloud workload parameters.
 */
struct RamCloudParams
{
    /** CPU time to process one 8 KB item (hamming comparison). */
    sim::Tick computePerItem = sim::usToTicks(23);
    /** Effective DRAM bandwidth for streaming items to the cores. */
    double dramBytesPerSec = 6e9;
    /** Item size. */
    std::uint32_t itemBytes = 8192;
    /** Fraction of items that miss DRAM. */
    double missFraction = 0.0;
    /** Blocking cost of one miss (device + paging path). */
    sim::Tick missPenalty = 0;
};

/**
 * Multithreaded host loop processing items from (mostly) DRAM.
 */
class RamCloudWorkload
{
  public:
    /**
     * @param sim     simulation kernel
     * @param cpu     host CPU (shared with other software)
     * @param params  workload parameters
     * @param seed    RNG seed for miss sampling
     */
    RamCloudWorkload(sim::Simulator &sim, host::HostCpu &cpu,
                     const RamCloudParams &params,
                     std::uint64_t seed = 1)
        : sim_(sim), cpu_(cpu), params_(params),
          dram_(params.dramBytesPerSec, sim::nsToTicks(100)),
          rng_(seed)
    {
    }

    /**
     * Run @p threads worker threads each processing items until
     * @p total items have completed, then call @p done.
     */
    void
    run(unsigned threads, std::uint64_t total,
        std::function<void()> done)
    {
        auto st = std::make_shared<State>();
        st->remainingToStart = total;
        st->remainingToFinish = total;
        st->done = std::move(done);
        for (unsigned t = 0; t < threads && t < total; ++t)
            workerStep(st);
    }

    /** Items processed across all runs. */
    std::uint64_t processed() const { return processed_; }

  private:
    struct State
    {
        std::uint64_t remainingToStart = 0;
        std::uint64_t remainingToFinish = 0;
        std::function<void()> done;
    };

    void
    workerStep(std::shared_ptr<State> st)
    {
        if (st->remainingToStart == 0)
            return;
        --st->remainingToStart;
        // Fetch the item: DRAM stream, or a paging miss.
        sim::Tick ready;
        if (params_.missFraction > 0.0 &&
            rng_.chance(params_.missFraction)) {
            ready = sim_.now() + params_.missPenalty;
        } else {
            ready = dram_.occupy(sim_.now(), params_.itemBytes);
        }
        sim_.scheduleAt(ready, [this, st]() {
            cpu_.execute(params_.computePerItem, [this, st]() {
                ++processed_;
                if (--st->remainingToFinish == 0) {
                    st->done();
                    return;
                }
                workerStep(st);
            });
        });
    }

    sim::Simulator &sim_;
    host::HostCpu &cpu_;
    RamCloudParams params_;
    sim::LatencyRateServer dram_;
    sim::Rng rng_;
    std::uint64_t processed_ = 0;
};

} // namespace baseline
} // namespace bluedbm

#endif // BLUEDBM_BASELINE_RAM_CLOUD_HH
