/**
 * @file
 * Conventional Ethernet path model.
 *
 * The paper notes that accessing a remote server over Ethernet costs
 * at least 100x the latency of the integrated storage network
 * (section 6.4), so it is not measured further; we keep a simple
 * model for comparison benches: kernel TCP stack latency on both
 * sides plus a 10 GbE wire.
 */

#ifndef BLUEDBM_BASELINE_ETHERNET_HH
#define BLUEDBM_BASELINE_ETHERNET_HH

#include <cstdint>
#include <functional>

#include "sim/bandwidth.hh"
#include "sim/simulator.hh"

namespace bluedbm {
namespace baseline {

/**
 * Ethernet model parameters.
 */
struct EthernetParams
{
    /** Wire rate (10 GbE). */
    double bytesPerSec = 10e9 / 8.0;
    /** One-way latency including both kernel stacks. */
    sim::Tick oneWayLatency = sim::usToTicks(50);
};

/**
 * Point-to-point kernel-TCP transfer model.
 */
class EthernetLink
{
  public:
    EthernetLink(sim::Simulator &sim, const EthernetParams &params)
        : sim_(sim), params_(params),
          wire_(params.bytesPerSec, params.oneWayLatency)
    {
    }

    /** Send @p bytes; @p done runs at delivery on the far side. */
    void
    send(std::uint32_t bytes, std::function<void()> done)
    {
        sim::Tick t = wire_.occupy(sim_.now(), bytes);
        sim_.scheduleAt(t, std::move(done));
    }

    /** Parameters in use. */
    const EthernetParams &params() const { return params_; }

  private:
    sim::Simulator &sim_;
    EthernetParams params_;
    sim::LatencyRateServer wire_;
};

} // namespace baseline
} // namespace bluedbm

#endif // BLUEDBM_BASELINE_ETHERNET_HH
