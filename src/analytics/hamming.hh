/**
 * @file
 * Hamming distance kernels (the nearest-neighbor compute of paper
 * section 7.1).
 */

#ifndef BLUEDBM_ANALYTICS_HAMMING_HH
#define BLUEDBM_ANALYTICS_HAMMING_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace bluedbm {
namespace analytics {

/**
 * Number of differing bits between two equal-length byte buffers.
 */
inline std::uint64_t
hammingDistance(const std::uint8_t *a, const std::uint8_t *b,
                std::size_t len)
{
    std::uint64_t distance = 0;
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        std::uint64_t wa, wb;
        std::memcpy(&wa, a + i, 8);
        std::memcpy(&wb, b + i, 8);
        distance += std::uint64_t(std::popcount(wa ^ wb));
    }
    for (; i < len; ++i) {
        distance += std::uint64_t(
            std::popcount(unsigned(a[i] ^ b[i])));
    }
    return distance;
}

/** Convenience overload for vectors (must be equal length). */
inline std::uint64_t
hammingDistance(const std::vector<std::uint8_t> &a,
                const std::vector<std::uint8_t> &b)
{
    return hammingDistance(a.data(), b.data(),
                           a.size() < b.size() ? a.size() : b.size());
}

} // namespace analytics
} // namespace bluedbm

#endif // BLUEDBM_ANALYTICS_HAMMING_HH
