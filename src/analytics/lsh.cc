#include "analytics/lsh.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace bluedbm {
namespace analytics {

LshIndex::LshIndex(unsigned tables, unsigned bits_per_key,
                   std::size_t item_bytes, std::uint64_t seed)
    : itemBytes_(item_bytes)
{
    if (tables == 0 || bits_per_key == 0 || bits_per_key > 64)
        sim::fatal("LshIndex needs 1..64 bits per key and >=1 table");
    sim::Rng rng(seed);
    positions_.resize(tables);
    buckets_.resize(tables);
    std::uint64_t total_bits = std::uint64_t(item_bytes) * 8;
    for (auto &pos : positions_) {
        pos.reserve(bits_per_key);
        for (unsigned k = 0; k < bits_per_key; ++k)
            pos.push_back(
                static_cast<std::uint32_t>(rng.below(total_bits)));
    }
}

std::uint64_t
LshIndex::hash(unsigned t, const std::uint8_t *data) const
{
    std::uint64_t key = 0;
    for (std::uint32_t bit : positions_[t]) {
        key <<= 1;
        key |= (data[bit / 8] >> (bit % 8)) & 1u;
    }
    return key;
}

void
LshIndex::insert(std::uint64_t id, const std::uint8_t *data)
{
    for (unsigned t = 0; t < tables(); ++t)
        buckets_[t][hash(t, data)].push_back(id);
    ++items_;
}

std::vector<std::uint64_t>
LshIndex::candidates(const std::uint8_t *query) const
{
    std::vector<std::uint64_t> out;
    for (unsigned t = 0; t < tables(); ++t) {
        auto it = buckets_[t].find(hash(t, query));
        if (it == buckets_[t].end())
            continue;
        out.insert(out.end(), it->second.begin(), it->second.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace analytics
} // namespace bluedbm
