/**
 * @file
 * Locality Sensitive Hashing for Hamming space (paper section 7.1).
 *
 * Bit-sampling LSH: each of L tables hashes an item by sampling K
 * random bit positions; items within small Hamming distance land in
 * the same bucket with high probability. Queries read the matching
 * buckets and compute exact distances on the candidates -- the
 * scattered, random page reads that motivate BlueDBM's flash-level
 * random access performance (figure 15).
 */

#ifndef BLUEDBM_ANALYTICS_LSH_HH
#define BLUEDBM_ANALYTICS_LSH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/random.hh"

namespace bluedbm {
namespace analytics {

/**
 * In-memory LSH index over fixed-size binary items.
 */
class LshIndex
{
  public:
    /**
     * @param tables       number of hash tables (L)
     * @param bits_per_key sampled bit positions per table (K)
     * @param item_bytes   size of every item
     * @param seed         RNG seed for position sampling
     */
    LshIndex(unsigned tables, unsigned bits_per_key,
             std::size_t item_bytes, std::uint64_t seed = 42);

    /** Number of tables. */
    unsigned tables() const { return unsigned(positions_.size()); }

    /** Hash @p data for table @p t. */
    std::uint64_t hash(unsigned t, const std::uint8_t *data) const;

    /** Insert item @p id with content @p data. */
    void insert(std::uint64_t id, const std::uint8_t *data);

    /**
     * Candidate ids whose buckets match @p query in at least one
     * table (deduplicated, unordered).
     */
    std::vector<std::uint64_t>
    candidates(const std::uint8_t *query) const;

    /** Total items inserted. */
    std::uint64_t size() const { return items_; }

  private:
    std::size_t itemBytes_;
    //! positions_[t] = sampled bit indices for table t
    std::vector<std::vector<std::uint32_t>> positions_;
    //! buckets_[t] : key -> item ids
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::uint64_t>>>
        buckets_;
    std::uint64_t items_ = 0;
};

} // namespace analytics
} // namespace bluedbm

#endif // BLUEDBM_ANALYTICS_LSH_HH
