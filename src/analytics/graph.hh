/**
 * @file
 * Page-resident graphs for the traversal experiments (paper
 * section 7.2).
 *
 * Each vertex occupies one flash page holding its serialized
 * adjacency list; traversals are dependent page lookups ("like a
 * linked-list traversal at the page level"). The generator builds
 * random regular digraphs; the serializer packs adjacency into page
 * bytes so the in-store graph engine operates on real data.
 */

#ifndef BLUEDBM_ANALYTICS_GRAPH_HH
#define BLUEDBM_ANALYTICS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "flash/types.hh"
#include "sim/random.hh"

namespace bluedbm {
namespace analytics {

/**
 * An in-memory directed graph with page serialization.
 */
class PageGraph
{
  public:
    /**
     * Generate a random digraph where every vertex has @p out_degree
     * distinct successors.
     */
    // lint: allow(determinism) seeded factory over sim::Rng -- the
    // name collides with libc random() but every draw is reproducible
    static PageGraph random(std::uint64_t vertices,
                            unsigned out_degree,
                            std::uint64_t seed = 1);

    /** Number of vertices. */
    std::uint64_t vertices() const { return adj_.size(); }

    /** Successors of @p v. */
    const std::vector<std::uint64_t> &
    neighbors(std::uint64_t v) const
    {
        return adj_[v];
    }

    /**
     * Serialize vertex @p v into a page of @p page_size bytes:
     * [u32 degree][u64 neighbor]*  (zero-padded).
     */
    flash::PageBuffer serialize(std::uint64_t v,
                                std::uint32_t page_size) const;

    /** Parse a serialized vertex page back into neighbor ids. */
    static std::vector<std::uint64_t>
    parse(const flash::PageBuffer &page);

    /**
     * Reference BFS from @p start; returns hop distance per vertex
     * (-1 when unreachable). Used to validate traversal engines.
     */
    std::vector<std::int64_t> bfs(std::uint64_t start) const;

  private:
    std::vector<std::vector<std::uint64_t>> adj_;
};

} // namespace analytics
} // namespace bluedbm

#endif // BLUEDBM_ANALYTICS_GRAPH_HH
