/**
 * @file
 * Text corpus generation for the string search experiments (paper
 * section 7.3): haystacks of pseudo-words with a needle planted at
 * known positions, so search engines can be validated exactly.
 */

#ifndef BLUEDBM_ANALYTICS_TEXT_HH
#define BLUEDBM_ANALYTICS_TEXT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bluedbm {
namespace analytics {

/**
 * A generated corpus with ground truth.
 */
struct Corpus
{
    std::vector<std::uint8_t> text;
    std::vector<std::uint64_t> needlePositions; //!< byte offsets
};

/**
 * Generate @p bytes of word-like text with @p occurrences of
 * @p needle planted at deterministic pseudo-random positions.
 *
 * The filler text is guaranteed not to contain the needle by
 * accident (the needle must contain at least one character outside
 * [a-z space]).
 */
Corpus makeCorpus(std::uint64_t bytes, const std::string &needle,
                  unsigned occurrences, std::uint64_t seed = 1);

} // namespace analytics
} // namespace bluedbm

#endif // BLUEDBM_ANALYTICS_TEXT_HH
