#include "analytics/graph.hh"

#include <cstring>
#include <queue>

#include "sim/logging.hh"

namespace bluedbm {
namespace analytics {

PageGraph
PageGraph::random(std::uint64_t vertices, unsigned out_degree,
                  std::uint64_t seed)
{
    if (vertices < 2)
        sim::fatal("graph needs at least 2 vertices");
    if (out_degree >= vertices)
        sim::fatal("out-degree must be below vertex count");
    PageGraph g;
    g.adj_.resize(vertices);
    sim::Rng rng(seed);
    for (std::uint64_t v = 0; v < vertices; ++v) {
        auto &nbrs = g.adj_[v];
        // A Hamiltonian-cycle backbone guarantees strong
        // connectivity (no unreachable vertices, no sinks); the
        // remaining successors are uniform random.
        nbrs.push_back((v + 1) % vertices);
        while (nbrs.size() < out_degree) {
            std::uint64_t u = rng.below(vertices);
            if (u == v)
                continue;
            bool dup = false;
            for (std::uint64_t w : nbrs)
                dup = dup || w == u;
            if (!dup)
                nbrs.push_back(u);
        }
    }
    return g;
}

flash::PageBuffer
PageGraph::serialize(std::uint64_t v, std::uint32_t page_size) const
{
    const auto &nbrs = adj_.at(v);
    std::size_t need = 4 + nbrs.size() * 8;
    if (need > page_size)
        sim::fatal("vertex %llu does not fit a %u-byte page",
                   static_cast<unsigned long long>(v), page_size);
    flash::PageBuffer page(page_size, 0);
    auto degree = static_cast<std::uint32_t>(nbrs.size());
    std::memcpy(page.data(), &degree, 4);
    for (std::size_t i = 0; i < nbrs.size(); ++i)
        std::memcpy(page.data() + 4 + i * 8, &nbrs[i], 8);
    return page;
}

std::vector<std::uint64_t>
PageGraph::parse(const flash::PageBuffer &page)
{
    if (page.size() < 4)
        sim::fatal("page too small to hold a vertex");
    std::uint32_t degree = 0;
    std::memcpy(&degree, page.data(), 4);
    if (4 + std::size_t(degree) * 8 > page.size())
        sim::fatal("corrupt vertex page (degree %u)", degree);
    std::vector<std::uint64_t> nbrs(degree);
    for (std::uint32_t i = 0; i < degree; ++i)
        std::memcpy(&nbrs[i], page.data() + 4 + i * 8, 8);
    return nbrs;
}

std::vector<std::int64_t>
PageGraph::bfs(std::uint64_t start) const
{
    std::vector<std::int64_t> dist(adj_.size(), -1);
    std::queue<std::uint64_t> q;
    dist[start] = 0;
    q.push(start);
    while (!q.empty()) {
        std::uint64_t v = q.front();
        q.pop();
        for (std::uint64_t u : adj_[v]) {
            if (dist[u] < 0) {
                dist[u] = dist[v] + 1;
                q.push(u);
            }
        }
    }
    return dist;
}

} // namespace analytics
} // namespace bluedbm
