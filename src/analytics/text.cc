#include "analytics/text.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace bluedbm {
namespace analytics {

Corpus
makeCorpus(std::uint64_t bytes, const std::string &needle,
           unsigned occurrences, std::uint64_t seed)
{
    if (needle.empty())
        sim::fatal("needle must not be empty");
    if (needle.size() * (occurrences + 1) > bytes)
        sim::fatal("corpus too small for %u occurrences",
                   occurrences);
    bool has_special = false;
    for (char c : needle)
        has_special = has_special || !(c == ' ' ||
                                       (c >= 'a' && c <= 'z'));
    if (!has_special)
        sim::fatal("needle needs a character outside [a-z ] so the "
                   "filler cannot contain it by accident");

    Corpus corpus;
    corpus.text.resize(bytes);
    sim::Rng rng(seed);

    // Word-like filler: 2-9 letter words separated by spaces.
    std::uint64_t i = 0;
    while (i < bytes) {
        std::uint64_t word = 2 + rng.below(8);
        for (std::uint64_t w = 0; w < word && i < bytes; ++w, ++i)
            corpus.text[i] =
                static_cast<std::uint8_t>('a' + rng.below(26));
        if (i < bytes)
            corpus.text[i++] = ' ';
    }

    // Plant needles at non-overlapping positions.
    std::vector<std::uint64_t> positions;
    std::uint64_t span = needle.size();
    while (positions.size() < occurrences) {
        std::uint64_t pos = rng.below(bytes - span);
        bool clash = false;
        for (std::uint64_t p : positions)
            clash = clash || (pos + span > p && p + span > pos);
        if (clash)
            continue;
        positions.push_back(pos);
    }
    std::sort(positions.begin(), positions.end());
    for (std::uint64_t pos : positions)
        std::copy(needle.begin(), needle.end(),
                  corpus.text.begin() +
                      std::vector<std::uint8_t>::difference_type(pos));
    corpus.needlePositions = std::move(positions);
    return corpus;
}

} // namespace analytics
} // namespace bluedbm
