/**
 * @file
 * Key-distribution and arrival-process generators for the workload
 * engine.
 *
 * The mixes that matter for a flash-backed serving appliance are
 * skewed: a handful of hot keys absorb most traffic (the Zipfian
 * request distributions YCSB standardized, also used by recent
 * near-data KV evaluations). The Zipfian generator below is the
 * Gray et al. rejection-free algorithm YCSB uses, built on the
 * simulator's deterministic Rng so runs are reproducible across
 * platforms. Poisson arrivals drive the open-loop client model.
 */

#ifndef BLUEDBM_WORKLOAD_KEY_DIST_HH
#define BLUEDBM_WORKLOAD_KEY_DIST_HH

#include <cmath>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace bluedbm {
namespace workload {

/**
 * Uniform keys over [0, n).
 */
class UniformKeys
{
  public:
    UniformKeys(std::uint64_t n, std::uint64_t seed) : rng_(seed), n_(n)
    {
        if (n == 0)
            sim::fatal("key space must be non-empty");
    }

    /** Next key. */
    std::uint64_t next() { return rng_.below(n_); }

    /** Restart the stream from @p seed. */
    void reseed(std::uint64_t seed) { rng_ = sim::Rng(seed); }

  private:
    sim::Rng rng_;
    std::uint64_t n_;
};

/**
 * Zipfian keys over [0, n): key 0 is the most popular, with
 * P(rank r) proportional to 1/(r+1)^theta.
 *
 * Implements the Gray et al. "Quickly generating billion-record
 * synthetic databases" algorithm (the YCSB generator): constant
 * time per sample after an O(n) zeta precomputation. theta must be
 * in (0, 1); YCSB's default of 0.99 is the classic "hot" serving
 * skew.
 */
class ZipfianKeys
{
  public:
    ZipfianKeys(std::uint64_t n, double theta, std::uint64_t seed)
        : rng_(seed), n_(n), theta_(theta)
    {
        if (n == 0)
            sim::fatal("key space must be non-empty");
        if (!(theta > 0.0) || !(theta < 1.0))
            sim::fatal("zipfian theta must be in (0, 1)");
        zetan_ = zeta(n_, theta_);
        zeta2_ = zeta(2, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
            (1.0 - zeta2_ / zetan_);
    }

    /** Next key (0 = hottest rank). */
    std::uint64_t
    next()
    {
        double u = rng_.uniform();
        double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        auto k = static_cast<std::uint64_t>(
            double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return k >= n_ ? n_ - 1 : k;
    }

    /** Key-space size. */
    std::uint64_t size() const { return n_; }

    /** Restart the stream from @p seed (reuses the zeta
     * precomputation -- copy one prototype per client). */
    void reseed(std::uint64_t seed) { rng_ = sim::Rng(seed); }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(double(i), theta);
        return sum;
    }

    sim::Rng rng_;
    std::uint64_t n_;
    double theta_;
    double zetan_ = 0.0;
    double zeta2_ = 0.0;
    double alpha_ = 0.0;
    double eta_ = 0.0;
};

/**
 * Poisson process: exponential interarrival gaps at a fixed rate,
 * the open-loop client model (arrivals do not wait for
 * completions, which is what exposes tail-latency collapse).
 */
class PoissonArrivals
{
  public:
    /** @param per_sec mean arrival rate in events per second */
    PoissonArrivals(double per_sec, std::uint64_t seed)
        : rng_(seed), perSec_(per_sec)
    {
        if (!(per_sec > 0.0))
            sim::fatal("arrival rate must be positive");
    }

    /** Ticks until the next arrival. */
    sim::Tick
    nextGap()
    {
        // Inverse CDF; 1-u avoids log(0).
        double gap_sec = -std::log(1.0 - rng_.uniform()) / perSec_;
        return sim::secToTicks(gap_sec);
    }

  private:
    sim::Rng rng_;
    double perSec_;
};

} // namespace workload
} // namespace bluedbm

#endif // BLUEDBM_WORKLOAD_KEY_DIST_HH
