/**
 * @file
 * Trace-driven workload engine for the KV service.
 *
 * Drives the appliance the way a data-center evaluation does
 * (paper section 6, figure 17): a population of clients spread
 * across the rack's nodes, a YCSB-style read/write/scan mix over a
 * uniform or Zipfian key distribution, and per-operation latency
 * recorded into HDR-style histograms so throughput can be reported
 * against p50/p95/p99/p99.9.
 *
 * Two client models:
 *  - closed-loop: each client keeps a fixed number of operations in
 *    flight and issues the next on completion (throughput-oriented,
 *    self-throttling);
 *  - open-loop: operations arrive on a Poisson process regardless
 *    of completions (latency-oriented; queueing delay and admission
 *    rejections become visible, which is how tail collapse actually
 *    manifests in serving systems).
 */

#ifndef BLUEDBM_WORKLOAD_WORKLOAD_HH
#define BLUEDBM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cluster.hh"
#include "kv/kv_service.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "workload/key_dist.hh"

namespace bluedbm {
namespace workload {

/**
 * Operation mix (fractions of all operations). The remainder after
 * reads and scans is single-key puts.
 */
struct MixParams
{
    double readFrac = 0.95; //!< single-key gets
    double scanFrac = 0.0;  //!< multi-gets of scanLen keys
    unsigned scanLen = 8;   //!< keys per multi-get
};

/**
 * Workload shape.
 */
struct WorkloadParams
{
    std::uint64_t keys = 10000;   //!< key-space size (preloaded)
    std::uint32_t valueBytes = 256;
    MixParams mix;
    bool zipfian = true;          //!< else uniform
    double theta = 0.99;          //!< Zipfian skew
    unsigned clientsPerNode = 8;
    /**
     * Home clients (and preload origins) on only the first this
     * many nodes; 0 = every cluster node. Membership scenarios
     * build the cluster with standby nodes (KvParams::activeNodes)
     * that must carry no client sessions until they join.
     */
    unsigned clientNodes = 0;
    /** Concurrent operations each closed-loop client sustains. */
    unsigned pipeline = 1;
    /**
     * Closed loop: when an operation is rejected Overloaded, pause
     * the client for a jittered multiple of the service's
     * retry-after hint (KvService::retryAfterUs) before issuing
     * again, instead of hammering a full queue. Rejections still
     * count as completions either way.
     */
    bool honorRetryAfter = false;
    /** Per-client admission parameters handed to the service. */
    kv::KvService::ClientParams client;
    bool openLoop = false;
    /** Open loop: mean arrivals per second per client. */
    double arrivalsPerSec = 0.0;
    /** Measured operations across all clients (beyond preload). */
    std::uint64_t totalOps = 50000;
    std::uint64_t seed = 1;
};

/**
 * Issues one workload against one cluster + KV service and
 * collects the results.
 */
class WorkloadEngine
{
  public:
    WorkloadEngine(sim::Simulator &sim, core::Cluster &cluster,
                   kv::KvRouter &router, kv::KvService &service,
                   const WorkloadParams &params);

    ~WorkloadEngine() { *alive_ = false; }

    /**
     * Insert every key once (replicated by the router), bounded
     * in-flight. Run the simulator until @p done fires before
     * starting the measured phase.
     */
    void preload(std::function<void()> done);

    /**
     * Issue the measured operations; @p done fires when the last
     * completion lands. Histograms and counters cover only this
     * phase.
     */
    void run(std::function<void()> done);

    /**
     * Issue @p ops operations as a fresh measured phase: histograms
     * and counters reset, quotas redistribute over the currently
     * unpaused clients, and @p done fires when the last completion
     * lands. Membership scenarios chain phases (steady -> kill
     * window -> recovered) and read per-phase tails in between.
     * Closed-loop only.
     */
    void runPhase(std::uint64_t ops, std::function<void()> done);

    /**
     * Stop the clients homed on @p node from issuing further
     * operations (a killed node's clients die with it). Their
     * unissued quota moves to the surviving clients so the running
     * phase still completes; operations already in flight complete
     * normally (the router fails a killed node's in-flight ops).
     */
    void pauseNode(net::NodeId node);

    /** Let @p node's clients issue again (from the next phase, or
     * immediately if the running phase has quota left). */
    void resumeNode(net::NodeId node);

    /** Deterministic value bytes for @p key. */
    static flash::PageBuffer makeValue(kv::Key key,
                                       std::uint32_t bytes);

    /** @name Results */
    ///@{
    const sim::LatencyHistogram &readLatency() const { return readLat_; }
    const sim::LatencyHistogram &writeLatency() const { return writeLat_; }
    const sim::LatencyHistogram &scanLatency() const { return scanLat_; }
    /** All accepted operations regardless of type. */
    const sim::LatencyHistogram &allLatency() const { return allLat_; }

    /** Accepted completions per simulated second. */
    double throughputOpsPerSec() const;

    std::uint64_t completedOps() const { return completed_; }
    std::uint64_t rejectedOps() const { return rejected_; }
    std::uint64_t notFoundOps() const { return notFound_; }
    /** Overloaded rejections answered with a retry-after pause. */
    std::uint64_t backoffs() const { return backoffs_; }
    ///@}

  private:
    struct ClientState
    {
        kv::KvService::ClientId id = 0;
        net::NodeId origin = 0;
        sim::Rng opRng;                   //!< op type + value draw
        std::unique_ptr<ZipfianKeys> zipf;
        std::unique_ptr<UniformKeys> uniform;
        std::unique_ptr<PoissonArrivals> arrivals;
        std::uint64_t quota = 0;
        std::uint64_t issued = 0;
        unsigned inflight = 0;
        bool paused = false; //!< node killed / left: issues nothing
    };

    kv::Key nextKey(ClientState &c);
    void pumpPreload();
    /** One bulk-load put; re-issues itself after a pause when the
     * shard sheds it at the capacity red line. */
    void preloadPut(kv::Key key);
    void issueOne(std::size_t ci);
    /** Closed loop: issue the client's next op if quota remains. */
    void refill(std::size_t ci);
    /** Open loop: schedule the client's next Poisson arrival. */
    void scheduleArrival(std::size_t ci);
    /** Account one completion; closed loop re-arms the client. */
    void opFinished(std::size_t ci, sim::Tick start,
                    sim::LatencyHistogram &hist, bool accepted);

    sim::Simulator &sim_;
    kv::KvRouter &router_;
    kv::KvService &service_;
    WorkloadParams params_;
    unsigned clusterSize_ = 0;
    /** Nodes carrying client sessions (params_.clientNodes or the
     * whole cluster). */
    unsigned originNodes_ = 0;

    std::vector<ClientState> clients_;
    std::uint64_t targetOps_ = 0;
    /** Bumped by runPhase: parks stale backoff wakeups from the
     * previous phase. */
    std::uint64_t phaseEpoch_ = 0;

    /** Preload progress (engine-owned: callbacks capture `this`,
     * so the engine must outlive its simulation, which run()'s
     * callbacks already require). */
    std::uint64_t preloadNext_ = 0;
    std::uint64_t preloadCompleted_ = 0;
    std::function<void()> preloadDone_;

    sim::Tick startTick_ = 0;
    sim::Tick endTick_ = 0;
    /** Phase-local (runPhase resets them), so they are registry
     * gauges -- workload.* -- rather than monotone counters. */
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t notFound_ = 0;
    std::uint64_t backoffs_ = 0;
    /** Flipped by the destructor; guards the workload.* gauges. */
    std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
    std::function<void()> runDone_;

    sim::LatencyHistogram readLat_;
    sim::LatencyHistogram writeLat_;
    sim::LatencyHistogram scanLat_;
    sim::LatencyHistogram allLat_;
};

} // namespace workload
} // namespace bluedbm

#endif // BLUEDBM_WORKLOAD_WORKLOAD_HH
