#include "workload/workload.hh"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace workload {

using flash::PageBuffer;
using kv::Key;
using kv::KvStatus;

WorkloadEngine::WorkloadEngine(sim::Simulator &sim,
                               core::Cluster &cluster,
                               kv::KvRouter &router,
                               kv::KvService &service,
                               const WorkloadParams &params)
    : sim_(sim), router_(router), service_(service), params_(params),
      clusterSize_(cluster.size())
{
    if (params_.mix.readFrac + params_.mix.scanFrac > 1.0)
        sim::fatal("operation mix fractions exceed 1");
    if (params_.openLoop && !(params_.arrivalsPerSec > 0.0))
        sim::fatal("open-loop workload needs an arrival rate");
    if (params_.pipeline == 0)
        sim::fatal("closed-loop pipeline must be >= 1");

    originNodes_ = params_.clientNodes != 0 ? params_.clientNodes
                                            : clusterSize_;
    if (originNodes_ > clusterSize_)
        sim::fatal("clientNodes exceeds the cluster");
    unsigned total_clients = originNodes_ * params_.clientsPerNode;
    if (total_clients == 0)
        sim::fatal("workload needs at least one client");

    // One Zipfian prototype shares the O(n) zeta precomputation.
    std::unique_ptr<ZipfianKeys> proto;
    if (params_.zipfian) {
        proto = std::make_unique<ZipfianKeys>(
            params_.keys, params_.theta, params_.seed);
    }

    clients_.resize(total_clients);
    for (unsigned i = 0; i < total_clients; ++i) {
        ClientState &c = clients_[i];
        net::NodeId origin =
            net::NodeId(i % originNodes_); // spread across nodes
        c.origin = origin;
        c.id = service_.addClient(origin, params_.client);
        std::uint64_t cseed = kv::mix64(
            params_.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
        c.opRng = sim::Rng(cseed);
        if (params_.zipfian) {
            c.zipf = std::make_unique<ZipfianKeys>(*proto);
            c.zipf->reseed(cseed ^ 0x5bf036350c488d15ull);
        } else {
            c.uniform = std::make_unique<UniformKeys>(
                params_.keys, cseed ^ 0x5bf036350c488d15ull);
        }
        if (params_.openLoop) {
            c.arrivals = std::make_unique<PoissonArrivals>(
                params_.arrivalsPerSec,
                cseed ^ 0xc2b2ae3d27d4eb4full);
        }
        c.quota = params_.totalOps / total_clients +
            (i < params_.totalOps % total_clients ? 1 : 0);
    }
    targetOps_ = params_.totalOps;

    // Phase-local progress, published as gauges (runPhase resets
    // them, which a monotone sim::Counter cannot express). Guarded:
    // benches may snapshot after the engine is gone.
    struct Stat
    {
        const char *name;
        const std::uint64_t *value;
    };
    const Stat stats[] = {{"workload.completed", &completed_},
                          {"workload.rejected", &rejected_},
                          {"workload.not_found", &notFound_},
                          {"workload.backoffs", &backoffs_}};
    for (const Stat &s : stats) {
        sim.metrics().registerGauge(
            s.name, {}, [alive = alive_, v = s.value]() {
            return *alive ? double(*v) : 0.0;
        });
    }
}

PageBuffer
WorkloadEngine::makeValue(Key key, std::uint32_t bytes)
{
    PageBuffer value(bytes);
    std::uint64_t h = kv::mix64(key);
    for (std::uint32_t i = 0; i < bytes; ++i)
        value[i] = std::uint8_t((h >> ((i % 8) * 8)) ^ i);
    return value;
}

void
WorkloadEngine::preload(std::function<void()> done)
{
    preloadNext_ = 0;
    preloadCompleted_ = 0;
    preloadDone_ = std::move(done);
    if (params_.keys == 0) {
        sim_.scheduleAfter(0, [this]() {
            auto fin = std::move(preloadDone_);
            preloadDone_ = nullptr;
            fin();
        });
        return;
    }
    pumpPreload();
}

void
WorkloadEngine::pumpPreload()
{
    // Bounded bulk load straight through the router: admission
    // control is a serving-phase concern. Origins rotate so the
    // load exercises every node's request path.
    constexpr unsigned window = 64;
    while (preloadNext_ < params_.keys &&
           preloadNext_ - preloadCompleted_ < window) {
        Key key = preloadNext_++;
        preloadPut(key);
    }
}

void
WorkloadEngine::preloadPut(Key key)
{
    router_.put(net::NodeId(key % originNodes_), key,
                makeValue(key, params_.valueBytes),
                [this, key](KvStatus st) {
        if (st == KvStatus::Pressure || st == KvStatus::Overloaded) {
            // Capacity red line (or quorum of shedding replicas):
            // the status is retryable by contract, and a bulk load
            // at high utilization WILL graze it -- the cleaner
            // needs flash time to free blocks. Pause and re-issue.
            sim_.scheduleAfter(sim::usToTicks(500),
                               [this, key]() { preloadPut(key); });
            return;
        }
        if (st != KvStatus::Ok)
            sim::fatal("preload put failed");
        if (++preloadCompleted_ == params_.keys) {
            auto fin = std::move(preloadDone_);
            preloadDone_ = nullptr;
            fin();
            return;
        }
        pumpPreload();
    });
}

Key
WorkloadEngine::nextKey(ClientState &c)
{
    return c.zipf ? c.zipf->next() : c.uniform->next();
}

void
WorkloadEngine::opFinished(std::size_t ci, sim::Tick start,
                           sim::LatencyHistogram &hist, bool accepted)
{
    ClientState &c = clients_[ci];
    if (c.inflight > 0)
        --c.inflight;
    if (accepted) {
        sim::Tick lat = sim_.now() - start;
        hist.record(lat);
        allLat_.record(lat);
    } else {
        ++rejected_;
    }
    ++completed_;
    endTick_ = sim_.now();
    if (completed_ == targetOps_) {
        auto fin = std::move(runDone_);
        runDone_ = nullptr;
        if (fin)
            fin();
        return;
    }
    if (params_.openLoop)
        return;
    // Closed loop: completion begets the next op -- except a
    // rejection with retry-after honoring, which pauses the client
    // for a jittered multiple of the service's hint first (the
    // polite response to a full queue; jitter decorrelates the
    // herd's retries).
    if (!accepted && params_.honorRetryAfter) {
        std::uint64_t us = service_.retryAfterUs(c.id);
        if (us > 0) {
            ++backoffs_;
            double jitter = 0.5 + c.opRng.uniform();
            std::uint64_t epoch = phaseEpoch_;
            sim_.scheduleAfter(
                sim::usToTicks(double(us) * jitter),
                [this, ci, epoch]() {
                if (epoch == phaseEpoch_)
                    refill(ci);
            });
            return;
        }
    }
    refill(ci);
}

void
WorkloadEngine::issueOne(std::size_t ci)
{
    ClientState &c = clients_[ci];
    ++c.inflight;
    double u = c.opRng.uniform();
    sim::Tick start = sim_.now();

    if (u < params_.mix.readFrac) {
        service_.get(c.id, nextKey(c),
                     [this, ci, start](PageBuffer, KvStatus st) {
            if (st == KvStatus::NotFound)
                ++notFound_;
            opFinished(ci, start, readLat_,
                       st != KvStatus::Overloaded);
        });
        return;
    }
    if (u < params_.mix.readFrac + params_.mix.scanFrac) {
        std::vector<Key> keys(params_.mix.scanLen);
        for (auto &k : keys)
            k = nextKey(c);
        service_.multiGet(c.id, std::move(keys),
                          [this, ci, start](
                              std::vector<PageBuffer>,
                              std::vector<KvStatus> sts) {
            bool accepted = true;
            for (KvStatus st : sts) {
                if (st == KvStatus::Overloaded)
                    accepted = false;
                else if (st == KvStatus::NotFound)
                    ++notFound_;
            }
            opFinished(ci, start, scanLat_, accepted);
        });
        return;
    }
    Key key = nextKey(c);
    service_.put(c.id, key, makeValue(key, params_.valueBytes),
                 [this, ci, start](KvStatus st) {
        opFinished(ci, start, writeLat_,
                   st != KvStatus::Overloaded);
    });
}

void
WorkloadEngine::refill(std::size_t ci)
{
    ClientState &c = clients_[ci];
    if (c.paused || c.issued >= c.quota)
        return;
    ++c.issued;
    issueOne(ci);
}

void
WorkloadEngine::pauseNode(net::NodeId node)
{
    // The node's clients stop issuing; their unissued quota spreads
    // over the survivors so the running phase still reaches its op
    // target. Survivors that already drained their quota (or are
    // waiting below their pipeline depth) get kicked directly --
    // nothing else would ever refill an idle client.
    std::uint64_t stranded = 0;
    std::vector<std::size_t> alive;
    for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
        ClientState &c = clients_[ci];
        if (c.origin == node) {
            if (!c.paused) {
                c.paused = true;
                stranded += c.quota - c.issued;
                c.quota = c.issued;
            }
        } else if (!c.paused) {
            alive.push_back(ci);
        }
    }
    if (stranded == 0 || alive.empty())
        return;
    for (std::size_t i = 0; i < alive.size(); ++i) {
        clients_[alive[i]].quota += stranded / alive.size() +
            (i < stranded % alive.size() ? 1 : 0);
    }
    if (params_.openLoop)
        return;
    for (std::size_t ci : alive) {
        ClientState &c = clients_[ci];
        while (c.inflight < params_.pipeline && c.issued < c.quota)
            refill(ci);
    }
}

void
WorkloadEngine::resumeNode(net::NodeId node)
{
    for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
        ClientState &c = clients_[ci];
        if (c.origin != node || !c.paused)
            continue;
        c.paused = false;
        if (!params_.openLoop) {
            while (c.inflight < params_.pipeline &&
                   c.issued < c.quota)
                refill(ci);
        }
    }
}

void
WorkloadEngine::runPhase(std::uint64_t ops, std::function<void()> done)
{
    if (params_.openLoop)
        sim::fatal("runPhase is closed-loop only");
    if (runDone_)
        sim::fatal("runPhase while a phase is still running");
    ++phaseEpoch_; // park leftover backoff wakeups
    readLat_.reset();
    writeLat_.reset();
    scanLat_.reset();
    allLat_.reset();
    completed_ = 0;
    rejected_ = 0;
    notFound_ = 0;
    backoffs_ = 0;

    std::vector<std::size_t> alive;
    for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
        ClientState &c = clients_[ci];
        c.quota = 0;
        c.issued = 0;
        if (!c.paused)
            alive.push_back(ci);
    }
    if (alive.empty())
        sim::fatal("runPhase with every client paused");

    runDone_ = std::move(done);
    targetOps_ = ops;
    startTick_ = sim_.now();
    endTick_ = startTick_;
    if (ops == 0) {
        sim_.scheduleAfter(0, [this]() {
            auto fin = std::move(runDone_);
            runDone_ = nullptr;
            if (fin)
                fin();
        });
        return;
    }
    for (std::size_t i = 0; i < alive.size(); ++i) {
        clients_[alive[i]].quota = ops / alive.size() +
            (i < ops % alive.size() ? 1 : 0);
    }
    for (std::size_t ci : alive) {
        auto burst = std::min<std::uint64_t>(params_.pipeline,
                                             clients_[ci].quota);
        for (std::uint64_t p = 0; p < burst; ++p)
            refill(ci);
    }
}

void
WorkloadEngine::scheduleArrival(std::size_t ci)
{
    ClientState &c = clients_[ci];
    if (c.issued >= c.quota)
        return;
    sim_.scheduleAfter(c.arrivals->nextGap(), [this, ci]() {
        ClientState &cl = clients_[ci];
        if (cl.issued >= cl.quota)
            return;
        ++cl.issued;
        issueOne(ci);
        scheduleArrival(ci);
    });
}

void
WorkloadEngine::run(std::function<void()> done)
{
    runDone_ = std::move(done);
    startTick_ = sim_.now();
    endTick_ = startTick_;
    if (targetOps_ == 0) {
        sim_.scheduleAfter(0, [this]() {
            auto fin = std::move(runDone_);
            runDone_ = nullptr;
            if (fin)
                fin();
        });
        return;
    }
    for (std::size_t ci = 0; ci < clients_.size(); ++ci) {
        if (params_.openLoop) {
            scheduleArrival(ci);
        } else {
            auto burst = std::min<std::uint64_t>(
                params_.pipeline, clients_[ci].quota);
            for (std::uint64_t p = 0; p < burst; ++p)
                refill(ci);
        }
    }
}

double
WorkloadEngine::throughputOpsPerSec() const
{
    std::uint64_t accepted = completed_ - rejected_;
    sim::Tick elapsed = endTick_ - startTick_;
    if (elapsed == 0)
        return 0.0;
    return double(accepted) / sim::ticksToSec(elapsed);
}

} // namespace workload
} // namespace bluedbm
