/**
 * @file
 * In-store graph traversal engine (paper section 7.2).
 *
 * Graph traversal is dependent page lookups: the data from one
 * request determines the next, so throughput is 1/latency. The
 * engine walks vertices stored one-per-page across the cluster's
 * global address space. Its fetch path is pluggable so the same
 * walk can be timed over ISP-F, H-F, H-RH-F or DRAM-mix paths
 * (figure 20).
 */

#ifndef BLUEDBM_ISP_GRAPH_ENGINE_HH
#define BLUEDBM_ISP_GRAPH_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "analytics/graph.hh"
#include "core/cluster.hh"
#include "sim/random.hh"

namespace bluedbm {
namespace isp {

/**
 * Outcome of a traversal run.
 */
struct TraversalResult
{
    std::uint64_t steps = 0;
    std::uint64_t lastVertex = 0;
    std::vector<std::uint64_t> path; //!< visited vertices (optional)
};

/**
 * Dependent-lookup graph walker.
 */
class GraphTraversalEngine
{
  public:
    using Done = std::function<void(TraversalResult)>;
    /**
     * Fetch one vertex page by global index; implementations choose
     * the access path (ISP-F, H-F, ...).
     */
    using Fetch = std::function<void(
        std::uint64_t vertex,
        std::function<void(flash::PageBuffer)>)>;

    /**
     * @param fetch     page fetch path
     * @param seed      RNG seed for successor choice
     * @param keep_path record visited vertices in the result
     */
    GraphTraversalEngine(Fetch fetch, std::uint64_t seed = 1,
                         bool keep_path = false)
        : fetch_(std::move(fetch)), rng_(seed), keepPath_(keep_path)
    {
    }

    /**
     * Random-walk @p steps dependent lookups starting at vertex
     * @p start. Every hop waits for the previous page -- the
     * latency-bound pattern of the paper.
     */
    void walk(std::uint64_t start, std::uint64_t steps, Done done);

  private:
    void step(std::shared_ptr<TraversalResult> res,
              std::uint64_t vertex, std::uint64_t remaining,
              Done done);

    Fetch fetch_;
    sim::Rng rng_;
    bool keepPath_;
};

} // namespace isp
} // namespace bluedbm

#endif // BLUEDBM_ISP_GRAPH_ENGINE_HH
