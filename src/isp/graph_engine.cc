#include "isp/graph_engine.hh"

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace isp {

void
GraphTraversalEngine::walk(std::uint64_t start, std::uint64_t steps,
                           Done done)
{
    auto res = std::make_shared<TraversalResult>();
    res->lastVertex = start;
    if (keepPath_)
        res->path.push_back(start);
    step(res, start, steps, std::move(done));
}

void
GraphTraversalEngine::step(std::shared_ptr<TraversalResult> res,
                           std::uint64_t vertex,
                           std::uint64_t remaining, Done done)
{
    if (remaining == 0) {
        done(std::move(*res));
        return;
    }
    fetch_(vertex, [this, res, remaining,
                    done = std::move(done)](
                       flash::PageBuffer page) mutable {
        auto nbrs = analytics::PageGraph::parse(page);
        if (nbrs.empty())
            sim::fatal("walk reached a sink vertex");
        std::uint64_t next = nbrs[rng_.below(nbrs.size())];
        ++res->steps;
        res->lastVertex = next;
        if (keepPath_)
            res->path.push_back(next);
        step(res, next, remaining - 1, std::move(done));
    });
}

} // namespace isp
} // namespace bluedbm
