#include "isp/morris_pratt.hh"

#include <utility>

#include "sim/logging.hh"

namespace bluedbm {
namespace isp {

MpPattern::MpPattern(std::string needle)
    : needle_(std::move(needle))
{
    if (needle_.empty())
        sim::fatal("Morris-Pratt needle must not be empty");
    failure_.assign(needle_.size(), 0);
    std::uint32_t k = 0;
    for (std::size_t i = 1; i < needle_.size(); ++i) {
        while (k > 0 && needle_[i] != needle_[k])
            k = failure_[k - 1];
        if (needle_[i] == needle_[k])
            ++k;
        failure_[i] = k;
    }
}

} // namespace isp
} // namespace bluedbm
